//! # fideslib (Rust reproduction)
//!
//! Facade crate re-exporting the full `fideslib-rs` stack — a from-scratch
//! Rust reproduction of **FIDESlib: A Fully-Fledged Open-Source FHE Library
//! for Efficient CKKS on GPUs** (ISPASS 2025) with the GPU replaced by a
//! faithful execution simulator (see `DESIGN.md`).
//!
//! * [`client`] — OpenFHE-equivalent client: encode/decode, key generation,
//!   encrypt/decrypt, serialization, adapter structures.
//! * [`core`] — server-side CKKS on the simulated GPU: all primitives,
//!   hybrid key switching, hoisted rotations, bootstrapping.
//! * [`gpu_sim`] — the device models, streams, kernels and memory hierarchy.
//! * [`math`] / [`rns`] — modular arithmetic, NTT, RNS substrates.
//! * [`baselines`] — Phantom and OpenFHE-CPU comparators.
//! * [`workloads`] — the logistic-regression training workload.
//!
//! ```
//! use fideslib::core::{CkksContext, CkksParameters};
//! use fideslib::gpu_sim::{DeviceSpec, ExecMode, GpuSim};
//!
//! let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
//! let ctx = CkksContext::new(CkksParameters::toy(), gpu);
//! assert_eq!(ctx.n(), 1024);
//! ```

pub use fides_baselines as baselines;
pub use fides_client as client;
pub use fides_core as core;
pub use fides_gpu_sim as gpu_sim;
pub use fides_math as math;
pub use fides_rns as rns;
pub use fides_workloads as workloads;
