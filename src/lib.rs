//! # fideslib (Rust reproduction)
//!
//! A from-scratch Rust reproduction of **FIDESlib: A Fully-Fledged
//! Open-Source FHE Library for Efficient CKKS on GPUs** (ISPASS 2025), with
//! the GPU replaced by a faithful execution simulator (see `DESIGN.md`).
//!
//! ## The front door: [`CkksEngine`]
//!
//! One object owns the whole pipeline — parameters, simulator, server
//! context, client keys — and ciphertext handles combine with plain
//! operators (relinearization, rescaling and level alignment are
//! automatic):
//!
//! ```
//! use fideslib::CkksEngine;
//!
//! let engine = CkksEngine::builder()
//!     .log_n(11)
//!     .levels(4)
//!     .scale_bits(40)
//!     .seed(42)
//!     .build()?;
//! let x = engine.encrypt(&[0.1, 0.2, 0.3])?;
//! let y = engine.encrypt(&[1.0, 0.5, 0.25])?;
//! let z = &x * &y + &x * 2.0; // computed homomorphically on the server
//! let out = engine.decrypt(&z)?;
//! assert!((out[2] - (0.3 * 0.25 + 2.0 * 0.3)).abs() < 1e-4);
//! # Ok::<(), fideslib::core::FidesError>(())
//! ```
//!
//! The engine is backend-pluggable: the default executes on the simulated
//! GPU (kernels, streams, timing ledger — the paper's architecture), and
//! [`api::BackendChoice::Cpu`] runs the identical RNS math on a plain-CPU
//! reference implementation for cross-checking and as the template for
//! real-hardware backends.
//!
//! ## The layers underneath
//!
//! The raw layered API remains public — benchmarks and research code use it
//! directly (see `examples/raw_layered.rs`):
//!
//! * [`api`] — `CkksEngine`, the session builder, operator-overloaded
//!   [`Ct`] handles, and the `EvalBackend` abstraction.
//! * [`client`] — OpenFHE-equivalent client: encode/decode, key generation,
//!   encrypt/decrypt, serialization, adapter structures.
//! * [`core`] — server-side CKKS on the simulated GPU: all primitives,
//!   hybrid key switching, hoisted rotations, bootstrapping, plus the
//!   plain-CPU reference backend.
//! * [`gpu_sim`] — the device models, streams, kernels and memory
//!   hierarchy.
//! * [`math`] / [`rns`] — modular arithmetic, NTT, RNS substrates.
//! * [`serve`] — the multi-tenant session server: bounded LRU session
//!   registry, cross-request graph batching (see `examples/serve.rs`).
//! * [`baselines`] — Phantom and OpenFHE-CPU comparators.
//! * [`workloads`] — encrypted logistic-regression training and serving.

pub use fides_api as api;
pub use fides_baselines as baselines;
pub use fides_client as client;
pub use fides_core as core;
pub use fides_gpu_sim as gpu_sim;
pub use fides_math as math;
pub use fides_rns as rns;
pub use fides_serve as serve;
pub use fides_workloads as workloads;

pub use fides_api::{
    BackendChoice, BootstrapConfig, CkksEngine, Ct, FidesError, FusionConfig, Result, SchedStats,
    Session,
};
pub use fides_math::{set_simd_enabled, simd_enabled};
pub use fides_serve::{ServeBackend, ServeStats, Server, ServerConfig};
