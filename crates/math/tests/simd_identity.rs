//! Bit-identity of the `u64x4` lane kernels against their scalar
//! counterparts — the contract the whole SIMD layer rests on: same prime,
//! same inputs, same bits out, lane by lane, regardless of the `simd`
//! feature or the runtime kill-switch.
//!
//! The x4 primitives in `modular.rs` are exercised directly on full-range
//! inputs (including the Shoup operand at `u64::MAX`-adjacent values), and
//! the slab functions in `fides_math::simd` are run with the kill-switch
//! forced both ways and compared against hand-written scalar loops.

use fides_math::{Modulus, MontgomeryOps, ShoupPrecomp};
use proptest::prelude::*;

fn arb_prime() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(65537u64),
        Just(998244353u64),
        Just((1u64 << 61) - 1),
        Just(4611686018326724609u64),
        Just(1000003u64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every x4 arithmetic primitive equals four scalar calls.
    #[test]
    fn x4_primitives_match_scalar(
        p in arb_prime(),
        a0 in any::<u64>(), a1 in any::<u64>(), a2 in any::<u64>(), a3 in any::<u64>(),
        b0 in any::<u64>(), b1 in any::<u64>(), b2 in any::<u64>(), b3 in any::<u64>(),
    ) {
        let m = Modulus::new(p);
        let ar = [a0, a1, a2, a3].map(|x| x % p);
        let br = [b0, b1, b2, b3].map(|x| x % p);
        for l in 0..4 {
            prop_assert_eq!(m.add_mod_x4(ar, br)[l], m.add_mod(ar[l], br[l]));
            prop_assert_eq!(m.sub_mod_x4(ar, br)[l], m.sub_mod(ar[l], br[l]));
            prop_assert_eq!(m.neg_mod_x4(ar)[l], m.neg_mod(ar[l]));
            prop_assert_eq!(m.mul_mod_x4(ar, br)[l], m.mul_mod(ar[l], br[l]));
            prop_assert_eq!(
                m.mul_add_mod_x4(ar, br, m.neg_mod_x4(ar))[l],
                m.mul_add_mod(ar[l], br[l], m.neg_mod(ar[l]))
            );
        }
    }

    /// Barrett x4 on **arbitrary** `u128` lanes (not pre-reduced).
    #[test]
    fn reduce_u128_x4_matches_scalar(
        p in arb_prime(),
        x0 in any::<u128>(), x1 in any::<u128>(), x2 in any::<u128>(), x3 in any::<u128>(),
    ) {
        let m = Modulus::new(p);
        let x = [x0, x1, x2, x3];
        let r = m.reduce_u128_x4(x);
        for l in 0..4 {
            prop_assert_eq!(r[l], m.reduce_u128(x[l]));
            prop_assert_eq!(r[l], (x[l] % p as u128) as u64);
        }
    }

    /// Shoup x4 including the full-range-`x` edge: Shoup multiplication
    /// only requires the *precomputed* operand reduced; `x` may be any
    /// `u64` as long as `w·x` fits the algorithm's slack — the scalar
    /// `mul` accepts `x < 2^63` here, so pin agreement across that range
    /// plus the extreme corners.
    #[test]
    fn shoup_mul_x4_matches_scalar(
        p in arb_prime(),
        w in any::<u64>(),
        x0 in any::<u64>(), x1 in any::<u64>(), x2 in any::<u64>(), x3 in any::<u64>(),
    ) {
        let m = Modulus::new(p);
        let sp = ShoupPrecomp::new(w % p, &m);
        let xs = [x0, x1, x2, x3].map(|v| v % p);
        let r = sp.mul_x4(xs, &m);
        for l in 0..4 {
            prop_assert_eq!(r[l], sp.mul(xs[l], &m));
        }
        // Corner lanes: 0, 1, p−1 and a repeated max-reduced value.
        let corners = [0, 1, p - 1, p - 1];
        let rc = sp.mul_x4(corners, &m);
        for l in 0..4 {
            prop_assert_eq!(rc[l], sp.mul(corners[l], &m));
        }
    }

    /// Montgomery x4 REDC and multiply equal the scalar path.
    #[test]
    fn montgomery_x4_matches_scalar(
        p in arb_prime(),
        a0 in any::<u64>(), a1 in any::<u64>(), a2 in any::<u64>(), a3 in any::<u64>(),
        b0 in any::<u64>(), b1 in any::<u64>(), b2 in any::<u64>(), b3 in any::<u64>(),
    ) {
        let m = Modulus::new(p);
        let mont = MontgomeryOps::new(&m);
        let ar = [a0, a1, a2, a3].map(|x| x % p);
        let br = [b0, b1, b2, b3].map(|x| x % p);
        let t = [0usize, 1, 2, 3].map(|l| ar[l] as u128 * br[l] as u128);
        let redc = mont.redc_x4(t);
        let prod = mont.mul_x4(ar, br);
        for l in 0..4 {
            prop_assert_eq!(redc[l], mont.redc(t[l]));
            prop_assert_eq!(prod[l], mont.mul(ar[l], br[l]));
        }
    }
}

/// Runs `f` with the kill-switch forced to each state and returns both
/// results, restoring the runtime default afterwards.
fn both_states<T>(mut f: impl FnMut() -> T) -> (T, T) {
    fides_math::set_simd_enabled(Some(false));
    let off = f();
    fides_math::set_simd_enabled(Some(true));
    let on = f();
    (off, on)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every slab function produces identical bytes with the SIMD path on
    /// and off, on lengths that exercise the 4-lane body and the scalar
    /// tail, and matches a hand-written scalar loop.
    #[test]
    fn slabs_bit_identical_and_match_reference(
        p in arb_prime(),
        seed in any::<u64>(),
        len in prop_oneof![Just(0usize), Just(1usize), Just(3usize), Just(4usize), Just(7usize), Just(64usize), Just(65usize)],
    ) {
        let m = Modulus::new(p);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % p
        };
        let a: Vec<u64> = (0..len).map(|_| next()).collect();
        let b: Vec<u64> = (0..len).map(|_| next()).collect();
        let c: Vec<u64> = (0..len).map(|_| next()).collect();
        let w = ShoupPrecomp::new(next(), &m);
        let k = next();

        // (name, result-off, result-on, hand-written scalar reference)
        type Case = (&'static str, (Vec<u64>, Vec<u64>), Vec<u64>);
        let cases: Vec<Case> = vec![
            (
                "add_assign",
                both_states(|| {
                    let mut x = a.clone();
                    fides_math::simd::add_assign(&m, &mut x, &b);
                    x
                }),
                a.iter().zip(&b).map(|(&x, &y)| m.add_mod(x, y)).collect(),
            ),
            (
                "sub_assign",
                both_states(|| {
                    let mut x = a.clone();
                    fides_math::simd::sub_assign(&m, &mut x, &b);
                    x
                }),
                a.iter().zip(&b).map(|(&x, &y)| m.sub_mod(x, y)).collect(),
            ),
            (
                "mul_assign",
                both_states(|| {
                    let mut x = a.clone();
                    fides_math::simd::mul_assign(&m, &mut x, &b);
                    x
                }),
                a.iter().zip(&b).map(|(&x, &y)| m.mul_mod(x, y)).collect(),
            ),
            (
                "mul_add_assign",
                both_states(|| {
                    let mut x = c.clone();
                    fides_math::simd::mul_add_assign(&m, &mut x, &a, &b);
                    x
                }),
                a.iter()
                    .zip(&b)
                    .zip(&c)
                    .map(|((&x, &y), &z)| m.mul_add_mod(x, y, z))
                    .collect(),
            ),
            (
                "neg_assign",
                both_states(|| {
                    let mut x = a.clone();
                    fides_math::simd::neg_assign(&m, &mut x);
                    x
                }),
                a.iter().map(|&x| m.neg_mod(x)).collect(),
            ),
            (
                "scalar_mul_assign",
                both_states(|| {
                    let mut x = a.clone();
                    fides_math::simd::scalar_mul_assign(&m, &mut x, k);
                    x
                }),
                a.iter().map(|&x| m.mul_mod(x, k)).collect(),
            ),
            (
                "shoup_mul_assign",
                both_states(|| {
                    let mut x = a.clone();
                    fides_math::simd::shoup_mul_assign(&m, &w, &mut x);
                    x
                }),
                a.iter().map(|&x| w.mul(x, &m)).collect(),
            ),
            (
                "sub_shoup_mul_assign",
                both_states(|| {
                    let mut x = a.clone();
                    fides_math::simd::sub_shoup_mul_assign(&m, &w, &mut x, &c);
                    x
                }),
                a.iter()
                    .zip(&c)
                    .map(|(&x, &z)| w.mul(m.sub_mod(x, z), &m))
                    .collect(),
            ),
        ];
        for (name, (off, on), reference) in cases {
            prop_assert_eq!(&off, &on, "{} differs across kill-switch states", name);
            prop_assert_eq!(&on, &reference, "{} differs from scalar reference", name);
        }

        // Butterflies mutate two slices: compare the pair.
        let half = len / 2;
        let (fwd_off, fwd_on) = both_states(|| {
            let (mut lo, mut hi) = (a[..half].to_vec(), b[..half].to_vec());
            fides_math::simd::ct_butterfly(&m, &w, &mut lo, &mut hi);
            (lo, hi)
        });
        prop_assert_eq!(&fwd_off, &fwd_on, "ct_butterfly differs across states");
        for i in 0..half {
            let v = w.mul(b[i], &m);
            prop_assert_eq!(fwd_on.0[i], m.add_mod(a[i], v));
            prop_assert_eq!(fwd_on.1[i], m.sub_mod(a[i], v));
        }
        let (inv_off, inv_on) = both_states(|| {
            let (mut lo, mut hi) = (a[..half].to_vec(), b[..half].to_vec());
            fides_math::simd::gs_butterfly(&m, &w, &mut lo, &mut hi);
            (lo, hi)
        });
        prop_assert_eq!(&inv_off, &inv_on, "gs_butterfly differs across states");
        for i in 0..half {
            prop_assert_eq!(inv_on.0[i], m.add_mod(a[i], b[i]));
            prop_assert_eq!(inv_on.1[i], w.mul(m.sub_mod(a[i], b[i]), &m));
        }
    }
}
