//! Property-based tests for the mathematical substrate: ring axioms,
//! reduction-method agreement, NTT invariants.

use fides_math::{
    automorphism_coeff, automorphism_eval, build_eval_permutation, generate_ntt_primes,
    negacyclic_schoolbook_mul, Modulus, MontgomeryOps, NttTable, PolyOps, ShoupPrecomp,
};
use proptest::prelude::*;

fn arb_prime() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(65537u64),
        Just(998244353u64),
        Just((1u64 << 61) - 1),
        Just(4611686018326724609u64),
        Just(1000003u64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All three Table III reduction methods agree with schoolbook `%`.
    #[test]
    fn reduction_methods_agree(p in arb_prime(), a in any::<u64>(), b in any::<u64>()) {
        let m = Modulus::new(p);
        let (a, b) = (a % p, b % p);
        let expect = (a as u128 * b as u128 % p as u128) as u64;
        prop_assert_eq!(m.mul_mod(a, b), expect);
        let sp = ShoupPrecomp::new(a, &m);
        prop_assert_eq!(sp.mul(b, &m), expect);
        let mont = MontgomeryOps::new(&m);
        prop_assert_eq!(mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))), expect);
    }

    /// Field axioms on random triples.
    #[test]
    fn field_axioms(p in arb_prime(), a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let m = Modulus::new(p);
        let (a, b, c) = (a % p, b % p, c % p);
        // Commutativity and associativity of both operations.
        prop_assert_eq!(m.add_mod(a, b), m.add_mod(b, a));
        prop_assert_eq!(m.mul_mod(a, b), m.mul_mod(b, a));
        prop_assert_eq!(m.add_mod(m.add_mod(a, b), c), m.add_mod(a, m.add_mod(b, c)));
        prop_assert_eq!(m.mul_mod(m.mul_mod(a, b), c), m.mul_mod(a, m.mul_mod(b, c)));
        // Distributivity.
        prop_assert_eq!(
            m.mul_mod(a, m.add_mod(b, c)),
            m.add_mod(m.mul_mod(a, b), m.mul_mod(a, c))
        );
        // Inverses.
        prop_assert_eq!(m.add_mod(a, m.neg_mod(a)), 0);
        if a != 0 {
            prop_assert_eq!(m.mul_mod(a, m.inv_mod(a)), 1);
        }
        // Subtraction is inverse addition.
        prop_assert_eq!(m.sub_mod(m.add_mod(a, b), b), a);
    }

    /// Barrett 128-bit reduction matches `%` on arbitrary inputs.
    #[test]
    fn barrett_reduce_matches(p in arb_prime(), x in any::<u128>()) {
        let m = Modulus::new(p);
        prop_assert_eq!(m.reduce_u128(x), (x % p as u128) as u64);
    }

    /// Centered conversion roundtrip (valid for |v| ≤ p/2 — the smallest
    /// prime in the pool is 65537).
    #[test]
    fn centered_roundtrip(p in arb_prime(), v in -32_768i64..=32_768) {
        let m = Modulus::new(p);
        prop_assert_eq!(m.to_centered_i64(m.from_i64(v)), v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NTT roundtrip and linearity on random polynomials.
    #[test]
    fn ntt_roundtrip_and_linearity(seed in any::<u64>(), log_n in 3u32..9) {
        let n = 1usize << log_n;
        let p = generate_ntt_primes(40, 1, n)[0];
        let m = Modulus::new(p);
        let t = NttTable::new(n, m);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % p
        };
        let a: Vec<u64> = (0..n).map(|_| next()).collect();
        let b: Vec<u64> = (0..n).map(|_| next()).collect();
        // Roundtrip.
        let mut x = a.clone();
        t.forward_inplace(&mut x);
        t.inverse_inplace(&mut x);
        prop_assert_eq!(&x, &a);
        // Linearity: NTT(a + b) = NTT(a) + NTT(b).
        let mut ea = a.clone();
        let mut eb = b.clone();
        t.forward_inplace(&mut ea);
        t.forward_inplace(&mut eb);
        let mut sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add_mod(x, y)).collect();
        t.forward_inplace(&mut sum);
        for i in 0..n {
            prop_assert_eq!(sum[i], m.add_mod(ea[i], eb[i]));
        }
    }

    /// NTT-based multiplication equals schoolbook negacyclic convolution.
    #[test]
    fn ntt_mul_is_negacyclic(seed in any::<u64>()) {
        let n = 32usize;
        let p = generate_ntt_primes(35, 1, n)[0];
        let m = Modulus::new(p);
        let t = NttTable::new(n, m);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s % p
        };
        let a: Vec<u64> = (0..n).map(|_| next()).collect();
        let b: Vec<u64> = (0..n).map(|_| next()).collect();
        let expect = negacyclic_schoolbook_mul(&a, &b, &m);
        let mut ea = a.clone();
        let mut eb = b.clone();
        t.forward_inplace(&mut ea);
        t.forward_inplace(&mut eb);
        let mut prod = vec![0u64; n];
        m.mul_slices(&ea, &eb, &mut prod);
        t.inverse_inplace(&mut prod);
        prop_assert_eq!(prod, expect);
    }

    /// Evaluation-domain automorphism equals the coefficient-domain path for
    /// arbitrary odd Galois elements.
    #[test]
    fn automorphism_paths_agree(seed in any::<u64>(), g_raw in 0usize..128) {
        let n = 64usize;
        let g = (2 * g_raw + 1) % (2 * n);
        let p = generate_ntt_primes(35, 1, n)[0];
        let m = Modulus::new(p);
        let t = NttTable::new(n, m);
        let mut s = seed | 1;
        let a: Vec<u64> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s % p
            })
            .collect();
        // coeff path
        let mut coeff_out = vec![0u64; n];
        automorphism_coeff(&a, g, &m, &mut coeff_out);
        t.forward_inplace(&mut coeff_out);
        // eval path
        let mut ea = a.clone();
        t.forward_inplace(&mut ea);
        let perm = build_eval_permutation(n, g);
        let mut eval_out = vec![0u64; n];
        automorphism_eval(&ea, &perm, &mut eval_out);
        prop_assert_eq!(eval_out, coeff_out);
    }
}
