//! NTT-friendly prime generation.
//!
//! CKKS over RNS needs chains of word-sized primes `q ≡ 1 (mod 2N)` so that a
//! primitive `2N`-th root of unity exists for the negacyclic NTT. FIDESlib
//! selects the first modulus and the auxiliary (`P`) moduli near `2^60` and
//! the scaling moduli near `2^Δ`, alternating above/below the target so that
//! the product of any window stays close to a power of the scale (this is the
//! "careful tracking of scaling factors" prerequisite of \[36\]).

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the standard 12-base witness set which is known to be sufficient for
/// all 64-bit integers.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n % p == 0 {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d % 2 == 0 {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod_u64(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod_u64(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    (a as u128 * b as u128 % m as u128) as u64
}

fn pow_mod_u64(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod_u64(acc, base, m);
        }
        base = mul_mod_u64(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Returns the largest prime `p < upper_bound` with `p ≡ 1 (mod 2n)`.
///
/// # Panics
///
/// Panics if no such prime exists above `2n` (practically unreachable for the
/// CKKS parameter ranges used here).
pub fn next_ntt_prime_below(upper_bound: u64, n: usize) -> u64 {
    let step = 2 * n as u64;
    // Largest candidate ≡ 1 (mod 2n) strictly below upper_bound.
    let mut cand = (upper_bound - 2) / step * step + 1;
    while cand > step {
        if is_prime_u64(cand) {
            return cand;
        }
        cand -= step;
    }
    panic!("no NTT prime found below {upper_bound} for ring degree {n}");
}

/// Returns the smallest prime `p > lower_bound` with `p ≡ 1 (mod 2n)`.
fn next_ntt_prime_above(lower_bound: u64, n: usize) -> u64 {
    let step = 2 * n as u64;
    let mut cand = lower_bound / step * step + step + 1;
    loop {
        if is_prime_u64(cand) {
            return cand;
        }
        cand += step;
    }
}

/// Generates `count` distinct NTT-friendly primes of roughly `bit_size` bits
/// for ring degree `n`, scanning downward from `2^bit_size`.
///
/// # Panics
///
/// Panics if `bit_size ≥ 62` (the library word-size bound) or if the search
/// space is exhausted.
pub fn generate_ntt_primes(bit_size: u32, count: usize, n: usize) -> Vec<u64> {
    assert!(
        bit_size < 62,
        "bit size must stay below the 2^62 modulus bound"
    );
    assert!(
        bit_size > (2 * n).trailing_zeros() + 1,
        "bit size too small for ring degree"
    );
    let mut primes = Vec::with_capacity(count);
    let mut bound = 1u64 << bit_size;
    while primes.len() < count {
        let p = next_ntt_prime_below(bound, n);
        primes.push(p);
        bound = p;
    }
    primes
}

/// Generates a scaling-prime chain of `count` primes near `2^delta_bits`,
/// alternating just below / just above the target so that the running product
/// of any `k` consecutive primes stays close to `2^{k·delta_bits}`.
///
/// This mirrors OpenFHE's scaling-modulus selection and keeps the rescaling
/// error small under FIXEDMANUAL scale management.
pub fn generate_scaling_primes(delta_bits: u32, count: usize, n: usize) -> Vec<u64> {
    assert!(delta_bits < 62);
    let target = 1u64 << delta_bits;
    let mut primes = Vec::with_capacity(count);
    let mut below_bound = target;
    let mut above_bound = target;
    for i in 0..count {
        if i % 2 == 0 {
            let p = next_ntt_prime_below(below_bound, n);
            below_bound = p;
            primes.push(p);
        } else {
            let p = next_ntt_prime_above(above_bound, n);
            above_bound = p;
            primes.push(p);
        }
    }
    primes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 998244353, (1 << 61) - 1];
        for p in primes {
            assert!(is_prime_u64(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 9, 561, 65536, 6601, 8911, 1 << 61];
        for c in composites {
            assert!(!is_prime_u64(c), "{c} should be composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Known strong pseudoprimes to small bases.
        for c in [3215031751u64, 3825123056546413051] {
            assert!(!is_prime_u64(c), "{c} is composite");
        }
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        for log_n in [10usize, 12, 14] {
            let n = 1 << log_n;
            let primes = generate_ntt_primes(50, 4, n);
            assert_eq!(primes.len(), 4);
            for &p in &primes {
                assert!(is_prime_u64(p));
                assert_eq!(p % (2 * n as u64), 1);
                assert!(p < (1 << 50));
                assert!(p > (1 << 49), "prime {p} drifted far from target size");
            }
            // Distinct and descending.
            for w in primes.windows(2) {
                assert!(w[0] > w[1]);
            }
        }
    }

    #[test]
    fn scaling_primes_alternate_around_target() {
        let n = 1 << 12;
        let primes = generate_scaling_primes(40, 6, n);
        let target = 1u64 << 40;
        assert_eq!(primes.len(), 6);
        for (i, &p) in primes.iter().enumerate() {
            assert!(is_prime_u64(p));
            assert_eq!(p % (2 * n as u64), 1);
            if i % 2 == 0 {
                assert!(p < target);
            } else {
                assert!(p > target);
            }
            let drift = (p as f64 / target as f64).ln().abs();
            assert!(drift < 0.01, "prime {p} drifted too far from 2^40");
        }
        // Geometric-mean drift of the whole chain stays small.
        let log_product: f64 = primes.iter().map(|&p| (p as f64).log2()).sum();
        assert!((log_product - 240.0).abs() < 0.01);
    }

    #[test]
    fn primes_distinct_across_alternation() {
        let primes = generate_scaling_primes(45, 8, 1 << 10);
        let mut sorted = primes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), primes.len());
    }
}
