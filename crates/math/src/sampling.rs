//! Random polynomial sampling for RLWE.
//!
//! CKKS key generation and encryption need three distributions: uniform
//! residues (public-key `a` components), uniform ternary secrets (the OpenFHE
//! default secret-key distribution), and rounded Gaussian errors with
//! `σ = 3.19` (the HomomorphicEncryption.org standard error width).

use rand::Rng;

use crate::modular::Modulus;

/// Samples a polynomial with uniformly random residues in `[0, p)`.
pub fn sample_uniform_poly<R: Rng + ?Sized>(rng: &mut R, n: usize, modulus: &Modulus) -> Vec<u64> {
    let p = modulus.value();
    (0..n).map(|_| rng.random_range(0..p)).collect()
}

/// Samples uniform ternary coefficients in `{-1, 0, 1}`.
pub fn sample_ternary_coeffs<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<i64> {
    (0..n)
        .map(|_| rng.random_range(0..3u32) as i64 - 1)
        .collect()
}

/// Samples discrete-Gaussian-ish coefficients by rounding a Box–Muller normal
/// with standard deviation `sigma`, truncated at `±6σ` as in OpenFHE.
pub fn sample_gaussian_coeffs<R: Rng + ?Sized>(rng: &mut R, n: usize, sigma: f64) -> Vec<i64> {
    let bound = (6.0 * sigma).ceil() as i64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Box–Muller produces two independent normals per draw.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt() * sigma;
        let theta = 2.0 * std::f64::consts::PI * u2;
        for v in [r * theta.cos(), r * theta.sin()] {
            let x = v.round() as i64;
            if x.abs() <= bound && out.len() < n {
                out.push(x);
            }
        }
    }
    out
}

/// Reduces signed coefficients into canonical residues for one RNS limb.
pub fn signed_to_residues(signed: &[i64], modulus: &Modulus) -> Vec<u64> {
    signed.iter().map(|&v| modulus.from_i64(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range_and_spread() {
        let m = Modulus::new(998244353);
        let mut rng = StdRng::seed_from_u64(1);
        let v = sample_uniform_poly(&mut rng, 4096, &m);
        assert!(v.iter().all(|&x| x < m.value()));
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let expected = m.value() as f64 / 2.0;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn ternary_values_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = sample_ternary_coeffs(&mut rng, 30000);
        assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        for target in [-1i64, 0, 1] {
            let frac = v.iter().filter(|&&x| x == target).count() as f64 / v.len() as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "{target} freq {frac}");
        }
    }

    #[test]
    fn gaussian_moments_and_truncation() {
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = 3.19;
        let v = sample_gaussian_coeffs(&mut rng, 50000, sigma);
        let bound = (6.0 * sigma).ceil() as i64;
        assert!(v.iter().all(|&x| x.abs() <= bound));
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.15, "stddev {}", var.sqrt());
    }

    #[test]
    fn signed_reduction_roundtrip() {
        let m = Modulus::new(65537);
        let signed = vec![-3i64, -1, 0, 1, 3, 32768, -32768];
        let res = signed_to_residues(&signed, &m);
        for (s, r) in signed.iter().zip(&res) {
            assert_eq!(m.to_centered_i64(*r), *s);
        }
    }
}
