//! Negacyclic Number Theoretic Transform.
//!
//! FIDESlib implements the NTT as a negacyclic convolution transform over
//! `Z_p[X]/(X^N + 1)` using the Radix-2 Cooley–Tukey scheme (§III-F.4): the
//! forward transform consumes a normal-order coefficient vector and produces a
//! bit-reversed evaluation vector, while the inverse transform uses
//! Gentleman–Sande butterflies to consume the bit-reversed evaluation vector
//! and emit normal-order coefficients — eliminating explicit bit-reversal
//! passes. All twiddle factors carry precomputed Shoup constants so the
//! butterflies use Shoup modular multiplication.

use serde::{Deserialize, Serialize};

use crate::modular::{Modulus, ShoupPrecomp};

/// Reverses the lowest `bits` bits of `x`.
#[inline(always)]
pub fn reverse_bits(x: usize, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        x.reverse_bits() >> (usize::BITS - bits)
    }
}

/// Permutes a slice into bit-reversed order in place.
///
/// # Panics
///
/// Panics if the slice length is not a power of two.
pub fn bit_reverse<T>(a: &mut [T]) {
    let n = a.len();
    assert!(
        n.is_power_of_two(),
        "bit_reverse needs a power-of-two length"
    );
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = reverse_bits(i, bits);
        if i < j {
            a.swap(i, j);
        }
    }
}

/// Precomputed NTT tables for one `(modulus, ring degree)` pair.
///
/// Holds the primitive `2N`-th root of unity `ψ`, the forward twiddle factors
/// `ψ^{brv(i)}` in Cooley–Tukey traversal order, their inverses for the
/// Gentleman–Sande inverse transform, `N^{-1}`, and Shoup companions for all
/// of them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NttTable {
    n: usize,
    log_n: u32,
    modulus: Modulus,
    psi: u64,
    /// Flat ψ-power tables: retained alongside the per-stage Shoup tables
    /// for verification tooling even though the transform kernels below
    /// only consume the Shoup forms.
    #[allow(dead_code)]
    root_powers: Vec<u64>,
    root_powers_shoup: Vec<ShoupPrecomp>,
    #[allow(dead_code)]
    inv_root_powers: Vec<u64>,
    inv_root_powers_shoup: Vec<ShoupPrecomp>,
    n_inv: ShoupPrecomp,
}

impl NttTable {
    /// Builds tables for ring degree `n` (a power of two) and prime modulus
    /// `p ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or the modulus does not support a
    /// `2n`-th root of unity.
    pub fn new(n: usize, modulus: Modulus) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "ring degree must be a power of two ≥ 2"
        );
        let p = modulus.value();
        assert_eq!(
            (p - 1) % (2 * n as u64),
            0,
            "modulus {p} does not support a 2n-th root of unity for n={n}"
        );
        let log_n = n.trailing_zeros();
        let psi = find_primitive_2n_root(n, &modulus);

        let mut root_powers = vec![0u64; n];
        let mut inv_root_powers = vec![0u64; n];
        // Forward powers psi^0..psi^{n-1}; the CT loop then walks
        // root_powers[i] = psi^{brv(i)} sequentially. The inverse table uses
        // psi^{-k} = -psi^{n-k} (since psi^n ≡ -1), avoiding n inversions.
        let mut fwd = vec![0u64; n];
        let mut acc = 1u64;
        for item in fwd.iter_mut() {
            *item = acc;
            acc = modulus.mul_mod(acc, psi);
        }
        for i in 0..n {
            let r = reverse_bits(i, log_n);
            root_powers[i] = fwd[r];
            inv_root_powers[i] = if r == 0 { 1 } else { p - fwd[n - r] };
            debug_assert_eq!(modulus.mul_mod(root_powers[i], inv_root_powers[i]), 1);
        }

        let root_powers_shoup = root_powers
            .iter()
            .map(|&w| ShoupPrecomp::new(w, &modulus))
            .collect();
        let inv_root_powers_shoup = inv_root_powers
            .iter()
            .map(|&w| ShoupPrecomp::new(w, &modulus))
            .collect();
        let n_inv = ShoupPrecomp::new(modulus.inv_mod(n as u64), &modulus);

        Self {
            n,
            log_n,
            modulus,
            psi,
            root_powers,
            root_powers_shoup,
            inv_root_powers,
            inv_root_powers_shoup,
            n_inv,
        }
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2(N)`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The modulus these tables were built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The primitive `2N`-th root of unity `ψ`.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Forward negacyclic NTT: normal-order coefficients → bit-reversed
    /// evaluations, in place. Cooley–Tukey butterflies with Shoup twiddles.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn forward_inplace(&self, a: &mut [u64]) {
        self.forward_stages(a, 0, self.log_n);
    }

    /// Forward NTT restricted to the butterfly stages `[stage_begin,
    /// stage_end)` (stage 0 is the first CT stage). Used by the
    /// hierarchical/2D NTT to split the transform into two memory passes.
    /// The full in-place transform delegates here, so the butterfly kernel —
    /// including its `u64x4` slab form — lives in exactly one place.
    pub(crate) fn forward_stages(&self, a: &mut [u64], stage_begin: u32, stage_end: u32) {
        assert_eq!(a.len(), self.n);
        assert!(stage_end <= self.log_n && stage_begin <= stage_end);
        let m = &self.modulus;
        let mut half = self.n >> (stage_begin + 1);
        let mut groups = 1usize << stage_begin;
        for _ in stage_begin..stage_end {
            for i in 0..groups {
                let w = &self.root_powers_shoup[groups + i];
                let base = 2 * i * half;
                let (lo, hi) = a[base..base + 2 * half].split_at_mut(half);
                crate::simd::ct_butterfly(m, w, lo, hi);
            }
            groups <<= 1;
            half >>= 1;
        }
    }

    /// Inverse NTT restricted to Gentleman–Sande stages `[stage_begin,
    /// stage_end)`, where stage 0 is the **first** GS stage (group count
    /// `N/2`). Used by the hierarchical/2D iNTT. No `N^{-1}` scaling.
    /// The full in-place transforms delegate here, mirroring
    /// [`Self::forward_stages`].
    pub(crate) fn inverse_stages(&self, a: &mut [u64], stage_begin: u32, stage_end: u32) {
        assert_eq!(a.len(), self.n);
        assert!(stage_end <= self.log_n && stage_begin <= stage_end);
        let m = &self.modulus;
        let mut half = 1usize << stage_begin;
        let mut groups = self.n >> (stage_begin + 1);
        for _ in stage_begin..stage_end {
            for i in 0..groups {
                let w = &self.inv_root_powers_shoup[groups + i];
                let base = 2 * i * half;
                let (lo, hi) = a[base..base + 2 * half].split_at_mut(half);
                crate::simd::gs_butterfly(m, w, lo, hi);
            }
            half <<= 1;
            groups >>= 1;
        }
    }

    /// Inverse negacyclic NTT: bit-reversed evaluations → normal-order
    /// coefficients, in place. Gentleman–Sande butterflies followed by a fused
    /// `N^{-1}` scaling pass.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse_inplace(&self, a: &mut [u64]) {
        self.inverse_stages(a, 0, self.log_n);
        crate::simd::shoup_mul_assign(&self.modulus, &self.n_inv, a);
    }

    /// Inverse NTT without the trailing `N^{-1}` scaling (callers can fuse the
    /// scaling into a subsequent elementwise kernel, as FIDESlib's fusion
    /// machinery does).
    pub fn inverse_inplace_no_scale(&self, a: &mut [u64]) {
        self.inverse_stages(a, 0, self.log_n);
    }

    /// The Shoup-precomputed `N^{-1}` constant (for fused scaling).
    #[inline]
    pub fn n_inv(&self) -> &ShoupPrecomp {
        &self.n_inv
    }

    /// Reference forward transform: evaluates the polynomial at `ψ^{2·brv(i)+1}`
    /// directly in `O(N^2)`. Only used by tests.
    pub fn forward_naive(&self, a: &[u64]) -> Vec<u64> {
        let m = &self.modulus;
        let n = self.n;
        let mut out = vec![0u64; n];
        for (i, o) in out.iter_mut().enumerate() {
            let e = 2 * reverse_bits(i, self.log_n) as u64 + 1;
            let x = m.pow_mod(self.psi, e);
            let mut acc = 0u64;
            let mut xp = 1u64;
            for &c in a {
                acc = m.add_mod(acc, m.mul_mod(c, xp));
                xp = m.mul_mod(xp, x);
            }
            *o = acc;
        }
        out
    }
}

/// Finds a primitive `2n`-th root of unity modulo `p`.
fn find_primitive_2n_root(n: usize, modulus: &Modulus) -> u64 {
    let p = modulus.value();
    let exponent = (p - 1) / (2 * n as u64);
    // Deterministic scan keeps table construction reproducible.
    let mut candidate = 2u64;
    loop {
        let root = modulus.pow_mod(candidate, exponent);
        // Order is exactly 2n iff root^n == -1 (n is a power of two).
        if root != 1 && modulus.pow_mod(root, n as u64) == p - 1 {
            return root;
        }
        candidate += 1;
        assert!(
            candidate < p,
            "failed to find a primitive root (modulus not prime?)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn table(log_n: u32, bits: u32) -> NttTable {
        let n = 1usize << log_n;
        let p = generate_ntt_primes(bits, 1, n)[0];
        NttTable::new(n, Modulus::new(p))
    }

    fn rand_poly(n: usize, p: u64, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % p
            })
            .collect()
    }

    #[test]
    fn reverse_bits_basics() {
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(5, 0), 0);
    }

    #[test]
    fn bit_reverse_involution() {
        let mut v: Vec<usize> = (0..16).collect();
        let orig = v.clone();
        bit_reverse(&mut v);
        assert_ne!(v, orig);
        bit_reverse(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn roundtrip_small_and_medium() {
        for (log_n, bits) in [(2u32, 20u32), (4, 30), (8, 45), (11, 55), (13, 59)] {
            let t = table(log_n, bits);
            let p = t.modulus().value();
            let mut a = rand_poly(t.n(), p, 0xfeed + log_n as u64);
            let orig = a.clone();
            t.forward_inplace(&mut a);
            assert_ne!(a, orig, "transform should not be identity");
            t.inverse_inplace(&mut a);
            assert_eq!(a, orig, "log_n={log_n}");
        }
    }

    #[test]
    fn forward_matches_naive_evaluation() {
        let t = table(4, 30);
        let p = t.modulus().value();
        let a = rand_poly(t.n(), p, 0xabc);
        let mut fast = a.clone();
        t.forward_inplace(&mut fast);
        let naive = t.forward_naive(&a);
        assert_eq!(fast, naive);
    }

    #[test]
    fn pointwise_mul_is_negacyclic_convolution() {
        let t = table(3, 25);
        let m = *t.modulus();
        let p = m.value();
        let a = rand_poly(t.n(), p, 1);
        let b = rand_poly(t.n(), p, 2);
        let expected = crate::poly::negacyclic_schoolbook_mul(&a, &b, &m);
        let mut ea = a.clone();
        let mut eb = b.clone();
        t.forward_inplace(&mut ea);
        t.forward_inplace(&mut eb);
        let mut prod: Vec<u64> = ea.iter().zip(&eb).map(|(&x, &y)| m.mul_mod(x, y)).collect();
        t.inverse_inplace(&mut prod);
        assert_eq!(prod, expected);
    }

    #[test]
    fn linearity() {
        let t = table(6, 40);
        let m = *t.modulus();
        let p = m.value();
        let a = rand_poly(t.n(), p, 7);
        let b = rand_poly(t.n(), p, 8);
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add_mod(x, y)).collect();
        let mut ea = a.clone();
        let mut eb = b.clone();
        let mut esum = sum.clone();
        t.forward_inplace(&mut ea);
        t.forward_inplace(&mut eb);
        t.forward_inplace(&mut esum);
        for i in 0..t.n() {
            assert_eq!(esum[i], m.add_mod(ea[i], eb[i]));
        }
    }

    #[test]
    fn no_scale_variant_differs_by_n_inv() {
        let t = table(5, 35);
        let m = *t.modulus();
        let mut a = rand_poly(t.n(), m.value(), 42);
        t.forward_inplace(&mut a);
        let mut scaled = a.clone();
        let mut unscaled = a.clone();
        t.inverse_inplace(&mut scaled);
        t.inverse_inplace_no_scale(&mut unscaled);
        for i in 0..t.n() {
            assert_eq!(scaled[i], t.n_inv().mul(unscaled[i], &m));
        }
    }

    #[test]
    fn staged_forward_equals_full_forward() {
        let t = table(6, 40);
        let mut a = rand_poly(t.n(), t.modulus().value(), 9);
        let mut b = a.clone();
        t.forward_inplace(&mut a);
        t.forward_stages(&mut b, 0, 3);
        t.forward_stages(&mut b, 3, t.log_n());
        assert_eq!(a, b);
    }

    #[test]
    fn constant_polynomial_transforms_to_constant() {
        let t = table(4, 30);
        let mut a = vec![0u64; t.n()];
        a[0] = 5;
        t.forward_inplace(&mut a);
        assert!(
            a.iter().all(|&x| x == 5),
            "constant poly evaluates to constant"
        );
    }
}
