//! # fides-math
//!
//! Low-level mathematical substrate for `fideslib-rs`, the Rust reproduction of
//! FIDESlib (ISPASS 2025): word-sized modular arithmetic, NTT-friendly prime
//! generation, negacyclic (i)NTT in both radix-2 and hierarchical/2D forms,
//! dense polynomial-ring helpers over `Z_q[X]/(X^N + 1)`, sampling, and a
//! minimal complex-arithmetic module used by the CKKS canonical embedding.
//!
//! Everything in this crate is pure, deterministic CPU code with no knowledge
//! of the GPU simulator; higher layers wrap these routines into simulated
//! kernels.
//!
//! ```
//! use fides_math::{Modulus, NttTable};
//!
//! let p = fides_math::generate_ntt_primes(50, 1, 1 << 10)[0];
//! let m = Modulus::new(p);
//! let table = NttTable::new(1 << 10, m);
//! let mut a: Vec<u64> = (0..1u64 << 10).map(|i| i % p).collect();
//! let orig = a.clone();
//! table.forward_inplace(&mut a);
//! table.inverse_inplace(&mut a);
//! assert_eq!(a, orig);
//! ```

#![warn(missing_docs)]

mod cplx;
mod modular;
mod ntt;
mod ntt2d;
mod poly;
mod prime;
mod sampling;
pub mod simd;

pub use cplx::{special_fft, special_ifft, Complex64};
pub use modular::{Modulus, MontgomeryOps, ShoupPrecomp};
pub use ntt::{bit_reverse, reverse_bits, NttTable};
pub use ntt2d::Ntt2d;
pub use poly::{
    automorphism_coeff, automorphism_eval, build_eval_permutation, negacyclic_schoolbook_mul,
    switch_modulus_centered, PolyOps,
};
pub use prime::{generate_ntt_primes, generate_scaling_primes, is_prime_u64, next_ntt_prime_below};
pub use sampling::{
    sample_gaussian_coeffs, sample_ternary_coeffs, sample_uniform_poly, signed_to_residues,
};
pub use simd::{set_simd_enabled, simd_enabled};
