//! Portable `u64x4` slab kernels for the hot limb loops.
//!
//! This module is the single dispatch point between the scalar reference loops
//! and the 4-lane slab forms of every modular kernel (Barrett/Shoup
//! elementwise ops, NTT butterflies, the fused rescale/ModDown tail). The lane
//! primitives live on [`Modulus`]/[`ShoupPrecomp`] as `_x4` methods: plain
//! `[u64; 4]` arrays with straight-line, branchless per-lane code — no
//! `std::arch`, no nightly — shaped so the compiler autovectorizes the narrow
//! arithmetic and keeps four reduction chains in flight where it cannot.
//!
//! **Bit-identity contract.** Every slab runs the *same reduction algorithm*
//! per lane as its scalar twin (the branchless conditional subtraction is an
//! algebraic rewrite, not an approximation), so results are bit-identical
//! whether the slab path is compiled in, enabled, or disabled. The proptest
//! suite in `tests/simd_identity.rs` pins this across full-range inputs.
//!
//! **Dispatch.** The vector path is compiled only under the `simd` cargo
//! feature and consulted at runtime through [`simd_enabled`]: setting
//! `FIDES_SIMD=0` in the environment (or calling
//! [`set_simd_enabled`]`(Some(false))` in-process) falls back to the scalar
//! loops. Without the feature the functions here *are* the scalar loops, so
//! call sites in `poly.rs`/`ntt.rs`/`fides-rns`/`fides-core` route through
//! this module unconditionally and carry no `cfg` of their own.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::modular::{Modulus, ShoupPrecomp};

/// Tri-state kill-switch cache: 0 = unresolved, 1 = on, 2 = off.
static SIMD_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the 4-lane slab path is active.
///
/// `false` whenever the crate was built without the `simd` feature. With the
/// feature, defaults to `true` unless the environment sets `FIDES_SIMD=0`
/// (read once, then cached) or [`set_simd_enabled`] forced a value.
#[inline]
pub fn simd_enabled() -> bool {
    if !cfg!(feature = "simd") {
        return false;
    }
    match SIMD_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("FIDES_SIMD").map_or(true, |v| v != "0");
            SIMD_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the slab path on/off in-process (`Some`), or resets to the
/// `FIDES_SIMD` environment default (`None`).
///
/// Used by the kernel benchmark to time both paths in one process and by the
/// determinism suites to sweep the simd axis. A `Some(true)` still yields a
/// scalar run when the `simd` feature is not compiled in.
pub fn set_simd_enabled(v: Option<bool>) {
    let state = match v {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    SIMD_STATE.store(state, Ordering::Relaxed);
}

/// Loads a 4-element window as a lane array.
#[cfg(feature = "simd")]
#[inline(always)]
fn lanes(s: &[u64]) -> [u64; 4] {
    [s[0], s[1], s[2], s[3]]
}

/// `out[i] = a[i] + b[i] mod p`.
pub fn add_into(m: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(a.len() == b.len() && a.len() == out.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut co = out.chunks_exact_mut(4);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for ((xo, xa), xb) in (&mut co).zip(&mut ca).zip(&mut cb) {
            xo.copy_from_slice(&m.add_mod_x4(lanes(xa), lanes(xb)));
        }
        let to = co.into_remainder();
        for ((o, &x), &y) in to.iter_mut().zip(ca.remainder()).zip(cb.remainder()) {
            *o = m.add_mod(x, y);
        }
        return;
    }
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = m.add_mod(x, y);
    }
}

/// `a[i] += b[i] mod p`.
pub fn add_assign(m: &Modulus, a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut ca = a.chunks_exact_mut(4);
        let mut cb = b.chunks_exact(4);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            let r = m.add_mod_x4(lanes(xa), lanes(xb));
            xa.copy_from_slice(&r);
        }
        for (x, &y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
            *x = m.add_mod(*x, y);
        }
        return;
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x = m.add_mod(*x, y);
    }
}

/// `out[i] = a[i] - b[i] mod p`.
pub fn sub_into(m: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(a.len() == b.len() && a.len() == out.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut co = out.chunks_exact_mut(4);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for ((xo, xa), xb) in (&mut co).zip(&mut ca).zip(&mut cb) {
            xo.copy_from_slice(&m.sub_mod_x4(lanes(xa), lanes(xb)));
        }
        let to = co.into_remainder();
        for ((o, &x), &y) in to.iter_mut().zip(ca.remainder()).zip(cb.remainder()) {
            *o = m.sub_mod(x, y);
        }
        return;
    }
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = m.sub_mod(x, y);
    }
}

/// `a[i] -= b[i] mod p`.
pub fn sub_assign(m: &Modulus, a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut ca = a.chunks_exact_mut(4);
        let mut cb = b.chunks_exact(4);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            let r = m.sub_mod_x4(lanes(xa), lanes(xb));
            xa.copy_from_slice(&r);
        }
        for (x, &y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
            *x = m.sub_mod(*x, y);
        }
        return;
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x = m.sub_mod(*x, y);
    }
}

/// `out[i] = a[i] * b[i] mod p` (Barrett).
pub fn mul_into(m: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(a.len() == b.len() && a.len() == out.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut co = out.chunks_exact_mut(4);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for ((xo, xa), xb) in (&mut co).zip(&mut ca).zip(&mut cb) {
            xo.copy_from_slice(&m.mul_mod_x4(lanes(xa), lanes(xb)));
        }
        let to = co.into_remainder();
        for ((o, &x), &y) in to.iter_mut().zip(ca.remainder()).zip(cb.remainder()) {
            *o = m.mul_mod(x, y);
        }
        return;
    }
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = m.mul_mod(x, y);
    }
}

/// `a[i] *= b[i] mod p` (Barrett).
pub fn mul_assign(m: &Modulus, a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut ca = a.chunks_exact_mut(4);
        let mut cb = b.chunks_exact(4);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            let r = m.mul_mod_x4(lanes(xa), lanes(xb));
            xa.copy_from_slice(&r);
        }
        for (x, &y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
            *x = m.mul_mod(*x, y);
        }
        return;
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x = m.mul_mod(*x, y);
    }
}

/// `acc[i] = a[i] * b[i] + acc[i] mod p` — the key-switch inner-product slab.
pub fn mul_add_assign(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    assert!(acc.len() == a.len() && a.len() == b.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut cc = acc.chunks_exact_mut(4);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for ((xc, xa), xb) in (&mut cc).zip(&mut ca).zip(&mut cb) {
            let r = m.mul_add_mod_x4(lanes(xa), lanes(xb), lanes(xc));
            xc.copy_from_slice(&r);
        }
        let tc = cc.into_remainder();
        for ((x, &y), &z) in tc.iter_mut().zip(ca.remainder()).zip(cb.remainder()) {
            *x = m.mul_add_mod(y, z, *x);
        }
        return;
    }
    for ((x, &y), &z) in acc.iter_mut().zip(a).zip(b) {
        *x = m.mul_add_mod(y, z, *x);
    }
}

/// `a[i] *= c mod p` for a runtime scalar `c` already in `[0, p)` (Barrett).
pub fn scalar_mul_assign(m: &Modulus, a: &mut [u64], c: u64) {
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let c4 = [c; 4];
        let mut ca = a.chunks_exact_mut(4);
        for xa in &mut ca {
            let r = m.mul_mod_x4(lanes(xa), c4);
            xa.copy_from_slice(&r);
        }
        for x in ca.into_remainder().iter_mut() {
            *x = m.mul_mod(*x, c);
        }
        return;
    }
    for x in a.iter_mut() {
        *x = m.mul_mod(*x, c);
    }
}

/// `a[i] += c mod p` for a scalar `c` already in `[0, p)`.
pub fn scalar_add_assign(m: &Modulus, a: &mut [u64], c: u64) {
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let c4 = [c; 4];
        let mut ca = a.chunks_exact_mut(4);
        for xa in &mut ca {
            let r = m.add_mod_x4(lanes(xa), c4);
            xa.copy_from_slice(&r);
        }
        for x in ca.into_remainder().iter_mut() {
            *x = m.add_mod(*x, c);
        }
        return;
    }
    for x in a.iter_mut() {
        *x = m.add_mod(*x, c);
    }
}

/// `a[i] = -a[i] mod p`.
pub fn neg_assign(m: &Modulus, a: &mut [u64]) {
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut ca = a.chunks_exact_mut(4);
        for xa in &mut ca {
            let r = m.neg_mod_x4(lanes(xa));
            xa.copy_from_slice(&r);
        }
        for x in ca.into_remainder().iter_mut() {
            *x = m.neg_mod(*x);
        }
        return;
    }
    for x in a.iter_mut() {
        *x = m.neg_mod(*x);
    }
}

/// `x[i] = w * x[i] mod p` for a Shoup-precomputed constant `w` — the
/// twiddle/`N^{-1}`/base-conversion scaling slab.
pub fn shoup_mul_assign(m: &Modulus, w: &ShoupPrecomp, x: &mut [u64]) {
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut cx = x.chunks_exact_mut(4);
        for xa in &mut cx {
            let r = w.mul_x4(lanes(xa), m);
            xa.copy_from_slice(&r);
        }
        for v in cx.into_remainder().iter_mut() {
            *v = w.mul(*v, m);
        }
        return;
    }
    for v in x.iter_mut() {
        *v = w.mul(*v, m);
    }
}

/// `out[i] = w * x[i] mod p` for a Shoup-precomputed constant `w`.
pub fn shoup_mul_into(m: &Modulus, w: &ShoupPrecomp, x: &[u64], out: &mut [u64]) {
    assert_eq!(x.len(), out.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut co = out.chunks_exact_mut(4);
        let mut cx = x.chunks_exact(4);
        for (xo, xa) in (&mut co).zip(&mut cx) {
            xo.copy_from_slice(&w.mul_x4(lanes(xa), m));
        }
        for (o, &v) in co.into_remainder().iter_mut().zip(cx.remainder()) {
            *o = w.mul(v, m);
        }
        return;
    }
    for (o, &v) in out.iter_mut().zip(x) {
        *o = w.mul(v, m);
    }
}

/// `x[i] = w * (x[i] - c[i]) mod p` — the fused Rescale/ModDown tail
/// (subtract the switched last-limb contribution, then multiply by the
/// Shoup-precomputed `q_last^{-1}`).
pub fn sub_shoup_mul_assign(m: &Modulus, w: &ShoupPrecomp, x: &mut [u64], c: &[u64]) {
    assert_eq!(x.len(), c.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut cx = x.chunks_exact_mut(4);
        let mut cc = c.chunks_exact(4);
        for (xa, xc) in (&mut cx).zip(&mut cc) {
            let r = w.mul_x4(m.sub_mod_x4(lanes(xa), lanes(xc)), m);
            xa.copy_from_slice(&r);
        }
        for (x, &y) in cx.into_remainder().iter_mut().zip(cc.remainder()) {
            *x = w.mul(m.sub_mod(*x, y), m);
        }
        return;
    }
    for (x, &y) in x.iter_mut().zip(c) {
        *x = w.mul(m.sub_mod(*x, y), m);
    }
}

/// One Cooley–Tukey butterfly group: `lo`/`hi` are the two half-group slices,
/// `w` the group twiddle. Per pair: `v = w·hi; (lo, hi) = (lo + v, lo - v)`.
///
/// Processes 4 coefficient pairs per step on the slab path; groups shorter
/// than 4 pairs (the last `log2(4)` stages) fall through to the scalar tail.
pub fn ct_butterfly(m: &Modulus, w: &ShoupPrecomp, lo: &mut [u64], hi: &mut [u64]) {
    assert_eq!(lo.len(), hi.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut cl = lo.chunks_exact_mut(4);
        let mut ch = hi.chunks_exact_mut(4);
        for (xl, xh) in (&mut cl).zip(&mut ch) {
            let u = lanes(xl);
            let v = w.mul_x4(lanes(xh), m);
            xl.copy_from_slice(&m.add_mod_x4(u, v));
            xh.copy_from_slice(&m.sub_mod_x4(u, v));
        }
        let tl = cl.into_remainder();
        let th = ch.into_remainder();
        for (l, h) in tl.iter_mut().zip(th.iter_mut()) {
            let u = *l;
            let v = w.mul(*h, m);
            *l = m.add_mod(u, v);
            *h = m.sub_mod(u, v);
        }
        return;
    }
    for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
        let u = *l;
        let v = w.mul(*h, m);
        *l = m.add_mod(u, v);
        *h = m.sub_mod(u, v);
    }
}

/// One Gentleman–Sande butterfly group. Per pair:
/// `(lo, hi) = (lo + hi, w·(lo - hi))`.
pub fn gs_butterfly(m: &Modulus, w: &ShoupPrecomp, lo: &mut [u64], hi: &mut [u64]) {
    assert_eq!(lo.len(), hi.len());
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let mut cl = lo.chunks_exact_mut(4);
        let mut ch = hi.chunks_exact_mut(4);
        for (xl, xh) in (&mut cl).zip(&mut ch) {
            let u = lanes(xl);
            let v = lanes(xh);
            xl.copy_from_slice(&m.add_mod_x4(u, v));
            xh.copy_from_slice(&w.mul_x4(m.sub_mod_x4(u, v), m));
        }
        let tl = cl.into_remainder();
        let th = ch.into_remainder();
        for (l, h) in tl.iter_mut().zip(th.iter_mut()) {
            let u = *l;
            let v = *h;
            *l = m.add_mod(u, v);
            *h = w.mul(m.sub_mod(u, v), m);
        }
        return;
    }
    for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
        let u = *l;
        let v = *h;
        *l = m.add_mod(u, v);
        *h = w.mul(m.sub_mod(u, v), m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(n: usize, p: u64, seed: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s % p
            })
            .collect()
    }

    /// Odd lengths exercise the scalar tail; the slab and scalar paths must
    /// agree bit for bit regardless of the kill-switch state.
    #[test]
    fn slabs_match_scalar_loops_including_tails() {
        let m = Modulus::new(4611686018326724609);
        let p = m.value();
        for n in [0usize, 1, 3, 4, 7, 64, 65] {
            let a = poly(n, p, 0x11 + n as u64);
            let b = poly(n, p, 0x22 + n as u64);
            let w = ShoupPrecomp::new(a.first().copied().unwrap_or(5), &m);

            for &force in &[Some(false), Some(true)] {
                set_simd_enabled(force);
                let mut out = vec![0u64; n];
                mul_into(&m, &a, &b, &mut out);
                for i in 0..n {
                    assert_eq!(out[i], m.mul_mod(a[i], b[i]));
                }
                let mut acc = a.clone();
                mul_add_assign(&m, &mut acc, &a, &b);
                for i in 0..n {
                    assert_eq!(acc[i], m.mul_add_mod(a[i], b[i], a[i]));
                }
                let mut x = a.clone();
                sub_shoup_mul_assign(&m, &w, &mut x, &b);
                for i in 0..n {
                    assert_eq!(x[i], w.mul(m.sub_mod(a[i], b[i]), &m));
                }
            }
            set_simd_enabled(None);
        }
    }

    #[test]
    fn kill_switch_states() {
        set_simd_enabled(Some(true));
        assert_eq!(simd_enabled(), cfg!(feature = "simd"));
        set_simd_enabled(Some(false));
        assert!(!simd_enabled());
        set_simd_enabled(None);
        let _ = simd_enabled(); // resolves from the environment without panicking
        set_simd_enabled(None);
    }
}
