//! Dense polynomial operations over `Z_q[X]/(X^N + 1)`.
//!
//! These are the elementwise and permutation primitives that FIDESlib's
//! elementwise / automorphism GPU kernels compute; the server library wraps
//! them in simulated kernel launches. Everything operates on plain `&[u64]`
//! residue slices so a single limb is exactly one contiguous device buffer.

use crate::modular::Modulus;
use crate::ntt::reverse_bits;

/// Elementwise slice operations under a common modulus.
///
/// Implemented for [`Modulus`] so call sites read
/// `modulus.add_slices(a, b, out)`.
pub trait PolyOps {
    /// `out[i] = a[i] + b[i] mod p`.
    fn add_slices(&self, a: &[u64], b: &[u64], out: &mut [u64]);
    /// `a[i] += b[i] mod p`.
    fn add_assign_slices(&self, a: &mut [u64], b: &[u64]);
    /// `out[i] = a[i] - b[i] mod p`.
    fn sub_slices(&self, a: &[u64], b: &[u64], out: &mut [u64]);
    /// `a[i] -= b[i] mod p`.
    fn sub_assign_slices(&self, a: &mut [u64], b: &[u64]);
    /// `out[i] = a[i] * b[i] mod p`.
    fn mul_slices(&self, a: &[u64], b: &[u64], out: &mut [u64]);
    /// `a[i] *= b[i] mod p`.
    fn mul_assign_slices(&self, a: &mut [u64], b: &[u64]);
    /// `a[i] = a[i] * b[i] + c[i] mod p` (dot-product-fusion building block).
    fn mul_add_assign_slices(&self, acc: &mut [u64], a: &[u64], b: &[u64]);
    /// `a[i] *= c mod p`.
    fn scalar_mul_assign(&self, a: &mut [u64], c: u64);
    /// `a[i] += c mod p`.
    fn scalar_add_assign(&self, a: &mut [u64], c: u64);
    /// `a[i] = -a[i] mod p`.
    fn neg_assign(&self, a: &mut [u64]);
}

// Every elementwise loop routes through the `simd` slab module, which holds
// both the scalar reference loop and (behind the `simd` feature +
// `FIDES_SIMD` kill-switch) the bit-identical `u64x4` slab form.
impl PolyOps for Modulus {
    #[inline]
    fn add_slices(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        crate::simd::add_into(self, a, b, out);
    }

    #[inline]
    fn add_assign_slices(&self, a: &mut [u64], b: &[u64]) {
        crate::simd::add_assign(self, a, b);
    }

    #[inline]
    fn sub_slices(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        crate::simd::sub_into(self, a, b, out);
    }

    #[inline]
    fn sub_assign_slices(&self, a: &mut [u64], b: &[u64]) {
        crate::simd::sub_assign(self, a, b);
    }

    #[inline]
    fn mul_slices(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        crate::simd::mul_into(self, a, b, out);
    }

    #[inline]
    fn mul_assign_slices(&self, a: &mut [u64], b: &[u64]) {
        crate::simd::mul_assign(self, a, b);
    }

    #[inline]
    fn mul_add_assign_slices(&self, acc: &mut [u64], a: &[u64], b: &[u64]) {
        crate::simd::mul_add_assign(self, acc, a, b);
    }

    #[inline]
    fn scalar_mul_assign(&self, a: &mut [u64], c: u64) {
        let c = self.reduce_u64(c);
        crate::simd::scalar_mul_assign(self, a, c);
    }

    #[inline]
    fn scalar_add_assign(&self, a: &mut [u64], c: u64) {
        let c = self.reduce_u64(c);
        crate::simd::scalar_add_assign(self, a, c);
    }

    #[inline]
    fn neg_assign(&self, a: &mut [u64]) {
        crate::simd::neg_assign(self, a);
    }
}

/// Schoolbook negacyclic multiplication in `O(N^2)` — the reference the NTT
/// path is validated against.
#[allow(clippy::needless_range_loop)] // the index arithmetic IS the algorithm here
pub fn negacyclic_schoolbook_mul(a: &[u64], b: &[u64], modulus: &Modulus) -> Vec<u64> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut out = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            let prod = modulus.mul_mod(a[i], b[j]);
            let k = i + j;
            if k < n {
                out[k] = modulus.add_mod(out[k], prod);
            } else {
                out[k - n] = modulus.sub_mod(out[k - n], prod);
            }
        }
    }
    out
}

/// Applies the Galois automorphism `X → X^g` to a **coefficient-domain**
/// polynomial: coefficient `a_i` moves to position `i·g mod 2N`, negated when
/// the destination wraps past `N` (because `X^N = −1`).
///
/// `g` must be odd (a unit of `Z_{2N}`).
pub fn automorphism_coeff(a: &[u64], g: usize, modulus: &Modulus, out: &mut [u64]) {
    let n = a.len();
    assert_eq!(out.len(), n);
    assert!(n.is_power_of_two());
    assert!(g % 2 == 1, "galois element must be odd");
    let two_n = 2 * n;
    let mask = two_n - 1;
    for (i, &c) in a.iter().enumerate() {
        let j = (i * g) & mask;
        if j < n {
            out[j] = c;
        } else {
            out[j - n] = modulus.neg_mod(c);
        }
    }
}

/// Builds the index permutation implementing the automorphism `X → X^g`
/// directly on a **bit-reversed evaluation-domain** (NTT-form) polynomial:
/// `out[i] = in[perm[i]]`, no sign corrections needed.
///
/// The forward NTT stores `p(ψ^{2·brv(i)+1})` at index `i`; the automorphism
/// permutes evaluation points `ψ^e → ψ^{e·g}`.
pub fn build_eval_permutation(n: usize, g: usize) -> Vec<u32> {
    assert!(n.is_power_of_two());
    assert!(g % 2 == 1, "galois element must be odd");
    let log_n = n.trailing_zeros();
    let two_n = 2 * n;
    let mask = two_n - 1;
    (0..n)
        .map(|i| {
            let e = 2 * reverse_bits(i, log_n) + 1;
            let src_e = (e * g) & mask; // odd × odd stays odd
            reverse_bits((src_e - 1) / 2, log_n) as u32
        })
        .collect()
}

/// Applies a precomputed evaluation-domain automorphism permutation.
pub fn automorphism_eval(a: &[u64], perm: &[u32], out: &mut [u64]) {
    assert!(a.len() == perm.len() && a.len() == out.len());
    for (o, &src) in out.iter_mut().zip(perm) {
        *o = a[src as usize];
    }
}

/// Centered modulus switch of a single residue: reinterprets `v ∈ [0, q_from)`
/// as a centered integer in `(−q_from/2, q_from/2]` and reduces it modulo
/// `q_to`. Used by Rescale and ModDown (the paper's `SwitchModulo` fused into
/// the NTT kernels).
#[inline]
pub fn switch_modulus_centered(v: u64, q_from: &Modulus, q_to: &Modulus) -> u64 {
    if v > q_from.value() / 2 {
        // v represents the negative value v - q_from.
        q_to.sub_mod(0, q_to.reduce_u64(q_from.value() - v))
    } else {
        q_to.reduce_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::NttTable;
    use crate::prime::generate_ntt_primes;

    fn setup(log_n: u32) -> (NttTable, Vec<u64>) {
        let n = 1usize << log_n;
        let p = generate_ntt_primes(40, 1, n)[0];
        let t = NttTable::new(n, Modulus::new(p));
        let mut s = 0x1234_5678u64;
        let a = (0..n)
            .map(|_| {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                s % p
            })
            .collect();
        (t, a)
    }

    #[test]
    fn elementwise_ops() {
        let m = Modulus::new(97);
        let a = vec![10u64, 96, 0, 50];
        let b = vec![90u64, 1, 0, 47];
        let mut out = vec![0u64; 4];
        m.add_slices(&a, &b, &mut out);
        assert_eq!(out, vec![3, 0, 0, 0]);
        m.sub_slices(&a, &b, &mut out);
        assert_eq!(out, vec![17, 95, 0, 3]);
        m.mul_slices(&a, &b, &mut out);
        assert_eq!(out, vec![900 % 97, 96, 0, 50 * 47 % 97]);
        let mut acc = vec![1u64, 1, 1, 1];
        m.mul_add_assign_slices(&mut acc, &a, &b);
        assert_eq!(acc, vec![900 % 97 + 1, 0, 1, (50 * 47 + 1) % 97]);
    }

    #[test]
    fn scalar_ops_reduce_input() {
        let m = Modulus::new(97);
        let mut a = vec![5u64, 96];
        m.scalar_mul_assign(&mut a, 97 + 2);
        assert_eq!(a, vec![10, 95]);
        m.scalar_add_assign(&mut a, 97 + 3);
        assert_eq!(a, vec![13, 1]);
        m.neg_assign(&mut a);
        assert_eq!(a, vec![84, 96]);
    }

    #[test]
    fn coeff_automorphism_matches_direct_substitution() {
        // Verify on a tiny case by evaluating the polynomial.
        let m = Modulus::new(97);
        let a = vec![1u64, 2, 3, 4]; // 1 + 2X + 3X^2 + 4X^3, N=4
        let mut out = vec![0u64; 4];
        automorphism_coeff(&a, 3, &m, &mut out);
        // X -> X^3: 1 + 2X^3 + 3X^6 + 4X^9 = 1 + 2X^3 - 3X^2 + 4X (mod X^4+1)
        assert_eq!(out, vec![1, 4, 97 - 3, 2]);
    }

    #[test]
    fn eval_automorphism_matches_coeff_path() {
        let (t, a) = setup(6);
        let m = *t.modulus();
        let n = t.n();
        for g in [3usize, 5, 2 * n - 1, 5usize.pow(3) % (2 * n)] {
            // Reference: iNTT -> coeff automorphism -> NTT.
            let mut coeff = a.clone();
            t.inverse_inplace(&mut coeff);
            let mut auto_coeff = vec![0u64; n];
            automorphism_coeff(&coeff, g, &m, &mut auto_coeff);
            t.forward_inplace(&mut auto_coeff);
            // Fast path: permutation in eval domain.
            let perm = build_eval_permutation(n, g);
            let mut auto_eval = vec![0u64; n];
            automorphism_eval(&a, &perm, &mut auto_eval);
            assert_eq!(auto_eval, auto_coeff, "g={g}");
        }
    }

    #[test]
    fn automorphism_composition() {
        let (t, a) = setup(5);
        let n = t.n();
        let p5 = build_eval_permutation(n, 5);
        let p25 = build_eval_permutation(n, 25 % (2 * n));
        let mut once = vec![0u64; n];
        let mut twice = vec![0u64; n];
        let mut direct = vec![0u64; n];
        automorphism_eval(&a, &p5, &mut once);
        automorphism_eval(&once, &p5, &mut twice);
        automorphism_eval(&a, &p25, &mut direct);
        assert_eq!(twice, direct);
    }

    #[test]
    fn switch_modulus_centered_is_signed_reduction() {
        let q_from = Modulus::new(1009);
        let q_to = Modulus::new(97);
        for v in 0..1009u64 {
            let signed = q_from.to_centered_i64(v);
            assert_eq!(
                switch_modulus_centered(v, &q_from, &q_to),
                q_to.from_i64(signed)
            );
        }
    }

    #[test]
    fn schoolbook_identity() {
        let m = Modulus::new(97);
        let mut one = vec![0u64; 8];
        one[0] = 1;
        let a = vec![5u64, 6, 7, 8, 9, 10, 11, 12];
        assert_eq!(negacyclic_schoolbook_mul(&a, &one, &m), a);
    }

    #[test]
    fn schoolbook_x_times_x_pow_nm1_is_minus_one() {
        let m = Modulus::new(97);
        let n = 8;
        let mut x = vec![0u64; n];
        x[1] = 1;
        let mut xn1 = vec![0u64; n];
        xn1[n - 1] = 1;
        let prod = negacyclic_schoolbook_mul(&x, &xn1, &m);
        let mut expect = vec![0u64; n];
        expect[0] = 96; // -1
        assert_eq!(prod, expect);
    }
}
