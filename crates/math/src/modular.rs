//! Word-sized modular arithmetic.
//!
//! Implements the three fast modular reduction families compared in Table III
//! of the FIDESlib paper:
//!
//! * **Improved Barrett** reduction/multiplication — the library default,
//!   requiring no special operand encoding ([`Modulus::reduce_u128`],
//!   [`Modulus::mul_mod`]).
//! * **Shoup** multiplication — used when one operand is a precomputed
//!   constant, e.g. NTT twiddle factors ([`ShoupPrecomp`]).
//! * **Montgomery** reduction/multiplication — provided for the Table III
//!   ablation benchmark ([`MontgomeryOps`]).
//!
//! All moduli are odd primes `p < 2^62`, matching FIDESlib's word-sized RNS
//! limbs.

use serde::{Deserialize, Serialize};

/// An odd prime modulus `p < 2^62` with precomputed Barrett and Montgomery
/// constants.
///
/// The Barrett constant is `⌊2^128 / p⌋` stored as two 64-bit words; a 128-bit
/// value is reduced with three wide multiplications and at most one
/// conditional subtraction (the "improved Barrett" method of Shivdikar et
/// al. used by FIDESlib).
///
/// ```
/// use fides_math::Modulus;
/// let m = Modulus::new(0x7fff_ffff_e001); // say, some NTT prime
/// assert_eq!(m.mul_mod(12345, 67890), (12345u128 * 67890 % m.value() as u128) as u64);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Modulus {
    value: u64,
    /// `⌊2^128 / value⌋` as (low, high) words.
    ratio: (u64, u64),
    /// `-value^{-1} mod 2^64` (Montgomery).
    mont_neg_inv: u64,
    /// `2^128 mod value` (Montgomery conversion constant).
    mont_r2: u64,
    bits: u32,
}

impl Modulus {
    /// Creates a modulus with all reduction constants precomputed.
    ///
    /// # Panics
    ///
    /// Panics if `value` is even, less than 3, or not below `2^62`.
    pub fn new(value: u64) -> Self {
        assert!(value >= 3, "modulus must be at least 3");
        assert!(value % 2 == 1, "modulus must be odd");
        assert!(value < (1u64 << 62), "modulus must be below 2^62");
        let ratio128 = u128::MAX / value as u128; // == floor(2^128 / value) for odd value
        let ratio = (ratio128 as u64, (ratio128 >> 64) as u64);

        // Newton iteration for value^{-1} mod 2^64.
        let mut inv: u64 = value;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(value.wrapping_mul(inv)));
        }
        debug_assert_eq!(value.wrapping_mul(inv), 1);
        let mont_neg_inv = inv.wrapping_neg();
        let mont_r2 = ((u128::MAX % value as u128 + 1) % value as u128) as u64;
        let bits = 64 - value.leading_zeros();
        Self {
            value,
            ratio,
            mont_neg_inv,
            mont_r2,
            bits,
        }
    }

    /// The modulus value `p`.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits of `p`.
    #[inline(always)]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Reduces a full 128-bit value modulo `p` using improved Barrett
    /// reduction: one wide and two low multiplications, a single conditional
    /// subtraction.
    #[inline(always)]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        let p = self.value;
        let x0 = x as u64;
        let x1 = (x >> 64) as u64;
        let (r0, r1) = self.ratio;
        // q = floor(x * ratio / 2^128); only the low 64 bits of q are needed.
        let a_hi = ((x0 as u128 * r0 as u128) >> 64) as u64;
        let b = x0 as u128 * r1 as u128;
        let c = x1 as u128 * r0 as u128;
        let s1 = a_hi as u128 + (b as u64) as u128 + (c as u64) as u128;
        let q_lo = ((b >> 64) as u64)
            .wrapping_add((c >> 64) as u64)
            .wrapping_add((s1 >> 64) as u64)
            .wrapping_add(x1.wrapping_mul(r1));
        let r = x0.wrapping_sub(q_lo.wrapping_mul(p));
        if r >= p {
            r - p
        } else {
            r
        }
    }

    /// Reduces a 64-bit value modulo `p`.
    #[inline(always)]
    pub fn reduce_u64(&self, x: u64) -> u64 {
        if x < self.value {
            x
        } else {
            self.reduce_u128(x as u128)
        }
    }

    /// Modular addition of operands already in `[0, p)`.
    #[inline(always)]
    pub fn add_mod(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of operands already in `[0, p)`.
    #[inline(always)]
    pub fn sub_mod(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation of an operand already in `[0, p)`.
    #[inline(always)]
    pub fn neg_mod(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Barrett modular multiplication: two wide plus one low multiplication.
    #[inline(always)]
    pub fn mul_mod(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Fused multiply-add `a * b + c mod p`.
    #[inline(always)]
    pub fn mul_add_mod(&self, a: u64, b: u64, c: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Modular exponentiation by square-and-multiply.
    pub fn pow_mod(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.reduce_u64(base);
        let mut acc: u64 = 1;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul_mod(acc, base);
            }
            base = self.mul_mod(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse via Fermat's little theorem (`p` must be prime).
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0 (mod p)`, which has no inverse.
    pub fn inv_mod(&self, a: u64) -> u64 {
        let a = self.reduce_u64(a);
        assert!(a != 0, "zero has no modular inverse");
        let inv = self.pow_mod(a, self.value - 2);
        debug_assert_eq!(self.mul_mod(a, inv), 1);
        inv
    }

    /// Converts a signed value to its canonical residue in `[0, p)`.
    #[inline(always)]
    pub fn from_i64(&self, v: i64) -> u64 {
        if v >= 0 {
            self.reduce_u64(v as u64)
        } else {
            let r = self.reduce_u64(v.unsigned_abs());
            self.neg_mod(r)
        }
    }

    /// Interprets a residue in `[0, p)` as a centered signed value in
    /// `(-p/2, p/2]`.
    #[inline(always)]
    pub fn to_centered_i64(&self, v: u64) -> i64 {
        debug_assert!(v < self.value);
        if v > self.value / 2 {
            -((self.value - v) as i64)
        } else {
            v as i64
        }
    }

    /// Four-lane [`Self::reduce_u128`]: the identical improved-Barrett
    /// reduction applied independently per lane, with the final conditional
    /// subtraction expressed branchlessly so the four lanes stay straight-line
    /// code the autovectorizer can fuse. Bit-identical to the scalar form.
    #[inline(always)]
    pub fn reduce_u128_x4(&self, x: [u128; 4]) -> [u64; 4] {
        let p = self.value;
        let (r0, r1) = self.ratio;
        let mut out = [0u64; 4];
        for l in 0..4 {
            let x0 = x[l] as u64;
            let x1 = (x[l] >> 64) as u64;
            let a_hi = ((x0 as u128 * r0 as u128) >> 64) as u64;
            let b = x0 as u128 * r1 as u128;
            let c = x1 as u128 * r0 as u128;
            let s1 = a_hi as u128 + (b as u64) as u128 + (c as u64) as u128;
            let q_lo = ((b >> 64) as u64)
                .wrapping_add((c >> 64) as u64)
                .wrapping_add((s1 >> 64) as u64)
                .wrapping_add(x1.wrapping_mul(r1));
            let r = x0.wrapping_sub(q_lo.wrapping_mul(p));
            out[l] = csub(r, p);
        }
        out
    }

    /// Four-lane [`Self::add_mod`] (operands already in `[0, p)`).
    #[inline(always)]
    pub fn add_mod_x4(&self, a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
        let p = self.value;
        let mut out = [0u64; 4];
        for l in 0..4 {
            debug_assert!(a[l] < p && b[l] < p);
            out[l] = csub(a[l] + b[l], p);
        }
        out
    }

    /// Four-lane [`Self::sub_mod`] (operands already in `[0, p)`).
    #[inline(always)]
    pub fn sub_mod_x4(&self, a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
        let p = self.value;
        let mut out = [0u64; 4];
        for l in 0..4 {
            debug_assert!(a[l] < p && b[l] < p);
            // `a - b`, lending `p` back when the subtraction borrows — the
            // branchless twin of the scalar `if a >= b` form.
            let d = a[l].wrapping_sub(b[l]);
            out[l] = d.wrapping_add(((a[l] < b[l]) as u64).wrapping_neg() & p);
        }
        out
    }

    /// Four-lane [`Self::neg_mod`] (operands already in `[0, p)`).
    #[inline(always)]
    pub fn neg_mod_x4(&self, a: [u64; 4]) -> [u64; 4] {
        let p = self.value;
        let mut out = [0u64; 4];
        for l in 0..4 {
            debug_assert!(a[l] < p);
            out[l] = (p - a[l]) & ((a[l] != 0) as u64).wrapping_neg();
        }
        out
    }

    /// Four-lane Barrett [`Self::mul_mod`].
    #[inline(always)]
    pub fn mul_mod_x4(&self, a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
        let mut wide = [0u128; 4];
        for l in 0..4 {
            wide[l] = a[l] as u128 * b[l] as u128;
        }
        self.reduce_u128_x4(wide)
    }

    /// Four-lane fused multiply-add [`Self::mul_add_mod`]:
    /// `a[l] * b[l] + c[l] mod p` per lane.
    #[inline(always)]
    pub fn mul_add_mod_x4(&self, a: [u64; 4], b: [u64; 4], c: [u64; 4]) -> [u64; 4] {
        let mut wide = [0u128; 4];
        for l in 0..4 {
            wide[l] = a[l] as u128 * b[l] as u128 + c[l] as u128;
        }
        self.reduce_u128_x4(wide)
    }
}

/// Branchless conditional subtraction: `if r >= p { r - p } else { r }`.
///
/// Same bits as the branchy form for every input; the mask shape is what lets
/// the compiler keep four lanes in flight without a cmov per lane.
#[inline(always)]
fn csub(r: u64, p: u64) -> u64 {
    r.wrapping_sub(((r >= p) as u64).wrapping_neg() & p)
}

/// Shoup precomputation for multiplying by a fixed constant `w < p`.
///
/// Shoup multiplication trades one wide multiplication for two low ones
/// (Table III), which is profitable when the same constant multiplies many
/// elements — exactly the NTT twiddle-factor pattern FIDESlib exploits.
///
/// ```
/// use fides_math::{Modulus, ShoupPrecomp};
/// let m = Modulus::new(998244353);
/// let w = ShoupPrecomp::new(12345, &m);
/// assert_eq!(w.mul(67890, &m), m.mul_mod(12345, 67890));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShoupPrecomp {
    /// The constant operand `w`.
    pub operand: u64,
    /// `⌊w · 2^64 / p⌋`.
    pub quotient: u64,
}

impl ShoupPrecomp {
    /// Precomputes the Shoup quotient for constant `w` (must satisfy `w < p`).
    #[inline]
    pub fn new(w: u64, modulus: &Modulus) -> Self {
        debug_assert!(w < modulus.value());
        let quotient = (((w as u128) << 64) / modulus.value() as u128) as u64;
        Self {
            operand: w,
            quotient,
        }
    }

    /// Multiplies `x` (any `u64`) by the stored constant modulo `p` with one
    /// wide and two low multiplications.
    #[inline(always)]
    pub fn mul(&self, x: u64, modulus: &Modulus) -> u64 {
        let p = modulus.value();
        let q = ((self.quotient as u128 * x as u128) >> 64) as u64;
        let r = self.operand.wrapping_mul(x).wrapping_sub(q.wrapping_mul(p));
        if r >= p {
            r - p
        } else {
            r
        }
    }

    /// Four-lane [`Self::mul`]: the same Shoup multiplication per lane
    /// (accepting any `u64` per lane, like the scalar form), branchless final
    /// subtraction. Bit-identical to four scalar calls.
    #[inline(always)]
    pub fn mul_x4(&self, x: [u64; 4], modulus: &Modulus) -> [u64; 4] {
        let p = modulus.value();
        let mut out = [0u64; 4];
        for l in 0..4 {
            let q = ((self.quotient as u128 * x[l] as u128) >> 64) as u64;
            let r = self
                .operand
                .wrapping_mul(x[l])
                .wrapping_sub(q.wrapping_mul(p));
            out[l] = csub(r, p);
        }
        out
    }
}

/// Montgomery-form modular operations, included for the Table III reduction
/// method comparison.
///
/// Operands must be converted into Montgomery form ([`MontgomeryOps::to_mont`])
/// before multiplying, which is why FIDESlib prefers Barrett as the default.
#[derive(Clone, Copy, Debug)]
pub struct MontgomeryOps<'a> {
    modulus: &'a Modulus,
}

impl<'a> MontgomeryOps<'a> {
    /// Wraps a modulus for Montgomery-domain computation.
    pub fn new(modulus: &'a Modulus) -> Self {
        Self { modulus }
    }

    /// REDC: reduces `t < p·2^64` to `t · 2^{-64} mod p`.
    #[inline(always)]
    pub fn redc(&self, t: u128) -> u64 {
        let p = self.modulus.value();
        let m = (t as u64).wrapping_mul(self.modulus.mont_neg_inv);
        let u = ((t + m as u128 * p as u128) >> 64) as u64;
        if u >= p {
            u - p
        } else {
            u
        }
    }

    /// Converts into Montgomery form: `a · 2^64 mod p`.
    #[inline(always)]
    pub fn to_mont(&self, a: u64) -> u64 {
        self.redc(a as u128 * self.modulus.mont_r2 as u128)
    }

    /// Converts out of Montgomery form.
    #[inline(always)]
    pub fn from_mont(&self, a: u64) -> u64 {
        self.redc(a as u128)
    }

    /// Multiplies two Montgomery-form operands; result stays in Montgomery
    /// form. One wide plus one low multiplication (Table III).
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.redc(a as u128 * b as u128)
    }

    /// Four-lane [`Self::redc`]: identical REDC per lane, branchless final
    /// subtraction. Bit-identical to four scalar calls.
    #[inline(always)]
    pub fn redc_x4(&self, t: [u128; 4]) -> [u64; 4] {
        let p = self.modulus.value();
        let neg_inv = self.modulus.mont_neg_inv;
        let mut out = [0u64; 4];
        for l in 0..4 {
            let m = (t[l] as u64).wrapping_mul(neg_inv);
            let u = ((t[l] + m as u128 * p as u128) >> 64) as u64;
            out[l] = csub(u, p);
        }
        out
    }

    /// Four-lane Montgomery [`Self::mul`].
    #[inline(always)]
    pub fn mul_x4(&self, a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
        let mut wide = [0u128; 4];
        for l in 0..4 {
            wide[l] = a[l] as u128 * b[l] as u128;
        }
        self.redc_x4(wide)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRIMES: &[u64] = &[
        998244353,             // 2^23 NTT prime
        0x1fff_ffff_ffb4_0001, // 61-bit
        (1u64 << 61) - 1,      // Mersenne 61 (prime)
        4611686018326724609,   // 62-bit NTT-friendly
        65537,
        3,
    ];

    #[test]
    fn barrett_reduce_matches_division() {
        for &p in PRIMES {
            let m = Modulus::new(p);
            let samples: Vec<u128> = vec![
                0,
                1,
                p as u128 - 1,
                p as u128,
                p as u128 + 1,
                (p as u128) * (p as u128) - 1,
                u128::MAX,
                u128::MAX - 1,
                1 << 64,
                (1 << 64) - 1,
                0xdead_beef_cafe_babe_1234_5678_9abc_def0,
            ];
            for x in samples {
                assert_eq!(m.reduce_u128(x), (x % p as u128) as u64, "p={p} x={x}");
            }
        }
    }

    #[test]
    fn mul_mod_matches_u128() {
        let mut state = 0x12345678_9abcdef0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &p in PRIMES {
            let m = Modulus::new(p);
            for _ in 0..2000 {
                let a = next() % p;
                let b = next() % p;
                assert_eq!(m.mul_mod(a, b), (a as u128 * b as u128 % p as u128) as u64);
            }
        }
    }

    #[test]
    fn shoup_matches_barrett() {
        let mut state = 0x0fedcba9_87654321u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for &p in PRIMES {
            let m = Modulus::new(p);
            for _ in 0..500 {
                let w = next() % p;
                let x = next() % p;
                let sp = ShoupPrecomp::new(w, &m);
                assert_eq!(sp.mul(x, &m), m.mul_mod(w, x), "p={p} w={w} x={x}");
            }
        }
    }

    #[test]
    fn shoup_accepts_full_range_x() {
        let m = Modulus::new(998244353);
        let sp = ShoupPrecomp::new(12345, &m);
        for x in [u64::MAX, u64::MAX - 1, 1u64 << 63] {
            assert_eq!(sp.mul(x, &m), m.mul_mod(12345, m.reduce_u64(x)));
        }
    }

    #[test]
    fn montgomery_roundtrip_and_mul() {
        for &p in PRIMES {
            let m = Modulus::new(p);
            let mont = MontgomeryOps::new(&m);
            for a in [0u64, 1, 2, p / 2, p - 1] {
                assert_eq!(mont.from_mont(mont.to_mont(a)), a);
                for b in [0u64, 1, p - 1, p / 3] {
                    let am = mont.to_mont(a);
                    let bm = mont.to_mont(b);
                    assert_eq!(mont.from_mont(mont.mul(am, bm)), m.mul_mod(a, b));
                }
            }
        }
    }

    #[test]
    fn add_sub_neg() {
        let m = Modulus::new(97);
        assert_eq!(m.add_mod(96, 96), 95);
        assert_eq!(m.sub_mod(0, 1), 96);
        assert_eq!(m.neg_mod(0), 0);
        assert_eq!(m.neg_mod(1), 96);
    }

    #[test]
    fn pow_and_inv() {
        let m = Modulus::new(998244353);
        assert_eq!(m.pow_mod(3, 0), 1);
        assert_eq!(m.pow_mod(3, 10), 59049);
        for a in [1u64, 2, 3, 12345, 998244352] {
            let inv = m.inv_mod(a);
            assert_eq!(m.mul_mod(a, inv), 1);
        }
    }

    #[test]
    fn signed_conversions_roundtrip() {
        let m = Modulus::new(1000003);
        for v in [-500001i64, -1, 0, 1, 500001] {
            assert_eq!(m.to_centered_i64(m.from_i64(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        Modulus::new(16);
    }

    #[test]
    #[should_panic(expected = "zero has no modular inverse")]
    fn inverse_of_zero_panics() {
        Modulus::new(97).inv_mod(0);
    }
}
