//! Hierarchical / 2D NTT.
//!
//! The GPU cannot hold a full limb (64–512 KB for `N ∈ 2^13..2^17`) in one
//! streaming multiprocessor's shared memory, so FIDESlib splits the Radix-2
//! transform into two blocked passes over `√N × √N` tiles (Fig. 3): each
//! element is touched by exactly two read/write round-trips to global memory
//! (four accesses total) instead of `log N`.
//!
//! [`Ntt2d`] reproduces this organization faithfully at the algorithmic level:
//! *pass 1* executes the first `log N − log N₂` Cooley–Tukey stages (the
//! strided "column" sub-FFTs, here materialized through an explicit gather so
//! each column tile is contiguous, mirroring the coalesced 32-byte
//! transactions of the kernel), and *pass 2* executes the remaining stages,
//! which are naturally contiguous. The output is bit-for-bit identical to
//! [`NttTable::forward_inplace`]; the GPU simulator charges it as two kernels
//! with the 4-accesses-per-element traffic of the paper.

use crate::modular::Modulus;
use crate::ntt::NttTable;

/// Two-pass hierarchical NTT driver built on top of an [`NttTable`].
#[derive(Clone, Debug)]
pub struct Ntt2d {
    table: NttTable,
    /// Stage index where pass 1 ends and pass 2 begins.
    split_stage: u32,
}

impl Ntt2d {
    /// Wraps `table`, splitting the stage sequence at `⌈log N / 2⌉` so both
    /// passes work on `≈ √N`-sized sub-FFTs as in the paper.
    pub fn new(table: NttTable) -> Self {
        let split_stage = table.log_n().div_ceil(2);
        Self { table, split_stage }
    }

    /// Wraps `table` with an explicit split point (number of stages executed
    /// in the first pass). Exposed for ablation benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `split_stage > log N`.
    pub fn with_split(table: NttTable, split_stage: u32) -> Self {
        assert!(split_stage <= table.log_n());
        Self { table, split_stage }
    }

    /// The underlying radix-2 tables.
    pub fn table(&self) -> &NttTable {
        &self.table
    }

    /// Number of butterfly stages executed by the first (strided) pass.
    pub fn split_stage(&self) -> u32 {
        self.split_stage
    }

    /// Convenience constructor from `(n, modulus)`.
    pub fn with_modulus(n: usize, modulus: Modulus) -> Self {
        Self::new(NttTable::new(n, modulus))
    }

    /// Executes only the first (column/strided) pass of the forward
    /// transform. Exposed so the simulator can charge the two passes as
    /// separate kernels.
    pub fn forward_pass1(&self, a: &mut [u64]) {
        self.table.forward_stages(a, 0, self.split_stage);
    }

    /// Executes only the second (row/contiguous) pass of the forward
    /// transform.
    pub fn forward_pass2(&self, a: &mut [u64]) {
        self.table
            .forward_stages(a, self.split_stage, self.table.log_n());
    }

    /// Full forward transform as the two hierarchical passes. Identical
    /// output to [`NttTable::forward_inplace`].
    pub fn forward_inplace(&self, a: &mut [u64]) {
        self.forward_pass1(a);
        self.forward_pass2(a);
    }

    /// First (contiguous) pass of the inverse transform.
    pub fn inverse_pass1(&self, a: &mut [u64]) {
        let split = self.table.log_n() - self.split_stage;
        self.table.inverse_stages(a, 0, split);
    }

    /// Second (strided) pass of the inverse transform, with the `N^{-1}`
    /// scaling fused in.
    pub fn inverse_pass2(&self, a: &mut [u64]) {
        let split = self.table.log_n() - self.split_stage;
        self.table.inverse_stages(a, split, self.table.log_n());
        let m = self.table.modulus();
        let n_inv = self.table.n_inv();
        for x in a.iter_mut() {
            *x = n_inv.mul(*x, m);
        }
    }

    /// Full inverse transform as the two hierarchical passes. Identical
    /// output to [`NttTable::inverse_inplace`].
    pub fn inverse_inplace(&self, a: &mut [u64]) {
        self.inverse_pass1(a);
        self.inverse_pass2(a);
    }

    /// Global-memory accesses per element charged by the cost model for one
    /// hierarchical transform: two passes × (read + write).
    pub const GLOBAL_ACCESSES_PER_ELEMENT: u32 = 4;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn setup(log_n: u32) -> (Ntt2d, Vec<u64>) {
        let n = 1usize << log_n;
        let p = generate_ntt_primes(45, 1, n)[0];
        let t = Ntt2d::with_modulus(n, Modulus::new(p));
        let mut state = 0x5eed_u64 + log_n as u64;
        let a = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state % p
            })
            .collect();
        (t, a)
    }

    #[test]
    fn matches_radix2_forward() {
        for log_n in [4u32, 7, 10, 12] {
            let (t, a) = setup(log_n);
            let mut two_pass = a.clone();
            let mut reference = a.clone();
            t.forward_inplace(&mut two_pass);
            t.table().forward_inplace(&mut reference);
            assert_eq!(two_pass, reference, "log_n={log_n}");
        }
    }

    #[test]
    fn roundtrip() {
        let (t, a) = setup(9);
        let mut x = a.clone();
        t.forward_inplace(&mut x);
        t.inverse_inplace(&mut x);
        assert_eq!(x, a);
    }

    #[test]
    fn staged_inverse_matches_radix2() {
        for log_n in [5u32, 8, 11] {
            let (t, a) = setup(log_n);
            let mut ours = a.clone();
            let mut reference = a.clone();
            t.inverse_pass1(&mut ours);
            t.inverse_pass2(&mut ours);
            t.table().inverse_inplace(&mut reference);
            assert_eq!(ours, reference, "log_n={log_n}");
        }
    }

    #[test]
    fn split_is_balanced() {
        let (t, _) = setup(11);
        assert_eq!(t.split_stage(), 6); // ceil(11/2)
        let (t, _) = setup(12);
        assert_eq!(t.split_stage(), 6);
    }

    #[test]
    fn custom_split_still_correct() {
        let n = 1usize << 8;
        let p = generate_ntt_primes(40, 1, n)[0];
        let table = NttTable::new(n, Modulus::new(p));
        for split in 0..=8u32 {
            let t = Ntt2d::with_split(table.clone(), split);
            let a: Vec<u64> = (0..n as u64).map(|i| i * 31 % p).collect();
            let mut x = a.clone();
            let mut reference = a.clone();
            t.forward_inplace(&mut x);
            table.forward_inplace(&mut reference);
            assert_eq!(x, reference, "split={split}");
        }
    }
}
