//! Admission control and per-tenant weighted fair scheduling.
//!
//! Two serving problems live here, both ahead of the batch scheduler:
//!
//! * **Bounded admission.** The request queue has a capacity; past it the
//!   server *load-sheds* — [`AdmissionQueue::push`] refuses the request
//!   and the caller surfaces
//!   [`ServeError::Overloaded`](crate::ServeError::Overloaded) with a
//!   backlog-drain estimate, instead of buffering without bound or
//!   blocking the submitting thread.
//! * **Weighted fairness.** Within the admitted backlog, batch ticks must
//!   not be monopolized by whichever tenant floods fastest. The queue
//!   keeps one lane per session and releases requests into a tick by
//!   **deficit round-robin**: each round of the rotation a lane earns
//!   `quantum × weight` credits and releases that many requests, so a
//!   tenant with 10× the arrival rate still gets only its weighted share
//!   of every tick while other lanes are non-empty — and full throughput
//!   the moment they drain (work-conserving).
//!
//! The scheduler only reorders *which* requests enter a tick; the batch
//! itself still executes as one merged graph, and CKKS kernels are
//! data-oblivious, so any admitted request's response frame is
//! bit-identical whichever tick serves it (the `qos` integration suite
//! asserts this against an unloaded serial run).

use std::collections::{HashMap, VecDeque};

/// How the admission queue orders requests into batch ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QosPolicy {
    /// Global arrival order — the default. A flooding tenant owns every
    /// tick until its burst drains, but arrival order keeps each
    /// tenant's request chain contiguous within a batch, which the
    /// planner's liveness pooling packs into markedly less device
    /// memory than an interleaved schedule.
    #[default]
    Fifo,
    /// Deficit round-robin across session lanes: the overload-fairness
    /// opt-in. Interleaves tenants within a tick (weighted shares), so
    /// a flood cannot starve quiet tenants — at the cost of looser
    /// buffer-liveness packing on heavily batched ticks.
    Drr {
        /// Requests a weight-1 lane may release per rotation round
        /// (≥ 1). Larger quanta trade per-tick fairness granularity for
        /// fewer rotation steps.
        quantum: u32,
    },
}

struct Lane<T> {
    items: VecDeque<T>,
    weight: u32,
    deficit: u64,
    /// Set when a full batch interrupted this lane mid-service: it
    /// resumes with its unspent credit and must not earn a fresh
    /// quantum for the same round.
    carry: bool,
}

/// A bounded, policy-ordered request queue: one lane per session, FIFO
/// within a lane, [`QosPolicy`] across lanes.
pub struct AdmissionQueue<T> {
    policy: QosPolicy,
    capacity: usize,
    len: usize,
    lanes: HashMap<u64, Lane<T>>,
    /// Fifo policy: session ids in global arrival order (one entry per
    /// queued item).
    arrivals: VecDeque<u64>,
    /// Drr policy: rotation of sessions with a non-empty lane.
    active: VecDeque<u64>,
    /// Configured weights, persisted across lane drain/recreate.
    weights: HashMap<u64, u32>,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue admitting at most `capacity` requests (≥ 1).
    pub fn new(policy: QosPolicy, capacity: usize) -> Self {
        Self {
            policy,
            capacity: capacity.max(1),
            len: 0,
            lanes: HashMap::new(),
            arrivals: VecDeque::new(),
            active: VecDeque::new(),
            weights: HashMap::new(),
        }
    }

    /// Queued requests across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no request is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets a session's DRR weight (clamped to ≥ 1; default 1). Takes
    /// effect from the lane's next rotation round; no-op under Fifo.
    pub fn set_weight(&mut self, session: u64, weight: u32) {
        let weight = weight.max(1);
        self.weights.insert(session, weight);
        if let Some(lane) = self.lanes.get_mut(&session) {
            lane.weight = weight;
        }
    }

    /// A session's configured DRR weight (1 when never set — the
    /// default share). Snapshots read this to persist tenant weights.
    pub fn weight_of(&self, session: u64) -> u32 {
        self.weights.get(&session).copied().unwrap_or(1)
    }

    /// Admits a request into its session's lane, or returns it when the
    /// queue is at capacity (the load-shed path — the caller owes the
    /// client a retry hint, not silence).
    pub fn push(&mut self, session: u64, item: T) -> Result<(), T> {
        if self.len >= self.capacity {
            return Err(item);
        }
        let weight = self.weights.get(&session).copied().unwrap_or(1);
        let lane = self.lanes.entry(session).or_insert_with(|| Lane {
            items: VecDeque::new(),
            weight,
            deficit: 0,
            carry: false,
        });
        let was_empty = lane.items.is_empty();
        lane.items.push_back(item);
        self.len += 1;
        match self.policy {
            QosPolicy::Fifo => self.arrivals.push_back(session),
            QosPolicy::Drr { .. } => {
                if was_empty {
                    self.active.push_back(session);
                }
            }
        }
        Ok(())
    }

    /// Releases up to `max` requests for one batch tick, in policy order.
    ///
    /// The server calls this once per tick at the start of the admission
    /// epoch (under its `prep_lock`), so DRR lane credits are charged and
    /// carried at epoch boundaries — pipelined ticks draw exactly the
    /// batches a serial tick sequence would, in the same order.
    pub fn pop_batch(&mut self, max: usize) -> Vec<T> {
        match self.policy {
            QosPolicy::Fifo => self.pop_fifo(max),
            QosPolicy::Drr { quantum } => self.pop_drr(max, quantum.max(1) as u64),
        }
    }

    fn pop_fifo(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        while out.len() < max {
            let Some(session) = self.arrivals.pop_front() else {
                break;
            };
            let lane = self
                .lanes
                .get_mut(&session)
                .expect("arrival entry implies a live lane");
            out.push(lane.items.pop_front().expect("one item per arrival entry"));
            self.len -= 1;
            if lane.items.is_empty() {
                self.lanes.remove(&session);
            }
        }
        out
    }

    fn pop_drr(&mut self, max: usize, quantum: u64) -> Vec<T> {
        let mut out = Vec::new();
        while out.len() < max && !self.active.is_empty() {
            let session = self.active.pop_front().expect("checked non-empty");
            let lane = self
                .lanes
                .get_mut(&session)
                .expect("active entry implies a live lane");
            // Each request costs one credit; a lane earns its round's
            // credits on service and spends them until the batch fills,
            // the lane drains, or the credits run out.
            if lane.carry {
                lane.carry = false;
            } else {
                lane.deficit += quantum * lane.weight as u64;
            }
            while out.len() < max && lane.deficit > 0 {
                let Some(item) = lane.items.pop_front() else {
                    break;
                };
                out.push(item);
                lane.deficit -= 1;
                self.len -= 1;
            }
            if lane.items.is_empty() {
                // A drained lane forfeits leftover credit — deficits
                // must not accumulate while a tenant is idle.
                self.lanes.remove(&session);
            } else if out.len() == max && lane.deficit > 0 {
                // Batch full mid-service: resume this lane first next
                // tick with its unspent credit (and no second quantum
                // for the same round).
                lane.carry = true;
                self.active.push_front(session);
            } else {
                // Credits exhausted: rotate to the back of the round.
                self.active.push_back(session);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_arrival_order_across_sessions() {
        let mut q = AdmissionQueue::new(QosPolicy::Fifo, 16);
        q.push(1, "a0").unwrap();
        q.push(2, "b0").unwrap();
        q.push(1, "a1").unwrap();
        assert_eq!(q.pop_batch(8), vec!["a0", "b0", "a1"]);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_sheds_and_drains() {
        let mut q = AdmissionQueue::new(QosPolicy::default(), 2);
        q.push(1, 10).unwrap();
        q.push(1, 11).unwrap();
        assert_eq!(q.push(1, 12), Err(12), "full queue returns the item");
        assert_eq!(q.pop_batch(1), vec![10]);
        q.push(2, 20).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drr_bounds_a_flooding_session_per_round() {
        let mut q = AdmissionQueue::new(QosPolicy::Drr { quantum: 1 }, 64);
        for i in 0..10 {
            q.push(1, (1, i)).unwrap();
        }
        q.push(2, (2, 0)).unwrap();
        q.push(3, (3, 0)).unwrap();
        // A 4-slot tick: the flooder gets 1 slot per round, the quiet
        // lanes drain, and the spare slots go back to the flooder
        // (work-conserving).
        let batch = q.pop_batch(4);
        let flood = batch.iter().filter(|(s, _)| *s == 1).count();
        assert_eq!(flood, 2, "flooder limited to rounds, not the whole tick");
        assert!(batch.contains(&(2, 0)) && batch.contains(&(3, 0)));
    }

    #[test]
    fn drr_weights_scale_share() {
        let mut q = AdmissionQueue::new(QosPolicy::Drr { quantum: 1 }, 64);
        q.set_weight(1, 3);
        for i in 0..8 {
            q.push(1, (1, i)).unwrap();
            q.push(2, (2, i)).unwrap();
        }
        let batch = q.pop_batch(8);
        let heavy = batch.iter().filter(|(s, _)| *s == 1).count();
        // Weight 3 vs 1 → 3:1 split of an 8-slot tick.
        assert_eq!(heavy, 6);
    }

    #[test]
    fn drr_is_work_conserving_when_lanes_drain() {
        let mut q = AdmissionQueue::new(QosPolicy::default(), 64);
        for i in 0..6 {
            q.push(7, i).unwrap();
        }
        assert_eq!(q.pop_batch(6).len(), 6, "sole lane takes the whole tick");
    }

    #[test]
    fn batch_boundary_keeps_unspent_credit() {
        let mut q = AdmissionQueue::new(QosPolicy::Drr { quantum: 4 }, 64);
        for i in 0..8 {
            q.push(1, (1, i)).unwrap();
        }
        for i in 0..8 {
            q.push(2, (2, i)).unwrap();
        }
        // Tick of 2 fills mid-service of lane 1; lane 1 resumes first
        // next tick with its credit, then lane 2 gets its round.
        assert_eq!(q.pop_batch(2), vec![(1, 0), (1, 1)]);
        let next = q.pop_batch(4);
        assert_eq!(next[..2], [(1, 2), (1, 3)]);
        assert_eq!(next[2..], [(2, 0), (2, 1)]);
    }
}
