//! The socket front: a non-blocking TCP listener decoding length-prefixed
//! frames into the batch scheduler.
//!
//! [`NetServer`] runs a readiness event loop (the vendored `mio` poll) over
//! one listener and its accepted connections:
//!
//! ```text
//!   readable ──► drain socket ──► FrameDecoder ──► OpenSession / Eval
//!                                                    │ submit() — bounded,
//!                                                    │ load-sheds to Reject
//!   loop body ──► run_tick() while tickets are outstanding
//!                                                    │
//!   tickets redeemed ──► EvalDone/Reject frames ──► per-connection outbox
//!   writable ──► flush outbox (absorbing WouldBlock)
//! ```
//!
//! Two invariants keep the front honest under load:
//!
//! * **No tick lock is ever held while touching a socket.** Frames are
//!   decoded and responses written from the event loop; batch execution
//!   happens inside [`Server::run_tick`], which acquires and releases the
//!   epoch locks itself and fills tickets only after both are released.
//!   Response frames are then serialized and enqueued here, entirely
//!   off-lock (the time shows up in `ServeStats::flush_us`). A slow or
//!   stalled peer therefore cannot extend a batch tick, and a long tick
//!   cannot block accepting or shedding new work.
//! * **Backpressure is explicit, not implicit.** A request that cannot be
//!   admitted gets a [`RejectCode::Overloaded`] frame carrying
//!   `retry_after_ticks` on the spot; the admission queue's bound (not
//!   socket buffers) is the only queue that grows with offered load.
//!
//! Malformed input (bad magic, oversized length prefix, an unparseable
//! payload) earns a [`RejectCode::Malformed`] frame and the connection is
//! closed once the reject flushes — after a framing error the byte stream
//! can no longer be trusted.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fides_client::wire::{
    EvalRequest, Frame, FrameDecoder, FrameKind, Reject, RejectCode, SessionRequest,
};
use fides_client::ClientError;
use mio::net::{TcpListener, TcpStream};
use mio::{Events, Interest, Poll, Token};

use crate::error::ServeError;
use crate::server::{Server, Ticket};

const LISTENER: Token = Token(0);
/// Poll timeout: the loop must keep driving batch ticks while requests
/// are outstanding even when no socket event arrives.
const POLL_TIMEOUT: Duration = Duration::from_millis(1);
const READ_CHUNK: usize = 64 * 1024;

/// Tuning knobs for the socket front.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Upper bound on a frame's declared payload length; a peer
    /// declaring more is treated as hostile and disconnected.
    pub max_frame_len: usize,
    /// Most simultaneously open connections; accepts past it are
    /// immediately closed.
    pub max_connections: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            max_frame_len: fides_client::wire::MAX_FRAME_LEN,
            max_connections: 256,
        }
    }
}

/// One accepted connection's state.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Admitted requests awaiting their batch tick, by client seq.
    inflight: Vec<(u64, Ticket)>,
    /// Encoded response bytes not yet accepted by the socket.
    outbox: Vec<u8>,
    /// Bytes of `outbox` already written.
    written: usize,
    /// Stop reading (peer EOF or a framing error); close once the
    /// outbox flushes and no admitted request is still in flight.
    draining: bool,
}

impl Conn {
    fn queue_frame(&mut self, frame: &Frame) {
        self.outbox.extend_from_slice(&frame.encode());
    }

    fn outbox_empty(&self) -> bool {
        self.written == self.outbox.len()
    }

    fn finished(&self) -> bool {
        self.draining && self.outbox_empty() && self.inflight.is_empty()
    }
}

/// Stops a running [`NetServer`] loop from another thread.
#[derive(Clone, Debug)]
pub struct NetShutdown(Arc<AtomicBool>);

impl NetShutdown {
    /// Asks the event loop to exit after its current iteration.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// A non-blocking TCP front over a [`Server`].
pub struct NetServer {
    server: Server,
    config: NetServerConfig,
    poll: Poll,
    listener: TcpListener,
    addr: SocketAddr,
    conns: HashMap<Token, Conn>,
    next_token: usize,
    stop: Arc<AtomicBool>,
}

impl NetServer {
    /// Binds the front to `addr` (use port 0 for an ephemeral port; read
    /// it back with [`NetServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the bind fails.
    pub fn bind(
        server: Server,
        addr: impl std::net::ToSocketAddrs,
        config: NetServerConfig,
    ) -> Result<Self, ServeError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ServeError::Io(e.to_string()))?
            .next()
            .ok_or_else(|| ServeError::Io("address resolved to nothing".into()))?;
        let mut listener = TcpListener::bind(addr).map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let poll = Poll::new().map_err(|e| ServeError::Io(e.to_string()))?;
        poll.registry()
            .register(&mut listener, LISTENER, Interest::READABLE)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(Self {
            server,
            config,
            poll,
            listener,
            addr,
            conns: HashMap::new(),
            next_token: 1,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The [`Server`] behind this front (cheap to clone; the clone shares
    /// registry, queue and device state).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// [`Server::snapshot`] on the fronted server: serializes durable
    /// session state between batch ticks while the front keeps accepting
    /// connections.
    ///
    /// # Errors
    ///
    /// As [`Server::snapshot`].
    pub fn snapshot<W: std::io::Write>(&self, w: W) -> Result<(), ServeError> {
        self.server.snapshot(w)
    }

    /// [`Server::restore`] on the fronted server: rebuilds sessions,
    /// placements and warm plans from a snapshot stream, typically before
    /// the event loop starts taking traffic.
    ///
    /// # Errors
    ///
    /// As [`Server::restore`].
    pub fn restore<R: std::io::Read>(&self, r: R) -> Result<u64, ServeError> {
        self.server.restore(r)
    }

    /// [`Server::warmup`] on the fronted server.
    ///
    /// # Errors
    ///
    /// As [`Server::warmup`].
    pub fn warmup(&self, shapes: &[crate::WarmupShape]) -> Result<usize, ServeError> {
        self.server.warmup(shapes)
    }

    /// A handle that stops [`NetServer::run`] from another thread.
    pub fn shutdown_handle(&self) -> NetShutdown {
        NetShutdown(Arc::clone(&self.stop))
    }

    /// Binds to `addr` and runs the event loop on its own thread.
    /// Returns the bound address, the shutdown handle, and the join
    /// handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the bind fails.
    pub fn spawn(
        server: Server,
        addr: impl std::net::ToSocketAddrs,
        config: NetServerConfig,
    ) -> Result<(SocketAddr, NetShutdown, std::thread::JoinHandle<()>), ServeError> {
        let mut front = Self::bind(server, addr, config)?;
        let bound = front.local_addr();
        let shutdown = front.shutdown_handle();
        let join = std::thread::spawn(move || front.run());
        Ok((bound, shutdown, join))
    }

    /// Runs the event loop until [`NetShutdown::shutdown`] is called.
    /// Connections still open at shutdown are dropped.
    pub fn run(&mut self) {
        let mut events = Events::with_capacity(64);
        while !self.stop.load(Ordering::SeqCst) {
            events.clear();
            let _ = self.poll.poll(&mut events, Some(POLL_TIMEOUT));
            let tokens: Vec<Token> = events.iter().map(|ev| ev.token()).collect();
            for token in tokens {
                if token == LISTENER {
                    self.accept_ready();
                } else {
                    self.read_ready(token);
                }
            }
            // Admitted work outstanding? Drive a batch tick. run_tick
            // takes (and releases) the epoch locks internally — no
            // socket is touched while either is held.
            if self.conns.values().any(|c| !c.inflight.is_empty()) {
                self.server.run_tick();
            }
            // Serialize and write response frames off-lock; the time is
            // the front's share of the flush ledger.
            let t0 = Instant::now();
            let redeemed = self.redeem_tickets();
            self.flush_all();
            if redeemed > 0 {
                self.server.note_flush_us(t0.elapsed().as_micros() as u64);
            }
            self.reap();
        }
    }

    /// Accepts every pending connection (readiness is level-triggered).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((mut stream, _peer)) => {
                    if self.conns.len() >= self.config.max_connections {
                        drop(stream); // immediate close: connection-level shed
                        continue;
                    }
                    let token = Token(self.next_token);
                    self.next_token += 1;
                    if self
                        .poll
                        .registry()
                        .register(&mut stream, token, Interest::READABLE | Interest::WRITABLE)
                        .is_err()
                    {
                        continue; // registration failed: drop the socket
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            decoder: FrameDecoder::with_max_len(self.config.max_frame_len),
                            inflight: Vec::new(),
                            outbox: Vec::new(),
                            written: 0,
                            draining: false,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Drains a readable connection and dispatches every complete frame.
    fn read_ready(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.draining {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.draining = true;
                    break;
                }
                Ok(n) => conn.decoder.feed(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    conn.draining = true;
                    break;
                }
            }
        }
        loop {
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => Self::dispatch(&self.server, conn, frame),
                Ok(None) => break,
                Err(e) => {
                    // Framing desync: reject (seq 0 — no frame to echo),
                    // stop reading, close once the reject flushes.
                    let reject = Reject {
                        code: RejectCode::Malformed,
                        retry_after_ticks: 0,
                        message: e.to_string(),
                    };
                    conn.queue_frame(&Frame::new(FrameKind::Reject, 0, reject.to_bytes()));
                    conn.draining = true;
                    break;
                }
            }
        }
    }

    /// Handles one decoded frame: session open or eval submission.
    fn dispatch(server: &Server, conn: &mut Conn, frame: Frame) {
        match frame.kind {
            FrameKind::OpenSession => {
                let reply = match SessionRequest::from_bytes(&frame.payload) {
                    Ok(req) => match server.open_session(req) {
                        Ok(sid) => Frame::new(
                            FrameKind::SessionOpened,
                            frame.seq,
                            sid.to_le_bytes().into(),
                        ),
                        Err(e) => reject_frame(frame.seq, RejectCode::Refused, 0, &e.to_string()),
                    },
                    Err(e) => {
                        conn.draining = true;
                        reject_frame(frame.seq, RejectCode::Malformed, 0, &e.to_string())
                    }
                };
                conn.queue_frame(&reply);
            }
            FrameKind::Eval => match EvalRequest::from_bytes(&frame.payload) {
                Ok(req) => match server.submit(req) {
                    Ok(ticket) => conn.inflight.push((frame.seq, ticket)),
                    Err(ServeError::Overloaded { retry_after_ticks }) => {
                        conn.queue_frame(&reject_frame(
                            frame.seq,
                            RejectCode::Overloaded,
                            retry_after_ticks,
                            "admission queue full",
                        ));
                    }
                    Err(e) => conn.queue_frame(&reject_frame(
                        frame.seq,
                        RejectCode::Refused,
                        0,
                        &e.to_string(),
                    )),
                },
                Err(e) => {
                    conn.draining = true;
                    conn.queue_frame(&reject_frame(
                        frame.seq,
                        RejectCode::Malformed,
                        0,
                        &e.to_string(),
                    ));
                }
            },
            // Server-to-client kinds arriving at the server are protocol
            // abuse: reject and drop the stream.
            FrameKind::SessionOpened | FrameKind::EvalDone | FrameKind::Reject => {
                conn.draining = true;
                conn.queue_frame(&reject_frame(
                    frame.seq,
                    RejectCode::Malformed,
                    0,
                    "client sent a server-side frame kind",
                ));
            }
        }
    }

    /// Moves completed tickets' responses into their connections'
    /// outboxes; returns how many frames were redeemed.
    fn redeem_tickets(&mut self) -> usize {
        let mut redeemed = 0;
        for conn in self.conns.values_mut() {
            let mut i = 0;
            while i < conn.inflight.len() {
                if let Some(resp) = conn.inflight[i].1.try_take() {
                    let (seq, _) = conn.inflight.swap_remove(i);
                    let frame = Frame::new(FrameKind::EvalDone, seq, resp.to_bytes());
                    conn.queue_frame(&frame);
                    redeemed += 1;
                } else {
                    i += 1;
                }
            }
        }
        redeemed
    }

    /// Writes every connection's outbox until done or `WouldBlock`
    /// (writability is level-triggered; leftovers retry next iteration).
    fn flush_all(&mut self) {
        for conn in self.conns.values_mut() {
            while conn.written < conn.outbox.len() {
                match conn.stream.write(&conn.outbox[conn.written..]) {
                    Ok(0) => {
                        conn.draining = true;
                        break;
                    }
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        conn.draining = true;
                        conn.written = conn.outbox.len();
                        break;
                    }
                }
            }
            if conn.outbox_empty() && !conn.outbox.is_empty() {
                conn.outbox.clear();
                conn.written = 0;
            }
        }
    }

    /// Drops connections that are fully drained.
    fn reap(&mut self) {
        let dead: Vec<Token> = self
            .conns
            .iter()
            .filter(|(_, c)| c.finished())
            .map(|(&t, _)| t)
            .collect();
        for token in dead {
            self.poll.registry().deregister_token(token);
            self.conns.remove(&token);
        }
    }
}

fn reject_frame(seq: u64, code: RejectCode, retry_after_ticks: u64, message: &str) -> Frame {
    let reject = Reject {
        code,
        retry_after_ticks,
        message: message.to_string(),
    };
    Frame::new(FrameKind::Reject, seq, reject.to_bytes())
}

// The decoder's error type comes from the client crate; make sure the
// conversion the dispatcher relies on exists and stays typed.
const _: () = {
    fn _assert_conv(e: ClientError) -> ServeError {
        ServeError::from(e)
    }
};
