//! Typed errors of the serving layer.

use std::fmt;

use fides_client::ClientError;
use fides_core::FidesError;

/// Errors the server reports at its session-management boundary.
///
/// Per-request evaluation failures never surface here — they come back as
/// failed [`EvalResponse`](fides_client::wire::EvalResponse)s so one
/// tenant's malformed circuit cannot poison a batch.
#[derive(Debug)]
pub enum ServeError {
    /// A tenant tried to attach with a parameter fingerprint that does not
    /// match the server's chain.
    ParamsMismatch {
        /// The server's fingerprint.
        expected: u64,
        /// The tenant's fingerprint.
        got: u64,
    },
    /// A session id that is unknown (never opened, closed, or evicted).
    UnknownSession(u64),
    /// Key material or preloaded plaintexts failed to load.
    Fides(FidesError),
    /// A wire frame failed to parse.
    Client(ClientError),
    /// The admission queue is at capacity and the request was load-shed
    /// (never buffered without bound, never blocking the submitter).
    Overloaded {
        /// The server's backlog-drain estimate: retry after roughly this
        /// many batch ticks (`⌈queued / batch_size⌉` at shed time). A
        /// tick's wall duration is deployment-specific — the hint orders
        /// retries, it is not a wall-clock promise.
        retry_after_ticks: u64,
    },
    /// A socket-level failure in the network front (bind, accept, read,
    /// or write).
    Io(String),
    /// A durable-session operation failed: a snapshot stream was
    /// structurally invalid for this server (wrong record order, device
    /// index out of range, duplicate session id, counts that disagree
    /// with the stream's own metadata), or a warmup shape referenced
    /// state the server does not hold.
    Snapshot(String),
}

/// The one canonical parameter-fingerprint gate: both the live
/// session-open path and snapshot restore funnel through here, so a
/// tenant attaching over the wire and a snapshot taken on a
/// differently-parameterized server fail with the same typed
/// [`ServeError::ParamsMismatch`].
pub(crate) fn check_params_hash(expected: u64, got: u64) -> Result<(), ServeError> {
    if expected == got {
        Ok(())
    } else {
        Err(ServeError::ParamsMismatch { expected, got })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ParamsMismatch { expected, got } => write!(
                f,
                "parameter fingerprint mismatch: server chain is {expected:#018x}, \
                 tenant sent {got:#018x}"
            ),
            ServeError::UnknownSession(id) => {
                write!(f, "unknown session {id} (closed, evicted, or never opened)")
            }
            ServeError::Fides(e) => write!(f, "session setup failed: {e}"),
            ServeError::Client(e) => write!(f, "malformed request: {e}"),
            ServeError::Overloaded { retry_after_ticks } => write!(
                f,
                "server overloaded: admission queue full, retry after ~{retry_after_ticks} ticks"
            ),
            ServeError::Io(msg) => write!(f, "socket error: {msg}"),
            ServeError::Snapshot(msg) => write!(f, "snapshot/restore failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Fides(e) => Some(e),
            ServeError::Client(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FidesError> for ServeError {
    fn from(e: FidesError) -> Self {
        ServeError::Fides(e)
    }
}

impl From<ClientError> for ServeError {
    fn from(e: ClientError) -> Self {
        ServeError::Client(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::ParamsMismatch {
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        assert!(ServeError::UnknownSession(7).to_string().contains('7'));
        let e: ServeError = FidesError::MissingKey("rotation 3".into()).into();
        assert!(e.to_string().contains("rotation 3"));
    }
}
