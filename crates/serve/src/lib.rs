//! # fides-serve — the multi-tenant serving layer
//!
//! The paper's architecture is client/server (Fig. 1): thin CKKS clients
//! feed `Raw*` interchange structures to a GPU evaluation server. Every
//! other crate in this workspace exercises that server **one session at a
//! time**; this crate is the layer that serves *many* tenants from one
//! device — the ROADMAP's "heavy traffic from millions of users" story.
//!
//! ```text
//!   tenant 0 ─┐                         ┌─ session registry (bounded LRU)
//!   tenant 1 ─┼─ EvalRequest queue ──►  │   keys + preloaded plaintexts
//!   tenant N ─┘        │                └─ per tenant, params-hash checked
//!                      ▼  batch tick (≤ batch_size requests)
//!          per-request capture regions ──► merged ExecGraph
//!                      │   round-robin stream offsets per request
//!                      ▼
//!          one planning pass (fusion ACROSS tenants) ──► one replay
//!                      │
//!                      ▼  demultiplex
//!          EvalResponse per request
//! ```
//!
//! Three properties make this safe and fast:
//!
//! 1. **Sessions are cheap.** Every session shares the one immutable
//!    [`CkksContext`](fides_core::CkksContext) (NTT tables, base-conversion
//!    matrices); a session adds only its own evaluation keys and preloaded
//!    plaintext cache.
//! 2. **Batches share one graph.** Each request records its kernels into
//!    its own capture region; the tick merges the regions into a single
//!    server-owned [`ExecGraph`](fides_core::ExecGraph) with a per-request
//!    stream offset, so the planner's elementwise fusion applies across
//!    request boundaries and the replay interleaves tenants over all
//!    device streams.
//! 3. **Results don't depend on the schedule.** Server-side CKKS kernels
//!    are data-oblivious: functional math runs at record time, and only the
//!    *timing* replays. Batched multi-tenant results are therefore
//!    bit-identical to the same requests run serially — the determinism
//!    suite asserts it thread-interleaving by thread-interleaving.
//!
//! ## Quick serve
//!
//! ```
//! use fides_api::CkksEngine;
//! use fides_client::wire::{OpProgram, ProgramOp};
//! use fides_core::CkksParameters;
//! use fides_serve::{Server, ServerConfig};
//!
//! // Server side: one device, many tenants. The chain must match the
//! // tenants' (the engine default is dnum = 3).
//! let server = Server::new(ServerConfig::new(
//!     CkksParameters::new(10, 3, 40, 3)?,
//! ))?;
//!
//! // Tenant side: a thin client (here backed by an engine).
//! let tenant = CkksEngine::builder().log_n(10).levels(3).seed(1).build()?.session();
//! let sid = server.open_session(tenant.session_request(&[])?)?;
//!
//! // One request: square the input.
//! let mut p = OpProgram::new(1);
//! let sq = p.push(ProgramOp::Square { a: 0 });
//! p.output(sq);
//! let resp = server.eval(tenant.eval_request(sid, &[&[0.5, -0.25]], &p)?)?;
//! let out = tenant.decrypt_response(&resp, &[2])?;
//! assert!((out[0][0] - 0.25).abs() < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod error;
pub mod net;
mod qos;
mod registry;
mod router;
mod server;
mod stats;

pub use error::ServeError;
pub use net::{NetServer, NetServerConfig};
pub use qos::{AdmissionQueue, QosPolicy};
pub use router::{Migration, ShardRouter};
pub use server::{PipelineConfig, ServeBackend, Server, ServerConfig, Ticket, WarmupShape};
pub use stats::ServeStats;
