//! The bounded LRU session registry.
//!
//! A session is what the server holds **per tenant**: the tenant's
//! evaluation keys, loaded into the execution substrate's native form, plus
//! the tenant's preloaded evaluation-domain plaintexts (model weights and
//! other repeated `MulPlain` operands). The registry is bounded — opening a
//! session past capacity evicts the least-recently-used tenant, modelling a
//! server whose device memory cannot hold every tenant's keys at once.
//! Evicted tenants simply re-upload (the wire `SessionRequest` is the cache
//! fill).

use std::collections::HashMap;
use std::sync::Arc;

use fides_client::wire::SessionRequest;
use fides_core::backend::{BackendPt, EvalBackend};

/// Everything the server holds on behalf of one tenant.
pub(crate) struct SessionState {
    /// The tenant's evaluation substrate: its keys bound to its device
    /// shard's context (gpu-sim) or a host evaluator (CPU reference).
    pub(crate) backend: Box<dyn EvalBackend>,
    /// Preloaded evaluation-domain plaintext operands, in upload order
    /// (request programs index into this table).
    pub(crate) plains: Vec<BackendPt>,
    /// Device shard holding this tenant's keys (always 0 off the
    /// multi-device path).
    pub(crate) device: usize,
    /// The tenant's original key upload, retained host-side so a
    /// migration can rebuild residency on another device without a
    /// client round-trip (`None` on the CPU substrate, which never
    /// migrates).
    pub(crate) upload: Option<SessionRequest>,
}

struct Entry {
    state: Arc<SessionState>,
    last_used: u64,
}

/// Bounded LRU map from session id to session state.
pub(crate) struct Registry {
    entries: HashMap<u64, Entry>,
    capacity: usize,
    next_id: u64,
    clock: u64,
    evicted: u64,
}

impl Registry {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            next_id: 1,
            clock: 0,
            evicted: 0,
        }
    }

    /// Inserts a session, evicting the least-recently-used entry when at
    /// capacity. Returns the fresh session id.
    pub(crate) fn insert(&mut self, state: SessionState) -> u64 {
        if self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(id, e)| (e.last_used, **id))
                .map(|(id, _)| id)
            {
                self.entries.remove(&victim);
                self.evicted += 1;
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.clock += 1;
        self.entries.insert(
            id,
            Entry {
                state: Arc::new(state),
                last_used: self.clock,
            },
        );
        id
    }

    /// Looks a session up, marking it most-recently-used. The returned
    /// `Arc` keeps a mid-batch session alive even if a concurrent open
    /// evicts it.
    pub(crate) fn touch(&mut self, id: u64) -> Option<Arc<SessionState>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&id).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.state)
        })
    }

    /// Replaces a resident session's state in place (migration commit),
    /// preserving its LRU position. Returns whether the id was resident.
    pub(crate) fn replace(&mut self, id: u64, state: SessionState) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.state = Arc::new(state);
                true
            }
            None => false,
        }
    }

    /// The id the next [`Self::insert`] will assign (placement runs
    /// before the backend is built, so the server needs the id early).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Inserts a session under a snapshot-assigned id (restore path),
    /// evicting the LRU entry when at capacity. Rejects a duplicate id
    /// with `false` — a snapshot stream never legitimately repeats one.
    /// Bumps `next_id` past `id` so post-restore opens never collide
    /// with restored sessions.
    pub(crate) fn insert_with_id(&mut self, id: u64, state: SessionState) -> bool {
        if self.entries.contains_key(&id) {
            return false;
        }
        if self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(id, e)| (e.last_used, **id))
                .map(|(id, _)| id)
            {
                self.entries.remove(&victim);
                self.evicted += 1;
            }
        }
        self.clock += 1;
        self.entries.insert(
            id,
            Entry {
                state: Arc::new(state),
                last_used: self.clock,
            },
        );
        self.next_id = self.next_id.max(id + 1);
        true
    }

    /// Whether a session with this id is resident (restore stages its
    /// whole stream first and pre-checks staged ids against residents so
    /// a failed restore never half-commits).
    pub(crate) fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    /// Raises the next-assigned id to at least `n` (restore replays the
    /// snapshotted counter so ids stay unique across the restart even if
    /// the highest-id session had been closed before the snapshot).
    pub(crate) fn ensure_next_id(&mut self, n: u64) {
        self.next_id = self.next_id.max(n);
    }

    /// Every resident session as `(id, state)`, least recently used
    /// first — the serialization order that lets a restore replay
    /// [`Self::insert_with_id`] calls and land in the same LRU state.
    pub(crate) fn export(&self) -> Vec<(u64, Arc<SessionState>)> {
        let mut entries: Vec<(&u64, &Entry)> = self.entries.iter().collect();
        entries.sort_by_key(|(id, e)| (e.last_used, **id));
        entries
            .into_iter()
            .map(|(&id, e)| (id, Arc::clone(&e.state)))
            .collect()
    }

    pub(crate) fn remove(&mut self, id: u64) -> bool {
        self.entries.remove(&id).is_some()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_client::RawParams;
    use fides_core::CpuBackend;

    fn state() -> SessionState {
        SessionState {
            backend: Box::new(CpuBackend::new(RawParams::generate(8, 2, 30, 40, 2))),
            plains: Vec::new(),
            device: 0,
            upload: None,
        }
    }

    #[test]
    fn replace_preserves_identity_and_lru_position() {
        let mut r = Registry::new(2);
        let a = r.insert(state());
        assert_eq!(r.next_id(), a + 1);
        let mut moved = state();
        moved.device = 1;
        assert!(r.replace(a, moved));
        assert_eq!(r.touch(a).unwrap().device, 1);
        assert!(!r.replace(999, state()), "unknown id rejected");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut r = Registry::new(2);
        let a = r.insert(state());
        let b = r.insert(state());
        assert_eq!(r.len(), 2);
        // Touch `a`, so `b` is now the LRU victim.
        assert!(r.touch(a).is_some());
        let c = r.insert(state());
        assert_eq!(r.len(), 2);
        assert_eq!(r.evicted(), 1);
        assert!(r.touch(b).is_none(), "b was evicted");
        assert!(r.touch(a).is_some());
        assert!(r.touch(c).is_some());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut r = Registry::new(1);
        let a = r.insert(state());
        let b = r.insert(state()); // evicts a
        assert_ne!(a, b);
        assert!(r.touch(a).is_none());
        assert!(!r.remove(a));
        assert!(r.remove(b));
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut r = Registry::new(0);
        let a = r.insert(state());
        assert!(r.touch(a).is_some());
        let b = r.insert(state());
        assert!(r.touch(a).is_none());
        assert!(r.touch(b).is_some());
    }
}
