//! Tenant → device-shard placement for the multi-device server.
//!
//! The distributed serve path (`CkksParameters::num_devices` > 1) runs one
//! device worker — its own simulated GPU plus CKKS context — per device
//! and must decide **where each tenant's evaluation keys live**. Keys are
//! the expensive resident state (tens of MB per tenant at serving
//! parameters), so placement *is* key residency:
//!
//! * **Consistent hashing** assigns each tenant a home device: the tenant
//!   id hashes onto a ring of per-device virtual nodes, and the first
//!   vnode clockwise wins. Adding a device moves only ~1/N of the
//!   tenants' homes, so a re-opened (previously evicted) tenant lands
//!   back where its keys were resident.
//! * **Eval-key residency is the placement cost.** A placed tenant stays
//!   put — re-placing it means re-uploading its key material over the
//!   interconnect — and the router migrates only under *sustained*
//!   imbalance, choosing the hottest device's cheapest-to-move (smallest
//!   key frame) tenant, i.e. the one whose residency costs least to
//!   rebuild.
//!
//! The router is pure bookkeeping: the server performs the actual key
//! re-load and prices the frame bytes on the cluster link; the router
//! only decides *who goes where* — deterministically, so a fixed
//! open/submit sequence always produces the same placements (the
//! determinism suite relies on this).

use std::collections::BTreeMap;

/// Virtual nodes per device on the hash ring (smooths the split).
const VNODES: u64 = 16;
/// Consecutive imbalanced ticks before a migration fires.
const SUSTAIN_TICKS: u32 = 4;

/// A migration decision: move `tenant` from `from` to `to`, re-uploading
/// `key_bytes` of key material.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Session id of the tenant to move.
    pub tenant: u64,
    /// Device currently holding the tenant's keys.
    pub from: usize,
    /// Destination device.
    pub to: usize,
    /// Size of the key material to re-upload (wire-frame bytes).
    pub key_bytes: u64,
}

/// Consistent-hash shard router with residency-aware migration.
#[derive(Debug)]
pub struct ShardRouter {
    num_devices: usize,
    /// Sorted (hash-point, device) ring.
    ring: Vec<(u64, usize)>,
    /// tenant id → (device, key frame bytes). BTreeMap: deterministic
    /// iteration order for victim selection.
    placed: BTreeMap<u64, (usize, u64)>,
    /// Consecutive ticks the same device has been the sustained hotspot.
    hot_streak: u32,
    hot_device: usize,
    migrations: u64,
}

/// SplitMix64 — deterministic, well-mixed 64-bit hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardRouter {
    /// A router over `n` device shards (clamped to ≥ 1).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        // Double-mix domain-separates vnode points from tenant hashes:
        // device 0's vnode keys are the raw ids 0..VNODES, and a single
        // mix would pin every small tenant id onto its own vnode point —
        // i.e. onto device 0.
        let mut ring: Vec<(u64, usize)> = (0..n)
            .flat_map(|d| (0..VNODES).map(move |v| (mix(mix((d as u64) << 32 | v)), d)))
            .collect();
        ring.sort_unstable();
        Self {
            num_devices: n,
            ring,
            placed: BTreeMap::new(),
            hot_streak: 0,
            hot_device: 0,
            migrations: 0,
        }
    }

    /// Number of device shards.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Places a tenant (idempotent): the first vnode clockwise of
    /// `hash(tenant)` on the ring. `key_bytes` is the tenant's key-frame
    /// size, the cost of ever re-placing it.
    pub fn place(&mut self, tenant: u64, key_bytes: u64) -> usize {
        if let Some(&(d, _)) = self.placed.get(&tenant) {
            return d;
        }
        let h = mix(tenant);
        let d = self
            .ring
            .iter()
            .find(|&&(point, _)| point >= h)
            .or_else(|| self.ring.first())
            .map(|&(_, d)| d)
            .unwrap_or(0);
        self.placed.insert(tenant, (d, key_bytes));
        d
    }

    /// The device currently holding a tenant's keys.
    pub fn device_of(&self, tenant: u64) -> Option<usize> {
        self.placed.get(&tenant).map(|&(d, _)| d)
    }

    /// Forgets a tenant (session closed or evicted).
    pub fn remove(&mut self, tenant: u64) {
        self.placed.remove(&tenant);
    }

    /// Pins a tenant to a device unconditionally (migration rollback:
    /// the keys never moved, so the placement must not either).
    pub fn assign(&mut self, tenant: u64, device: usize, key_bytes: u64) {
        self.placed
            .insert(tenant, (device.min(self.num_devices - 1), key_bytes));
    }

    /// Every committed placement as `(tenant, device, key_bytes)`, in
    /// tenant-id order. A snapshot serializes these and a restore replays
    /// them through [`Self::assign`], reproducing post-migration homes
    /// exactly (the imbalance `hot_streak` is transient tick state and
    /// deliberately resets across a restart).
    pub fn export_placements(&self) -> Vec<(u64, usize, u64)> {
        self.placed
            .iter()
            .map(|(&t, &(d, kb))| (t, d, kb))
            .collect()
    }

    /// Migrations decided so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Feeds one tick's per-device served-request counts and returns a
    /// migration decision once imbalance has been sustained.
    ///
    /// A tick is *imbalanced* when the busiest device served more than
    /// twice the emptiest device's share plus one (the "+1" keeps
    /// single-request ticks quiet). Only after four (`SUSTAIN_TICKS`)
    /// consecutive imbalanced ticks with the **same** hotspot does the
    /// router move one tenant — the hotspot's smallest-key (cheapest
    /// residency to rebuild) tenant — to the emptiest device. The move is
    /// committed in the router immediately; the caller re-uploads the
    /// keys and prices `key_bytes` on the link.
    pub fn observe_tick(&mut self, per_device: &[u64]) -> Option<Migration> {
        assert_eq!(per_device.len(), self.num_devices);
        if self.num_devices < 2 {
            return None;
        }
        let (hot, &hi) = per_device
            .iter()
            .enumerate()
            .max_by_key(|&(d, &c)| (c, std::cmp::Reverse(d)))?;
        let (cold, &lo) = per_device
            .iter()
            .enumerate()
            .min_by_key(|&(d, &c)| (c, d))?;
        let imbalanced = hi > 2 * lo + 1;
        if !imbalanced || hot == cold {
            self.hot_streak = 0;
            return None;
        }
        if self.hot_streak > 0 && self.hot_device == hot {
            self.hot_streak += 1;
        } else {
            self.hot_device = hot;
            self.hot_streak = 1;
        }
        if self.hot_streak < SUSTAIN_TICKS {
            return None;
        }
        // Cheapest-to-move tenant on the hot device (smallest key frame,
        // ties to the lowest id via BTreeMap order).
        let victim = self
            .placed
            .iter()
            .filter(|&(_, &(d, _))| d == hot)
            .min_by_key(|&(id, &(_, kb))| (kb, *id))
            .map(|(&id, &(_, kb))| (id, kb));
        let (tenant, key_bytes) = victim?;
        self.placed.insert(tenant, (cold, key_bytes));
        self.hot_streak = 0;
        self.migrations += 1;
        Some(Migration {
            tenant,
            from: hot,
            to: cold,
            key_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_sticky() {
        let mut a = ShardRouter::new(4);
        let mut b = ShardRouter::new(4);
        for t in 1..64u64 {
            assert_eq!(a.place(t, 1000), b.place(t, 1000));
        }
        for t in 1..64u64 {
            // Re-placing never moves a resident tenant.
            assert_eq!(a.place(t, 1000), a.device_of(t).unwrap());
        }
    }

    #[test]
    fn hashing_spreads_tenants_across_devices() {
        let mut r = ShardRouter::new(4);
        let mut counts = [0u64; 4];
        for t in 1..=256u64 {
            counts[r.place(t, 1000)] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            assert!(c > 0, "device {d} got no tenants");
        }
    }

    #[test]
    fn single_device_routes_everything_to_zero() {
        let mut r = ShardRouter::new(1);
        for t in 1..32u64 {
            assert_eq!(r.place(t, 1000), 0);
        }
        assert_eq!(r.observe_tick(&[100]), None);
    }

    #[test]
    fn ring_growth_moves_few_tenants() {
        let mut small = ShardRouter::new(2);
        let mut big = ShardRouter::new(3);
        let moved = (1..=256u64)
            .filter(|&t| small.place(t, 1000) != big.place(t, 1000))
            .count();
        // Consistent hashing: growing the ring relocates roughly 1/3 of
        // the tenants, not all of them.
        assert!(moved < 160, "{moved}/256 tenants moved");
    }

    #[test]
    fn sustained_imbalance_migrates_cheapest_tenant() {
        let mut r = ShardRouter::new(2);
        // Force-known placements: find tenants that hash to device 0.
        let on_zero: Vec<u64> = (1..200u64)
            .filter(|&t| {
                let mut probe = ShardRouter::new(2);
                probe.place(t, 0) == 0
            })
            .take(3)
            .collect();
        // Place them with distinct key sizes: the middle one is cheapest.
        r.place(on_zero[0], 5000);
        r.place(on_zero[1], 100);
        r.place(on_zero[2], 9000);
        // One imbalanced tick is not enough.
        assert_eq!(r.observe_tick(&[10, 0]), None);
        assert_eq!(r.observe_tick(&[10, 0]), None);
        assert_eq!(r.observe_tick(&[10, 0]), None);
        let m = r.observe_tick(&[10, 0]).expect("4th sustained tick fires");
        assert_eq!(m.from, 0);
        assert_eq!(m.to, 1);
        assert_eq!(m.tenant, on_zero[1], "cheapest key frame moves");
        assert_eq!(m.key_bytes, 100);
        assert_eq!(r.device_of(on_zero[1]), Some(1), "router committed");
        assert_eq!(r.migrations(), 1);
        // A balanced tick resets the streak.
        assert_eq!(r.observe_tick(&[5, 5]), None);
        assert_eq!(r.observe_tick(&[10, 0]), None);
    }

    #[test]
    fn balanced_ticks_never_migrate() {
        let mut r = ShardRouter::new(2);
        r.place(1, 100);
        r.place(2, 100);
        for _ in 0..32 {
            assert_eq!(r.observe_tick(&[8, 8]), None);
            assert_eq!(r.observe_tick(&[3, 2]), None);
        }
        assert_eq!(r.migrations(), 0);
    }
}
