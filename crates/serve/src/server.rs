//! The session server: request queue, batch scheduler, graph sharing.

use std::collections::VecDeque;
use std::sync::Arc;

use fides_client::wire::{params_fingerprint, EvalRequest, EvalResponse, SessionRequest};
use fides_client::{RawCiphertext, RawParams};
use fides_core::backend::EvalBackend;
use fides_core::sched::{
    fingerprint, ExecGraph, GpuReplayExecutor, PlanCache, PlanConfig, PlanExecutor, Planner,
};
use fides_core::{adapter, CkksContext, CkksParameters, CpuBackend, GpuSimBackend};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim, GraphEvent, SimStats};
use parking_lot::Mutex;

use crate::error::ServeError;
use crate::registry::{Registry, SessionState};
use crate::stats::ServeStats;

/// Which execution substrate the server runs tenants on.
#[derive(Clone, Debug)]
pub enum ServeBackend {
    /// The paper-faithful simulated-GPU pipeline: one device, one shared
    /// context, cross-request graph batching.
    GpuSim {
        /// Simulated device model.
        device: DeviceSpec,
        /// Functional (math runs) or cost-only execution.
        mode: ExecMode,
    },
    /// The plain-CPU reference evaluator (no kernel graphs — ticks execute
    /// requests back to back; exists to cross-check the batched results).
    Cpu {
        /// Worker threads for limb-parallel execution (`None`: the
        /// `FIDES_WORKERS` env or the machine's parallelism).
        workers: Option<usize>,
    },
}

impl Default for ServeBackend {
    fn default() -> Self {
        ServeBackend::GpuSim {
            device: DeviceSpec::rtx_4090(),
            mode: ExecMode::Functional,
        }
    }
}

/// Server configuration: the parameter chain every tenant must match, the
/// execution substrate, and the serving knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The CKKS parameter set (including `num_streams`, fusion toggles and
    /// `graph_exec`, which drive the batch scheduler).
    pub params: CkksParameters,
    /// Execution substrate.
    pub backend: ServeBackend,
    /// Most requests one batch tick executes (≥ 1).
    pub batch_size: usize,
    /// Session-registry capacity; opening past it evicts the LRU tenant.
    pub max_sessions: usize,
}

impl ServerConfig {
    /// A configuration with the serving defaults: gpu-sim substrate on a
    /// simulated RTX 4090, functional execution, batch size 16, at most 64
    /// resident sessions.
    pub fn new(params: CkksParameters) -> Self {
        Self {
            params,
            backend: ServeBackend::default(),
            batch_size: 16,
            max_sessions: 64,
        }
    }

    /// Selects the execution substrate.
    pub fn backend(mut self, backend: ServeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Most requests one batch tick executes.
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Session-registry capacity.
    pub fn max_sessions(mut self, sessions: usize) -> Self {
        self.max_sessions = sessions.max(1);
        self
    }
}

enum Substrate {
    /// One shared device context; per-tenant key sets attach to it.
    Gpu(Arc<CkksContext>),
    /// Per-tenant host evaluators over the same chain.
    Cpu {
        raw: RawParams,
        workers: Option<usize>,
    },
}

struct Slot {
    resp: Mutex<Option<EvalResponse>>,
}

/// A handle to a submitted request; redeem with [`Ticket::try_take`] after
/// a tick has run (or use [`Server::eval`] for the blocking path).
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// The response, once a batch tick has executed this request.
    pub fn try_take(&self) -> Option<EvalResponse> {
        self.slot.resp.lock().take()
    }
}

struct Pending {
    req: EvalRequest,
    slot: Arc<Slot>,
}

struct ServerInner {
    substrate: Substrate,
    raw: RawParams,
    params_hash: u64,
    plan_cfg: PlanConfig,
    graph_exec: bool,
    batch_size: usize,
    registry: Mutex<Registry>,
    queue: Mutex<VecDeque<Pending>>,
    /// Serializes batch execution: exactly one tick runs at a time, and a
    /// blocked [`Server::eval`] caller waiting on this lock is guaranteed
    /// its request was either served by the running tick or is still
    /// queued for its own.
    tick_lock: Mutex<()>,
    stats: Mutex<ServeStats>,
    /// Bounded LRU of planned batch graphs: steady-state ticks (same
    /// request mix, same programs) replay a cached plan with zero
    /// planning work.
    plan_cache: Mutex<PlanCache>,
}

/// A multi-tenant CKKS session server over one execution substrate.
///
/// Cloning is cheap — clones share the registry, queue and device, so a
/// clone per request thread is the intended usage.
///
/// See the [crate docs](crate) for the serving model and a quick-serve
/// example.
#[derive(Clone)]
pub struct Server {
    inner: Arc<ServerInner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field(
                "params_hash",
                &format_args!("{:#018x}", self.inner.params_hash),
            )
            .field("batch_size", &self.inner.batch_size)
            .field("sessions", &self.inner.registry.lock().len())
            .field("queued", &self.inner.queue.lock().len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Builds a server: constructs the substrate (device + shared context
    /// for gpu-sim) and derives the parameter fingerprint tenants must
    /// match.
    ///
    /// # Errors
    ///
    /// [`ServeError::Fides`] for invalid parameter sets.
    pub fn new(config: ServerConfig) -> Result<Self, ServeError> {
        let params = config.params;
        let raw = params.to_raw();
        let params_hash = params_fingerprint(&raw);
        let plan_cfg = PlanConfig {
            fuse_elementwise: params.fusion.elementwise,
            num_streams: params.num_streams,
            dep_schedule: params.sched_v2,
            ..PlanConfig::default()
        };
        let graph_exec = params.graph_exec;
        let substrate = match config.backend {
            ServeBackend::GpuSim { device, mode } => {
                let gpu = GpuSim::new(device, mode);
                Substrate::Gpu(CkksContext::from_raw(params, raw.clone(), gpu))
            }
            ServeBackend::Cpu { workers } => Substrate::Cpu {
                raw: raw.clone(),
                workers,
            },
        };
        Ok(Self {
            inner: Arc::new(ServerInner {
                substrate,
                raw,
                params_hash,
                plan_cfg,
                graph_exec,
                batch_size: config.batch_size.max(1),
                registry: Mutex::new(Registry::new(config.max_sessions)),
                queue: Mutex::new(VecDeque::new()),
                tick_lock: Mutex::new(()),
                stats: Mutex::new(ServeStats::default()),
                plan_cache: Mutex::new(PlanCache::default()),
            }),
        })
    }

    /// The fingerprint of the server's parameter chain (what
    /// [`SessionRequest::params_hash`] is checked against).
    pub fn params_hash(&self) -> u64 {
        self.inner.params_hash
    }

    /// The shared client/server parameter description.
    pub fn raw_params(&self) -> &RawParams {
        &self.inner.raw
    }

    /// Number of sessions currently resident in the registry.
    pub fn session_count(&self) -> usize {
        self.inner.registry.lock().len()
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        let mut s = *self.inner.stats.lock();
        s.sessions_evicted = self.inner.registry.lock().evicted();
        s
    }

    /// Simulated-device statistics (gpu-sim substrate; `None` on CPU).
    pub fn sim_stats(&self) -> Option<SimStats> {
        match &self.inner.substrate {
            Substrate::Gpu(ctx) => Some(ctx.gpu().stats()),
            Substrate::Cpu { .. } => None,
        }
    }

    /// Simulated-device makespan in µs (device-wide sync; gpu-sim only).
    pub fn sync_us(&self) -> Option<f64> {
        match &self.inner.substrate {
            Substrate::Gpu(ctx) => Some(ctx.gpu().sync()),
            Substrate::Cpu { .. } => None,
        }
    }

    /// Clears the simulated-device statistics ledger (no-op on the CPU
    /// substrate). Benchmarks call this after session setup so launch
    /// counts and stream occupancy measure the serving phase alone, not
    /// key loading.
    pub fn reset_sim_stats(&self) {
        if let Substrate::Gpu(ctx) = &self.inner.substrate {
            ctx.gpu().reset_stats();
        }
    }

    /// Opens a session from a keygen upload: validates the tenant's
    /// parameter fingerprint, loads the evaluation keys into the
    /// substrate's native form, preloads the uploaded plaintexts into the
    /// evaluation-domain cache, and registers the tenant (evicting the LRU
    /// session when the registry is full). Returns the session id the
    /// tenant puts on its evaluation requests.
    ///
    /// # Errors
    ///
    /// [`ServeError::ParamsMismatch`] for a foreign chain,
    /// [`ServeError::Fides`] when key material fails to load.
    pub fn open_session(&self, req: SessionRequest) -> Result<u64, ServeError> {
        if req.params_hash != self.inner.params_hash {
            return Err(ServeError::ParamsMismatch {
                expected: self.inner.params_hash,
                got: req.params_hash,
            });
        }
        let backend: Box<dyn EvalBackend> = match &self.inner.substrate {
            Substrate::Gpu(ctx) => {
                let keys = adapter::load_eval_keys(
                    ctx,
                    req.relin.as_ref(),
                    &req.rotations,
                    req.conjugation.as_ref(),
                )?;
                Box::new(GpuSimBackend::new(Arc::clone(ctx), keys))
            }
            Substrate::Cpu { raw, workers } => {
                let mut backend = CpuBackend::new(raw.clone());
                if let Some(workers) = workers {
                    backend = backend.with_workers(*workers);
                }
                if let Some(relin) = req.relin {
                    backend.set_relin_key(relin);
                }
                for (shift, key) in req.rotations {
                    backend.insert_rotation_key(shift, key);
                }
                if let Some(conj) = req.conjugation {
                    backend.set_conj_key(conj);
                }
                Box::new(backend)
            }
        };
        let mut plains = Vec::with_capacity(req.plaintexts.len());
        for pt in &req.plaintexts {
            plains.push(backend.load_plain(pt)?);
        }
        let id = self
            .inner
            .registry
            .lock()
            .insert(SessionState { backend, plains });
        self.inner.stats.lock().sessions_opened += 1;
        Ok(id)
    }

    /// [`Server::open_session`] over a serialized wire frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Client`] for malformed frames, then as
    /// [`Server::open_session`].
    pub fn open_session_bytes(&self, frame: &[u8]) -> Result<u64, ServeError> {
        self.open_session(SessionRequest::from_bytes(frame)?)
    }

    /// Closes a session, freeing its keys. Returns whether it was resident.
    pub fn close_session(&self, id: u64) -> bool {
        self.inner.registry.lock().remove(id)
    }

    /// Enqueues a request without blocking; a later batch tick (from any
    /// thread) executes it. Redeem the ticket with [`Ticket::try_take`].
    pub fn submit(&self, req: EvalRequest) -> Ticket {
        let slot = Arc::new(Slot {
            resp: Mutex::new(None),
        });
        self.inner.queue.lock().push_back(Pending {
            req,
            slot: Arc::clone(&slot),
        });
        Ticket { slot }
    }

    /// Runs one batch tick: drains up to `batch_size` queued requests,
    /// executes them as one merged graph (gpu-sim substrate with graph
    /// execution on), and fills their tickets. Returns how many requests
    /// the tick served.
    pub fn run_tick(&self) -> usize {
        let _guard = self.inner.tick_lock.lock();
        self.run_tick_locked()
    }

    /// Blocking evaluation: enqueues the request and drives batch ticks
    /// until its response is ready. Concurrent callers' requests batch into
    /// shared ticks — N threads blocked here produce multi-request graphs.
    pub fn eval(&self, req: EvalRequest) -> EvalResponse {
        let ticket = self.submit(req);
        loop {
            if let Some(resp) = ticket.try_take() {
                return resp;
            }
            // Wait for any in-flight tick (it may serve us), then tick
            // ourselves if it didn't.
            let _guard = self.inner.tick_lock.lock();
            if let Some(resp) = ticket.try_take() {
                return resp;
            }
            self.run_tick_locked();
            if let Some(resp) = ticket.try_take() {
                return resp;
            }
        }
    }

    /// [`Server::eval`] over serialized wire frames: parses an
    /// [`EvalRequest`], serves it, and returns the serialized
    /// [`EvalResponse`] (parse failures come back as failed responses, so
    /// this never panics on attacker-controlled bytes).
    pub fn eval_bytes(&self, frame: &[u8]) -> Vec<u8> {
        match EvalRequest::from_bytes(frame) {
            Ok(req) => self.eval(req).to_bytes(),
            Err(e) => EvalResponse::failed(format!("malformed request: {e}")).to_bytes(),
        }
    }

    /// Executes one batch while holding the tick lock.
    fn run_tick_locked(&self) -> usize {
        let batch: Vec<Pending> = {
            let mut queue = self.inner.queue.lock();
            let n = queue.len().min(self.inner.batch_size);
            queue.drain(..n).collect()
        };
        if batch.is_empty() {
            return 0;
        }

        // Resolve sessions first (touching the LRU clock once per request);
        // the Arc keeps a session alive even if an open evicts it mid-batch.
        let resolved: Vec<(Pending, Option<Arc<SessionState>>)> = {
            let mut registry = self.inner.registry.lock();
            batch
                .into_iter()
                .map(|p| {
                    let session = registry.touch(p.req.session_id);
                    (p, session)
                })
                .collect()
        };

        let served = resolved.len();
        let responses: Vec<EvalResponse> = match &self.inner.substrate {
            Substrate::Gpu(ctx) if self.inner.graph_exec => {
                self.serve_batch_graphed(ctx, &resolved)
            }
            _ => resolved
                .iter()
                .map(|(p, session)| Self::serve_one(session.as_deref(), &p.req))
                .collect(),
        };

        {
            let mut stats = self.inner.stats.lock();
            stats.requests += served as u64;
            stats.batches += 1;
            stats.max_batch = stats.max_batch.max(served);
            stats.failed += responses.iter().filter(|r| r.error.is_some()).count() as u64;
        }
        for ((p, _), resp) in resolved.into_iter().zip(responses) {
            *p.slot.resp.lock() = Some(resp);
        }
        served
    }

    /// The graph-batched path: each request records into its own capture
    /// region; the regions merge — with a per-request round-robin stream
    /// offset — into one server-owned graph, planned once (fusion applies
    /// across tenant boundaries) and replayed once.
    fn serve_batch_graphed(
        &self,
        ctx: &Arc<CkksContext>,
        batch: &[(Pending, Option<Arc<SessionState>>)],
    ) -> Vec<EvalResponse> {
        let gpu = ctx.gpu();
        let mut merged: Vec<GraphEvent> = Vec::new();
        let mut responses = Vec::with_capacity(batch.len());
        for (i, (p, session)) in batch.iter().enumerate() {
            let began = gpu.begin_capture();
            let resp = Self::serve_one(session.as_deref(), &p.req);
            if began {
                merged.extend(offset_streams(gpu.end_capture(), i));
            }
            responses.push(resp);
        }
        if !merged.is_empty() {
            let graph = ExecGraph::from_events(merged);
            // Steady-state ticks repeat the same graph *shape* with fresh
            // buffers: the structural fingerprint finds the cached plan
            // and rebinding replaces planning entirely.
            let (fp, binding) = fingerprint(&graph, &self.inner.plan_cfg);
            let (plan, hit) = {
                let mut cache = self.inner.plan_cache.lock();
                match cache.lookup(fp, &binding) {
                    Some(plan) => (plan, true),
                    None => {
                        let plan = Planner::new(self.inner.plan_cfg).plan(&graph);
                        cache.insert(fp, &plan, binding);
                        (plan, false)
                    }
                }
            };
            gpu.record_plan_cache(hit);
            GpuReplayExecutor::new(gpu).execute(&plan);
            let mut stats = self.inner.stats.lock();
            stats.recorded_kernels += plan.stats().recorded_kernels;
            stats.planned_launches += plan.stats().planned_launches;
            stats.fused_kernels += plan.stats().fused_kernels;
            if hit {
                stats.plan_cache_hits += 1;
            } else {
                stats.plan_cache_misses += 1;
            }
        }
        responses
    }

    /// Serves one request against its session (functional math runs here;
    /// on the graphed path the kernels are being recorded, not timed).
    fn serve_one(session: Option<&SessionState>, req: &EvalRequest) -> EvalResponse {
        let Some(session) = session else {
            return EvalResponse::failed(ServeError::UnknownSession(req.session_id).to_string());
        };
        let backend = session.backend.as_ref();
        let run = || -> Result<Vec<RawCiphertext>, fides_core::FidesError> {
            let inputs = req
                .inputs
                .iter()
                .map(|raw| backend.load(raw))
                .collect::<Result<Vec<_>, _>>()?;
            let outs = fides_core::exec_program(backend, inputs, &session.plains, &req.program)?;
            outs.iter().map(|ct| backend.store(ct)).collect()
        };
        match run() {
            Ok(outputs) => EvalResponse::ok(outputs),
            Err(e) => EvalResponse::failed(e.to_string()),
        }
    }
}

/// Shifts every recorded stream (and fence endpoint) by the request's batch
/// index. The planner remaps streams modulo `num_streams`, so this is the
/// round-robin that spreads concurrent tenants across the device streams
/// instead of stacking every request's first limb batch on stream 0.
fn offset_streams(events: Vec<GraphEvent>, offset: usize) -> Vec<GraphEvent> {
    if offset == 0 {
        return events;
    }
    events
        .into_iter()
        .map(|ev| match ev {
            GraphEvent::Launch { stream, desc } => GraphEvent::Launch {
                stream: stream + offset,
                desc,
            },
            GraphEvent::Fence { signals, waiters } => GraphEvent::Fence {
                signals: signals.into_iter().map(|s| s + offset).collect(),
                waiters: waiters.into_iter().map(|s| s + offset).collect(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::{KernelDesc, KernelKind};

    #[test]
    fn offset_shifts_launches_and_fences() {
        let events = vec![
            GraphEvent::Launch {
                stream: 1,
                desc: KernelDesc::new(KernelKind::Elementwise),
            },
            GraphEvent::Fence {
                signals: vec![0, 1],
                waiters: vec![2],
            },
        ];
        let out = offset_streams(events, 3);
        match &out[0] {
            GraphEvent::Launch { stream, .. } => assert_eq!(*stream, 4),
            _ => panic!("expected launch"),
        }
        match &out[1] {
            GraphEvent::Fence { signals, waiters } => {
                assert_eq!(signals, &[3, 4]);
                assert_eq!(waiters, &[5]);
            }
            _ => panic!("expected fence"),
        }
    }

    #[test]
    fn zero_offset_is_identity() {
        let events = vec![GraphEvent::Launch {
            stream: 7,
            desc: KernelDesc::new(KernelKind::Fill),
        }];
        let out = offset_streams(events, 0);
        assert!(matches!(out[0], GraphEvent::Launch { stream: 7, .. }));
    }
}
