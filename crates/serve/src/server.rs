//! The session server: request queue, batch scheduler, graph sharing.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

use fides_client::persist::{
    kind, ParamsRecord, PlacementRecord, RecordReader, RecordWriter, ServerMetaRecord,
    SessionRecord,
};
use fides_client::wire::{
    params_fingerprint, EvalRequest, EvalResponse, OpProgram, SessionRequest,
};
use fides_client::{Domain, RawCiphertext, RawParams, RawPoly};
use fides_core::backend::{BackendPt, EvalBackend};
use fides_core::sched::{
    decode_plan_entry, encode_plan_entry, fingerprint, plan_parallel, CostModel, ExecGraph,
    ExecPlan, GpuReplayExecutor, PlanCache, PlanConfig, PlanExecutor,
};
use fides_core::{adapter, CkksContext, CkksParameters, CpuBackend, GpuSimBackend};
use fides_gpu_sim::{
    BufferId, DeviceSpec, ExecMode, GpuCluster, GpuSim, GraphEvent, InterconnectSpec, SimStats,
};
use parking_lot::Mutex;

use crate::error::{check_params_hash, ServeError};
use crate::qos::{AdmissionQueue, QosPolicy};
use crate::registry::{Registry, SessionState};
use crate::router::{Migration, ShardRouter};
use crate::stats::ServeStats;

/// Which execution substrate the server runs tenants on.
#[derive(Clone, Debug)]
pub enum ServeBackend {
    /// The paper-faithful simulated-GPU pipeline: one device, one shared
    /// context, cross-request graph batching.
    GpuSim {
        /// Simulated device model.
        device: DeviceSpec,
        /// Functional (math runs) or cost-only execution.
        mode: ExecMode,
    },
    /// The plain-CPU reference evaluator (no kernel graphs — ticks execute
    /// requests back to back; exists to cross-check the batched results).
    Cpu {
        /// Worker threads for limb-parallel execution (`None`: the
        /// `FIDES_WORKERS` env or the machine's parallelism).
        workers: Option<usize>,
    },
}

impl Default for ServeBackend {
    fn default() -> Self {
        ServeBackend::GpuSim {
            device: DeviceSpec::rtx_4090(),
            mode: ExecMode::Functional,
        }
    }
}

/// Server configuration: the parameter chain every tenant must match, the
/// execution substrate, and the serving knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The CKKS parameter set (including `num_streams`, fusion toggles and
    /// `graph_exec`, which drive the batch scheduler).
    pub params: CkksParameters,
    /// Execution substrate.
    pub backend: ServeBackend,
    /// Most requests one batch tick executes (≥ 1).
    pub batch_size: usize,
    /// Session-registry capacity; opening past it evicts the LRU tenant.
    pub max_sessions: usize,
    /// Admission-queue capacity (≥ 1): requests past it are load-shed
    /// with [`ServeError::Overloaded`] instead of buffered without bound.
    pub admission_capacity: usize,
    /// How queued requests are released into batch ticks.
    pub qos: QosPolicy,
    /// Tick-pipelining knobs (plan-ahead double buffering, planning
    /// fan-out width). Defaults to [`PipelineConfig::from_env`].
    pub pipeline: PipelineConfig,
}

impl ServerConfig {
    /// A configuration with the serving defaults: gpu-sim substrate on a
    /// simulated RTX 4090, functional execution, batch size 16, at most 64
    /// resident sessions.
    pub fn new(params: CkksParameters) -> Self {
        Self {
            params,
            backend: ServeBackend::default(),
            batch_size: 16,
            max_sessions: 64,
            admission_capacity: 1024,
            qos: QosPolicy::default(),
            pipeline: PipelineConfig::from_env(),
        }
    }

    /// Selects the execution substrate.
    pub fn backend(mut self, backend: ServeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Most requests one batch tick executes.
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Session-registry capacity.
    pub fn max_sessions(mut self, sessions: usize) -> Self {
        self.max_sessions = sessions.max(1);
        self
    }

    /// Admission-queue capacity (load-shed threshold).
    pub fn admission_capacity(mut self, capacity: usize) -> Self {
        self.admission_capacity = capacity.max(1);
        self
    }

    /// Cross-tenant scheduling policy for the admission queue.
    pub fn qos(mut self, qos: QosPolicy) -> Self {
        self.qos = qos;
        self
    }

    /// Tick-pipelining knobs.
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }
}

/// Knobs for the pipelined tick engine.
///
/// Every tick runs as two epochs — an **admission epoch** (drain the
/// queue, resolve sessions, record the batch graphs, plan or look up
/// cached plans) and an **execution epoch** (replay the planned launches
/// on the simulated devices) — each under its own lock. With
/// `plan_ahead` off the epochs run back to back inside one `run_tick`
/// call, which is byte-for-byte the classic serial tick (plus the
/// response flush moving off-lock). With `plan_ahead` on, `run_tick`
/// overlaps tick *N*'s execution epoch with tick *N+1*'s admission
/// epoch: planning for the next batch runs while the current one
/// replays, and the prepared tick is staged for whoever ticks next.
///
/// Responses cannot change: functional CKKS math runs at record time
/// inside the admission epoch, and the execution epoch only advances the
/// simulated timeline — so frames are byte-identical at every setting
/// (the determinism suite pins this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Overlap tick *N*'s execution epoch with tick *N+1*'s admission
    /// epoch (plan-ahead double buffering). Off by default — opt in per
    /// server, or set `FIDES_PLAN_AHEAD=1`.
    pub plan_ahead: bool,
    /// Worker cap for the parallel planning fan-out when several device
    /// shards miss the plan cache in one tick (`0`: the ambient rayon
    /// width, which honors `FIDES_WORKERS`). Cache lookups always stay
    /// on the calling thread; only misses fan out.
    pub plan_workers: usize,
}

impl PipelineConfig {
    /// The default configuration with `plan_ahead` taken from the
    /// `FIDES_PLAN_AHEAD` environment variable (`1`/`true`/`on`), so CI
    /// matrices and benches flip the knob without plumbing config.
    pub fn from_env() -> Self {
        let plan_ahead = std::env::var("FIDES_PLAN_AHEAD")
            .map(|v| {
                let v = v.trim();
                v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
            })
            .unwrap_or(false);
        Self {
            plan_ahead,
            ..Self::default()
        }
    }

    /// Enables plan-ahead double buffering.
    pub fn plan_ahead(mut self, on: bool) -> Self {
        self.plan_ahead = on;
        self
    }

    /// Caps the planning fan-out width (`0`: ambient rayon width).
    pub fn plan_workers(mut self, workers: usize) -> Self {
        self.plan_workers = workers;
        self
    }
}

enum Substrate {
    /// One device context **per shard**; tenants' key sets attach to the
    /// shard the router places them on, and the cluster models the
    /// interconnect migrations pay for. `contexts.len() == 1` is the
    /// classic single-device pipeline.
    Gpu {
        contexts: Vec<Arc<CkksContext>>,
        cluster: Arc<GpuCluster>,
    },
    /// Per-tenant host evaluators over the same chain.
    Cpu {
        raw: RawParams,
        workers: Option<usize>,
    },
}

struct Slot {
    resp: Mutex<Option<EvalResponse>>,
}

/// A handle to a submitted request; redeem with [`Ticket::try_take`] after
/// a tick has run (or use [`Server::eval`] for the blocking path).
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// The response, once a batch tick has executed this request.
    pub fn try_take(&self) -> Option<EvalResponse> {
        self.slot.resp.lock().take()
    }
}

struct Pending {
    req: EvalRequest,
    slot: Arc<Slot>,
}

/// One device shard's planned replay work for a prepared tick.
struct ShardExec {
    device: usize,
    plan: ExecPlan,
    /// Whether the plan came out of the cache (feeds the device's
    /// plan-cache ledger at replay time).
    hit: bool,
}

/// A tick that has finished its admission epoch: requests drained and
/// resolved, functional math already run at record time, responses
/// computed, and every shard's graph planned (or fetched from the plan
/// cache). All that remains is the execution epoch — replaying the
/// shard plans onto the simulated timeline — and the off-lock response
/// flush.
struct PreparedTick {
    resolved: Vec<(Pending, Option<Arc<SessionState>>)>,
    responses: Vec<EvalResponse>,
    shards: Vec<ShardExec>,
    /// Synthetic warmup batch: primes plans, never counts as served
    /// traffic and never fills tickets.
    synthetic: bool,
}

/// One tick's worth of request shapes for [`Server::warmup`]: ordered
/// `(session id, program, ciphertext slot count)` entries replayed as a
/// single synthetic batch, so the primed plan covers the same
/// cross-tenant graph merge a live tick of that mix would produce.
#[derive(Clone, Debug, Default)]
pub struct WarmupShape {
    /// `(session id, program, slots)` per batched request, in tick
    /// arrival order (the batch index drives stream round-robin, so
    /// order is part of the plan fingerprint).
    pub requests: Vec<(u64, OpProgram, usize)>,
}

struct ServerInner {
    substrate: Substrate,
    raw: RawParams,
    params_hash: u64,
    plan_cfg: PlanConfig,
    graph_exec: bool,
    batch_size: usize,
    registry: Mutex<Registry>,
    /// Tenant → device-shard placement (consistent hashing; migrates on
    /// sustained imbalance).
    router: Mutex<ShardRouter>,
    queue: Mutex<AdmissionQueue<Pending>>,
    pipeline: PipelineConfig,
    /// Serializes **admission epochs**: queue draining (so DRR credits
    /// snapshot at epoch boundaries), session resolution, graph capture
    /// and planning. Exactly one tick is being prepared at a time.
    prep_lock: Mutex<()>,
    /// Serializes **execution epochs**: replay of planned launches onto
    /// the simulated devices, the served-request counters, and migration
    /// decisions. Always acquired *after* `prep_lock` when a caller needs
    /// both (serial ticks, snapshot, restore, warmup) — plan-ahead's
    /// overlap takes them from sibling closures, never nested the other
    /// way, so the order is deadlock-free.
    exec_lock: Mutex<()>,
    /// Plan-ahead's double buffer: the tick prepared during the previous
    /// execution epoch, waiting for whoever runs the next tick.
    staged: Mutex<Option<PreparedTick>>,
    stats: Mutex<ServeStats>,
    /// Bounded LRU of planned batch graphs: steady-state ticks (same
    /// request mix, same programs) replay a cached plan with zero
    /// planning work.
    plan_cache: Mutex<PlanCache>,
}

/// A multi-tenant CKKS session server over one execution substrate.
///
/// Cloning is cheap — clones share the registry, queue and device, so a
/// clone per request thread is the intended usage.
///
/// See the [crate docs](crate) for the serving model and a quick-serve
/// example.
#[derive(Clone)]
pub struct Server {
    inner: Arc<ServerInner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field(
                "params_hash",
                &format_args!("{:#018x}", self.inner.params_hash),
            )
            .field("batch_size", &self.inner.batch_size)
            .field("sessions", &self.inner.registry.lock().len())
            .field("queued", &self.inner.queue.lock().len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Builds a server: constructs the substrate (device + shared context
    /// for gpu-sim) and derives the parameter fingerprint tenants must
    /// match.
    ///
    /// # Errors
    ///
    /// [`ServeError::Fides`] for invalid parameter sets.
    pub fn new(config: ServerConfig) -> Result<Self, ServeError> {
        let params = config.params;
        let raw = params.to_raw();
        let params_hash = params_fingerprint(&raw);
        let num_devices = params.num_devices.max(1);
        let graph_exec = params.graph_exec;
        let mut plan_cfg = PlanConfig {
            fuse_elementwise: params.fusion.elementwise,
            num_streams: params.num_streams,
            dep_schedule: params.sched_v2,
            devices: num_devices,
            ..PlanConfig::default()
        };
        let substrate = match config.backend {
            ServeBackend::GpuSim { device, mode } => {
                plan_cfg.cost = CostModel::from_spec(&device);
                let contexts: Vec<Arc<CkksContext>> = (0..num_devices)
                    .map(|_| {
                        let gpu = GpuSim::new(device.clone(), mode);
                        CkksContext::from_raw(params.clone(), raw.clone(), gpu)
                    })
                    .collect();
                let cluster = GpuCluster::from_devices(
                    contexts.iter().map(|c| Arc::clone(c.gpu())).collect(),
                    InterconnectSpec::pcie_gen4(),
                );
                Substrate::Gpu { contexts, cluster }
            }
            ServeBackend::Cpu { workers } => Substrate::Cpu {
                raw: raw.clone(),
                workers,
            },
        };
        Ok(Self {
            inner: Arc::new(ServerInner {
                substrate,
                raw,
                params_hash,
                plan_cfg,
                graph_exec,
                batch_size: config.batch_size.max(1),
                registry: Mutex::new(Registry::new(config.max_sessions)),
                router: Mutex::new(ShardRouter::new(num_devices)),
                queue: Mutex::new(AdmissionQueue::new(
                    config.qos,
                    config.admission_capacity.max(1),
                )),
                pipeline: config.pipeline,
                prep_lock: Mutex::new(()),
                exec_lock: Mutex::new(()),
                staged: Mutex::new(None),
                stats: Mutex::new(ServeStats::default()),
                plan_cache: Mutex::new(PlanCache::default()),
            }),
        })
    }

    /// Number of device shards the server runs
    /// ([`CkksParameters::num_devices`]; 1 on the CPU substrate's single
    /// worker).
    pub fn num_devices(&self) -> usize {
        match &self.inner.substrate {
            Substrate::Gpu { contexts, .. } => contexts.len(),
            Substrate::Cpu { .. } => 1,
        }
    }

    /// The fingerprint of the server's parameter chain (what
    /// [`SessionRequest::params_hash`] is checked against).
    pub fn params_hash(&self) -> u64 {
        self.inner.params_hash
    }

    /// The shared client/server parameter description.
    pub fn raw_params(&self) -> &RawParams {
        &self.inner.raw
    }

    /// Number of sessions currently resident in the registry.
    pub fn session_count(&self) -> usize {
        self.inner.registry.lock().len()
    }

    /// Snapshot of the serving counters. Per-device occupancy is sampled
    /// here from each shard's simulator ledger.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.inner.stats.lock().clone();
        s.sessions_evicted = self.inner.registry.lock().evicted();
        if let Substrate::Gpu { contexts, .. } = &self.inner.substrate {
            s.per_device_occupancy = contexts
                .iter()
                .map(|c| c.gpu().stats().stream_occupancy())
                .collect();
            s.per_device_requests.resize(contexts.len(), 0);
            s.per_device_launches.resize(contexts.len(), 0);
        }
        s
    }

    /// Simulated-device statistics (gpu-sim substrate; `None` on CPU).
    /// With multiple shards this is **device 0**; see
    /// [`Server::sim_stats_device`] for the others.
    pub fn sim_stats(&self) -> Option<SimStats> {
        self.sim_stats_device(0)
    }

    /// Simulated-device statistics for shard `device` (`None` on CPU or
    /// out of range).
    pub fn sim_stats_device(&self, device: usize) -> Option<SimStats> {
        match &self.inner.substrate {
            Substrate::Gpu { contexts, .. } => contexts.get(device).map(|c| c.gpu().stats()),
            Substrate::Cpu { .. } => None,
        }
    }

    /// Simulated makespan in µs (gpu-sim only): the **fleet** makespan —
    /// max over device syncs and the interconnect's free clock — so
    /// multi-device throughput divides by the slowest shard, not the
    /// mean.
    pub fn sync_us(&self) -> Option<f64> {
        match &self.inner.substrate {
            Substrate::Gpu { cluster, .. } => Some(cluster.sync_all()),
            Substrate::Cpu { .. } => None,
        }
    }

    /// Clears the simulated-device statistics ledgers (every shard and
    /// the link; no-op on the CPU substrate). Benchmarks call this after
    /// session setup so launch counts and stream occupancy measure the
    /// serving phase alone, not key loading.
    pub fn reset_sim_stats(&self) {
        if let Substrate::Gpu { cluster, .. } = &self.inner.substrate {
            cluster.reset_stats();
        }
    }

    /// Opens a session from a keygen upload: validates the tenant's
    /// parameter fingerprint, loads the evaluation keys into the
    /// substrate's native form, preloads the uploaded plaintexts into the
    /// evaluation-domain cache, and registers the tenant (evicting the LRU
    /// session when the registry is full). Returns the session id the
    /// tenant puts on its evaluation requests.
    ///
    /// # Errors
    ///
    /// [`ServeError::ParamsMismatch`] for a foreign chain,
    /// [`ServeError::Fides`] when key material fails to load.
    pub fn open_session(&self, req: SessionRequest) -> Result<u64, ServeError> {
        check_params_hash(self.inner.params_hash, req.params_hash)?;
        let device = match &self.inner.substrate {
            Substrate::Gpu { .. } => {
                // Place before loading: keys load straight into the home
                // shard's context. The upcoming session id keys the
                // consistent hash, and the key-frame size is the
                // placement's future migration cost.
                let key_bytes = req.to_bytes().len() as u64;
                let registry = self.inner.registry.lock();
                self.inner
                    .router
                    .lock()
                    .place(registry.next_id(), key_bytes)
            }
            Substrate::Cpu { .. } => 0,
        };
        let state = self.build_session(device, req)?;
        let id = self.inner.registry.lock().insert(state);
        self.inner.stats.lock().sessions_opened += 1;
        Ok(id)
    }

    /// Builds a tenant's session state on a given device shard: loads the
    /// evaluation keys into the substrate's native form and preloads the
    /// uploaded plaintexts. Shared by [`Server::open_session`] (placement
    /// chooses `device`) and [`Server::restore`] (the snapshot names it).
    fn build_session(
        &self,
        device: usize,
        req: SessionRequest,
    ) -> Result<SessionState, ServeError> {
        match &self.inner.substrate {
            Substrate::Gpu { contexts, .. } => {
                let (backend, plains) = Self::gpu_session(&contexts[device], &req)?;
                Ok(SessionState {
                    backend,
                    plains,
                    device,
                    upload: Some(req),
                })
            }
            Substrate::Cpu { raw, workers } => {
                let mut backend = CpuBackend::new(raw.clone());
                if let Some(workers) = workers {
                    backend = backend.with_workers(*workers);
                }
                if let Some(relin) = req.relin.clone() {
                    backend.set_relin_key(relin);
                }
                for (shift, key) in &req.rotations {
                    backend.insert_rotation_key(*shift, key.clone());
                }
                if let Some(conj) = req.conjugation.clone() {
                    backend.set_conj_key(conj);
                }
                let backend: Box<dyn EvalBackend> = Box::new(backend);
                let mut plains = Vec::with_capacity(req.plaintexts.len());
                for pt in &req.plaintexts {
                    plains.push(backend.load_plain(pt)?);
                }
                // The upload is retained on the CPU substrate too — it
                // never migrates, but snapshots serialize sessions from it.
                Ok(SessionState {
                    backend,
                    plains,
                    device: 0,
                    upload: Some(req),
                })
            }
        }
    }

    /// Loads a tenant's keys and plaintexts into one shard's context
    /// (shared by session-open and migration).
    fn gpu_session(
        ctx: &Arc<CkksContext>,
        req: &SessionRequest,
    ) -> Result<(Box<dyn EvalBackend>, Vec<BackendPt>), ServeError> {
        let keys = adapter::load_eval_keys(
            ctx,
            req.relin.as_ref(),
            &req.rotations,
            req.conjugation.as_ref(),
        )?;
        let backend: Box<dyn EvalBackend> = Box::new(GpuSimBackend::new(Arc::clone(ctx), keys));
        let mut plains = Vec::with_capacity(req.plaintexts.len());
        for pt in &req.plaintexts {
            plains.push(backend.load_plain(pt)?);
        }
        Ok((backend, plains))
    }

    /// [`Server::open_session`] over a serialized wire frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Client`] for malformed frames, then as
    /// [`Server::open_session`].
    pub fn open_session_bytes(&self, frame: &[u8]) -> Result<u64, ServeError> {
        self.open_session(SessionRequest::from_bytes(frame)?)
    }

    /// Closes a session, freeing its keys. Returns whether it was resident.
    pub fn close_session(&self, id: u64) -> bool {
        self.inner.router.lock().remove(id);
        self.inner.registry.lock().remove(id)
    }

    /// Enqueues a request without blocking; a later batch tick (from any
    /// thread) executes it. Redeem the ticket with [`Ticket::try_take`].
    ///
    /// Admission is **bounded**: when the queue is at
    /// [`ServerConfig::admission_capacity`] the request is load-shed
    /// immediately — never buffered without bound, never blocking the
    /// submitter.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] with `retry_after_ticks`, the server's
    /// estimate (`⌈queued / batch_size⌉`) of how many batch ticks must
    /// drain before a retry can be admitted.
    pub fn submit(&self, req: EvalRequest) -> Result<Ticket, ServeError> {
        let slot = Arc::new(Slot {
            resp: Mutex::new(None),
        });
        let session = req.session_id;
        let pending = Pending {
            req,
            slot: Arc::clone(&slot),
        };
        let shed_backlog = {
            let mut queue = self.inner.queue.lock();
            match queue.push(session, pending) {
                Ok(()) => None,
                Err(_) => Some(queue.len()),
            }
        };
        if let Some(queued) = shed_backlog {
            self.inner.stats.lock().shed += 1;
            let batch = self.inner.batch_size as u64;
            return Err(ServeError::Overloaded {
                retry_after_ticks: (queued as u64).div_ceil(batch),
            });
        }
        Ok(Ticket { slot })
    }

    /// Requests currently admitted but not yet served.
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Sets a session's weight for deficit-round-robin scheduling
    /// (default 1; no-op under [`QosPolicy::Fifo`]). A weight-`w` lane
    /// releases `w×` a weight-1 lane's requests per rotation round.
    pub fn set_session_weight(&self, session: u64, weight: u32) {
        self.inner.queue.lock().set_weight(session, weight);
    }

    /// Serializes the server's durable state as a versioned persist
    /// stream: the parameter fingerprint, the tenant registry (session
    /// ids, device homes, DRR weights, full key uploads) in LRU order,
    /// the shard router's committed placements, and every cached batch
    /// plan. Taken under both epoch locks, so the snapshot is a
    /// consistent point between batch ticks — never mid-admission and
    /// never mid-replay.
    ///
    /// Queued-but-unserved requests are deliberately *not* captured:
    /// clients hold their tickets and resubmit after a restart, exactly
    /// as they do after a load-shed. Under plan-ahead a *staged* tick
    /// (prepared but not yet executed) is the same story — its requests
    /// are unserved, its plans are already in the cache and therefore in
    /// the snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Client`] when the sink fails mid-write;
    /// [`ServeError::Snapshot`] when a resident session retains no key
    /// upload to serialize.
    pub fn snapshot<W: Write>(&self, w: W) -> Result<(), ServeError> {
        let _prep = self.inner.prep_lock.lock();
        let _exec = self.inner.exec_lock.lock();
        let (sessions, next_session_id) = {
            let registry = self.inner.registry.lock();
            (registry.export(), registry.next_id())
        };
        let weights: Vec<u32> = {
            let queue = self.inner.queue.lock();
            sessions
                .iter()
                .map(|(id, _)| queue.weight_of(*id))
                .collect()
        };
        let placements = self.inner.router.lock().export_placements();
        let plans = self.inner.plan_cache.lock().export_entries();

        let mut writer = RecordWriter::new(w)?;
        writer.record(
            kind::PARAMS,
            &ParamsRecord {
                params_hash: self.inner.params_hash,
            }
            .encode(),
        )?;
        writer.record(
            kind::SERVER,
            &ServerMetaRecord {
                num_devices: self.num_devices() as u32,
                next_session_id,
                sessions: sessions.len() as u32,
                plans: plans.len() as u32,
            }
            .encode(),
        )?;
        for ((id, state), weight) in sessions.iter().zip(&weights) {
            let upload = state.upload.clone().ok_or_else(|| {
                ServeError::Snapshot(format!("session {id} retains no key upload"))
            })?;
            writer.record(
                kind::SESSION,
                &SessionRecord {
                    id: *id,
                    device: state.device as u32,
                    weight: *weight,
                    upload,
                }
                .encode(),
            )?;
        }
        for (tenant, device, key_bytes) in placements {
            writer.record(
                kind::PLACEMENT,
                &PlacementRecord {
                    tenant,
                    device: device as u32,
                    key_bytes,
                }
                .encode(),
            )?;
        }
        for (fp, plan, binding) in plans {
            writer.record(kind::PLAN, &encode_plan_entry(fp, &plan, &binding))?;
        }
        writer.finish()?;
        Ok(())
    }

    /// Rebuilds durable state from a [`Server::snapshot`] stream onto
    /// this (typically freshly constructed, same-configuration) server:
    /// sessions are re-registered under their original ids with their
    /// keys re-loaded onto their snapshotted device homes, DRR weights
    /// and router placements are replayed, and cached plans land back in
    /// the plan cache marked warm — the first post-restore tick of a
    /// steady-state workload replays a cached plan with zero planning
    /// work. Returns the number of sessions restored.
    ///
    /// Restore is **atomic**: the whole stream is decoded and validated
    /// into staged state first, and nothing touches the registry, queue,
    /// router or plan cache until every record has checked out — a
    /// truncated or corrupted snapshot leaves the server exactly as it
    /// was.
    ///
    /// # Errors
    ///
    /// [`ServeError::ParamsMismatch`] when the snapshot was taken on a
    /// different parameter chain; [`ServeError::Client`] for a
    /// truncated, corrupted, or version-mismatched stream (the typed
    /// persist errors pass through); [`ServeError::Snapshot`] for a
    /// structurally invalid snapshot — wrong record order, device count
    /// or index mismatch, duplicate session ids, or record counts that
    /// disagree with the stream's own metadata.
    pub fn restore<R: Read>(&self, r: R) -> Result<u64, ServeError> {
        let _prep = self.inner.prep_lock.lock();
        let _exec = self.inner.exec_lock.lock();
        let mut reader = RecordReader::new(r)?;
        let params = match reader.next_record()? {
            Some(rec) if rec.kind == kind::PARAMS => ParamsRecord::decode(&rec.payload)?,
            Some(rec) => {
                return Err(ServeError::Snapshot(format!(
                    "expected params record first, found kind {}",
                    rec.kind
                )))
            }
            None => return Err(ServeError::Snapshot("empty snapshot stream".into())),
        };
        check_params_hash(self.inner.params_hash, params.params_hash)?;
        let meta = match reader.next_record()? {
            Some(rec) if rec.kind == kind::SERVER => ServerMetaRecord::decode(&rec.payload)?,
            Some(rec) => {
                return Err(ServeError::Snapshot(format!(
                    "expected server metadata second, found kind {}",
                    rec.kind
                )))
            }
            None => {
                return Err(ServeError::Snapshot(
                    "snapshot ends before server metadata".into(),
                ))
            }
        };
        if meta.num_devices as usize != self.num_devices() {
            return Err(ServeError::Snapshot(format!(
                "snapshot taken on {} device shards, this server runs {}",
                meta.num_devices,
                self.num_devices()
            )));
        }
        // Stage: decode and validate the whole stream without touching
        // live state. Session states are fully built here (keys loaded,
        // plaintexts preloaded) but owned by the stage — on any error
        // they simply drop and the server is untouched.
        let mut staged_sessions: Vec<(u64, u32, SessionState)> = Vec::new();
        let mut staged_placements: Vec<(u64, usize, u64)> = Vec::new();
        let mut staged_plans = Vec::new();
        while let Some(rec) = reader.next_record()? {
            match rec.kind {
                kind::SESSION => {
                    let sess = SessionRecord::decode(&rec.payload)?;
                    check_params_hash(self.inner.params_hash, sess.upload.params_hash)?;
                    let device = sess.device as usize;
                    if device >= self.num_devices() {
                        return Err(ServeError::Snapshot(format!(
                            "session {} homed on device {device}, server has {}",
                            sess.id,
                            self.num_devices()
                        )));
                    }
                    if staged_sessions.iter().any(|(id, _, _)| *id == sess.id)
                        || self.inner.registry.lock().contains(sess.id)
                    {
                        return Err(ServeError::Snapshot(format!(
                            "duplicate session id {}",
                            sess.id
                        )));
                    }
                    let state = self.build_session(device, sess.upload)?;
                    staged_sessions.push((sess.id, sess.weight, state));
                }
                kind::PLACEMENT => {
                    let p = PlacementRecord::decode(&rec.payload)?;
                    let device = p.device as usize;
                    if device >= self.num_devices() {
                        return Err(ServeError::Snapshot(format!(
                            "placement of tenant {} on device {device}, server has {}",
                            p.tenant,
                            self.num_devices()
                        )));
                    }
                    staged_placements.push((p.tenant, device, p.key_bytes));
                }
                kind::PLAN => {
                    staged_plans.push(decode_plan_entry(&rec.payload)?);
                }
                other => {
                    return Err(ServeError::Snapshot(format!(
                        "unexpected record kind {other} in server snapshot"
                    )))
                }
            }
        }
        let restored_sessions = staged_sessions.len() as u64;
        if restored_sessions != u64::from(meta.sessions)
            || staged_plans.len() as u64 != u64::from(meta.plans)
        {
            return Err(ServeError::Snapshot(format!(
                "snapshot metadata declares {} sessions and {} plans, stream carried \
                 {restored_sessions} and {}",
                meta.sessions,
                meta.plans,
                staged_plans.len()
            )));
        }
        // Commit: the stream checked out end to end; replay the staged
        // state in snapshot order. Duplicate ids were rejected above, so
        // every insert lands.
        for (id, weight, state) in staged_sessions {
            self.inner.registry.lock().insert_with_id(id, state);
            if weight != 1 {
                self.inner.queue.lock().set_weight(id, weight);
            }
        }
        for (tenant, device, key_bytes) in staged_placements {
            self.inner.router.lock().assign(tenant, device, key_bytes);
        }
        for (fp, plan, binding) in staged_plans {
            self.inner
                .plan_cache
                .lock()
                .restore_entry(fp, plan, binding);
        }
        self.inner
            .registry
            .lock()
            .ensure_next_id(meta.next_session_id);
        self.inner.stats.lock().restored_sessions += restored_sessions;
        Ok(restored_sessions)
    }

    /// Primes the plan cache by recording and planning synthetic batches:
    /// each [`WarmupShape`] is one tick's request mix, served with all-zero
    /// input ciphertexts at the chain top (kernels are data-oblivious, so
    /// the recorded graph — and therefore the plan fingerprint — is
    /// shape-identical to a live tick of the same mix). Primed entries are
    /// marked warm; a matching live tick hits the cache immediately and
    /// counts in [`ServeStats::warm_plan_hits`]. Returns the number of
    /// plans newly built; the CPU substrate and eager (non-graph)
    /// execution have nothing to prime and return 0.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a shape naming a session that is
    /// not resident; [`ServeError::Client`] for a program that fails
    /// validation; [`ServeError::Snapshot`] when a shape's synthetic batch
    /// fails to execute.
    pub fn warmup(&self, shapes: &[WarmupShape]) -> Result<usize, ServeError> {
        let _prep = self.inner.prep_lock.lock();
        let _exec = self.inner.exec_lock.lock();
        let Substrate::Gpu { .. } = &self.inner.substrate else {
            return Ok(0);
        };
        if !self.inner.graph_exec {
            return Ok(0);
        }
        let planned_before = self.inner.plan_cache.lock().misses();
        for shape in shapes {
            let resolved: Vec<(Pending, Option<Arc<SessionState>>)> = {
                let mut registry = self.inner.registry.lock();
                shape
                    .requests
                    .iter()
                    .map(|(session_id, program, slots)| {
                        let session = registry
                            .touch(*session_id)
                            .ok_or(ServeError::UnknownSession(*session_id))?;
                        program.validate(session.plains.len())?;
                        let req = EvalRequest {
                            session_id: *session_id,
                            inputs: (0..program.inputs)
                                .map(|_| {
                                    Self::zero_ciphertext(
                                        &self.inner.raw,
                                        session.backend.as_ref(),
                                        *slots,
                                    )
                                })
                                .collect(),
                            program: program.clone(),
                        };
                        Ok((
                            Pending {
                                req,
                                slot: Arc::new(Slot {
                                    resp: Mutex::new(None),
                                }),
                            },
                            Some(session),
                        ))
                    })
                    .collect::<Result<_, ServeError>>()?
            };
            // Synthetic ticks ride the same two epochs as live traffic
            // (both locks are held across the whole warmup): prepare
            // records and plans the batch, execute replays it so the
            // primed timeline matches a live tick's.
            let tick = self.prepare_resolved(resolved, true);
            self.execute_tick(&tick);
            if let Some(err) = tick.responses.into_iter().find_map(|r| r.error) {
                return Err(ServeError::Snapshot(format!("warmup shape failed: {err}")));
            }
        }
        let planned_after = self.inner.plan_cache.lock().misses();
        Ok((planned_after - planned_before) as usize)
    }

    /// A syntactically valid all-zero ciphertext at the chain top. The
    /// graph recorded while evaluating it is shape-identical to a live
    /// fresh-encryption request's, which is all a warmup needs.
    fn zero_ciphertext(raw: &RawParams, backend: &dyn EvalBackend, slots: usize) -> RawCiphertext {
        let level = backend.max_level();
        RawCiphertext {
            c0: RawPoly::zero(raw.n(), level + 1, Domain::Eval),
            c1: RawPoly::zero(raw.n(), level + 1, Domain::Eval),
            level,
            scale: backend.standard_scale(level),
            slots,
            noise_log2: 0.0,
        }
    }

    /// Runs one batch tick: drains up to `batch_size` queued requests,
    /// executes them as one merged graph per device shard (gpu-sim
    /// substrate with graph execution on), and fills their tickets.
    /// Returns how many requests the tick served.
    ///
    /// The tick runs as two epochs — admission (drain + record + plan)
    /// under `prep_lock`, execution (replay) under `exec_lock` — and the
    /// response flush happens after both locks release. With
    /// [`PipelineConfig::plan_ahead`] on, the two epochs of *consecutive*
    /// ticks overlap: while this call replays its batch, a sibling
    /// closure prepares the next one and stages it for the next caller.
    pub fn run_tick(&self) -> usize {
        if !self.inner.pipeline.plan_ahead {
            // Serial tick: both epochs back to back under their locks —
            // exactly the classic single-lock tick, with the response
            // flush moved off-lock.
            let prep = self.inner.prep_lock.lock();
            let Some(tick) = self.prepare_tick() else {
                return 0;
            };
            {
                let _exec = self.inner.exec_lock.lock();
                self.execute_tick(&tick);
            }
            drop(prep);
            return self.flush_tick(tick);
        }
        // Plan-ahead: take the staged tick (or prepare one inline on the
        // first call), then overlap its execution epoch with the next
        // tick's admission epoch.
        let tick = {
            let _prep = self.inner.prep_lock.lock();
            match self.inner.staged.lock().take() {
                Some(staged) => Some(staged),
                None => self.prepare_tick(),
            }
        };
        let Some(tick) = tick else {
            return 0;
        };
        let ((), next) = rayon::join(
            || {
                let _exec = self.inner.exec_lock.lock();
                self.execute_tick(&tick);
            },
            || {
                let _prep = self.inner.prep_lock.lock();
                self.prepare_tick()
            },
        );
        if next.is_some() {
            self.inner.stats.lock().overlapped_ticks += 1;
        }
        let mut served = self.flush_tick(tick);
        if let Some(next_tick) = next {
            let spare = {
                let mut staged = self.inner.staged.lock();
                if staged.is_none() {
                    *staged = Some(next_tick);
                    None
                } else {
                    Some(next_tick)
                }
            };
            // A racing caller staged its own tick first: execute the
            // spare immediately instead of dropping prepared work.
            if let Some(spare) = spare {
                {
                    let _exec = self.inner.exec_lock.lock();
                    self.execute_tick(&spare);
                }
                served += self.flush_tick(spare);
            }
        }
        served
    }

    /// Blocking evaluation: enqueues the request and drives batch ticks
    /// until its response is ready. Concurrent callers' requests batch into
    /// shared ticks — N threads blocked here produce multi-request graphs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when admission load-sheds the request
    /// (see [`Server::submit`]); the caller should retry after the hinted
    /// number of ticks.
    pub fn eval(&self, req: EvalRequest) -> Result<EvalResponse, ServeError> {
        let ticket = self.submit(req)?;
        Ok(self.drive(&ticket))
    }

    /// Drives batch ticks until an admitted ticket's response is ready.
    fn drive(&self, ticket: &Ticket) -> EvalResponse {
        loop {
            if let Some(resp) = ticket.try_take() {
                return resp;
            }
            if self.run_tick() == 0 {
                // Nothing left to drain, so our request is inside
                // another caller's in-flight tick: wait for that
                // execution epoch to finish (its flush fills our slot
                // just after the lock releases), then re-check.
                drop(self.inner.exec_lock.lock());
                std::thread::yield_now();
            }
        }
    }

    /// [`Server::eval`] over serialized wire frames: parses an
    /// [`EvalRequest`], serves it, and returns the serialized
    /// [`EvalResponse`] (parse failures and load-sheds come back as
    /// failed responses, so this never panics on attacker-controlled
    /// bytes). The socket front (`NetServer`) reports the same
    /// conditions as typed `Reject` frames instead.
    pub fn eval_bytes(&self, frame: &[u8]) -> Vec<u8> {
        match EvalRequest::from_bytes(frame) {
            Ok(req) => match self.eval(req) {
                Ok(resp) => resp.to_bytes(),
                Err(e) => EvalResponse::failed(e.to_string()).to_bytes(),
            },
            Err(e) => EvalResponse::failed(format!("malformed request: {e}")).to_bytes(),
        }
    }

    /// Admission epoch (caller holds `prep_lock`): drains up to
    /// `batch_size` queued requests — DRR lane credits snapshot at this
    /// epoch boundary, exactly as they did at the old tick boundary —
    /// resolves their sessions, and runs the record/plan pass. Returns
    /// `None` for an empty queue.
    fn prepare_tick(&self) -> Option<PreparedTick> {
        let batch: Vec<Pending> = self.inner.queue.lock().pop_batch(self.inner.batch_size);
        if batch.is_empty() {
            return None;
        }
        // Resolve sessions first (touching the LRU clock once per request);
        // the Arc keeps a session alive even if an open evicts it mid-batch.
        let resolved: Vec<(Pending, Option<Arc<SessionState>>)> = {
            let mut registry = self.inner.registry.lock();
            batch
                .into_iter()
                .map(|p| {
                    let session = registry.touch(p.req.session_id);
                    (p, session)
                })
                .collect()
        };
        Some(self.prepare_resolved(resolved, false))
    }

    /// Runs a resolved batch's record/plan pass. Functional math runs
    /// here — on the graphed path kernels are recorded, not timed — so
    /// every response is final before the execution epoch even starts;
    /// that is what makes overlapping execution with the next tick's
    /// preparation response-invariant.
    fn prepare_resolved(
        &self,
        resolved: Vec<(Pending, Option<Arc<SessionState>>)>,
        synthetic: bool,
    ) -> PreparedTick {
        match &self.inner.substrate {
            Substrate::Gpu { contexts, .. } if self.inner.graph_exec => {
                let (responses, shards) = self.capture_and_plan(contexts, &resolved, synthetic);
                PreparedTick {
                    resolved,
                    responses,
                    shards,
                    synthetic,
                }
            }
            _ => {
                let responses = resolved
                    .iter()
                    .map(|(p, session)| Self::serve_one(session.as_deref(), &p.req))
                    .collect();
                PreparedTick {
                    resolved,
                    responses,
                    shards: Vec::new(),
                    synthetic,
                }
            }
        }
    }

    /// Splits a resolved batch into per-device shards (each request goes
    /// to the device its session's keys live on), records every non-empty
    /// shard as its own merged graph — with a shard-local round-robin
    /// stream offset — on its own context, then plans the shards: cache
    /// lookups stay on the calling thread, and only misses fan out over
    /// the bounded rayon pool ([`plan_parallel`]). `Planner::plan` is a
    /// pure function of `(config, graph)`, so the fan-out produces plans
    /// identical to sequential planning at every worker count.
    /// Single-device servers take this path too — with one shard it is
    /// exactly the classic batched tick.
    fn capture_and_plan(
        &self,
        contexts: &[Arc<CkksContext>],
        batch: &[(Pending, Option<Arc<SessionState>>)],
        synthetic: bool,
    ) -> (Vec<EvalResponse>, Vec<ShardExec>) {
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); contexts.len()];
        for (i, (_, session)) in batch.iter().enumerate() {
            let device = session
                .as_ref()
                .map_or(0, |s| s.device.min(contexts.len() - 1));
            shards[device].push(i);
        }
        let mut responses: Vec<Option<EvalResponse>> = (0..batch.len()).map(|_| None).collect();
        struct ShardGraph {
            device: usize,
            graph: ExecGraph,
        }
        let mut graphs: Vec<ShardGraph> = Vec::new();
        for (device, shard) in shards.iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let gpu = contexts[device].gpu();
            let mut merged: Vec<GraphEvent> = Vec::new();
            for (pos, &i) in shard.iter().enumerate() {
                let (p, session) = &batch[i];
                let began = gpu.begin_capture();
                let resp = Self::serve_one(session.as_deref(), &p.req);
                if began {
                    merged.extend(offset_streams(gpu.end_capture(), pos));
                }
                responses[i] = Some(resp);
            }
            // Synthetic warmup batches stay out of the live request
            // counters — they prime plans, they do not serve tenants.
            if !synthetic {
                let mut stats = self.inner.stats.lock();
                if stats.per_device_requests.len() < contexts.len() {
                    stats.per_device_requests.resize(contexts.len(), 0);
                }
                stats.per_device_requests[device] += shard.len() as u64;
            }
            if !merged.is_empty() {
                graphs.push(ShardGraph {
                    device,
                    graph: ExecGraph::from_events(merged),
                });
            }
        }

        // Plan the shard graphs. Steady-state ticks repeat the same graph
        // *shapes* with fresh buffers: the structural fingerprint finds
        // the cached plan and rebinding replaces planning entirely.
        let plan_t0 = Instant::now();
        let mut execs: Vec<Option<ShardExec>> = graphs.iter().map(|_| None).collect();
        struct Miss {
            slot: usize,
            fp: u64,
            binding: Vec<BufferId>,
        }
        let mut misses: Vec<Miss> = Vec::new();
        let mut hits = 0u64;
        let mut warm_hits = 0u64;
        {
            // Cache lock released before the fan-out: planning a miss can
            // dwarf every lookup combined.
            let mut cache = self.inner.plan_cache.lock();
            for (slot, sg) in graphs.iter().enumerate() {
                let (fp, binding) = fingerprint(&sg.graph, &self.inner.plan_cfg);
                let warm = cache.is_warm(fp);
                match cache.lookup(fp, &binding) {
                    Some(plan) => {
                        hits += 1;
                        if warm {
                            warm_hits += 1;
                        }
                        execs[slot] = Some(ShardExec {
                            device: sg.device,
                            plan,
                            hit: true,
                        });
                    }
                    None => misses.push(Miss { slot, fp, binding }),
                }
            }
        }
        let miss_count = misses.len() as u64;
        let mut per_device_plan: Vec<(usize, u64)> = Vec::new();
        if !misses.is_empty() {
            let miss_graphs: Vec<&ExecGraph> =
                misses.iter().map(|m| &graphs[m.slot].graph).collect();
            let planned = plan_parallel(
                &self.inner.plan_cfg,
                &miss_graphs,
                self.inner.pipeline.plan_workers,
            );
            let mut cache = self.inner.plan_cache.lock();
            for (m, (plan, us)) in misses.into_iter().zip(planned) {
                cache.insert(m.fp, &plan, m.binding);
                if synthetic {
                    cache.mark_warm(m.fp);
                }
                cache.note_plan_us(us);
                per_device_plan.push((graphs[m.slot].device, us));
                execs[m.slot] = Some(ShardExec {
                    device: graphs[m.slot].device,
                    plan,
                    hit: false,
                });
            }
        }
        let plan_us = plan_t0.elapsed().as_micros() as u64;

        let execs: Vec<ShardExec> = execs
            .into_iter()
            .map(|e| e.expect("every shard graph was planned or fetched"))
            .collect();
        {
            let mut stats = self.inner.stats.lock();
            stats.plan_cache_hits += hits;
            stats.warm_plan_hits += warm_hits;
            stats.plan_cache_misses += miss_count;
            stats.plan_us += plan_us;
            for (device, us) in per_device_plan {
                if stats.per_device_plan_us.len() <= device {
                    stats.per_device_plan_us.resize(device + 1, 0);
                }
                stats.per_device_plan_us[device] += us;
            }
            for exec in &execs {
                stats.recorded_kernels += exec.plan.stats().recorded_kernels;
                stats.planned_launches += exec.plan.stats().planned_launches;
                stats.fused_kernels += exec.plan.stats().fused_kernels;
                if stats.per_device_launches.len() <= exec.device {
                    stats.per_device_launches.resize(exec.device + 1, 0);
                }
                stats.per_device_launches[exec.device] += exec.plan.stats().planned_launches;
            }
        }
        let responses = responses
            .into_iter()
            .map(|r| r.expect("every request landed in exactly one shard"))
            .collect();
        (responses, execs)
    }

    /// Execution epoch (caller holds `exec_lock`): replays every shard's
    /// planned launches onto its simulated device and accounts the tick's
    /// served traffic. Replay only advances the simulated timeline —
    /// responses were finalized in the admission epoch — so nothing here
    /// can change a frame.
    fn execute_tick(&self, tick: &PreparedTick) {
        let replay_us = match &self.inner.substrate {
            Substrate::Gpu { contexts, .. } => {
                let t0 = Instant::now();
                for shard in &tick.shards {
                    let gpu = contexts[shard.device].gpu();
                    gpu.record_plan_cache(shard.hit);
                    GpuReplayExecutor::new(gpu).execute(&shard.plan);
                }
                t0.elapsed().as_micros() as u64
            }
            // CPU substrate: the math already ran at prepare time; there
            // is no planned timeline to replay.
            Substrate::Cpu { .. } => 0,
        };
        if tick.synthetic {
            return;
        }
        {
            let mut stats = self.inner.stats.lock();
            stats.requests += tick.resolved.len() as u64;
            stats.batches += 1;
            stats.max_batch = stats.max_batch.max(tick.resolved.len());
            stats.failed += tick.responses.iter().filter(|r| r.error.is_some()).count() as u64;
            stats.replay_us += replay_us;
        }
        self.maybe_migrate(&tick.resolved);
    }

    /// Fills the tick's tickets — **off-lock**: both epoch locks are
    /// released before any slot is written, so response delivery (and,
    /// behind the socket front, frame serialization) never extends a
    /// tick's critical section. Returns how many requests the tick
    /// served.
    fn flush_tick(&self, tick: PreparedTick) -> usize {
        let served = tick.resolved.len();
        if tick.synthetic {
            return served;
        }
        let t0 = Instant::now();
        for ((p, _), resp) in tick.resolved.into_iter().zip(tick.responses) {
            *p.slot.resp.lock() = Some(resp);
        }
        self.note_flush_us(t0.elapsed().as_micros() as u64);
        served
    }

    /// Adds to the off-lock flush ledger (`ServeStats::flush_us`); the
    /// socket front also reports its frame serialization + enqueue time
    /// here.
    pub(crate) fn note_flush_us(&self, us: u64) {
        self.inner.stats.lock().flush_us += us;
    }

    /// After a tick, feeds the router the per-device request counts and —
    /// on a sustained-imbalance decision — re-homes the chosen tenant's
    /// keys on its new device, pricing the key frame on the interconnect.
    fn maybe_migrate(&self, batch: &[(Pending, Option<Arc<SessionState>>)]) {
        let Substrate::Gpu { contexts, cluster } = &self.inner.substrate else {
            return;
        };
        if contexts.len() < 2 {
            return;
        }
        let mut counts = vec![0u64; contexts.len()];
        for (_, session) in batch {
            if let Some(s) = session {
                counts[s.device.min(contexts.len() - 1)] += 1;
            }
        }
        let decision = self.inner.router.lock().observe_tick(&counts);
        let Some(Migration {
            tenant,
            from,
            to,
            key_bytes,
        }) = decision
        else {
            return;
        };
        let upload = {
            let mut registry = self.inner.registry.lock();
            registry.touch(tenant).and_then(|s| s.upload.clone())
        };
        let Some(upload) = upload else {
            // Session vanished (evicted between decision and commit):
            // forget the placement; a re-open re-places it.
            self.inner.router.lock().remove(tenant);
            return;
        };
        match Self::gpu_session(&contexts[to], &upload) {
            Ok((backend, plains)) => {
                self.inner.registry.lock().replace(
                    tenant,
                    SessionState {
                        backend,
                        plains,
                        device: to,
                        upload: Some(upload),
                    },
                );
                // The key frame crosses the link from the old home; the
                // new home's submission thread stalls until it lands.
                let ready = cluster.device(from).host_clock();
                let done = cluster.transfer(key_bytes, ready);
                cluster.device(to).advance_host_to(done);
                let mut stats = self.inner.stats.lock();
                stats.migrations += 1;
                stats.migration_bytes += key_bytes;
            }
            Err(_) => {
                // Keys failed to rebuild: keep serving from the old home.
                self.inner.router.lock().assign(tenant, from, key_bytes);
            }
        }
    }

    /// Serves one request against its session (functional math runs here;
    /// on the graphed path the kernels are being recorded, not timed).
    fn serve_one(session: Option<&SessionState>, req: &EvalRequest) -> EvalResponse {
        let Some(session) = session else {
            return EvalResponse::failed(ServeError::UnknownSession(req.session_id).to_string());
        };
        let backend = session.backend.as_ref();
        let run = || -> Result<Vec<RawCiphertext>, fides_core::FidesError> {
            let inputs = req
                .inputs
                .iter()
                .map(|raw| backend.load(raw))
                .collect::<Result<Vec<_>, _>>()?;
            let outs = fides_core::exec_program(backend, inputs, &session.plains, &req.program)?;
            outs.iter().map(|ct| backend.store(ct)).collect()
        };
        match run() {
            Ok(outputs) => EvalResponse::ok(outputs),
            Err(e) => EvalResponse::failed(e.to_string()),
        }
    }
}

/// Shifts every recorded stream (and fence endpoint) by the request's batch
/// index. The planner remaps streams modulo `num_streams`, so this is the
/// round-robin that spreads concurrent tenants across the device streams
/// instead of stacking every request's first limb batch on stream 0.
fn offset_streams(events: Vec<GraphEvent>, offset: usize) -> Vec<GraphEvent> {
    if offset == 0 {
        return events;
    }
    events
        .into_iter()
        .map(|ev| match ev {
            GraphEvent::Launch { stream, desc } => GraphEvent::Launch {
                stream: stream + offset,
                desc,
            },
            GraphEvent::Fence { signals, waiters } => GraphEvent::Fence {
                signals: signals.into_iter().map(|s| s + offset).collect(),
                waiters: waiters.into_iter().map(|s| s + offset).collect(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::{KernelDesc, KernelKind};

    #[test]
    fn offset_shifts_launches_and_fences() {
        let events = vec![
            GraphEvent::Launch {
                stream: 1,
                desc: KernelDesc::new(KernelKind::Elementwise),
            },
            GraphEvent::Fence {
                signals: vec![0, 1],
                waiters: vec![2],
            },
        ];
        let out = offset_streams(events, 3);
        match &out[0] {
            GraphEvent::Launch { stream, .. } => assert_eq!(*stream, 4),
            _ => panic!("expected launch"),
        }
        match &out[1] {
            GraphEvent::Fence { signals, waiters } => {
                assert_eq!(signals, &[3, 4]);
                assert_eq!(waiters, &[5]);
            }
            _ => panic!("expected fence"),
        }
    }

    #[test]
    fn zero_offset_is_identity() {
        let events = vec![GraphEvent::Launch {
            stream: 7,
            desc: KernelDesc::new(KernelKind::Fill),
        }];
        let out = offset_streams(events, 0);
        assert!(matches!(out[0], GraphEvent::Launch { stream: 7, .. }));
    }
}
