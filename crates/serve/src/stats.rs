//! Serving-layer counters.

/// Cumulative counters describing what the server has done; snapshot with
/// [`Server::stats`](crate::Server::stats).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Evaluation requests served (successful or failed).
    pub requests: u64,
    /// Requests that came back as failed responses.
    pub failed: u64,
    /// Batch ticks that executed at least one request.
    pub batches: u64,
    /// Largest batch a single tick executed.
    pub max_batch: usize,
    /// Sessions opened over the server's lifetime.
    pub sessions_opened: u64,
    /// Requests load-shed by the bounded admission queue (returned
    /// `Overloaded`, never queued).
    pub shed: u64,
    /// Sessions evicted by the registry's LRU bound.
    pub sessions_evicted: u64,
    /// Kernel nodes recorded across all batch graphs (gpu-sim substrate).
    pub recorded_kernels: u64,
    /// Kernel launches the batch plans actually issued.
    pub planned_launches: u64,
    /// Launches eliminated by elementwise fusion — including chains that
    /// fused **across tenant boundaries** inside a batch.
    pub fused_kernels: u64,
    /// Batch ticks whose plan came from the server's plan cache (zero
    /// planning work — the steady-state fast path).
    pub plan_cache_hits: u64,
    /// Batch ticks that ran the full planning pass.
    pub plan_cache_misses: u64,
    /// Requests served per device shard (index = device; length =
    /// `num_devices`, or 1 on the CPU substrate).
    pub per_device_requests: Vec<u64>,
    /// Planned kernel launches replayed per device shard.
    pub per_device_launches: Vec<u64>,
    /// Per-device stream occupancy over the stats window, filled at
    /// snapshot time from each device's simulator ledger (gpu-sim
    /// substrate; empty on CPU).
    pub per_device_occupancy: Vec<f64>,
    /// Sessions reconstructed from a snapshot stream by
    /// [`Server::restore`](crate::Server::restore) (key material re-loaded,
    /// ids and weights preserved).
    pub restored_sessions: u64,
    /// Plan-cache hits whose entry was pre-planned — restored from a
    /// snapshot or built by [`Server::warmup`](crate::Server::warmup) —
    /// rather than planned by earlier live traffic. A warm restart shows
    /// these on its very first ticks.
    pub warm_plan_hits: u64,
    /// Tenants migrated between devices on sustained load imbalance.
    pub migrations: u64,
    /// Key-material bytes re-uploaded over the interconnect by those
    /// migrations.
    pub migration_bytes: u64,
    /// Wall microseconds the admission epochs spent in planning sections
    /// (fingerprint, cache lookup, and the planning passes for misses).
    /// With parallel per-shard planning this is the *elapsed* time of the
    /// fan-out, not the sum of the workers' time — compare against
    /// [`ServeStats::per_device_plan_us`] to see the overlap.
    pub plan_us: u64,
    /// Wall microseconds each device shard's planning passes took,
    /// measured inside the (possibly parallel) per-shard pass. The sum is
    /// the sequential-equivalent planning cost; the per-tick max is the
    /// parallel critical path.
    pub per_device_plan_us: Vec<u64>,
    /// Wall microseconds execution epochs spent replaying planned
    /// launches onto the simulated devices.
    pub replay_us: u64,
    /// Wall microseconds spent flushing responses — filling ticket slots
    /// after the execution epoch released its lock, plus (behind the
    /// socket front) serializing and writing response frames. Never
    /// overlaps a tick lock by construction.
    pub flush_us: u64,
    /// Plan-ahead ticks whose execution epoch overlapped the *next*
    /// tick's admission epoch with real work on both sides — the
    /// double-buffering actually pipelining, not just enabled.
    pub overlapped_ticks: u64,
}

impl ServeStats {
    /// Mean requests per executed batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Fraction of planned ticks served from the plan cache.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_batch_handles_empty() {
        assert_eq!(ServeStats::default().mean_batch(), 0.0);
        let s = ServeStats {
            requests: 32,
            batches: 4,
            ..Default::default()
        };
        assert_eq!(s.mean_batch(), 8.0);
    }
}
