//! Multi-device placement invariants: where the router homes a tenant —
//! and whether it later migrates them — must never show up in the
//! response bytes.
//!
//! The serve layer shards tenants across simulated devices by consistent
//! hashing on the session id (key residency = placement). Since session
//! ids follow open order, *permuting the open order re-homes every
//! tenant*; these tests drive that axis and the migration path directly
//! and hold every response frame against a single-device reference.

use std::collections::BTreeMap;

use fides_api::CkksEngine;
use fides_client::wire::EvalRequest;
use fides_core::CkksParameters;
use fides_serve::{Server, ServerConfig, ShardRouter};
use fides_workloads::serve_lr::{synthetic_features, synthetic_model, ServeLrModel};

const DIM: usize = 16;
const LOG_N: usize = 10;
const LEVELS: usize = 6;
const TENANTS: usize = 6;
const REQS_PER_TENANT: usize = 2;

struct Tenant {
    model: ServeLrModel,
    session: fides_api::Session,
}

fn tenants() -> Vec<Tenant> {
    (0..TENANTS)
        .map(|t| {
            let model = synthetic_model(DIM, t as u64 + 1);
            let engine = CkksEngine::builder()
                .log_n(LOG_N)
                .levels(LEVELS)
                .scale_bits(40)
                .rotations(&model.required_rotations())
                .seed(700 + t as u64)
                .build()
                .unwrap();
            Tenant {
                model,
                session: engine.session(),
            }
        })
        .collect()
}

fn params(devices: usize) -> CkksParameters {
    CkksParameters::new(LOG_N, LEVELS, 40, 3)
        .unwrap()
        .with_num_devices(devices)
}

/// Opens every tenant's session in `open_order`; returns session ids in
/// canonical tenant order.
fn open_in_order(server: &Server, tenants: &[Tenant], open_order: &[usize]) -> Vec<u64> {
    let mut sids = vec![0u64; tenants.len()];
    for &t in open_order {
        let tenant = &tenants[t];
        let plains = tenant
            .model
            .session_plains(tenant.session.engine().max_level());
        let refs: Vec<(&[f64], usize)> = plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
        sids[t] = server
            .open_session(tenant.session.session_request(&refs).unwrap())
            .unwrap();
    }
    sids
}

/// The request mix, encrypted once (encryption is randomized) so every
/// server evaluates the same ciphertext bytes; session ids are rewritten
/// per server.
fn requests(tenants: &[Tenant], sids: &[u64]) -> Vec<(usize, usize, EvalRequest)> {
    let mut out = Vec::new();
    for (t, tenant) in tenants.iter().enumerate() {
        let program = tenant.model.scoring_program(0);
        for r in 0..REQS_PER_TENANT {
            let features = synthetic_features(DIM, t as u64, r as u64);
            out.push((
                t,
                r,
                tenant
                    .session
                    .eval_request(sids[t], &[&features], &program)
                    .unwrap(),
            ));
        }
    }
    out
}

fn serve_batch(
    server: &Server,
    reqs: &[(usize, usize, EvalRequest)],
    sids: &[u64],
) -> BTreeMap<(usize, usize), Vec<u8>> {
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(t, r, req)| {
            let mut req = req.clone();
            req.session_id = sids[*t];
            (*t, *r, server.submit(req).unwrap())
        })
        .collect();
    while server.run_tick() > 0 {}
    tickets
        .into_iter()
        .map(|(t, r, ticket)| {
            let resp = ticket.try_take().expect("served");
            assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
            ((t, r), resp.outputs[0].to_bytes())
        })
        .collect()
}

#[test]
fn frames_identical_across_device_counts_and_placements() {
    let tenants = tenants();

    // Reference: one device, canonical open order.
    let identity: Vec<usize> = (0..TENANTS).collect();
    let reference_server = Server::new(ServerConfig::new(params(1)).batch_size(16)).unwrap();
    let ref_sids = open_in_order(&reference_server, &tenants, &identity);
    let reqs = requests(&tenants, &ref_sids);
    let expected = serve_batch(&reference_server, &reqs, &ref_sids);

    // Every (device count, open order) combination must reproduce the
    // reference frames bit for bit. Reversing or rotating the open order
    // gives every tenant a different session id — and therefore a
    // different consistent-hash home shard.
    let rotated: Vec<usize> = (0..TENANTS).map(|t| (t + 3) % TENANTS).collect();
    let reversed: Vec<usize> = (0..TENANTS).rev().collect();
    let mut spread_seen = false;
    for devices in [2usize, 4] {
        for order in [&identity, &reversed, &rotated] {
            let server = Server::new(ServerConfig::new(params(devices)).batch_size(16)).unwrap();
            assert_eq!(server.num_devices(), devices);
            let sids = open_in_order(&server, &tenants, order);
            let got = serve_batch(&server, &reqs, &sids);
            assert_eq!(
                got, expected,
                "devices {devices}, open order {order:?}: frames drifted from single-device"
            );
            let per_device = server.stats().per_device_requests;
            assert_eq!(
                per_device.iter().sum::<u64>(),
                reqs.len() as u64,
                "every request must be accounted to a shard"
            );
            spread_seen |= per_device.iter().filter(|&&c| c > 0).count() >= 2;
        }
    }
    assert!(
        spread_seen,
        "no configuration sharded the batch across two devices — the test is vacuous"
    );
}

#[test]
fn sustained_imbalance_migrates_tenant_without_changing_frames() {
    let tenants = tenants();
    let server = Server::new(ServerConfig::new(params(2)).batch_size(16)).unwrap();
    let identity: Vec<usize> = (0..TENANTS).collect();
    let sids = open_in_order(&server, &tenants, &identity);
    let reqs = requests(&tenants, &sids);

    // The router is deterministic bookkeeping over session ids, so a
    // probe router replays the server's placement decisions exactly.
    let mut probe = ShardRouter::new(2);
    let homes: Vec<usize> = sids.iter().map(|&sid| probe.place(sid, 0)).collect();
    let hot = usize::from(homes.iter().filter(|&&d| d == 1).count() > TENANTS / 2);
    let hot_tenants: Vec<usize> = (0..TENANTS).filter(|&t| homes[t] == hot).collect();
    assert!(
        hot_tenants.len() >= 2,
        "placements {homes:?} left no hot shard"
    );

    // Pre-migration reference frames for the hot tenants' requests.
    let expected: Vec<Vec<u8>> = hot_tenants
        .iter()
        .map(|&t| {
            let resp = server.eval(reqs[t * REQS_PER_TENANT].2.clone()).unwrap();
            assert!(resp.error.is_none());
            resp.outputs[0].to_bytes()
        })
        .collect();
    assert_eq!(
        server.stats().migrations,
        0,
        "reference evals must not migrate"
    );

    // Drive sustained imbalance: every tick serves two requests, both on
    // the hot shard. After four consecutive imbalanced ticks the router
    // moves the hot shard's cheapest tenant and the server re-uploads its
    // keys over the cluster link.
    for _ in 0..4 {
        let a = server
            .submit(reqs[hot_tenants[0] * REQS_PER_TENANT].2.clone())
            .unwrap();
        let b = server
            .submit(reqs[hot_tenants[1] * REQS_PER_TENANT].2.clone())
            .unwrap();
        assert_eq!(server.run_tick(), 2);
        assert!(a.try_take().unwrap().error.is_none());
        assert!(b.try_take().unwrap().error.is_none());
    }
    let stats = server.stats();
    assert_eq!(
        stats.migrations, 1,
        "4 sustained imbalanced ticks move one tenant"
    );
    assert!(stats.migration_bytes > 0, "the key re-upload is priced");

    // The moved tenant now evaluates on the other device — with freshly
    // re-loaded keys — and every hot tenant's response is still
    // bit-identical to its pre-migration frame.
    for (i, &t) in hot_tenants.iter().enumerate() {
        let resp = server.eval(reqs[t * REQS_PER_TENANT].2.clone()).unwrap();
        assert!(resp.error.is_none());
        assert_eq!(
            resp.outputs[0].to_bytes(),
            expected[i],
            "tenant {t}: migration changed response frames"
        );
    }
}
