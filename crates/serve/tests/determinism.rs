//! The serving layer's correctness bar: batched multi-tenant execution is
//! **bit-identical** to the same requests served one at a time, and to the
//! same circuits run on a fresh single-tenant engine — across thread
//! interleavings, worker counts and batch sizes.
//!
//! This holds structurally (CKKS server kernels are data-oblivious, so the
//! batch schedule affects only timing), and these tests pin the structure
//! down frame-byte by frame-byte.

use std::collections::BTreeMap;

use fides_api::CkksEngine;
use fides_client::wire::EvalRequest;
use fides_core::CkksParameters;
use fides_serve::{ServeBackend, Server, ServerConfig};
use fides_workloads::serve_lr::{synthetic_features, synthetic_model, ServeLrModel};

const DIM: usize = 16;
const LOG_N: usize = 10;
const LEVELS: usize = 6;

struct Tenant {
    model: ServeLrModel,
    session: fides_api::Session,
}

fn tenants(n: usize) -> Vec<Tenant> {
    (0..n)
        .map(|t| {
            let model = synthetic_model(DIM, t as u64 + 1);
            let engine = CkksEngine::builder()
                .log_n(LOG_N)
                .levels(LEVELS)
                .scale_bits(40)
                .rotations(&model.required_rotations())
                .seed(500 + t as u64)
                .build()
                .unwrap();
            Tenant {
                model,
                session: engine.session(),
            }
        })
        .collect()
}

/// Device count under test: the `FIDES_DEVICES` axis of the CI matrix.
/// Every test in this suite must produce bit-identical frames at any
/// device count — sharding tenants across simulated devices changes the
/// schedule, never the math.
fn num_devices() -> usize {
    std::env::var("FIDES_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn params() -> CkksParameters {
    CkksParameters::new(LOG_N, LEVELS, 40, 3)
        .unwrap()
        .with_num_devices(num_devices())
}

/// Kernel launches summed over every device shard (at one device this is
/// exactly `sim_stats()`).
fn total_launches(server: &Server) -> u64 {
    (0..server.num_devices())
        .map(|d| server.sim_stats_device(d).unwrap().kernel_launches)
        .sum()
}

fn open_all(server: &Server, tenants: &[Tenant]) -> Vec<u64> {
    tenants
        .iter()
        .map(|t| {
            let plains = t.model.session_plains(t.session.engine().max_level());
            let refs: Vec<(&[f64], usize)> =
                plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
            server
                .open_session(t.session.session_request(&refs).unwrap())
                .unwrap()
        })
        .collect()
}

/// The tenant's requests, pre-encrypted once so every server (and the
/// engine reference) evaluates the *same* ciphertext bytes.
fn requests(
    tenants: &[Tenant],
    sids: &[u64],
    per_tenant: usize,
) -> Vec<(usize, usize, EvalRequest)> {
    let mut out = Vec::new();
    for (t, tenant) in tenants.iter().enumerate() {
        let program = tenant.model.scoring_program(0);
        for r in 0..per_tenant {
            let features = synthetic_features(DIM, t as u64, r as u64);
            let req = tenant
                .session
                .eval_request(sids[t], &[&features], &program)
                .unwrap();
            out.push((t, r, req));
        }
    }
    out
}

/// Serves every request through `server` from `threads` OS threads with
/// interleaved hand-offs, returning output frames keyed by (tenant,
/// request).
fn serve_threaded(
    server: &Server,
    reqs: &[(usize, usize, EvalRequest)],
    threads: usize,
) -> BTreeMap<(usize, usize), Vec<Vec<u8>>> {
    let results = std::sync::Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let results = &results;
            let server = server.clone();
            let mine: Vec<_> = reqs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % threads == worker)
                .map(|(_, x)| x)
                .collect();
            scope.spawn(move || {
                for (t, r, req) in mine {
                    let resp = server.eval(req.clone()).unwrap();
                    assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
                    let frames: Vec<Vec<u8>> =
                        resp.outputs.iter().map(|ct| ct.to_bytes()).collect();
                    results.lock().unwrap().insert((*t, *r), frames);
                }
            });
        }
    });
    results.into_inner().unwrap()
}

#[test]
fn batched_bit_identical_to_serial_and_engine() {
    let tenants = tenants(3);
    let per_tenant = 2;

    // Reference: every request evaluated on its own fresh engine via
    // eval_program (single-tenant, no server, no batching).
    let batched_server = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let serial_server = Server::new(ServerConfig::new(params()).batch_size(1)).unwrap();
    let b_sids = open_all(&batched_server, &tenants);
    let s_sids = open_all(&serial_server, &tenants);
    let reqs = requests(&tenants, &b_sids, per_tenant);

    // Batched: everything queued, then drained in one tick of 6.
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(t, r, req)| (*t, *r, batched_server.submit(req.clone()).unwrap()))
        .collect();
    assert_eq!(batched_server.run_tick(), 6, "one tick serves the queue");

    for (t, r, ticket) in &tickets {
        let batched = ticket.try_take().expect("served");
        assert!(batched.error.is_none());

        // Serial: same wire request (session ids match by construction).
        let mut serial_req = reqs
            .iter()
            .find(|(tt, rr, _)| tt == t && rr == r)
            .unwrap()
            .2
            .clone();
        serial_req.session_id = s_sids[*t];
        let serial = serial_server.eval(serial_req).unwrap();
        assert!(serial.error.is_none());
        assert_eq!(
            batched.outputs.len(),
            serial.outputs.len(),
            "tenant {t} request {r}"
        );
        for (a, b) in batched.outputs.iter().zip(&serial.outputs) {
            assert_eq!(a.to_bytes(), b.to_bytes(), "batched vs serial frames");
        }

        // Engine: the same ciphertext inputs through eval_program on the
        // tenant's own engine (same keys — the session exported them).
        let tenant = &tenants[*t];
        let engine = tenant.session.engine();
        let (_, _, wire_req) = reqs.iter().find(|(tt, rr, _)| tt == t && rr == r).unwrap();
        let inputs: Vec<_> = wire_req
            .inputs
            .iter()
            .map(|raw| fides_api::Ct::from_backend(engine, engine.backend().load(raw).unwrap(), 1))
            .collect();
        // The engine and session layers share one padding policy, so
        // preload_plain over the same values gives the identical encoding
        // the session uploaded.
        let weights = tenant.model.session_plains(engine.max_level());
        let plains: Vec<_> = weights
            .iter()
            .map(|(v, l)| engine.preload_plain(v, *l).unwrap())
            .collect();
        let outs = engine
            .eval_program(&inputs, &plains, &wire_req.program)
            .unwrap();
        for (a, b) in batched.outputs.iter().zip(&outs) {
            assert_eq!(
                a.to_bytes(),
                b.to_raw().unwrap().to_bytes(),
                "batched vs single-tenant engine frames (tenant {t} request {r})"
            );
        }
    }
}

#[test]
fn threads_interleaved_match_serial_across_batch_sizes() {
    let tenants = tenants(4);
    let per_tenant = 2;

    // The serial reference: batch size 1, single thread.
    let reference = Server::new(ServerConfig::new(params()).batch_size(1)).unwrap();
    let ref_sids = open_all(&reference, &tenants);
    let reqs = requests(&tenants, &ref_sids, per_tenant);
    let mut expected = BTreeMap::new();
    for (t, r, req) in &reqs {
        let resp = reference.eval(req.clone()).unwrap();
        assert!(resp.error.is_none());
        expected.insert(
            (*t, *r),
            resp.outputs
                .iter()
                .map(|ct| ct.to_bytes())
                .collect::<Vec<_>>(),
        );
    }

    for batch_size in [1usize, 16] {
        let server = Server::new(ServerConfig::new(params()).batch_size(batch_size)).unwrap();
        let sids = open_all(&server, &tenants);
        // Rewrite session ids for this server (fresh registry).
        let mut my_reqs = reqs.clone();
        for (t, _, req) in &mut my_reqs {
            req.session_id = sids[*t];
        }
        let got = serve_threaded(&server, &my_reqs, 4);
        assert_eq!(
            got, expected,
            "batch size {batch_size}: threaded frames drifted from serial"
        );
        let stats = server.stats();
        assert_eq!(stats.requests, reqs.len() as u64);
        assert_eq!(stats.failed, 0);
    }
}

#[test]
fn cpu_substrate_matches_gpu_across_worker_counts() {
    let tenants = tenants(2);
    let per_tenant = 2;

    let gpu = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let gpu_sids = open_all(&gpu, &tenants);
    let reqs = requests(&tenants, &gpu_sids, per_tenant);
    let mut expected = BTreeMap::new();
    for (t, r, req) in &reqs {
        let resp = gpu.eval(req.clone()).unwrap();
        assert!(resp.error.is_none());
        expected.insert(
            (*t, *r),
            resp.outputs
                .iter()
                .map(|ct| ct.to_bytes())
                .collect::<Vec<_>>(),
        );
    }

    // The CPU reference substrate must produce the same frames at every
    // worker count (the FIDES_WORKERS axis of the CI matrix, pinned
    // explicitly here).
    for workers in [1usize, 8] {
        for batch_size in [1usize, 16] {
            let server = Server::new(
                ServerConfig::new(params())
                    .backend(ServeBackend::Cpu {
                        workers: Some(workers),
                    })
                    .batch_size(batch_size),
            )
            .unwrap();
            let sids = open_all(&server, &tenants);
            let mut my_reqs = reqs.clone();
            for (t, _, req) in &mut my_reqs {
                req.session_id = sids[*t];
            }
            let got = serve_threaded(&server, &my_reqs, 4);
            assert_eq!(
                got, expected,
                "cpu workers {workers} batch {batch_size}: frames drifted from gpu-sim"
            );
        }
    }
}

#[test]
fn cross_tenant_batching_strictly_reduces_launches() {
    let tenants = tenants(4);
    let per_tenant = 4; // 16 requests total

    let batched = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let serial = Server::new(ServerConfig::new(params()).batch_size(1)).unwrap();
    let b_sids = open_all(&batched, &tenants);
    let s_sids = open_all(&serial, &tenants);
    let reqs = requests(&tenants, &b_sids, per_tenant);

    // Launch deltas measured from after session setup, so key loading
    // doesn't blur the comparison. Launches are summed over shards so the
    // comparison holds at every point of the FIDES_DEVICES matrix.
    let b_before = total_launches(&batched);
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(_, _, req)| batched.submit(req.clone()).unwrap())
        .collect();
    assert_eq!(batched.run_tick(), 16);
    let b_launches = total_launches(&batched) - b_before;
    let mut batched_frames = Vec::new();
    for ticket in &tickets {
        let resp = ticket.try_take().unwrap();
        assert!(resp.error.is_none());
        batched_frames.push(resp.outputs[0].to_bytes());
    }

    let s_before = total_launches(&serial);
    let mut serial_frames = Vec::new();
    for (t, _, req) in &reqs {
        let mut req = req.clone();
        req.session_id = s_sids[*t];
        let resp = serial.eval(req).unwrap();
        assert!(resp.error.is_none());
        serial_frames.push(resp.outputs[0].to_bytes());
    }
    let s_launches = total_launches(&serial) - s_before;

    assert_eq!(batched_frames, serial_frames, "results must not change");
    assert!(
        b_launches < s_launches,
        "batch-16 must strictly reduce sim launches: batched {b_launches} vs serial {s_launches}"
    );
    let stats = batched.stats();
    assert!(
        stats.fused_kernels > 0,
        "fusion must engage across the batch"
    );
    assert_eq!(stats.max_batch, 16);
}

#[test]
fn plan_cache_steady_state_hits_and_invalidation() {
    // Steady state: the same batch shape tick after tick. Tick 1 plans
    // (miss); every later tick must replay the cached plan (hit) — and
    // the responses must stay bit-identical to the planned tick's, since
    // a cache hit replays a *rebound* plan over fresh buffers.
    //
    // Pinned to one device: each shard plans its own merged graph, so the
    // miss/hit counts below are per-shard quantities. Topology keying of
    // the cache (N=1 plan never replays at N=2) is pinned by fides-core's
    // partition fingerprint tests; cross-placement frame identity by the
    // `placement` suite.
    let tenants = tenants(2);
    let server =
        Server::new(ServerConfig::new(params().with_num_devices(1)).batch_size(16)).unwrap();
    let sids = open_all(&server, &tenants);
    let reqs = requests(&tenants, &sids, 4); // 8 requests per tick

    let mut reference: Option<Vec<Vec<u8>>> = None;
    for tick in 0..16 {
        let tickets: Vec<_> = reqs
            .iter()
            .map(|(_, _, req)| server.submit(req.clone()).unwrap())
            .collect();
        assert_eq!(
            server.run_tick(),
            reqs.len(),
            "tick {tick} drains the batch"
        );
        let frames: Vec<Vec<u8>> = tickets
            .iter()
            .map(|t| {
                let resp = t.try_take().expect("served");
                assert!(resp.error.is_none());
                resp.outputs[0].to_bytes()
            })
            .collect();
        match &reference {
            None => reference = Some(frames),
            Some(reference) => assert_eq!(
                &frames, reference,
                "tick {tick}: cached-plan replay changed results"
            ),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.plan_cache_misses, 1, "only the first tick plans");
    assert_eq!(
        stats.plan_cache_hits, 15,
        "steady-state ticks hit the cache"
    );
    assert!(
        stats.plan_cache_hit_rate() >= 0.90,
        "steady-state hit rate {:.2} below the 90% bar",
        stats.plan_cache_hit_rate()
    );

    // Graph-shape change: a tick with a different request mix must miss.
    let ticket = server.submit(reqs[0].2.clone()).unwrap();
    assert_eq!(server.run_tick(), 1);
    assert!(ticket.try_take().unwrap().error.is_none());
    assert_eq!(
        server.stats().plan_cache_misses,
        2,
        "a different batch shape must re-plan"
    );

    // Config changes key the cache too: a server with a different stream
    // count or fusion config fingerprints the same recording differently
    // (pinned by fides-core's `config_affects_fingerprint` unit test), so
    // its first identical-shape tick plans from scratch.
    let other = Server::new(
        ServerConfig::new(
            params()
                .with_num_devices(1)
                .with_num_streams(2)
                .with_fusion(fides_core::FusionConfig {
                    elementwise: false,
                    ..fides_core::FusionConfig::default()
                }),
        )
        .batch_size(16),
    )
    .unwrap();
    let other_sids = open_all(&other, &tenants);
    let mut other_reqs = reqs.clone();
    for (t, _, req) in &mut other_reqs {
        req.session_id = other_sids[*t];
    }
    let tickets: Vec<_> = other_reqs
        .iter()
        .map(|(_, _, req)| other.submit(req.clone()).unwrap())
        .collect();
    assert_eq!(other.run_tick(), other_reqs.len());
    let other_frames: Vec<Vec<u8>> = tickets
        .iter()
        .map(|t| t.try_take().unwrap().outputs[0].to_bytes())
        .collect();
    assert_eq!(other.stats().plan_cache_misses, 1);
    assert_eq!(
        Some(other_frames),
        reference,
        "scheduling config must never change results"
    );
}

#[test]
fn sched_v2_off_matches_v2_on_frames() {
    // The v1 (modulo-remap) scheduler is the A/B baseline: disabling
    // scheduler v2 changes only the replayed timing, never the frames.
    // Requests are encrypted once (encryption is randomized) and replayed
    // against both servers with rewritten session ids.
    let tenants = tenants(2);
    let seed_server = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let seed_sids = open_all(&seed_server, &tenants);
    let reqs = requests(&tenants, &seed_sids, 2);
    let mut frames = Vec::new();
    for sched_v2 in [true, false] {
        let server =
            Server::new(ServerConfig::new(params().with_sched_v2(sched_v2)).batch_size(16))
                .unwrap();
        let sids = open_all(&server, &tenants);
        let mut my_reqs = reqs.clone();
        for (t, _, req) in &mut my_reqs {
            req.session_id = sids[*t];
        }
        let tickets: Vec<_> = my_reqs
            .iter()
            .map(|(_, _, req)| server.submit(req.clone()).unwrap())
            .collect();
        assert_eq!(server.run_tick(), reqs.len());
        frames.push(
            tickets
                .iter()
                .map(|t| {
                    let resp = t.try_take().unwrap();
                    assert!(resp.error.is_none());
                    resp.outputs[0].to_bytes()
                })
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(frames[0], frames[1], "scheduler v2 on/off frames diverged");
}

#[test]
fn registry_evicts_lru_and_rejects_foreign_chains() {
    let tenants = tenants(3);
    let server = Server::new(ServerConfig::new(params()).max_sessions(2)).unwrap();
    let sids = open_all(&server, &tenants);
    assert_eq!(server.session_count(), 2, "bounded registry");
    // Tenant 0 was the LRU victim: its requests now fail cleanly.
    let reqs = requests(&tenants, &sids, 1);
    let resp = server.eval(reqs[0].2.clone()).unwrap();
    assert!(
        resp.error
            .as_deref()
            .unwrap_or("")
            .contains("unknown session"),
        "evicted session must fail cleanly, got {:?}",
        resp.error
    );
    // Later tenants still work.
    let resp = server.eval(reqs[2].2.clone()).unwrap();
    assert!(resp.error.is_none());

    // A foreign parameter chain is rejected before key loading.
    let foreign = CkksEngine::builder()
        .log_n(LOG_N)
        .levels(LEVELS - 1)
        .seed(1)
        .build()
        .unwrap();
    let err = server.open_session(foreign.session().session_request(&[]).unwrap());
    assert!(matches!(
        err,
        Err(fides_serve::ServeError::ParamsMismatch { .. })
    ));
    assert_eq!(server.stats().sessions_evicted, 1);
}

/// Plan-ahead double buffering is frame-invariant: overlapping tick N's
/// execution epoch with tick N+1's admission epoch must leave every
/// response frame byte-identical to the serial tick engine — under
/// single-threaded tick driving and under racing eval threads, at every
/// point of the FIDES_WORKERS × FIDES_DEVICES matrix. (The QoS suite
/// pins the flood scenario's tick-for-tick schedule separately.)
#[test]
fn plan_ahead_frames_match_serial_ticks() {
    use fides_serve::PipelineConfig;
    let tenants = tenants(3);
    let per_tenant = 3;

    // Serial reference: plan-ahead explicitly off (immune to the
    // FIDES_PLAN_AHEAD matrix axis).
    let serial = Server::new(
        ServerConfig::new(params())
            .batch_size(4)
            .pipeline(PipelineConfig::default().plan_ahead(false)),
    )
    .unwrap();
    let s_sids = open_all(&serial, &tenants);
    let reqs = requests(&tenants, &s_sids, per_tenant);
    let mut expected = BTreeMap::new();
    for (t, r, req) in &reqs {
        let resp = serial.eval(req.clone()).unwrap();
        assert!(resp.error.is_none());
        expected.insert(
            (*t, *r),
            resp.outputs
                .iter()
                .map(|ct| ct.to_bytes())
                .collect::<Vec<_>>(),
        );
    }

    // Pipelined, single driver: queue everything, then drain — the first
    // run_tick stages tick N+1 while tick N replays, so with 9 requests
    // at batch 4 the double buffer is exercised on every call.
    let pipelined = Server::new(
        ServerConfig::new(params())
            .batch_size(4)
            .pipeline(PipelineConfig::default().plan_ahead(true)),
    )
    .unwrap();
    let p_sids = open_all(&pipelined, &tenants);
    let mut my_reqs = reqs.clone();
    for (t, _, req) in &mut my_reqs {
        req.session_id = p_sids[*t];
    }
    let tickets: Vec<_> = my_reqs
        .iter()
        .map(|(t, r, req)| (*t, *r, pipelined.submit(req.clone()).unwrap()))
        .collect();
    let mut served = 0;
    while served < my_reqs.len() {
        served += pipelined.run_tick();
    }
    assert_eq!(
        served,
        my_reqs.len(),
        "plan-ahead drained exactly the queue"
    );
    for (t, r, ticket) in &tickets {
        let resp = ticket.try_take().expect("ticket filled after the drain");
        assert!(resp.error.is_none());
        let frames: Vec<Vec<u8>> = resp.outputs.iter().map(|ct| ct.to_bytes()).collect();
        assert_eq!(
            Some(&frames),
            expected.get(&(*t, *r)),
            "plan-ahead changed frames (tenant {t} request {r})"
        );
    }
    let stats = pipelined.stats();
    assert_eq!(stats.requests, my_reqs.len() as u64);
    assert!(
        stats.overlapped_ticks >= 1,
        "a multi-tick drain must engage the double buffer"
    );

    // Pipelined, racing eval threads: the staged-tick handoff under
    // contention must not reorder or alter results either.
    let racing = Server::new(
        ServerConfig::new(params())
            .batch_size(4)
            .pipeline(PipelineConfig::default().plan_ahead(true)),
    )
    .unwrap();
    let r_sids = open_all(&racing, &tenants);
    let mut race_reqs = reqs.clone();
    for (t, _, req) in &mut race_reqs {
        req.session_id = r_sids[*t];
    }
    let got = serve_threaded(&racing, &race_reqs, 4);
    assert_eq!(
        got, expected,
        "racing plan-ahead frames drifted from serial"
    );
}

/// The network front preserves the determinism bar end to end: N client
/// threads over **real sockets** — each opening its session and
/// pipelining its requests through frames, the event loop, the admission
/// queue and the DRR scheduler — get responses byte-identical to the
/// same requests through the in-process `eval` path. Worker counts and
/// device counts come from the CI matrix (`FIDES_WORKERS` ×
/// `FIDES_DEVICES`), like every other test in this suite.
#[test]
fn socket_serving_matches_in_process() {
    use fides_client::net::NetClient;
    use fides_serve::{NetServer, NetServerConfig};

    let tenants = tenants(3);
    let per_tenant = 2;

    // In-process reference.
    let reference = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let ref_sids = open_all(&reference, &tenants);
    let reqs = requests(&tenants, &ref_sids, per_tenant);
    let mut expected = BTreeMap::new();
    for (t, r, req) in &reqs {
        let resp = reference.eval(req.clone()).unwrap();
        assert!(resp.error.is_none());
        expected.insert((*t, *r), resp.to_bytes());
    }

    // Socket server over a fresh Server with the same chain.
    let server = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let (addr, shutdown, join) =
        NetServer::spawn(server, "127.0.0.1:0", NetServerConfig::default()).unwrap();

    // One client thread per tenant: open a session over the socket, then
    // pipeline the tenant's whole burst on one connection.
    let got = std::sync::Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for (t, tenant) in tenants.iter().enumerate() {
            let got = &got;
            let reqs = &reqs;
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let plains = tenant
                    .model
                    .session_plains(tenant.session.engine().max_level());
                let refs: Vec<(&[f64], usize)> =
                    plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
                let sid = client
                    .open_session(&tenant.session.session_request(&refs).unwrap())
                    .unwrap();
                let mut mine: Vec<(usize, EvalRequest)> = reqs
                    .iter()
                    .filter(|(tt, _, _)| *tt == t)
                    .map(|(_, r, req)| (*r, req.clone()))
                    .collect();
                for (_, req) in &mut mine {
                    req.session_id = sid;
                }
                let burst: Vec<EvalRequest> = mine.iter().map(|(_, rq)| rq.clone()).collect();
                let resps = client.eval_pipelined(&burst).unwrap();
                for ((r, _), resp) in mine.iter().zip(resps) {
                    let resp = resp.expect("admitted and served");
                    assert!(
                        resp.error.is_none(),
                        "socket request failed: {:?}",
                        resp.error
                    );
                    got.lock().unwrap().insert((t, *r), resp.to_bytes());
                }
            });
        }
    });
    shutdown.shutdown();
    join.join().unwrap();

    assert_eq!(
        got.into_inner().unwrap(),
        expected,
        "socket frames drifted from the in-process eval path"
    );
}
