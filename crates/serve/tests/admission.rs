//! Fault-injection tests for bounded admission: filling the queue past
//! capacity must load-shed with a typed `Overloaded` (and a meaningful
//! retry hint) — never block, never deadlock, never drop an admitted
//! request — and once the backlog drains, service resumes with frames
//! identical to a run that never shed.

use fides_api::CkksEngine;
use fides_client::wire::{EvalRequest, OpProgram, ProgramOp};
use fides_core::CkksParameters;
use fides_serve::{QosPolicy, ServeError, Server, ServerConfig};

const LOG_N: usize = 10;
const LEVELS: usize = 3;
const BATCH: usize = 2;
const CAPACITY: usize = 4;

fn square_program() -> OpProgram {
    let mut p = OpProgram::new(1);
    let sq = p.push(ProgramOp::Square { a: 0 });
    p.output(sq);
    p
}

fn server() -> Server {
    let params = CkksParameters::new(LOG_N, LEVELS, 40, 3).unwrap();
    Server::new(
        ServerConfig::new(params)
            .batch_size(BATCH)
            .admission_capacity(CAPACITY)
            .qos(QosPolicy::default()),
    )
    .unwrap()
}

fn open_tenant(server: &Server) -> (fides_api::Session, u64) {
    let engine = CkksEngine::builder()
        .log_n(LOG_N)
        .levels(LEVELS)
        .scale_bits(40)
        .seed(77)
        .build()
        .unwrap();
    let session = engine.session();
    let sid = server
        .open_session(session.session_request(&[]).unwrap())
        .unwrap();
    (session, sid)
}

fn requests(session: &fides_api::Session, sid: u64, n: usize) -> Vec<EvalRequest> {
    let program = square_program();
    (0..n)
        .map(|r| {
            let x = 0.2 + 0.01 * r as f64;
            session.eval_request(sid, &[&[x, -x]], &program).unwrap()
        })
        .collect()
}

/// Fill to capacity, overflow, drain, refill: the full shed lifecycle,
/// all from one thread — nothing here may block.
#[test]
fn overflow_sheds_typed_error_then_recovers() {
    let server = server();
    let (session, sid) = open_tenant(&server);
    let reqs = requests(&session, sid, CAPACITY + 3);

    // Fill exactly to capacity: all admitted.
    let tickets: Vec<_> = reqs[..CAPACITY]
        .iter()
        .map(|r| server.submit(r.clone()).expect("under capacity"))
        .collect();
    assert_eq!(server.queued(), CAPACITY);

    // Overflow: typed shed with the backlog-drain estimate, immediately.
    match server.submit(reqs[CAPACITY].clone()) {
        Err(ServeError::Overloaded { retry_after_ticks }) => {
            assert_eq!(
                retry_after_ticks,
                (CAPACITY as u64).div_ceil(BATCH as u64),
                "hint must be the backlog in ticks"
            );
        }
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("expected Overloaded, got admission"),
    }
    // The blocking path sheds identically rather than waiting.
    assert!(matches!(
        server.eval(reqs[CAPACITY + 1].clone()),
        Err(ServeError::Overloaded { .. })
    ));
    assert_eq!(server.stats().shed, 2);
    // Shedding dropped nothing that was admitted.
    assert_eq!(server.queued(), CAPACITY);

    // Drain exactly the promised number of ticks.
    let hint = (CAPACITY as u64).div_ceil(BATCH as u64);
    for _ in 0..hint {
        assert_eq!(server.run_tick(), BATCH);
    }
    assert_eq!(server.queued(), 0);
    for t in &tickets {
        let resp = t.try_take().expect("admitted request must complete");
        assert!(resp.error.is_none());
    }

    // Post-shed service is healthy: the previously shed request now
    // admits and evaluates.
    let resp = server.eval(reqs[CAPACITY].clone()).unwrap();
    assert!(resp.error.is_none());
}

/// Shedding is invisible to results: a request served after a shed
/// episode returns frames byte-identical to the same request on a
/// server that never overflowed.
#[test]
fn post_shed_frames_match_never_shed_run() {
    let shed_server = server();
    let (session, sid) = open_tenant(&shed_server);
    let reqs = requests(&session, sid, CAPACITY + 2);

    // Induce a shed episode, then drain.
    for r in &reqs[..CAPACITY] {
        shed_server.submit(r.clone()).unwrap();
    }
    assert!(shed_server.submit(reqs[CAPACITY].clone()).is_err());
    while shed_server.queued() > 0 {
        shed_server.run_tick();
    }
    let after_shed = shed_server.eval(reqs[CAPACITY + 1].clone()).unwrap();

    // The same request on an identical server that never overflowed.
    let clean_server = server();
    let clean_sid = clean_server
        .open_session(session.session_request(&[]).unwrap())
        .unwrap();
    let mut clean_req = reqs[CAPACITY + 1].clone();
    clean_req.session_id = clean_sid;
    let clean = clean_server.eval(clean_req).unwrap();
    assert_eq!(
        after_shed.to_bytes(),
        clean.to_bytes(),
        "a shed episode must not perturb later results"
    );
}

/// Concurrent submitters racing a full queue: every submit returns
/// promptly (admitted or shed — no blocking, no deadlock), the admitted
/// count never exceeds capacity, and every admitted request completes.
#[test]
fn concurrent_overflow_never_deadlocks() {
    let server = server();
    let (session, sid) = open_tenant(&server);
    let reqs = requests(&session, sid, 24);

    let outcomes = std::sync::Mutex::new((0usize, 0usize)); // (admitted, shed)
    std::thread::scope(|scope| {
        for chunk in reqs.chunks(6) {
            let server = server.clone();
            let outcomes = &outcomes;
            scope.spawn(move || {
                for req in chunk {
                    match server.submit(req.clone()) {
                        Ok(ticket) => {
                            outcomes.lock().unwrap().0 += 1;
                            // Drive the queue so admitted work completes
                            // and capacity frees for the other threads.
                            loop {
                                if ticket.try_take().is_some() {
                                    break;
                                }
                                server.run_tick();
                            }
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            outcomes.lock().unwrap().1 += 1;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });
    let (admitted, shed) = *outcomes.lock().unwrap();
    assert_eq!(admitted + shed, reqs.len(), "every submit returned");
    assert_eq!(server.stats().requests, admitted as u64);
    assert_eq!(server.stats().shed, shed as u64);
    assert_eq!(server.queued(), 0, "nothing left stranded");
}
