//! The restart axis of the determinism matrix: killing a server
//! mid-workload, restoring its snapshot into a fresh process-equivalent
//! `Server`, and continuing the workload must be **invisible in the
//! frames** — every post-restore response is byte-identical to an
//! uninterrupted run — and the restored plan cache is warm, so the first
//! post-restore tick replans nothing.
//!
//! Like the rest of the suite, everything here must hold at every point
//! of the CI matrix (`FIDES_WORKERS` × `FIDES_DEVICES`).

use std::collections::BTreeMap;

use fides_api::CkksEngine;
use fides_client::wire::EvalRequest;
use fides_core::CkksParameters;
use fides_serve::{ServeBackend, ServeError, Server, ServerConfig, WarmupShape};
use fides_workloads::serve_lr::{synthetic_features, synthetic_model, ServeLrModel};

const DIM: usize = 16;
const LOG_N: usize = 10;
const LEVELS: usize = 6;

struct Tenant {
    model: ServeLrModel,
    session: fides_api::Session,
}

fn tenants(n: usize) -> Vec<Tenant> {
    (0..n)
        .map(|t| {
            let model = synthetic_model(DIM, t as u64 + 1);
            let engine = CkksEngine::builder()
                .log_n(LOG_N)
                .levels(LEVELS)
                .scale_bits(40)
                .rotations(&model.required_rotations())
                .seed(700 + t as u64)
                .build()
                .unwrap();
            Tenant {
                model,
                session: engine.session(),
            }
        })
        .collect()
}

fn num_devices() -> usize {
    std::env::var("FIDES_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn num_workers() -> usize {
    std::env::var("FIDES_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn params() -> CkksParameters {
    CkksParameters::new(LOG_N, LEVELS, 40, 3)
        .unwrap()
        .with_num_devices(num_devices())
}

fn open_all(server: &Server, tenants: &[Tenant]) -> Vec<u64> {
    tenants
        .iter()
        .map(|t| {
            let plains = t.model.session_plains(t.session.engine().max_level());
            let refs: Vec<(&[f64], usize)> =
                plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
            server
                .open_session(t.session.session_request(&refs).unwrap())
                .unwrap()
        })
        .collect()
}

/// Pre-encrypted requests (encryption is randomized, so every server must
/// see the *same* ciphertext bytes for frames to be comparable).
fn requests(
    tenants: &[Tenant],
    sids: &[u64],
    per_tenant: usize,
) -> Vec<(usize, usize, EvalRequest)> {
    let mut out = Vec::new();
    for (t, tenant) in tenants.iter().enumerate() {
        let program = tenant.model.scoring_program(0);
        for r in 0..per_tenant {
            let features = synthetic_features(DIM, t as u64, r as u64);
            let req = tenant
                .session
                .eval_request(sids[t], &[&features], &program)
                .unwrap();
            out.push((t, r, req));
        }
    }
    out
}

fn rewrite_sids(
    reqs: &[(usize, usize, EvalRequest)],
    sids: &[u64],
) -> Vec<(usize, usize, EvalRequest)> {
    let mut out = reqs.to_vec();
    for (t, _, req) in &mut out {
        req.session_id = sids[*t];
    }
    out
}

/// One batched tick over the whole request mix, returning output frames
/// keyed by (tenant, request).
fn serve_round(
    server: &Server,
    reqs: &[(usize, usize, EvalRequest)],
) -> BTreeMap<(usize, usize), Vec<Vec<u8>>> {
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(t, r, req)| (*t, *r, server.submit(req.clone()).unwrap()))
        .collect();
    assert_eq!(server.run_tick(), reqs.len(), "the tick drains the batch");
    tickets
        .iter()
        .map(|(t, r, ticket)| {
            let resp = ticket.try_take().expect("served");
            assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
            (
                (*t, *r),
                resp.outputs.iter().map(|ct| ct.to_bytes()).collect(),
            )
        })
        .collect()
}

#[test]
fn kill_and_restore_mid_workload_is_invisible_in_frames() {
    let tenants = tenants(3);
    let per_tenant = 2;
    let rounds = 4;
    let interrupt_after = 2;

    // Uninterrupted reference: one server serves every round.
    let reference = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let ref_sids = open_all(&reference, &tenants);
    let reqs = requests(&tenants, &ref_sids, per_tenant);
    let expected: Vec<_> = (0..rounds)
        .map(|_| serve_round(&reference, &reqs))
        .collect();
    // Steady state: identical batch shape every round, so the reference
    // frames repeat exactly (pinned so the comparison below is honest).
    for round in 1..rounds {
        assert_eq!(expected[round], expected[0], "reference drifted by round");
    }

    // The interrupted run: serve the first rounds, then snapshot ("kill").
    let victim = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let victim_sids = open_all(&victim, &tenants);
    let my_reqs = rewrite_sids(&reqs, &victim_sids);
    for exp in expected.iter().take(interrupt_after) {
        assert_eq!(
            &serve_round(&victim, &my_reqs),
            exp,
            "pre-interrupt frames must match the reference"
        );
    }
    let mut image = Vec::new();
    victim.snapshot(&mut image).expect("snapshot");
    drop(victim);

    // A fresh same-config server restores the image and continues.
    let restored = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let n = restored.restore(&image[..]).expect("restore");
    assert_eq!(n, tenants.len() as u64, "every session restored");
    let stats = restored.stats();
    assert_eq!(stats.restored_sessions, tenants.len() as u64);
    assert_eq!(stats.plan_cache_misses, 0, "restore itself plans nothing");

    // Session ids survive the restart verbatim: the same wire requests
    // work unmodified.
    for exp in expected.iter().skip(interrupt_after) {
        assert_eq!(
            &serve_round(&restored, &my_reqs),
            exp,
            "post-restore frames drifted from the uninterrupted run"
        );
    }

    // The restored cache was warm: the first post-restore tick replayed
    // restored plans instead of planning.
    let stats = restored.stats();
    assert_eq!(
        stats.plan_cache_misses, 0,
        "warm restart must not replan the steady-state shape"
    );
    assert!(
        stats.plan_cache_hits >= 1,
        "post-restore ticks hit the cache"
    );
    assert!(
        stats.warm_plan_hits >= 1,
        "hits must land on restored (warm) entries"
    );
}

/// A snapshot taken while a plan-ahead server holds a *staged* tick —
/// the double buffer has tick N+1 prepared but not executed — is still a
/// consistent epoch boundary. Staged requests are unserved work: like
/// queued requests they are not part of the image (their clients
/// resubmit after the restart, exactly as after a load-shed), while the
/// plans built while preparing them are already in the cache and restore
/// warm. Post-restore frames continue byte-identical to an uninterrupted
/// run.
#[test]
fn snapshot_between_epochs_restores_warm() {
    use fides_serve::PipelineConfig;
    let tenants = tenants(2);
    let per_tenant = 2; // 4 requests at batch 2 → two ticks per round

    // Uninterrupted serial reference: same pop order, same tick shapes.
    let reference = Server::new(
        ServerConfig::new(params())
            .batch_size(2)
            .pipeline(PipelineConfig::default().plan_ahead(false)),
    )
    .unwrap();
    let ref_sids = open_all(&reference, &tenants);
    let reqs = requests(&tenants, &ref_sids, per_tenant);
    let expected: BTreeMap<(usize, usize), Vec<Vec<u8>>> = {
        let tickets: Vec<_> = reqs
            .iter()
            .map(|(t, r, req)| (*t, *r, reference.submit(req.clone()).unwrap()))
            .collect();
        let mut served = 0;
        while served < reqs.len() {
            served += reference.run_tick();
        }
        tickets
            .iter()
            .map(|(t, r, ticket)| {
                let resp = ticket.try_take().expect("served");
                assert!(resp.error.is_none());
                (
                    (*t, *r),
                    resp.outputs.iter().map(|ct| ct.to_bytes()).collect(),
                )
            })
            .collect()
    };

    // The victim: plan-ahead on. One run_tick executes the first batch
    // of 2 AND stages the second — then the "kill" lands between epochs.
    let config = || {
        ServerConfig::new(params())
            .batch_size(2)
            .pipeline(PipelineConfig::default().plan_ahead(true))
    };
    let victim = Server::new(config()).unwrap();
    let victim_sids = open_all(&victim, &tenants);
    let my_reqs = rewrite_sids(&reqs, &victim_sids);
    let tickets: Vec<_> = my_reqs
        .iter()
        .map(|(t, r, req)| (*t, *r, victim.submit(req.clone()).unwrap()))
        .collect();
    assert_eq!(victim.run_tick(), 2, "one tick executes one batch");
    let stats = victim.stats();
    assert!(
        stats.overlapped_ticks >= 1,
        "the second batch must have been prepared during the first's replay"
    );
    assert_eq!(victim.queued(), 0, "the staged batch left the queue");
    let filled = tickets
        .iter()
        .filter_map(|(t, r, ticket)| ticket.try_take().map(|resp| (*t, *r, resp)))
        .collect::<Vec<_>>();
    assert_eq!(filled.len(), 2, "only the executed batch's tickets fill");
    for (t, r, resp) in &filled {
        assert!(resp.error.is_none());
        let frames: Vec<Vec<u8>> = resp.outputs.iter().map(|ct| ct.to_bytes()).collect();
        assert_eq!(
            Some(&frames),
            expected.get(&(*t, *r)),
            "pre-snapshot frames must match the reference"
        );
    }
    let mut image = Vec::new();
    victim
        .snapshot(&mut image)
        .expect("snapshot with a staged tick");
    drop(victim); // the staged tick dies with the process, unserved

    // A fresh same-config server restores warm; the staged requests'
    // clients resubmit everything still outstanding. Resubmitting the
    // full round reproduces the reference pop order.
    let restored = Server::new(config()).unwrap();
    assert_eq!(restored.restore(&image[..]).unwrap(), tenants.len() as u64);
    assert_eq!(
        restored.stats().plan_cache_misses,
        0,
        "restore itself plans nothing"
    );
    let tickets: Vec<_> = my_reqs
        .iter()
        .map(|(t, r, req)| (*t, *r, restored.submit(req.clone()).unwrap()))
        .collect();
    let mut served = 0;
    while served < my_reqs.len() {
        served += restored.run_tick();
    }
    for (t, r, ticket) in &tickets {
        let resp = ticket.try_take().expect("served after restore");
        assert!(resp.error.is_none());
        let frames: Vec<Vec<u8>> = resp.outputs.iter().map(|ct| ct.to_bytes()).collect();
        assert_eq!(
            Some(&frames),
            expected.get(&(*t, *r)),
            "post-restore frames drifted (tenant {t} request {r})"
        );
    }
    let stats = restored.stats();
    assert_eq!(
        stats.plan_cache_misses, 0,
        "both tick shapes — executed and staged — were in the snapshot"
    );
    assert!(
        stats.warm_plan_hits >= 1,
        "post-restore ticks hit restored (warm) entries"
    );
}

#[test]
fn cpu_substrate_snapshot_restores_across_worker_counts() {
    let tenants = tenants(2);
    let config = || {
        ServerConfig::new(params())
            .backend(ServeBackend::Cpu {
                workers: Some(num_workers()),
            })
            .batch_size(16)
    };
    let victim = Server::new(config()).unwrap();
    let sids = open_all(&victim, &tenants);
    let reqs = requests(&tenants, &sids, 2);
    let expected = serve_round(&victim, &reqs);
    let mut image = Vec::new();
    victim.snapshot(&mut image).expect("cpu snapshot");

    let restored = Server::new(config()).unwrap();
    assert_eq!(restored.restore(&image[..]).unwrap(), tenants.len() as u64);
    assert_eq!(
        serve_round(&restored, &reqs),
        expected,
        "cpu restore changed frames"
    );
}

#[test]
fn warmup_primes_the_first_tick_without_changing_frames() {
    let tenants = tenants(2);
    let per_tenant = 2;

    // Reference: a cold server's first tick (plans from scratch).
    let cold = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let cold_sids = open_all(&cold, &tenants);
    let reqs = requests(&tenants, &cold_sids, per_tenant);
    let expected = serve_round(&cold, &reqs);
    assert!(cold.stats().plan_cache_misses >= 1, "cold tick plans");

    // Warmed: declare the upcoming batch shape, then serve the real batch.
    let warm = Server::new(ServerConfig::new(params()).batch_size(16)).unwrap();
    let warm_sids = open_all(&warm, &tenants);
    let shape = WarmupShape {
        requests: tenants
            .iter()
            .enumerate()
            .flat_map(|(t, tenant)| {
                let sid = warm_sids[t];
                let program = tenant.model.scoring_program(0);
                (0..per_tenant)
                    .map(|_| (sid, program.clone(), DIM))
                    .collect::<Vec<_>>()
            })
            .collect(),
    };
    let planned = warm.warmup(&[shape]).expect("warmup");
    assert!(planned >= 1, "warmup must build at least one plan");
    let after_warmup = warm.stats();

    let my_reqs = rewrite_sids(&reqs, &warm_sids);
    let got = serve_round(&warm, &my_reqs);
    assert_eq!(got, expected, "warmup must never change results");

    let stats = warm.stats();
    assert_eq!(
        stats.plan_cache_misses, after_warmup.plan_cache_misses,
        "the warmed tick must not plan"
    );
    assert!(
        stats.warm_plan_hits > after_warmup.warm_plan_hits,
        "the warmed tick hits a warm entry"
    );

    // Unknown sessions are a typed error; the CPU substrate has no graphs
    // to prime and reports 0.
    let missing = WarmupShape {
        requests: vec![(9999, tenants[0].model.scoring_program(0), DIM)],
    };
    assert!(matches!(
        warm.warmup(&[missing]),
        Err(ServeError::UnknownSession(9999))
    ));
    let cpu =
        Server::new(ServerConfig::new(params()).backend(ServeBackend::Cpu { workers: Some(1) }))
            .unwrap();
    let cpu_sids = open_all(&cpu, &tenants[..1]);
    let shape = WarmupShape {
        requests: vec![(cpu_sids[0], tenants[0].model.scoring_program(0), DIM)],
    };
    assert_eq!(cpu.warmup(&[shape]).unwrap(), 0);
}

#[test]
fn restore_rejects_mismatch_truncation_and_corruption() {
    let tenants = tenants(1);
    let server = Server::new(ServerConfig::new(params())).unwrap();
    let _sids = open_all(&server, &tenants);
    let mut image = Vec::new();
    server.snapshot(&mut image).expect("snapshot");

    // Foreign chain: typed params mismatch, nothing restored.
    let foreign = Server::new(ServerConfig::new(
        CkksParameters::new(LOG_N, LEVELS - 1, 40, 3)
            .unwrap()
            .with_num_devices(num_devices()),
    ))
    .unwrap();
    assert!(matches!(
        foreign.restore(&image[..]),
        Err(ServeError::ParamsMismatch { .. })
    ));
    assert_eq!(foreign.session_count(), 0);

    // Truncation and bit corruption: typed errors, never panics — and
    // restore is atomic, so a failed restore leaves no partial state
    // behind (no half-registered sessions, no warm plans).
    let fresh = || Server::new(ServerConfig::new(params())).unwrap();
    for cut in [0, 7, image.len() / 2, image.len() - 1] {
        let s = fresh();
        assert!(s.restore(&image[..cut]).is_err(), "truncated to {cut}");
        assert_eq!(s.session_count(), 0, "truncation to {cut} half-committed");
        assert_eq!(s.stats().restored_sessions, 0);
    }
    let step = (image.len() / 64).max(1);
    for i in (0..image.len()).step_by(step) {
        let mut bad = image.clone();
        bad[i] ^= 0x40;
        let s = fresh();
        assert!(
            s.restore(&bad[..]).is_err(),
            "byte {i} corruption restored cleanly"
        );
        assert_eq!(s.session_count(), 0, "byte {i} corruption half-committed");
    }
}
