//! The persist-format compatibility lane: the golden v1 fixtures
//! committed under `crates/baselines/fixtures/` must decode — typed,
//! payload and all — on every CI run, and any corruption of the
//! committed bytes must surface as a typed error, never a panic or
//! garbage state.
//!
//! The fixtures were produced by `cargo run --bin persist_fixtures`
//! (fides-bench); regenerate them only on a deliberate `FORMAT_VERSION`
//! bump. If this suite fails after a codec change, the change broke
//! format v1 on disk and would orphan every existing snapshot.

use fides_client::persist::{
    kind, KeySetRecord, ParamsRecord, PlacementRecord, PlaintextRecord, RecordReader,
    ServerMetaRecord, SessionRecord,
};
use fides_client::wire::{OpProgram, ProgramOp};
use fides_client::ClientError;
use fides_core::sched::decode_plan_entry;
use fides_core::CkksParameters;
use fides_serve::{ServeError, Server, ServerConfig};

fn fixture(name: &str) -> Vec<u8> {
    let path = format!(
        "{}/../baselines/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read(&path).unwrap_or_else(|e| panic!("read fixture {path}: {e}"))
}

/// Fully decodes a persist stream: stream framing (magic, version,
/// length, CRC) *and* every record's typed payload codec. Returns the
/// decoded record kinds in order.
fn decode_typed(bytes: &[u8]) -> Result<Vec<u8>, ClientError> {
    let mut r = RecordReader::new(bytes)?;
    let mut kinds = Vec::new();
    while let Some(rec) = r.next_record()? {
        match rec.kind {
            kind::PARAMS => {
                ParamsRecord::decode(&rec.payload)?;
            }
            kind::KEY_SET => {
                KeySetRecord::decode(&rec.payload)?;
            }
            kind::PLAINTEXT => {
                PlaintextRecord::decode(&rec.payload)?;
            }
            kind::SESSION => {
                SessionRecord::decode(&rec.payload)?;
            }
            kind::PLACEMENT => {
                PlacementRecord::decode(&rec.payload)?;
            }
            kind::PLAN => {
                decode_plan_entry(&rec.payload)?;
            }
            kind::SERVER => {
                ServerMetaRecord::decode(&rec.payload)?;
            }
            other => {
                return Err(ClientError::Serialization(format!(
                    "unknown record kind {other}"
                )))
            }
        }
        kinds.push(rec.kind);
    }
    assert!(r.finished(), "stream must end with an END record");
    Ok(kinds)
}

const FIXTURES: &[&str] = &[
    "keyset_v1.bin",
    "plaintext_v1.bin",
    "plan_v1.bin",
    "snapshot_v1.bin",
];

#[test]
fn committed_fixtures_decode_typed() {
    let kinds = decode_typed(&fixture("keyset_v1.bin")).expect("keyset fixture");
    assert_eq!(kinds, vec![kind::PARAMS, kind::KEY_SET]);

    let kinds = decode_typed(&fixture("plaintext_v1.bin")).expect("plaintext fixture");
    assert_eq!(kinds, vec![kind::PARAMS, kind::PLAINTEXT]);

    let kinds = decode_typed(&fixture("plan_v1.bin")).expect("plan fixture");
    assert_eq!(kinds, vec![kind::PLAN]);

    let kinds = decode_typed(&fixture("snapshot_v1.bin")).expect("snapshot fixture");
    assert_eq!(kinds[0], kind::PARAMS, "params header leads the snapshot");
    assert_eq!(kinds[1], kind::SERVER, "server meta follows params");
    assert!(kinds.contains(&kind::SESSION), "snapshot holds a session");
    assert!(kinds.contains(&kind::PLAN), "snapshot holds the hot plan");
}

/// Every single-bit flip of a committed fixture must fail decode with a
/// typed error — the CRC covers kind and payload, the header checks
/// magic and version, and length corruption either trips the bounds
/// check or desynchronizes the CRC. Sampled stride keeps the sweep fast;
/// the committed bytes are fixed, so the sweep is fully deterministic.
#[test]
fn bit_flips_always_error_never_panic() {
    for name in FIXTURES {
        let clean = fixture(name);
        let bits = clean.len() * 8;
        // At most ~2048 flips per fixture, never coarser than one flip
        // per 97 bits on the small ones.
        let stride = (bits / 2048).max(97);
        for bit in (0..bits).step_by(stride) {
            let mut bad = clean.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_typed(&bad).is_err(),
                "{name}: flipping bit {bit} decoded cleanly"
            );
        }
    }
}

/// Every proper prefix of a fixture must fail decode (truncation is an
/// error, not a silent partial restore).
#[test]
fn truncations_always_error_never_panic() {
    for name in FIXTURES {
        let clean = fixture(name);
        let step = (clean.len() / 512).max(1);
        for cut in (0..clean.len()).step_by(step) {
            assert!(
                decode_typed(&clean[..cut]).is_err(),
                "{name}: truncation to {cut} bytes decoded cleanly"
            );
        }
        // The boundary case one byte short of complete.
        assert!(decode_typed(&clean[..clean.len() - 1]).is_err());
    }
}

#[test]
fn foreign_version_is_a_typed_error() {
    let mut bad = fixture("keyset_v1.bin");
    // Clobber the 4-byte version field after the magic; whatever the
    // byte order, 0xAAAAAAAA is not a supported version.
    bad[4..8].copy_from_slice(&[0xAA; 4]);
    match RecordReader::new(&bad[..]).err() {
        Some(ClientError::UnsupportedFormat { .. }) => {}
        other => panic!("expected UnsupportedFormat, got {other:?}"),
    }
}

/// The server configuration `snapshot_v1.bin` was taken on. The restore
/// contract: a same-config server restores the fixture and serves the
/// same workload shape warm on its very first tick.
fn snapshot_server() -> Server {
    let params = CkksParameters::new(11, 2, 40, 3).expect("fixture params");
    Server::new(ServerConfig::new(params)).expect("fixture server")
}

#[test]
fn snapshot_fixture_restores_warm_into_same_config_server() {
    let bytes = fixture("snapshot_v1.bin");
    let server = snapshot_server();
    let n = server.restore(&bytes[..]).expect("restore fixture");
    assert_eq!(n, 1, "the fixture holds one session");
    assert_eq!(server.stats().restored_sessions, 1);

    // The fixture tenant: engine seed 902 at the fixture chain —
    // deterministic keygen reproduces the exact session the snapshot
    // captured, so fresh requests decrypt against the restored state.
    let engine = fides_api::CkksEngine::builder()
        .log_n(11)
        .levels(2)
        .scale_bits(40)
        .seed(902)
        .build()
        .expect("fixture engine");
    let session = engine.session();
    let mut p = OpProgram::new(1);
    let m = p.push(ProgramOp::MulPlain { a: 0, plain: 0 });
    let s = p.push(ProgramOp::AddScalar { a: m, c: 0.25 });
    p.output(s);
    let req = session
        .eval_request(1, &[&[1.0, 2.0, 4.0]], &p)
        .expect("encrypt");
    let resp = server.eval(req).expect("post-restore tick");
    assert!(resp.error.is_none(), "tick failed: {:?}", resp.error);
    let out = session.decrypt_response(&resp, &[3]).expect("decrypt");
    // x * 0.5 + 0.25 over the preloaded [0.5, 0.5, 0.5] plaintext.
    for (x, got) in [1.0f64, 2.0, 4.0].iter().zip(&out[0]) {
        assert!(
            (x * 0.5 + 0.25 - got).abs() < 1e-3,
            "restored session decrypts wrong: {x} -> {got}"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.plan_cache_misses, 0, "first tick must replan nothing");
    assert_eq!(stats.warm_plan_hits, 1, "first tick hits the restored plan");
}

#[test]
fn snapshot_fixture_rejects_mismatched_server() {
    let bytes = fixture("snapshot_v1.bin");
    // A different parameter chain: typed mismatch, nothing restored.
    let params = CkksParameters::new(11, 3, 40, 3).expect("params");
    let server = Server::new(ServerConfig::new(params)).expect("server");
    match server.restore(&bytes[..]) {
        Err(ServeError::ParamsMismatch { .. }) => {}
        other => panic!("expected ParamsMismatch, got {other:?}"),
    }
    assert_eq!(server.session_count(), 0, "nothing restored on mismatch");
}
