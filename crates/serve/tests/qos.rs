//! Fairness and starvation tests for the admission queue's deficit
//! round-robin: a tenant flooding 10× the others' load must not starve
//! them, per-tick completions must respect the configured weights, and —
//! because the scheduler only reorders *which* tick serves a request —
//! a quiet tenant's response frames must be bit-identical to an entirely
//! unloaded run.

use fides_api::CkksEngine;
use fides_client::wire::{EvalRequest, OpProgram, ProgramOp};
use fides_core::CkksParameters;
use fides_serve::{PipelineConfig, QosPolicy, Server, ServerConfig, Ticket};

const LOG_N: usize = 10;
const LEVELS: usize = 3;
const BATCH: usize = 8;
const QUIET: usize = 3;
const FLOOD_FACTOR: usize = 10;

struct Tenant {
    session: fides_api::Session,
    sid: u64,
    reqs: Vec<EvalRequest>,
}

fn square_program() -> OpProgram {
    let mut p = OpProgram::new(1);
    let sq = p.push(ProgramOp::Square { a: 0 });
    p.output(sq);
    p
}

/// Opens `1 + QUIET` tenants on `server`: tenant 0 pre-encrypts
/// `FLOOD_FACTOR × per_quiet` requests, the rest `per_quiet` each.
fn setup(server: &Server, per_quiet: usize) -> Vec<Tenant> {
    let program = square_program();
    (0..1 + QUIET)
        .map(|t| {
            let engine = CkksEngine::builder()
                .log_n(LOG_N)
                .levels(LEVELS)
                .scale_bits(40)
                .seed(900 + t as u64)
                .build()
                .unwrap();
            let session = engine.session();
            let sid = server
                .open_session(session.session_request(&[]).unwrap())
                .unwrap();
            let n = if t == 0 {
                per_quiet * FLOOD_FACTOR
            } else {
                per_quiet
            };
            let reqs = (0..n)
                .map(|r| {
                    let x = 0.1 + 0.01 * (t * 31 + r) as f64;
                    session.eval_request(sid, &[&[x, -x]], &program).unwrap()
                })
                .collect();
            Tenant { session, sid, reqs }
        })
        .collect()
}

fn server_with(qos: QosPolicy) -> Server {
    let params = CkksParameters::new(LOG_N, LEVELS, 40, 3).unwrap();
    Server::new(
        ServerConfig::new(params)
            .batch_size(BATCH)
            .admission_capacity(4096)
            .qos(qos),
    )
    .unwrap()
}

/// Submits every request (flooder's full burst first — the worst case
/// for arrival-order scheduling), then drives ticks one at a time,
/// recording each request's completion tick. Returns
/// `(per-tenant completion ticks, per-tenant response frames)`.
#[allow(clippy::type_complexity)]
fn run_to_completion(server: &Server, tenants: &[Tenant]) -> (Vec<Vec<usize>>, Vec<Vec<Vec<u8>>>) {
    let lanes: Vec<&[EvalRequest]> = tenants.iter().map(|t| t.reqs.as_slice()).collect();
    run_lanes_to_completion(server, &lanes)
}

/// [`run_to_completion`] over bare request lanes (one per tenant), for
/// runs that replay another server's pre-encrypted requests.
#[allow(clippy::type_complexity)]
fn run_lanes_to_completion(
    server: &Server,
    lanes: &[&[EvalRequest]],
) -> (Vec<Vec<usize>>, Vec<Vec<Vec<u8>>>) {
    let mut tickets: Vec<Vec<Ticket>> = lanes
        .iter()
        .map(|reqs| {
            reqs.iter()
                .map(|r| server.submit(r.clone()).unwrap())
                .collect()
        })
        .collect();
    let total: usize = lanes.iter().map(|reqs| reqs.len()).sum();
    let mut ticks = vec![Vec::new(); lanes.len()];
    let mut frames = vec![Vec::new(); lanes.len()];
    let mut done = 0;
    let mut tick = 0;
    while done < total {
        tick += 1;
        assert!(tick < 256, "scheduler stopped making progress");
        assert!(
            server.run_tick() > 0,
            "tick served nothing with work queued"
        );
        for (t, tenant_tickets) in tickets.iter_mut().enumerate() {
            let mut i = 0;
            while i < tenant_tickets.len() {
                if let Some(resp) = tenant_tickets[i].try_take() {
                    assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
                    ticks[t].push(tick);
                    frames[t].push(resp.to_bytes());
                    tenant_tickets.remove(i);
                    done += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    (ticks, frames)
}

/// The flood scenario under DRR: no quiet tenant starves, equal-weight
/// quiet tenants finish in lockstep, and the flooder still gets every
/// spare slot (work conservation).
#[test]
fn drr_flood_does_not_starve_quiet_tenants() {
    let server = server_with(QosPolicy::Drr { quantum: 1 });
    let tenants = setup(&server, QUIET);
    let (ticks, _) = run_to_completion(&server, &tenants);

    // Every quiet tenant completes all its work within the first few
    // ticks — one request per rotation round, BATCH/(1+QUIET) rounds per
    // tick while all lanes are active — even though the flooder's 10×
    // burst was queued ahead of it.
    // Generous bound: the exact schedule gives 2 ticks. `ticks` holds
    // exactly the flooder (index 0) plus the quiet tenants.
    let quiet_bound = 2 * QUIET;
    for (t, tenant_ticks) in ticks.iter().enumerate().skip(1) {
        let worst = *tenant_ticks.iter().max().unwrap();
        assert!(
            worst <= quiet_bound,
            "tenant {t} finished at tick {worst}, DRR bound is {quiet_bound}"
        );
    }
    // Equal weights → per-tick completions of quiet tenants match
    // exactly (they drain in the same rotation rounds).
    for t in 2..=QUIET {
        assert_eq!(
            ticks[1], ticks[t],
            "equal-weight lanes must drain in lockstep"
        );
    }
    // Work conservation: the flooder owns every tick after the quiet
    // lanes drain, so the total tick count is the FIFO-optimal one.
    let total: usize = tenants.iter().map(|t| t.reqs.len()).sum();
    let last = *ticks[0].iter().max().unwrap();
    assert_eq!(
        last,
        total.div_ceil(BATCH),
        "spare slots must not be wasted"
    );

    // While all four lanes were active (tick 1), the flooder's share of
    // the tick is its weight share — BATCH/4 — not the whole batch.
    let flood_t1 = ticks[0].iter().filter(|&&k| k == 1).count();
    assert_eq!(
        flood_t1,
        BATCH / (1 + QUIET),
        "flooder exceeded its weight share"
    );
}

/// FIFO baseline on the identical workload: the flooder's head-of-line
/// burst delays every quiet tenant past the DRR bound — the contrast
/// that justifies the DRR default.
#[test]
fn fifo_baseline_starves_quiet_tenants() {
    let server = server_with(QosPolicy::Fifo);
    let tenants = setup(&server, QUIET);
    let flood = tenants[0].reqs.len();
    let (ticks, _) = run_to_completion(&server, &tenants);
    let quiet_first: usize = (1..=QUIET)
        .map(|t| *ticks[t].iter().min().unwrap())
        .min()
        .unwrap();
    assert!(
        quiet_first > flood / BATCH,
        "FIFO should serve the whole burst first (quiet first at tick {quiet_first})"
    );
}

/// Weights scale the per-tick share: a weight-3 lane gets 3× the slots
/// of a weight-1 lane while both are backlogged.
#[test]
fn weights_shape_per_tick_shares() {
    let server = server_with(QosPolicy::Drr { quantum: 1 });
    let tenants = setup(&server, BATCH); // both lanes stay backlogged
    server.set_session_weight(tenants[1].sid, 3);
    // Only tenants 0 (weight 1, 10× load) and 1 (weight 3) submit.
    let sub: Vec<Vec<Ticket>> = tenants[..2]
        .iter()
        .map(|t| {
            t.reqs
                .iter()
                .map(|r| server.submit(r.clone()).unwrap())
                .collect()
        })
        .collect();
    server.run_tick();
    let first_tick: Vec<usize> = sub
        .iter()
        .map(|ts| ts.iter().filter(|t| t.try_take().is_some()).count())
        .collect();
    assert_eq!(
        first_tick,
        vec![BATCH / 4, 3 * BATCH / 4],
        "weight 1 vs 3 must split the tick 1:3"
    );
}

/// Plan-ahead double buffering must not move a single completion: DRR
/// lane credits are charged when the admission epoch drains the queue,
/// so the epoch boundary *is* the old tick boundary — the flood scenario
/// completes tick-for-tick, and frame-for-frame, exactly as on the
/// serial tick engine.
#[test]
fn drr_flood_identical_under_plan_ahead() {
    let serial = Server::new(
        ServerConfig::new(CkksParameters::new(LOG_N, LEVELS, 40, 3).unwrap())
            .batch_size(BATCH)
            .admission_capacity(4096)
            .qos(QosPolicy::Drr { quantum: 1 })
            .pipeline(PipelineConfig::default().plan_ahead(false)),
    )
    .unwrap();
    let tenants = setup(&serial, QUIET);
    let (serial_ticks, serial_frames) = run_to_completion(&serial, &tenants);

    let pipelined = Server::new(
        ServerConfig::new(CkksParameters::new(LOG_N, LEVELS, 40, 3).unwrap())
            .batch_size(BATCH)
            .admission_capacity(4096)
            .qos(QosPolicy::Drr { quantum: 1 })
            .pipeline(PipelineConfig::default().plan_ahead(true)),
    )
    .unwrap();
    // Replay the same pre-encrypted bursts under fresh session ids.
    let lanes: Vec<Vec<EvalRequest>> = tenants
        .iter()
        .map(|t| {
            let sid = pipelined
                .open_session(t.session.session_request(&[]).unwrap())
                .unwrap();
            t.reqs
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.session_id = sid;
                    r
                })
                .collect()
        })
        .collect();
    let lane_refs: Vec<&[EvalRequest]> = lanes.iter().map(|l| l.as_slice()).collect();
    let (ticks, frames) = run_lanes_to_completion(&pipelined, &lane_refs);
    assert_eq!(
        ticks, serial_ticks,
        "plan-ahead moved completions across ticks"
    );
    assert_eq!(
        frames, serial_frames,
        "plan-ahead changed response bytes under flood"
    );
}

/// The scheduler moves requests between ticks, never into different
/// results: a quiet tenant's frames under flood are byte-identical to
/// the same requests on an unloaded server with the same chain.
#[test]
fn quiet_tenant_frames_unchanged_by_flood() {
    let loaded = server_with(QosPolicy::Drr { quantum: 1 });
    let tenants = setup(&loaded, QUIET);
    let (_, frames) = run_to_completion(&loaded, &tenants);

    let unloaded = server_with(QosPolicy::Drr { quantum: 1 });
    for (t, tenant) in tenants.iter().enumerate().skip(1) {
        let sid = unloaded
            .open_session(tenant.session.session_request(&[]).unwrap())
            .unwrap();
        for (r, req) in tenant.reqs.iter().enumerate() {
            let mut req = req.clone();
            req.session_id = sid;
            let resp = unloaded.eval(req).unwrap();
            // Completion order within run_to_completion is per-tick scan
            // order, which preserves each tenant's submission order.
            assert_eq!(
                resp.to_bytes(),
                frames[t][r],
                "tenant {t} request {r}: flood changed the result bytes"
            );
        }
    }
}
