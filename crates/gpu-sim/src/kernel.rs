//! Kernel descriptors and instruction-cost constants.
//!
//! Every simulated kernel carries the traffic and compute totals the timeline
//! model charges. The int32-op equivalences below convert the modular
//! arithmetic mix of §III-F.2 (Table III) into the 32-bit integer-op currency
//! of Table IV: GPUs lack 64-bit integer datapaths, so a 64×64→128-bit "wide"
//! multiply costs several 32-bit multiplies while a "low" 64×64→64 multiply
//! costs fewer.

use serde::{Deserialize, Serialize};

use crate::mem::BufferId;

/// int32-op cost of a wide (64×64→128) multiply.
pub const WIDE_MUL_OPS: u64 = 10;
/// int32-op cost of a low (64×64→64) multiply.
pub const LOW_MUL_OPS: u64 = 4;
/// int32-op cost of a 64-bit add/sub/compare.
pub const ADD_OPS: u64 = 2;

/// Cost of one Barrett modular multiplication: 2 wide + 1 low multiply plus a
/// correction (Table III).
pub const BARRETT_MULMOD_OPS: u64 = 2 * WIDE_MUL_OPS + LOW_MUL_OPS + 2 * ADD_OPS;
/// Cost of one Shoup modular multiplication: 1 wide + 2 low multiplies plus a
/// correction (Table III).
pub const SHOUP_MULMOD_OPS: u64 = WIDE_MUL_OPS + 2 * LOW_MUL_OPS + 2 * ADD_OPS;
/// Cost of one modular addition/subtraction.
pub const MODADD_OPS: u64 = 2 * ADD_OPS;
/// Cost of one NTT butterfly: one Shoup multiply + modular add + modular sub.
pub const BUTTERFLY_OPS: u64 = SHOUP_MULMOD_OPS + 2 * MODADD_OPS;

/// Classification of simulated kernels, used for the per-kind ledger that
/// backs the microbenchmark output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KernelKind {
    /// Pointwise modular arithmetic (ModMult/ModAdd and fusions thereof).
    Elementwise,
    /// First (strided/column) pass of the hierarchical NTT.
    NttPhase1,
    /// Second (contiguous/row) pass of the hierarchical NTT.
    NttPhase2,
    /// First pass of the inverse NTT.
    InttPhase1,
    /// Second pass of the inverse NTT.
    InttPhase2,
    /// Fast base conversion (matrix–vector accumulation), §III-F.3.
    BaseConv,
    /// Evaluation-domain automorphism permutation.
    Automorphism,
    /// Centered modulus switch.
    SwitchModulus,
    /// Host↔device copy.
    Transfer,
    /// Key/Plaintext upload or other bulk fill.
    Fill,
}

impl KernelKind {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Elementwise => "elementwise",
            KernelKind::NttPhase1 => "ntt_phase1",
            KernelKind::NttPhase2 => "ntt_phase2",
            KernelKind::InttPhase1 => "intt_phase1",
            KernelKind::InttPhase2 => "intt_phase2",
            KernelKind::BaseConv => "base_conv",
            KernelKind::Automorphism => "automorphism",
            KernelKind::SwitchModulus => "switch_modulus",
            KernelKind::Transfer => "transfer",
            KernelKind::Fill => "fill",
        }
    }
}

/// One kernel launch: which buffers it touches and how much work it does.
///
/// `reads`/`writes` carry `(buffer, bytes)` pairs; the timeline model uses
/// them for the L2 residency (hit/miss) model, so byte counts should reflect
/// actual per-launch traffic, not allocation sizes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel classification.
    pub kind: Option<KernelKind>,
    /// Buffers read, with bytes read from each.
    pub reads: Vec<(BufferId, u64)>,
    /// Buffers written, with bytes written to each.
    pub writes: Vec<(BufferId, u64)>,
    /// Total int32-equivalent operations executed.
    pub int32_ops: u64,
    /// Memory-access efficiency in `(0, 1]`: fraction of peak bandwidth the
    /// access pattern achieves (1.0 = fully coalesced). Phantom-style strided
    /// monolithic kernels use < 1.
    pub access_efficiency: f64,
}

impl KernelDesc {
    /// Starts a descriptor of the given kind with perfect coalescing.
    pub fn new(kind: KernelKind) -> Self {
        Self {
            kind: Some(kind),
            reads: Vec::new(),
            writes: Vec::new(),
            int32_ops: 0,
            access_efficiency: 1.0,
        }
    }

    /// Adds a read of `bytes` from `buf`.
    pub fn read(mut self, buf: BufferId, bytes: u64) -> Self {
        self.reads.push((buf, bytes));
        self
    }

    /// Adds a write of `bytes` to `buf`.
    pub fn write(mut self, buf: BufferId, bytes: u64) -> Self {
        self.writes.push((buf, bytes));
        self
    }

    /// Sets the int32-equivalent op count.
    pub fn ops(mut self, int32_ops: u64) -> Self {
        self.int32_ops = int32_ops;
        self
    }

    /// Derates the achieved memory bandwidth (e.g. uncoalesced strides).
    pub fn access_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0);
        self.access_efficiency = eff;
        self
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.reads.iter().map(|&(_, b)| b).sum()
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.writes.iter().map(|&(_, b)| b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the orderings are the documented model
    fn cost_constants_reflect_table_iii_ordering() {
        // Shoup (1 wide + 2 low) is cheaper than Barrett mul (2 wide + 1 low).
        assert!(SHOUP_MULMOD_OPS < BARRETT_MULMOD_OPS);
        assert!(MODADD_OPS < SHOUP_MULMOD_OPS);
        assert!(BUTTERFLY_OPS > SHOUP_MULMOD_OPS);
    }

    #[test]
    fn builder_accumulates() {
        let b0 = BufferId(7);
        let b1 = BufferId(9);
        let d = KernelDesc::new(KernelKind::Elementwise)
            .read(b0, 100)
            .read(b1, 50)
            .write(b1, 50)
            .ops(1234);
        assert_eq!(d.bytes_read(), 150);
        assert_eq!(d.bytes_written(), 50);
        assert_eq!(d.int32_ops, 1234);
        assert_eq!(d.kind, Some(KernelKind::Elementwise));
        assert_eq!(d.access_efficiency, 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_access_efficiency_rejected() {
        KernelDesc::new(KernelKind::Elementwise).access_efficiency(0.0);
    }
}
