//! Device specifications (paper Table IV) and derived model constants.

use serde::{Deserialize, Serialize};

/// Whether a device model represents a GPU or a CPU socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Discrete GPU executing kernels launched from a host CPU.
    Gpu,
    /// CPU executing the same operation graph inline (no launch overhead).
    Cpu,
}

/// A compute-platform model: the Table IV columns plus the handful of derived
/// microarchitectural constants the timeline model needs.
///
/// All presets correspond to rows of Table IV in the paper; the derived
/// constants (`l2_gbps`, `compute_efficiency`, launch overhead, latency
/// floor) are calibration values documented next to each preset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"RTX 4090"`.
    pub name: String,
    /// GPU or CPU.
    pub kind: DeviceKind,
    /// Streaming multiprocessors (GPU) or cores (CPU).
    pub sm_count: u32,
    /// Boost clock in GHz.
    pub freq_ghz: f64,
    /// Peak 32-bit integer TOPS (Table IV).
    pub int32_tops: f64,
    /// Shared (L2 / LLC) cache capacity in bytes.
    pub l2_bytes: u64,
    /// Off-chip memory bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Device memory capacity in bytes.
    pub dram_bytes: u64,
    /// Aggregate L2 bandwidth in GB/s (several × DRAM on modern GPUs).
    pub l2_gbps: f64,
    /// Host-side CPU cost to launch one kernel, in µs. The paper identifies
    /// this as the bottleneck for small limb batches on fast GPUs (§III-F.1).
    pub kernel_launch_us: f64,
    /// Minimum wall time of any kernel once scheduled (latency floor), µs.
    pub min_kernel_us: f64,
    /// Fraction of peak integer throughput achievable by modular-arithmetic
    /// kernels (issue limits, instruction mix).
    pub compute_efficiency: f64,
}

impl DeviceSpec {
    /// NVIDIA RTX 4090 (Table IV): 128 SMs @ 2.24 GHz, 41.29 INT32 TOPS,
    /// 72 MB L2, 1 TB/s GDDR6X.
    pub fn rtx_4090() -> Self {
        Self {
            name: "RTX 4090".into(),
            kind: DeviceKind::Gpu,
            sm_count: 128,
            freq_ghz: 2.24,
            int32_tops: 41.29,
            l2_bytes: 72 << 20,
            dram_gbps: 1008.0,
            dram_bytes: 24 << 30,
            l2_gbps: 5000.0,
            kernel_launch_us: 2.0,
            min_kernel_us: 1.6,
            compute_efficiency: 0.33,
        }
    }

    /// NVIDIA RTX 4060 Ti (Table IV): 34 SMs @ 2.31 GHz, 11.03 INT32 TOPS,
    /// 32 MB L2, 288 GB/s.
    pub fn rtx_4060_ti() -> Self {
        Self {
            name: "RTX 4060 Ti".into(),
            kind: DeviceKind::Gpu,
            sm_count: 34,
            freq_ghz: 2.31,
            int32_tops: 11.03,
            l2_bytes: 32 << 20,
            dram_gbps: 288.0,
            dram_bytes: 16 << 30,
            l2_gbps: 1400.0,
            kernel_launch_us: 2.0,
            min_kernel_us: 1.6,
            compute_efficiency: 0.33,
        }
    }

    /// NVIDIA RTX A4500 (Table IV): 56 SMs @ 1.05 GHz, 11.83 INT32 TOPS,
    /// 6 MB L2, 640 GB/s.
    pub fn rtx_a4500() -> Self {
        Self {
            name: "RTX A4500".into(),
            kind: DeviceKind::Gpu,
            sm_count: 56,
            freq_ghz: 1.05,
            int32_tops: 11.83,
            l2_bytes: 6 << 20,
            dram_gbps: 640.0,
            dram_bytes: 20 << 30,
            l2_gbps: 2200.0,
            kernel_launch_us: 2.0,
            min_kernel_us: 2.4,
            compute_efficiency: 0.33,
        }
    }

    /// NVIDIA V100 (Table IV): 80 SMs @ 1.25 GHz, 14.13 INT32 TOPS, 6 MB L2,
    /// 897 GB/s HBM2.
    pub fn v100() -> Self {
        Self {
            name: "V100".into(),
            kind: DeviceKind::Gpu,
            sm_count: 80,
            freq_ghz: 1.25,
            int32_tops: 14.13,
            l2_bytes: 6 << 20,
            dram_gbps: 897.0,
            dram_bytes: 16 << 30,
            l2_gbps: 2500.0,
            kernel_launch_us: 2.0,
            min_kernel_us: 2.6,
            compute_efficiency: 0.33,
        }
    }

    /// AMD Ryzen 9 7900 (Table IV): 12 cores @ 3.7 GHz, 2.13 INT32 TOPS,
    /// 64 MB LLC, 81 GB/s DDR5-5200.
    pub fn ryzen_9_7900() -> Self {
        Self {
            name: "Ryzen 9 7900".into(),
            kind: DeviceKind::Cpu,
            sm_count: 12,
            freq_ghz: 3.70,
            int32_tops: 2.13,
            l2_bytes: 64 << 20,
            dram_gbps: 81.0,
            dram_bytes: 64 << 30,
            l2_gbps: 400.0,
            kernel_launch_us: 0.0,
            min_kernel_us: 0.0,
            // Scalar (non-SIMD) modular arithmetic reaches only a small slice
            // of the packed-SIMD peak the TOPS figure assumes.
            compute_efficiency: 0.02,
        }
    }

    /// All four GPU presets, in Table IV order.
    pub fn all_gpus() -> Vec<DeviceSpec> {
        vec![
            Self::rtx_4060_ti(),
            Self::rtx_a4500(),
            Self::v100(),
            Self::rtx_4090(),
        ]
    }

    /// Peak integer throughput in int32 ops per microsecond, after the
    /// efficiency derating.
    #[inline]
    pub fn effective_int32_ops_per_us(&self) -> f64 {
        self.int32_tops * 1e6 * self.compute_efficiency
    }

    /// DRAM bandwidth in bytes per microsecond.
    #[inline]
    pub fn dram_bytes_per_us(&self) -> f64 {
        self.dram_gbps * 1e3
    }

    /// L2 bandwidth in bytes per microsecond.
    #[inline]
    pub fn l2_bytes_per_us(&self) -> f64 {
        self.l2_gbps * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iv() {
        let g = DeviceSpec::rtx_4090();
        assert_eq!(g.sm_count, 128);
        assert_eq!(g.l2_bytes, 72 << 20);
        assert!((g.int32_tops - 41.29).abs() < 1e-9);
        let c = DeviceSpec::ryzen_9_7900();
        assert_eq!(c.kind, DeviceKind::Cpu);
        assert_eq!(c.sm_count, 12);
        assert_eq!(DeviceSpec::all_gpus().len(), 4);
    }

    #[test]
    fn unit_conversions() {
        let g = DeviceSpec::rtx_4090();
        // 1008 GB/s ≈ 1.008e6 bytes/µs.
        assert!((g.dram_bytes_per_us() - 1.008e6).abs() < 1.0);
        assert!(g.effective_int32_ops_per_us() > 1e6);
    }

    #[test]
    fn gpu_ordering_by_bandwidth() {
        let gpus = DeviceSpec::all_gpus();
        for w in gpus.windows(2) {
            assert!(
                w[0].dram_gbps < w[1].dram_gbps,
                "Table IV order is ascending bandwidth"
            );
        }
    }
}
