//! Multi-device simulation: a fleet of [`GpuSim`] devices sharing one
//! interconnect.
//!
//! The single-device simulator models a card in isolation; scaling out
//! (ISPASS §VI's "what would N cards buy us" question) needs two more
//! ingredients, both modelled here:
//!
//! 1. **A shared time origin.** Every device timeline in a cluster starts at
//!    t = 0 and advances in the same simulated microseconds, so a makespan
//!    taken as `max` over devices is meaningful, and a scheduler can impose
//!    one host submission clock across all of them
//!    ([`GpuSim::advance_host_to`] / [`GpuSim::host_clock`]).
//! 2. **A shared link.** Device-to-device traffic serializes on one
//!    [`InterconnectSpec`]-modelled resource (PCIe switch or NVLink
//!    bridge): a transfer occupies the link from `max(link_free, ready)`
//!    for `latency + bytes/bandwidth`, exactly the serialization rule the
//!    single-device [`Timeline`](crate::SimStats) applies to DRAM.
//!
//! The cluster does **not** schedule anything — partitioning a kernel graph
//! across devices and deciding what crosses the link is the planning
//! layer's job (`fides-core::sched`). This module only prices the choices.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{DeviceSpec, ExecMode, GpuSim};

/// The shared device-to-device interconnect model: a single serialized
/// resource with fixed per-transfer latency and a flat bandwidth.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Human-readable link name.
    pub name: String,
    /// Sustained bandwidth in GB/s (10⁹ bytes per second).
    pub gbps: f64,
    /// Fixed per-transfer latency in µs (DMA setup + hop).
    pub latency_us: f64,
}

impl InterconnectSpec {
    /// PCIe Gen4 x16 through a shared switch: ~24 GB/s effective, ~5 µs
    /// per-transfer setup — matches the single-device H2D/D2H model.
    pub fn pcie_gen4() -> Self {
        Self {
            name: "pcie-gen4-x16".into(),
            gbps: 24.0,
            latency_us: 5.0,
        }
    }

    /// NVLink 4 bridge: ~300 GB/s effective, ~2 µs per-transfer setup.
    pub fn nvlink4() -> Self {
        Self {
            name: "nvlink4".into(),
            gbps: 300.0,
            latency_us: 2.0,
        }
    }

    /// Bandwidth in bytes per simulated µs.
    pub fn bytes_per_us(&self) -> f64 {
        self.gbps * 1e3
    }
}

/// Cumulative interconnect counters for one cluster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Device-to-device transfers issued.
    pub transfers: u64,
    /// Total bytes moved across the link.
    pub bytes: u64,
    /// Total µs the link was busy (latency + wire time).
    pub busy_us: f64,
}

#[derive(Debug, Default)]
struct LinkState {
    /// When the link is next free (absolute simulated µs).
    free_us: f64,
    stats: LinkStats,
}

/// A fleet of simulated devices sharing one interconnect and one time
/// origin.
#[derive(Debug)]
pub struct GpuCluster {
    devices: Vec<Arc<GpuSim>>,
    interconnect: InterconnectSpec,
    link: Mutex<LinkState>,
}

impl GpuCluster {
    /// Builds a cluster of `n` identical devices (n ≥ 1) joined by `link`.
    pub fn homogeneous(
        n: usize,
        spec: DeviceSpec,
        mode: ExecMode,
        link: InterconnectSpec,
    ) -> Arc<Self> {
        assert!(n >= 1, "a cluster needs at least one device");
        let devices = (0..n).map(|_| GpuSim::new(spec.clone(), mode)).collect();
        Arc::new(Self {
            devices,
            interconnect: link,
            link: Mutex::new(LinkState::default()),
        })
    }

    /// Builds a (possibly heterogeneous) cluster from explicit per-device
    /// specs.
    pub fn new(specs: Vec<DeviceSpec>, mode: ExecMode, link: InterconnectSpec) -> Arc<Self> {
        assert!(!specs.is_empty(), "a cluster needs at least one device");
        let devices = specs.into_iter().map(|s| GpuSim::new(s, mode)).collect();
        Arc::new(Self {
            devices,
            interconnect: link,
            link: Mutex::new(LinkState::default()),
        })
    }

    /// Builds a cluster around pre-existing devices (e.g. devices already
    /// owned by per-device contexts), joining them with `link`.
    pub fn from_devices(devices: Vec<Arc<GpuSim>>, link: InterconnectSpec) -> Arc<Self> {
        assert!(!devices.is_empty(), "a cluster needs at least one device");
        Arc::new(Self {
            devices,
            interconnect: link,
            link: Mutex::new(LinkState::default()),
        })
    }

    /// Number of devices in the cluster.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device `i` (panics when out of range).
    pub fn device(&self, i: usize) -> &Arc<GpuSim> {
        &self.devices[i]
    }

    /// All devices, in index order.
    pub fn devices(&self) -> &[Arc<GpuSim>] {
        &self.devices
    }

    /// The interconnect model.
    pub fn interconnect(&self) -> &InterconnectSpec {
        &self.interconnect
    }

    /// Prices one device-to-device transfer of `bytes` whose source data is
    /// ready at absolute time `ready_us`. The link is a serialized
    /// resource: the transfer starts at `max(link_free, ready_us)` and
    /// holds the link for `latency + bytes/bandwidth`. Returns the absolute
    /// completion time; the caller couples it into the destination stream
    /// via [`GpuSim::wait_stream_until`].
    pub fn transfer(&self, bytes: u64, ready_us: f64) -> f64 {
        let mut link = self.link.lock();
        let start = link.free_us.max(ready_us);
        let wire = self.interconnect.latency_us + bytes as f64 / self.interconnect.bytes_per_us();
        let done = start + wire;
        link.free_us = done;
        link.stats.transfers += 1;
        link.stats.bytes += bytes;
        link.stats.busy_us += wire;
        done
    }

    /// Snapshot of the interconnect counters.
    pub fn link_stats(&self) -> LinkStats {
        self.link.lock().stats
    }

    /// Clears the interconnect counters (the link-free clock keeps
    /// advancing monotonically) and resets every device's stats window.
    pub fn reset_stats(&self) {
        self.link.lock().stats = LinkStats::default();
        for d in &self.devices {
            d.reset_stats();
        }
    }

    /// Cluster-wide synchronize: the fleet makespan, `max` over device
    /// makespans and the link-free clock.
    pub fn sync_all(&self) -> f64 {
        let link = self.link.lock().free_us;
        self.devices.iter().map(|d| d.sync()).fold(link, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferId, KernelDesc, KernelKind};

    #[test]
    fn homogeneous_cluster_shares_time_origin() {
        let c = GpuCluster::homogeneous(
            2,
            DeviceSpec::rtx_4090(),
            ExecMode::CostOnly,
            InterconnectSpec::pcie_gen4(),
        );
        assert_eq!(c.num_devices(), 2);
        // Devices start at the same origin: identical work gives identical
        // makespans.
        let desc = KernelDesc::new(KernelKind::Elementwise)
            .read(BufferId(1), 1 << 20)
            .ops(1_000_000);
        c.device(0).launch(0, desc.clone(), || {});
        c.device(1).launch(0, desc, || {});
        assert!((c.device(0).sync() - c.device(1).sync()).abs() < 1e-9);
        assert!(c.sync_all() >= c.device(0).sync());
    }

    #[test]
    fn link_serializes_transfers() {
        let c = GpuCluster::homogeneous(
            2,
            DeviceSpec::rtx_4090(),
            ExecMode::CostOnly,
            InterconnectSpec::pcie_gen4(),
        );
        let bw = c.interconnect().bytes_per_us();
        let lat = c.interconnect().latency_us;
        // Two transfers ready at t=0: the second queues behind the first.
        let t1 = c.transfer(24_000, 0.0);
        assert!((t1 - (lat + 24_000.0 / bw)).abs() < 1e-9);
        let t2 = c.transfer(24_000, 0.0);
        assert!((t2 - 2.0 * (lat + 24_000.0 / bw)).abs() < 1e-9);
        let s = c.link_stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 48_000);
        assert!(s.busy_us > 0.0);
    }

    #[test]
    fn transfer_waits_for_source_readiness() {
        let c = GpuCluster::homogeneous(
            2,
            DeviceSpec::rtx_4090(),
            ExecMode::CostOnly,
            InterconnectSpec::nvlink4(),
        );
        // Source data ready late: the transfer cannot start before it.
        let done = c.transfer(1000, 100.0);
        assert!(done > 100.0);
        // The destination stream stalls until the transfer lands.
        c.device(1).wait_stream_until(3, done);
        assert!(c.device(1).stream_ready(3) >= done);
    }

    #[test]
    fn shared_host_clock_round_trips() {
        let c = GpuCluster::homogeneous(
            2,
            DeviceSpec::rtx_4090(),
            ExecMode::CostOnly,
            InterconnectSpec::pcie_gen4(),
        );
        let d0 = c.device(0);
        let d1 = c.device(1);
        d0.launch(0, KernelDesc::new(KernelKind::Elementwise).ops(100), || {});
        let host = d0.host_clock();
        assert!(host > 0.0, "launch charges the host clock");
        // Impose device 0's host clock on device 1 (shared submission
        // thread): device 1's next launch cannot be submitted earlier.
        d1.advance_host_to(host);
        assert!(d1.host_clock() >= host);
        d1.launch(0, KernelDesc::new(KernelKind::Elementwise).ops(100), || {});
        assert!(d1.host_clock() > host);
    }

    #[test]
    fn reset_stats_clears_link_counters() {
        let c = GpuCluster::homogeneous(
            1,
            DeviceSpec::rtx_4090(),
            ExecMode::CostOnly,
            InterconnectSpec::pcie_gen4(),
        );
        c.transfer(1000, 0.0);
        c.reset_stats();
        assert_eq!(c.link_stats(), LinkStats::default());
    }
}
