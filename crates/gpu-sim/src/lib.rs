//! # fides-gpu-sim
//!
//! The GPU-backend substitute for `fideslib-rs`: a functional + timing
//! simulator of a CUDA-like device.
//!
//! The real FIDESlib expresses every server-side CKKS operation as GPU kernel
//! launches on CUDA streams. This crate reproduces that execution model in
//! pure Rust: library code wraps each unit of work in a [`KernelDesc`]
//! (traffic + compute totals) and a closure with the actual math, and the
//! simulator both *runs* the math (in [`ExecMode::Functional`]) and *times*
//! the launch against a device model ([`DeviceSpec`], Table IV of the paper).
//!
//! Because CKKS server operations are data-oblivious, the kernel schedule is
//! identical whether or not the math runs — [`ExecMode::CostOnly`] produces
//! exact timing ledgers at full paper scale (N = 2¹⁶) at negligible CPU cost.
//!
//! ```
//! use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim, KernelDesc, KernelKind, VectorGpu};
//!
//! let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
//! let mut v = VectorGpu::<u64>::from_vec(&gpu, vec![1, 2, 3, 4]);
//! let desc = KernelDesc::new(KernelKind::Elementwise)
//!     .read(v.buffer(), v.bytes())
//!     .write(v.buffer(), v.bytes())
//!     .ops(4 * fides_gpu_sim::ADD_OPS);
//! gpu.launch(0, desc, || {
//!     for x in v.as_mut_slice() {
//!         *x += 1;
//!     }
//! });
//! assert_eq!(v.to_vec(), vec![2, 3, 4, 5]);
//! assert!(gpu.sync() > 0.0);
//! ```

#![warn(missing_docs)]

mod device;
mod kernel;
mod mem;
mod timeline;

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

pub use device::{DeviceKind, DeviceSpec};
pub use kernel::{
    KernelDesc, KernelKind, ADD_OPS, BARRETT_MULMOD_OPS, BUTTERFLY_OPS, LOW_MUL_OPS, MODADD_OPS,
    SHOUP_MULMOD_OPS, WIDE_MUL_OPS,
};
pub use mem::BufferId;
pub use timeline::{KindStats, SimStats};

use mem::PoolState;
use timeline::Timeline;

/// Whether kernel bodies execute (functional correctness) or are skipped
/// (timing-only at full scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Run kernel bodies; results are bit-exact CKKS.
    Functional,
    /// Skip kernel bodies; only the timing ledger advances. Valid because all
    /// server-side CKKS kernels are data-oblivious.
    CostOnly,
}

/// A simulated GPU: device model, timeline, memory pool and execution mode.
///
/// Cheap to share: wrap in [`Arc`] (construction already returns one).
#[derive(Debug)]
pub struct GpuSim {
    mode: ExecMode,
    state: Mutex<SimState>,
}

#[derive(Debug)]
struct SimState {
    timeline: Timeline,
    pool: PoolState,
}

impl GpuSim {
    /// Creates a simulated device.
    pub fn new(spec: DeviceSpec, mode: ExecMode) -> Arc<Self> {
        Arc::new(Self {
            mode,
            state: Mutex::new(SimState {
                timeline: Timeline::new(spec),
                pool: PoolState::default(),
            }),
        })
    }

    /// Execution mode.
    #[inline]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// True when kernel bodies run.
    #[inline]
    pub fn is_functional(&self) -> bool {
        self.mode == ExecMode::Functional
    }

    /// The device specification.
    pub fn spec(&self) -> DeviceSpec {
        self.state.lock().timeline.spec().clone()
    }

    /// Launches a kernel on `stream`: records its timing and, in functional
    /// mode, runs `body` synchronously.
    pub fn launch<F: FnOnce()>(&self, stream: usize, desc: KernelDesc, body: F) {
        self.state.lock().timeline.launch(stream, &desc);
        if self.is_functional() {
            body();
        }
    }

    /// Launches a kernel whose body returns a value (functional mode), or
    /// `None` in cost-only mode.
    pub fn launch_map<T, F: FnOnce() -> T>(
        &self,
        stream: usize,
        desc: KernelDesc,
        body: F,
    ) -> Option<T> {
        self.state.lock().timeline.launch(stream, &desc);
        if self.is_functional() {
            Some(body())
        } else {
            None
        }
    }

    /// Records a host→device transfer of `bytes`.
    pub fn transfer_to_device(&self, bytes: u64) {
        self.state.lock().timeline.transfer(bytes, true);
    }

    /// Records a device→host transfer of `bytes`.
    pub fn transfer_to_host(&self, bytes: u64) {
        self.state.lock().timeline.transfer(bytes, false);
    }

    /// Device-wide synchronize; returns the simulated makespan in µs.
    ///
    /// The standard timing idiom is
    /// `let t0 = gpu.sync(); /* ops */ let dt = gpu.sync() - t0;`.
    pub fn sync(&self) -> f64 {
        self.state.lock().timeline.sync_all()
    }

    /// Event fence: streams in `waiters` wait for work recorded on
    /// `signals`.
    pub fn fence(&self, signals: &[usize], waiters: &[usize]) {
        self.state.lock().timeline.fence(signals, waiters);
    }

    /// Snapshot of the statistics ledger.
    pub fn stats(&self) -> SimStats {
        let st = self.state.lock();
        let mut s = st.timeline.stats.clone();
        s.current_alloc_bytes = st.pool.current_bytes;
        s.peak_alloc_bytes = st.pool.peak_bytes;
        s
    }

    /// Clears the statistics ledger (clocks keep advancing monotonically).
    pub fn reset_stats(&self) {
        let mut st = self.state.lock();
        st.timeline.stats = SimStats::default();
    }

    fn pool_alloc(&self, bytes: u64) -> BufferId {
        self.state.lock().pool.alloc(bytes)
    }

    fn pool_free(&self, buf: BufferId, bytes: u64) {
        let mut st = self.state.lock();
        st.pool.free(bytes);
        st.timeline.evict_buffer(buf);
    }
}

/// An RAII device buffer of `T` elements, the Rust counterpart of FIDESlib's
/// `VectorGPU` (§III-D).
///
/// Allocation registers with the device pool at construction and frees at
/// drop. In cost-only mode the host-side stand-in storage stays empty — only
/// the accounting exists, mirroring the fact that kernel bodies never touch
/// the data.
#[derive(Debug)]
pub struct VectorGpu<T: Copy + Default> {
    data: Vec<T>,
    logical_len: usize,
    buffer: BufferId,
    gpu: Arc<GpuSim>,
    managed: bool,
}

impl<T: Copy + Default> VectorGpu<T> {
    /// Allocates a managed, zero-initialized device vector of `len` elements.
    pub fn new(gpu: &Arc<GpuSim>, len: usize) -> Self {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let buffer = gpu.pool_alloc(bytes);
        let data = if gpu.is_functional() {
            vec![T::default(); len]
        } else {
            Vec::new()
        };
        Self {
            data,
            logical_len: len,
            buffer,
            gpu: Arc::clone(gpu),
            managed: true,
        }
    }

    /// Allocates an *unmanaged* vector: accounting for its bytes is assumed
    /// to belong to an enclosing flattened allocation (the 2D-array mode of
    /// §III-D), so the pool records no separate alloc/free bytes.
    pub fn unmanaged(gpu: &Arc<GpuSim>, len: usize) -> Self {
        let buffer = gpu.pool_alloc(0);
        let data = if gpu.is_functional() {
            vec![T::default(); len]
        } else {
            Vec::new()
        };
        Self {
            data,
            logical_len: len,
            buffer,
            gpu: Arc::clone(gpu),
            managed: false,
        }
    }

    /// Uploads `data` into a fresh managed vector (functional mode keeps the
    /// contents; cost-only mode records the allocation only). Does **not**
    /// charge a PCIe transfer — call [`GpuSim::transfer_to_device`] where
    /// modelling the copy matters.
    pub fn from_vec(gpu: &Arc<GpuSim>, data: Vec<T>) -> Self {
        let len = data.len();
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let buffer = gpu.pool_alloc(bytes);
        let data = if gpu.is_functional() {
            data
        } else {
            Vec::new()
        };
        Self {
            data,
            logical_len: len,
            buffer,
            gpu: Arc::clone(gpu),
            managed: true,
        }
    }

    /// Logical element count (valid in both execution modes).
    #[inline]
    pub fn len(&self) -> usize {
        self.logical_len
    }

    /// True if the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.logical_len == 0
    }

    /// Logical size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.logical_len * std::mem::size_of::<T>()) as u64
    }

    /// Buffer identity for kernel descriptors.
    #[inline]
    pub fn buffer(&self) -> BufferId {
        self.buffer
    }

    /// Borrows the backing storage. Empty in cost-only mode; only kernel
    /// bodies (which never run in that mode) should index it.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the backing storage (see [`Self::as_slice`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the contents out (functional mode) or returns zeros.
    pub fn to_vec(&self) -> Vec<T> {
        if self.gpu.is_functional() {
            self.data.clone()
        } else {
            vec![T::default(); self.logical_len]
        }
    }

    /// Overwrites contents from a host slice (no-op in cost-only mode).
    ///
    /// # Panics
    ///
    /// Panics in functional mode if `src.len() != self.len()`.
    pub fn copy_from_slice(&mut self, src: &[T]) {
        if self.gpu.is_functional() {
            assert_eq!(src.len(), self.logical_len);
            self.data.copy_from_slice(src);
        }
    }

    /// The owning device.
    #[inline]
    pub fn gpu(&self) -> &Arc<GpuSim> {
        &self.gpu
    }
}

impl<T: Copy + Default> Clone for VectorGpu<T> {
    fn clone(&self) -> Self {
        let bytes = if self.managed { self.bytes() } else { 0 };
        let buffer = self.gpu.pool_alloc(bytes);
        let _ = bytes;
        Self {
            data: self.data.clone(),
            logical_len: self.logical_len,
            buffer,
            gpu: Arc::clone(&self.gpu),
            managed: self.managed,
        }
    }
}

impl<T: Copy + Default> Drop for VectorGpu<T> {
    fn drop(&mut self) {
        let bytes = if self.managed { self.bytes() } else { 0 };
        self.gpu.pool_free(self.buffer, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_mode_runs_bodies() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        let mut hits = 0;
        gpu.launch(0, KernelDesc::new(KernelKind::Elementwise), || hits += 1);
        assert_eq!(hits, 1);
        assert!(gpu.is_functional());
    }

    #[test]
    fn cost_only_mode_skips_bodies_but_counts() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let mut hits = 0;
        gpu.launch(0, KernelDesc::new(KernelKind::Elementwise), || hits += 1);
        assert_eq!(hits, 0);
        assert_eq!(gpu.stats().kernel_launches, 1);
        assert!(gpu.sync() > 0.0);
    }

    #[test]
    fn launch_map_returns_none_in_cost_only() {
        let gpu = GpuSim::new(DeviceSpec::v100(), ExecMode::CostOnly);
        let r = gpu.launch_map(0, KernelDesc::new(KernelKind::Elementwise), || 42);
        assert_eq!(r, None);
        let gpu = GpuSim::new(DeviceSpec::v100(), ExecMode::Functional);
        let r = gpu.launch_map(0, KernelDesc::new(KernelKind::Elementwise), || 42);
        assert_eq!(r, Some(42));
    }

    #[test]
    fn vector_gpu_raii_accounting() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        {
            let v = VectorGpu::<u64>::new(&gpu, 1024);
            assert_eq!(v.bytes(), 8192);
            assert_eq!(gpu.stats().current_alloc_bytes, 8192);
            let w = v.clone();
            assert_eq!(gpu.stats().current_alloc_bytes, 16384);
            assert_ne!(v.buffer(), w.buffer());
        }
        assert_eq!(gpu.stats().current_alloc_bytes, 0);
        assert_eq!(gpu.stats().peak_alloc_bytes, 16384);
    }

    #[test]
    fn unmanaged_vectors_do_not_count_bytes() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        let v = VectorGpu::<u64>::unmanaged(&gpu, 4096);
        assert_eq!(gpu.stats().current_alloc_bytes, 0);
        assert_eq!(v.len(), 4096);
    }

    #[test]
    fn cost_only_vectors_have_no_storage_but_logical_len() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let v = VectorGpu::<u64>::from_vec(&gpu, vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(v.as_slice().is_empty());
        assert_eq!(v.to_vec(), vec![0, 0, 0]);
        assert_eq!(gpu.stats().current_alloc_bytes, 24);
    }

    #[test]
    fn timing_is_monotonic_and_sync_stable() {
        let gpu = GpuSim::new(DeviceSpec::rtx_a4500(), ExecMode::CostOnly);
        let t0 = gpu.sync();
        gpu.launch(
            0,
            KernelDesc::new(KernelKind::Elementwise)
                .read(BufferId(1), 1 << 20)
                .ops(1000),
            || {},
        );
        let t1 = gpu.sync();
        assert!(t1 > t0);
        assert_eq!(gpu.sync(), t1);
    }

    #[test]
    fn stats_reset_clears_ledger_only() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        gpu.launch(0, KernelDesc::new(KernelKind::Elementwise).ops(5), || {});
        let t1 = gpu.sync();
        gpu.reset_stats();
        assert_eq!(gpu.stats().kernel_launches, 0);
        assert!(gpu.sync() >= t1, "clocks stay monotonic");
    }

    #[test]
    fn transfers_accumulate() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        gpu.transfer_to_device(1000);
        gpu.transfer_to_host(500);
        let s = gpu.stats();
        assert_eq!(s.h2d_bytes, 1000);
        assert_eq!(s.d2h_bytes, 500);
    }
}
