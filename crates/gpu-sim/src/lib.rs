//! # fides-gpu-sim
//!
//! The GPU-backend substitute for `fideslib-rs`: a functional + timing
//! simulator of a CUDA-like device.
//!
//! The real FIDESlib expresses every server-side CKKS operation as GPU kernel
//! launches on CUDA streams. This crate reproduces that execution model in
//! pure Rust: library code wraps each unit of work in a [`KernelDesc`]
//! (traffic + compute totals) and a closure with the actual math, and the
//! simulator both *runs* the math (in [`ExecMode::Functional`]) and *times*
//! the launch against a device model ([`DeviceSpec`], Table IV of the paper).
//!
//! Because CKKS server operations are data-oblivious, the kernel schedule is
//! identical whether or not the math runs — [`ExecMode::CostOnly`] produces
//! exact timing ledgers at full paper scale (N = 2¹⁶) at negligible CPU cost.
//!
//! ```
//! use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim, KernelDesc, KernelKind, VectorGpu};
//!
//! let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
//! let mut v = VectorGpu::<u64>::from_vec(&gpu, vec![1, 2, 3, 4]);
//! let desc = KernelDesc::new(KernelKind::Elementwise)
//!     .read(v.buffer(), v.bytes())
//!     .write(v.buffer(), v.bytes())
//!     .ops(4 * fides_gpu_sim::ADD_OPS);
//! gpu.launch(0, desc, || {
//!     for x in v.as_mut_slice() {
//!         *x += 1;
//!     }
//! });
//! assert_eq!(v.to_vec(), vec![2, 3, 4, 5]);
//! assert!(gpu.sync() > 0.0);
//! ```

#![warn(missing_docs)]

mod cluster;
mod device;
mod kernel;
mod mem;
mod timeline;

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

pub use cluster::{GpuCluster, InterconnectSpec, LinkStats};
pub use device::{DeviceKind, DeviceSpec};
pub use kernel::{
    KernelDesc, KernelKind, ADD_OPS, BARRETT_MULMOD_OPS, BUTTERFLY_OPS, LOW_MUL_OPS, MODADD_OPS,
    SHOUP_MULMOD_OPS, WIDE_MUL_OPS,
};
pub use mem::BufferId;
pub use timeline::{KindStats, SimStats, StreamStats};

use mem::PoolState;
use timeline::Timeline;

/// Whether kernel bodies execute (functional correctness) or are skipped
/// (timing-only at full scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Run kernel bodies; results are bit-exact CKKS.
    Functional,
    /// Skip kernel bodies; only the timing ledger advances. Valid because all
    /// server-side CKKS kernels are data-oblivious.
    CostOnly,
}

/// One recorded device event, produced while a kernel-graph capture is
/// active (see [`GpuSim::begin_capture`]).
///
/// Captured launches carry the exact descriptor and stream eager execution
/// would have used; a scheduling layer may fuse, re-stream and replay them.
#[derive(Clone, Debug)]
pub enum GraphEvent {
    /// A kernel launch deferred from the timeline.
    Launch {
        /// Stream the recording requested.
        stream: usize,
        /// Traffic/compute descriptor.
        desc: KernelDesc,
    },
    /// An event fence: `waiters` wait for work recorded on `signals`.
    Fence {
        /// Streams whose recorded work is waited upon.
        signals: Vec<usize>,
        /// Streams that wait.
        waiters: Vec<usize>,
    },
}

/// A simulated GPU: device model, timeline, memory pool and execution mode.
///
/// Cheap to share: wrap in [`Arc`] (construction already returns one).
#[derive(Debug)]
pub struct GpuSim {
    mode: ExecMode,
    state: Mutex<SimState>,
}

#[derive(Debug)]
struct SimState {
    timeline: Timeline,
    pool: PoolState,
    /// Kernel-graph capture buffer (non-empty depth = capture active).
    capture: Vec<GraphEvent>,
    capture_depth: usize,
    /// Thread owning the open capture. Capture is **per-thread**: launches
    /// from other threads keep executing eagerly (mutex-serialized, exactly
    /// the pre-graph behaviour), so concurrent sessions sharing one device
    /// can never corrupt each other's graphs.
    capture_owner: Option<std::thread::ThreadId>,
}

impl GpuSim {
    /// Creates a simulated device.
    pub fn new(spec: DeviceSpec, mode: ExecMode) -> Arc<Self> {
        Arc::new(Self {
            mode,
            state: Mutex::new(SimState {
                timeline: Timeline::new(spec),
                pool: PoolState::default(),
                capture: Vec::new(),
                capture_depth: 0,
                capture_owner: None,
            }),
        })
    }

    /// Execution mode.
    #[inline]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// True when kernel bodies run.
    #[inline]
    pub fn is_functional(&self) -> bool {
        self.mode == ExecMode::Functional
    }

    /// The device specification.
    pub fn spec(&self) -> DeviceSpec {
        self.state.lock().timeline.spec().clone()
    }

    /// Launches a kernel on `stream`: records its timing and, in functional
    /// mode, runs `body` synchronously.
    ///
    /// Under an active capture ([`Self::begin_capture`]) the timing is
    /// deferred — the launch is recorded as a [`GraphEvent`] instead of
    /// advancing the timeline — while the body still runs (CKKS kernels are
    /// data-oblivious, so functional results never depend on the schedule).
    pub fn launch<F: FnOnce()>(&self, stream: usize, desc: KernelDesc, body: F) {
        {
            let mut st = self.state.lock();
            if st.capture_depth > 0 && st.capture_owner == Some(std::thread::current().id()) {
                st.capture.push(GraphEvent::Launch { stream, desc });
            } else {
                st.timeline.launch(stream, &desc);
            }
        }
        if self.is_functional() {
            body();
        }
    }

    /// Launches a kernel whose body returns a value (functional mode), or
    /// `None` in cost-only mode. Capture-aware like [`Self::launch`].
    pub fn launch_map<T, F: FnOnce() -> T>(
        &self,
        stream: usize,
        desc: KernelDesc,
        body: F,
    ) -> Option<T> {
        {
            let mut st = self.state.lock();
            if st.capture_depth > 0 && st.capture_owner == Some(std::thread::current().id()) {
                st.capture.push(GraphEvent::Launch { stream, desc });
            } else {
                st.timeline.launch(stream, &desc);
            }
        }
        if self.is_functional() {
            Some(body())
        } else {
            None
        }
    }

    /// Opens a kernel-graph capture region on the **calling thread**:
    /// subsequent [`Self::launch`] and [`Self::fence`] calls from this
    /// thread are recorded instead of timed (other threads keep executing
    /// eagerly). Regions nest per owner; only the outermost
    /// [`Self::end_capture`] returns the recorded events. Returns `true`
    /// when this call opened the outermost region; when another thread
    /// already owns a capture, nothing is opened and the caller's work runs
    /// eagerly.
    pub fn begin_capture(&self) -> bool {
        let mut st = self.state.lock();
        let me = std::thread::current().id();
        if st.capture_depth == 0 {
            st.capture_owner = Some(me);
            st.capture_depth = 1;
            true
        } else {
            if st.capture_owner == Some(me) {
                st.capture_depth += 1;
            }
            false
        }
    }

    /// Closes one capture region of the calling thread. The outermost close
    /// drains and returns the recorded event list (empty vector for nested
    /// closes and for threads that own no capture), leaving the timeline
    /// untouched — replaying the events (fused or not) is the caller's job.
    pub fn end_capture(&self) -> Vec<GraphEvent> {
        let mut st = self.state.lock();
        if st.capture_depth == 0 || st.capture_owner != Some(std::thread::current().id()) {
            return Vec::new();
        }
        st.capture_depth -= 1;
        if st.capture_depth == 0 {
            st.capture_owner = None;
            std::mem::take(&mut st.capture)
        } else {
            Vec::new()
        }
    }

    /// True while a capture region is open.
    pub fn is_capturing(&self) -> bool {
        self.state.lock().capture_depth > 0
    }

    /// True while the **calling thread** owns an open capture region.
    pub fn capturing_on_current_thread(&self) -> bool {
        let st = self.state.lock();
        st.capture_depth > 0 && st.capture_owner == Some(std::thread::current().id())
    }

    /// Records a host→device transfer of `bytes`.
    pub fn transfer_to_device(&self, bytes: u64) {
        self.state.lock().timeline.transfer(bytes, true);
    }

    /// Records a device→host transfer of `bytes`.
    pub fn transfer_to_host(&self, bytes: u64) {
        self.state.lock().timeline.transfer(bytes, false);
    }

    /// Device-wide synchronize; returns the simulated makespan in µs.
    ///
    /// The standard timing idiom is
    /// `let t0 = gpu.sync(); /* ops */ let dt = gpu.sync() - t0;`.
    pub fn sync(&self) -> f64 {
        self.state.lock().timeline.sync_all()
    }

    /// Event fence: streams in `waiters` wait for work recorded on
    /// `signals`. Recorded instead of applied while a capture is active.
    pub fn fence(&self, signals: &[usize], waiters: &[usize]) {
        let mut st = self.state.lock();
        if st.capture_depth > 0 && st.capture_owner == Some(std::thread::current().id()) {
            st.capture.push(GraphEvent::Fence {
                signals: signals.to_vec(),
                waiters: waiters.to_vec(),
            });
        } else {
            st.timeline.fence(signals, waiters);
        }
    }

    /// Records the memory plan of one scheduled graph: the liveness pass's
    /// pooled high-water mark and slot count. The ledger keeps the largest
    /// peak seen in the window and accumulates allocations.
    pub fn record_plan_memory(&self, peak_device_bytes: u64, allocations: u64) {
        let mut st = self.state.lock();
        let stats = &mut st.timeline.stats;
        stats.peak_device_bytes = stats.peak_device_bytes.max(peak_device_bytes);
        stats.allocations += allocations;
    }

    /// Records one plan-cache lookup outcome for a scheduled graph.
    pub fn record_plan_cache(&self, hit: bool) {
        let mut st = self.state.lock();
        if hit {
            st.timeline.stats.plan_cache_hits += 1;
        } else {
            st.timeline.stats.plan_cache_misses += 1;
        }
    }

    /// Snapshot of the statistics ledger.
    pub fn stats(&self) -> SimStats {
        let st = self.state.lock();
        let mut s = st.timeline.stats.clone();
        s.makespan_us = st.timeline.makespan() - st.timeline.stats_epoch;
        s.current_alloc_bytes = st.pool.current_bytes;
        s.peak_alloc_bytes = st.pool.peak_bytes;
        s
    }

    /// Clears the statistics ledger and starts a new measurement window
    /// (clocks keep advancing monotonically).
    pub fn reset_stats(&self) {
        let mut st = self.state.lock();
        st.timeline.stats = SimStats::default();
        st.timeline.stats_epoch = st.timeline.makespan();
    }

    /// When `stream`'s submitted work completes, in absolute simulated µs.
    /// Read-only peek used by cross-device coupling (see [`GpuCluster`]):
    /// the producer side of a device-to-device transfer is ready at this
    /// instant.
    pub fn stream_ready(&self, stream: usize) -> f64 {
        self.state.lock().timeline.stream_ready(stream)
    }

    /// Delays `stream` until absolute simulated time `t` µs — the receiving
    /// end of a cross-device transfer. Monotonic (never rewinds a stream).
    pub fn wait_stream_until(&self, stream: usize, t: f64) {
        self.state.lock().timeline.wait_stream_until(stream, t);
    }

    /// The host submission clock in absolute simulated µs.
    pub fn host_clock(&self) -> f64 {
        self.state.lock().timeline.host_clock()
    }

    /// Advances the host submission clock to at least `t` µs. Together with
    /// [`Self::host_clock`] this lets a distributed executor drive several
    /// device timelines off **one shared host clock**: impose the shared
    /// clock before submitting to a device, read the advanced clock back
    /// after.
    pub fn advance_host_to(&self, t: f64) {
        self.state.lock().timeline.advance_host_to(t);
    }

    fn pool_alloc(&self, bytes: u64) -> BufferId {
        self.state.lock().pool.alloc(bytes)
    }

    fn pool_free(&self, buf: BufferId, bytes: u64) {
        let mut st = self.state.lock();
        st.pool.free(bytes);
        st.timeline.evict_buffer(buf);
    }
}

/// An RAII device buffer of `T` elements, the Rust counterpart of FIDESlib's
/// `VectorGPU` (§III-D).
///
/// Allocation registers with the device pool at construction and frees at
/// drop. In cost-only mode the host-side stand-in storage stays empty — only
/// the accounting exists, mirroring the fact that kernel bodies never touch
/// the data.
#[derive(Debug)]
pub struct VectorGpu<T: Copy + Default> {
    data: Vec<T>,
    logical_len: usize,
    buffer: BufferId,
    gpu: Arc<GpuSim>,
    managed: bool,
}

impl<T: Copy + Default> VectorGpu<T> {
    /// Allocates a managed, zero-initialized device vector of `len` elements.
    pub fn new(gpu: &Arc<GpuSim>, len: usize) -> Self {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let buffer = gpu.pool_alloc(bytes);
        let data = if gpu.is_functional() {
            vec![T::default(); len]
        } else {
            Vec::new()
        };
        Self {
            data,
            logical_len: len,
            buffer,
            gpu: Arc::clone(gpu),
            managed: true,
        }
    }

    /// Allocates an *unmanaged* vector: accounting for its bytes is assumed
    /// to belong to an enclosing flattened allocation (the 2D-array mode of
    /// §III-D), so the pool records no separate alloc/free bytes.
    pub fn unmanaged(gpu: &Arc<GpuSim>, len: usize) -> Self {
        let buffer = gpu.pool_alloc(0);
        let data = if gpu.is_functional() {
            vec![T::default(); len]
        } else {
            Vec::new()
        };
        Self {
            data,
            logical_len: len,
            buffer,
            gpu: Arc::clone(gpu),
            managed: false,
        }
    }

    /// Uploads `data` into a fresh managed vector (functional mode keeps the
    /// contents; cost-only mode records the allocation only). Does **not**
    /// charge a PCIe transfer — call [`GpuSim::transfer_to_device`] where
    /// modelling the copy matters.
    pub fn from_vec(gpu: &Arc<GpuSim>, data: Vec<T>) -> Self {
        let len = data.len();
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let buffer = gpu.pool_alloc(bytes);
        let data = if gpu.is_functional() {
            data
        } else {
            Vec::new()
        };
        Self {
            data,
            logical_len: len,
            buffer,
            gpu: Arc::clone(gpu),
            managed: true,
        }
    }

    /// Logical element count (valid in both execution modes).
    #[inline]
    pub fn len(&self) -> usize {
        self.logical_len
    }

    /// True if the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.logical_len == 0
    }

    /// Logical size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.logical_len * std::mem::size_of::<T>()) as u64
    }

    /// Buffer identity for kernel descriptors.
    #[inline]
    pub fn buffer(&self) -> BufferId {
        self.buffer
    }

    /// Borrows the backing storage. Empty in cost-only mode; only kernel
    /// bodies (which never run in that mode) should index it.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the backing storage (see [`Self::as_slice`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the contents out (functional mode) or returns zeros.
    pub fn to_vec(&self) -> Vec<T> {
        if self.gpu.is_functional() {
            self.data.clone()
        } else {
            vec![T::default(); self.logical_len]
        }
    }

    /// Overwrites contents from a host slice (no-op in cost-only mode).
    ///
    /// # Panics
    ///
    /// Panics in functional mode if `src.len() != self.len()`.
    pub fn copy_from_slice(&mut self, src: &[T]) {
        if self.gpu.is_functional() {
            assert_eq!(src.len(), self.logical_len);
            self.data.copy_from_slice(src);
        }
    }

    /// The owning device.
    #[inline]
    pub fn gpu(&self) -> &Arc<GpuSim> {
        &self.gpu
    }
}

impl<T: Copy + Default> Clone for VectorGpu<T> {
    fn clone(&self) -> Self {
        let bytes = if self.managed { self.bytes() } else { 0 };
        let buffer = self.gpu.pool_alloc(bytes);
        let _ = bytes;
        Self {
            data: self.data.clone(),
            logical_len: self.logical_len,
            buffer,
            gpu: Arc::clone(&self.gpu),
            managed: self.managed,
        }
    }
}

impl<T: Copy + Default> Drop for VectorGpu<T> {
    fn drop(&mut self) {
        let bytes = if self.managed { self.bytes() } else { 0 };
        self.gpu.pool_free(self.buffer, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_mode_runs_bodies() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        let mut hits = 0;
        gpu.launch(0, KernelDesc::new(KernelKind::Elementwise), || hits += 1);
        assert_eq!(hits, 1);
        assert!(gpu.is_functional());
    }

    #[test]
    fn cost_only_mode_skips_bodies_but_counts() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let mut hits = 0;
        gpu.launch(0, KernelDesc::new(KernelKind::Elementwise), || hits += 1);
        assert_eq!(hits, 0);
        assert_eq!(gpu.stats().kernel_launches, 1);
        assert!(gpu.sync() > 0.0);
    }

    #[test]
    fn launch_map_returns_none_in_cost_only() {
        let gpu = GpuSim::new(DeviceSpec::v100(), ExecMode::CostOnly);
        let r = gpu.launch_map(0, KernelDesc::new(KernelKind::Elementwise), || 42);
        assert_eq!(r, None);
        let gpu = GpuSim::new(DeviceSpec::v100(), ExecMode::Functional);
        let r = gpu.launch_map(0, KernelDesc::new(KernelKind::Elementwise), || 42);
        assert_eq!(r, Some(42));
    }

    #[test]
    fn vector_gpu_raii_accounting() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        {
            let v = VectorGpu::<u64>::new(&gpu, 1024);
            assert_eq!(v.bytes(), 8192);
            assert_eq!(gpu.stats().current_alloc_bytes, 8192);
            let w = v.clone();
            assert_eq!(gpu.stats().current_alloc_bytes, 16384);
            assert_ne!(v.buffer(), w.buffer());
        }
        assert_eq!(gpu.stats().current_alloc_bytes, 0);
        assert_eq!(gpu.stats().peak_alloc_bytes, 16384);
    }

    #[test]
    fn unmanaged_vectors_do_not_count_bytes() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        let v = VectorGpu::<u64>::unmanaged(&gpu, 4096);
        assert_eq!(gpu.stats().current_alloc_bytes, 0);
        assert_eq!(v.len(), 4096);
    }

    #[test]
    fn cost_only_vectors_have_no_storage_but_logical_len() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let v = VectorGpu::<u64>::from_vec(&gpu, vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(v.as_slice().is_empty());
        assert_eq!(v.to_vec(), vec![0, 0, 0]);
        assert_eq!(gpu.stats().current_alloc_bytes, 24);
    }

    #[test]
    fn timing_is_monotonic_and_sync_stable() {
        let gpu = GpuSim::new(DeviceSpec::rtx_a4500(), ExecMode::CostOnly);
        let t0 = gpu.sync();
        gpu.launch(
            0,
            KernelDesc::new(KernelKind::Elementwise)
                .read(BufferId(1), 1 << 20)
                .ops(1000),
            || {},
        );
        let t1 = gpu.sync();
        assert!(t1 > t0);
        assert_eq!(gpu.sync(), t1);
    }

    #[test]
    fn stats_reset_clears_ledger_only() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        gpu.launch(0, KernelDesc::new(KernelKind::Elementwise).ops(5), || {});
        let t1 = gpu.sync();
        gpu.reset_stats();
        assert_eq!(gpu.stats().kernel_launches, 0);
        assert!(gpu.sync() >= t1, "clocks stay monotonic");
    }

    #[test]
    fn capture_defers_timing_but_runs_bodies() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        let mut hits = 0;
        assert!(gpu.begin_capture());
        gpu.launch(
            2,
            KernelDesc::new(KernelKind::Elementwise).ops(1000),
            || hits += 1,
        );
        gpu.fence(&[2], &[3]);
        assert_eq!(hits, 1, "body runs during capture");
        assert_eq!(gpu.stats().kernel_launches, 0, "timing deferred");
        let events = gpu.end_capture();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], GraphEvent::Launch { stream: 2, .. }));
        assert!(matches!(events[1], GraphEvent::Fence { .. }));
        assert!(!gpu.is_capturing());
        // Replaying advances the ledger.
        for ev in events {
            match ev {
                GraphEvent::Launch { stream, desc } => gpu.launch(stream, desc, || {}),
                GraphEvent::Fence { signals, waiters } => gpu.fence(&signals, &waiters),
            }
        }
        assert_eq!(gpu.stats().kernel_launches, 1);
    }

    #[test]
    fn nested_capture_drains_only_at_outermost() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        assert!(gpu.begin_capture());
        assert!(!gpu.begin_capture(), "nested region is not the owner");
        gpu.launch(0, KernelDesc::new(KernelKind::Elementwise), || {});
        assert!(gpu.end_capture().is_empty(), "nested close returns nothing");
        let events = gpu.end_capture();
        assert_eq!(events.len(), 1, "outermost close drains everything");
    }

    #[test]
    fn capture_is_per_thread() {
        // A capture owned by this thread must not swallow launches from
        // other threads (concurrent sessions sharing one device), and a
        // foreign thread's begin/end must not disturb the owner's region.
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        assert!(gpu.begin_capture());
        gpu.launch(0, KernelDesc::new(KernelKind::Elementwise), || {});
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!gpu.begin_capture(), "foreign thread cannot own");
                gpu.launch(1, KernelDesc::new(KernelKind::Elementwise), || {});
                assert!(gpu.end_capture().is_empty());
                assert!(!gpu.capturing_on_current_thread());
            });
        });
        assert_eq!(
            gpu.stats().kernel_launches,
            1,
            "foreign launch executed eagerly"
        );
        assert!(gpu.capturing_on_current_thread());
        let events = gpu.end_capture();
        assert_eq!(events.len(), 1, "owner's recording unaffected");
    }

    #[test]
    fn per_stream_stats_and_occupancy() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        gpu.launch(
            0,
            KernelDesc::new(KernelKind::Elementwise)
                .read(BufferId(1), 64 << 20)
                .ops(1_000_000),
            || {},
        );
        gpu.launch(
            3,
            KernelDesc::new(KernelKind::Elementwise)
                .read(BufferId(2), 64 << 20)
                .ops(1_000_000),
            || {},
        );
        let s = gpu.stats();
        assert_eq!(s.active_streams(), 2);
        assert_eq!(s.per_stream.len(), 4);
        assert_eq!(s.per_stream[0].launches, 1);
        assert_eq!(s.per_stream[1].launches, 0);
        assert_eq!(s.per_stream[3].launches, 1);
        assert!(s.per_stream[0].busy_us > 0.0);
        assert!(s.makespan_us > 0.0);
        let occ = s.stream_occupancy();
        assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ} out of range");
    }

    #[test]
    fn reset_stats_starts_new_occupancy_window() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        gpu.launch(
            0,
            KernelDesc::new(KernelKind::Elementwise).read(BufferId(1), 1 << 20),
            || {},
        );
        gpu.sync();
        gpu.reset_stats();
        let s = gpu.stats();
        assert_eq!(s.active_streams(), 0);
        assert_eq!(s.stream_occupancy(), 0.0);
        assert!(s.makespan_us.abs() < 1e-9, "window restarts at reset");
    }

    #[test]
    fn transfers_accumulate() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        gpu.transfer_to_device(1000);
        gpu.transfer_to_host(500);
        let s = gpu.stats();
        assert_eq!(s.h2d_bytes, 1000);
        assert_eq!(s.d2h_bytes, 500);
    }
}
