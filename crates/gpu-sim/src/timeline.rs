//! The discrete timeline model.
//!
//! Kernels launched on streams advance four clocks:
//!
//! * a **CPU launch clock** — every launch occupies the host for
//!   `kernel_launch_us`, the effect limb batching amortizes (§III-F.1);
//! * per-**stream** ready times — kernels on one stream serialize;
//! * a serial **DRAM resource** — miss traffic from all streams shares the
//!   off-chip bandwidth;
//! * a serial **L2 resource** — hit traffic shares the on-chip bandwidth;
//! * a serial **compute resource** — integer throughput is shared.
//!
//! A kernel's finish time is the max of its latency floor and its resource
//! phases; concurrency across streams therefore overlaps launch overhead and
//! latency but never exceeds the device's aggregate bandwidth/compute — the
//! same first-order behaviour the paper exploits and measures.
//!
//! L2 residency is a byte-accurate LRU over [`BufferId`]s: a read hits iff
//! the buffer was touched recently enough that it has not been evicted, which
//! is what produces the working-set knees of Figs. 4, 5 and 7.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::kernel::{KernelDesc, KernelKind};
use crate::mem::BufferId;

/// Aggregated statistics for one kernel kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KindStats {
    /// Number of launches.
    pub count: u64,
    /// Total busy time attributed to this kind, µs.
    pub busy_us: f64,
    /// Total bytes moved (read + write).
    pub bytes: u64,
}

/// Aggregated statistics for one stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Number of launches issued to this stream.
    pub launches: u64,
    /// Total *service* time of the stream's kernels, µs: each kernel
    /// charges the larger of its latency floor and its own resource-phase
    /// demands (DRAM, L2, compute), **not** time spent blocked behind
    /// other streams' traffic in the shared resource queues. Queueing is
    /// idle time by this accounting, so occupancy measures how well the
    /// schedule packs a fixed amount of work rather than rewarding
    /// contention. Kernels on one stream serialize with at least their
    /// service time between completions, so this never exceeds the
    /// measurement window.
    pub busy_us: f64,
}

/// Snapshot of simulator counters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Total kernel launches.
    pub kernel_launches: u64,
    /// Bytes read that missed L2 (served from DRAM).
    pub dram_read_bytes: u64,
    /// Bytes read that hit L2.
    pub l2_hit_bytes: u64,
    /// Bytes written (write-through in the model).
    pub write_bytes: u64,
    /// Total int32-equivalent ops executed.
    pub int32_ops: u64,
    /// Host→device transfer bytes.
    pub h2d_bytes: u64,
    /// Device→host transfer bytes.
    pub d2h_bytes: u64,
    /// Per-kind breakdown.
    pub per_kind: BTreeMap<String, KindStats>,
    /// Per-stream breakdown (index = stream id; streams never launched on
    /// since the last reset have zero entries).
    pub per_stream: Vec<StreamStats>,
    /// Width of the measurement window in simulated µs: makespan progress
    /// since the ledger was last reset. Denominator of
    /// [`SimStats::stream_occupancy`].
    pub makespan_us: f64,
    /// Live device allocation, bytes.
    pub current_alloc_bytes: u64,
    /// Peak device allocation, bytes.
    pub peak_alloc_bytes: u64,
    /// Planner-derived device-memory high-water mark, bytes: the pool
    /// footprint a stream-ordered allocator needs when ciphertext buffers
    /// are bound to liveness-colored slots (largest plan wins within the
    /// window). Zero until a planned graph replays.
    pub peak_device_bytes: u64,
    /// Pool slots the planned graphs allocated (after liveness reuse);
    /// without the liveness pass this equals the number of distinct
    /// buffers touched.
    pub allocations: u64,
    /// Planned graphs served from the plan cache in the window.
    pub plan_cache_hits: u64,
    /// Planned graphs that had to run the full planning pass.
    pub plan_cache_misses: u64,
}

impl SimStats {
    /// Streams that launched at least one kernel in the window.
    pub fn active_streams(&self) -> usize {
        self.per_stream.iter().filter(|s| s.launches > 0).count()
    }

    /// Total stream-busy time across all streams, µs.
    pub fn stream_busy_total_us(&self) -> f64 {
        self.per_stream.iter().map(|s| s.busy_us).sum()
    }

    /// Mean stream occupancy over the measurement window: total per-stream
    /// busy time divided by `active_streams × makespan`. 1.0 means every
    /// active stream was saturated for the whole window; low values mean the
    /// device idled behind launch overhead or serial phases (the utilization
    /// the paper's stream/batching optimizations target).
    pub fn stream_occupancy(&self) -> f64 {
        let active = self.active_streams();
        if active == 0 || self.makespan_us <= 0.0 {
            return 0.0;
        }
        (self.stream_busy_total_us() / (active as f64 * self.makespan_us)).min(1.0)
    }
}

#[derive(Debug)]
struct Resident {
    bytes: u64,
    seq: u64,
    dirty: bool,
}

/// L2 residency model: an exact LRU over buffers by byte size.
#[derive(Debug, Default)]
pub(crate) struct L2Model {
    capacity: u64,
    resident: HashMap<BufferId, Resident>,
    lru: BTreeMap<u64, BufferId>,
    total: u64,
    next_seq: u64,
}

impl L2Model {
    pub(crate) fn new(capacity: u64) -> Self {
        Self {
            capacity,
            ..Default::default()
        }
    }

    /// Returns `(hit, writebacks)`: whether `buf` was resident, and the
    /// dirty bytes of every buffer evicted to make room (write-back model).
    /// Marks the buffer dirty when `write` is set.
    fn touch(&mut self, buf: BufferId, bytes: u64, write: bool) -> (bool, Vec<u64>) {
        let (hit, was_dirty) = if let Some(r) = self.resident.get_mut(&buf) {
            self.lru.remove(&r.seq);
            self.total -= r.bytes;
            (true, r.dirty)
        } else {
            (false, false)
        };
        let bytes = bytes.min(self.capacity);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.resident.insert(
            buf,
            Resident {
                bytes,
                seq,
                dirty: write || (hit && was_dirty),
            },
        );
        self.lru.insert(seq, buf);
        self.total += bytes;
        let mut writebacks = Vec::new();
        while self.total > self.capacity {
            let (&victim_seq, &victim) = self.lru.iter().next().expect("lru non-empty");
            if victim == buf {
                break; // never evict the buffer being touched
            }
            self.lru.remove(&victim_seq);
            let r = self.resident.remove(&victim).expect("resident entry");
            self.total -= r.bytes;
            if r.dirty {
                writebacks.push(r.bytes);
            }
        }
        (hit, writebacks)
    }

    fn evict(&mut self, buf: BufferId) {
        if let Some(r) = self.resident.remove(&buf) {
            self.lru.remove(&r.seq);
            self.total -= r.bytes;
        }
    }
}

/// Mutable simulator state (guarded by the [`crate::GpuSim`] lock).
#[derive(Debug)]
pub(crate) struct Timeline {
    spec: DeviceSpec,
    /// Host launch clock, µs.
    cpu_clock: f64,
    /// Per-stream ready times, µs.
    stream_ready: Vec<f64>,
    dram_free: f64,
    l2_free: f64,
    compute_free: f64,
    pcie_free: f64,
    l2: L2Model,
    pub(crate) stats: SimStats,
    /// Makespan at the last stats reset: start of the measurement window.
    pub(crate) stats_epoch: f64,
}

/// PCIe gen4 x16 effective bandwidth, bytes/µs (≈ 24 GB/s achieved).
const PCIE_BYTES_PER_US: f64 = 24_000.0;

impl Timeline {
    pub(crate) fn new(spec: DeviceSpec) -> Self {
        let l2 = L2Model::new(spec.l2_bytes);
        Self {
            spec,
            cpu_clock: 0.0,
            stream_ready: vec![0.0; 4],
            dram_free: 0.0,
            l2_free: 0.0,
            compute_free: 0.0,
            pcie_free: 0.0,
            l2,
            stats: SimStats::default(),
            stats_epoch: 0.0,
        }
    }

    fn stream_slot(&mut self, stream: usize) -> &mut f64 {
        if stream >= self.stream_ready.len() {
            self.stream_ready.resize(stream + 1, 0.0);
        }
        &mut self.stream_ready[stream]
    }

    /// Models one kernel launch; returns its completion time (µs).
    pub(crate) fn launch(&mut self, stream: usize, desc: &KernelDesc) -> f64 {
        let spec = self.spec.clone();
        // Host-side submission cost.
        self.cpu_clock += spec.kernel_launch_us;
        let start = self.stream_slot(stream).max(self.cpu_clock);

        // Classify read/write traffic through the write-back L2 model.
        let mut hit_bytes = 0u64;
        let mut miss_bytes = 0u64;
        let mut writeback_bytes = 0u64;
        for &(buf, bytes) in &desc.reads {
            let (hit, wb) = self.l2.touch(buf, bytes, false);
            if hit {
                hit_bytes += bytes;
            } else {
                miss_bytes += bytes;
            }
            writeback_bytes += wb.iter().sum::<u64>();
        }
        let mut write_bytes = 0u64;
        for &(buf, bytes) in &desc.writes {
            let (_, wb) = self.l2.touch(buf, bytes, true);
            write_bytes += bytes;
            writeback_bytes += wb.iter().sum::<u64>();
        }

        let eff = desc.access_efficiency;
        // Write-back model: writes land in L2; DRAM sees misses plus dirty
        // evictions.
        let dram_time = (miss_bytes + writeback_bytes) as f64 / (spec.dram_bytes_per_us() * eff);
        let l2_time = (hit_bytes + write_bytes) as f64 / (spec.l2_bytes_per_us() * eff);
        let compute_time = desc.int32_ops as f64 / spec.effective_int32_ops_per_us();

        let dram_at = self.dram_free.max(start);
        let dram_end = dram_at + dram_time;
        self.dram_free = dram_end;
        let l2_at = self.l2_free.max(start);
        let l2_end = l2_at + l2_time;
        self.l2_free = l2_end;
        let comp_at = self.compute_free.max(start);
        let comp_end = comp_at + compute_time;
        self.compute_free = comp_end;

        let end = (start + spec.min_kernel_us)
            .max(dram_end)
            .max(l2_end)
            .max(comp_end);
        *self.stream_slot(stream) = end;
        // The kernel's own service demand: what it would occupy its stream
        // with on an uncontended device. `end − start` additionally
        // contains queueing behind *other* streams' resource traffic,
        // which is idle time for this stream, not busy time.
        let service = spec
            .min_kernel_us
            .max(dram_time)
            .max(l2_time)
            .max(compute_time);

        // Ledger.
        self.stats.kernel_launches += 1;
        self.stats.dram_read_bytes += miss_bytes + writeback_bytes;
        self.stats.l2_hit_bytes += hit_bytes;
        self.stats.write_bytes += write_bytes;
        self.stats.int32_ops += desc.int32_ops;
        let label = desc.kind.unwrap_or(KernelKind::Elementwise).label();
        let entry = self.stats.per_kind.entry(label.to_string()).or_default();
        entry.count += 1;
        entry.busy_us += service;
        entry.bytes += miss_bytes + hit_bytes + write_bytes;
        if stream >= self.stats.per_stream.len() {
            self.stats
                .per_stream
                .resize(stream + 1, StreamStats::default());
        }
        let ss = &mut self.stats.per_stream[stream];
        ss.launches += 1;
        // Clamp to the measurement window: a kernel whose window ends
        // before the epoch set at the last reset contributes nothing, and
        // one straddling it contributes at most the in-window span.
        ss.busy_us += service.min((end - self.stats_epoch).max(0.0));
        end
    }

    /// Models a host↔device transfer on the PCIe resource.
    pub(crate) fn transfer(&mut self, bytes: u64, to_device: bool) -> f64 {
        let at = self.pcie_free.max(self.cpu_clock);
        let end = at + bytes as f64 / PCIE_BYTES_PER_US;
        self.pcie_free = end;
        if to_device {
            self.stats.h2d_bytes += bytes;
        } else {
            self.stats.d2h_bytes += bytes;
        }
        end
    }

    /// Makespan: the latest event on any clock.
    pub(crate) fn makespan(&self) -> f64 {
        self.stream_ready
            .iter()
            .copied()
            .fold(self.cpu_clock, f64::max)
            .max(self.dram_free)
            .max(self.compute_free)
            .max(self.l2_free)
            .max(self.pcie_free)
    }

    /// `cudaDeviceSynchronize`: aligns every clock to the makespan and
    /// returns it.
    pub(crate) fn sync_all(&mut self) -> f64 {
        let t = self.makespan();
        self.cpu_clock = t;
        for s in self.stream_ready.iter_mut() {
            *s = t;
        }
        self.dram_free = t;
        self.l2_free = t;
        self.compute_free = t;
        self.pcie_free = t;
        t
    }

    /// Makes streams in `waiters` wait for everything recorded on `signals`
    /// (event semantics).
    pub(crate) fn fence(&mut self, signals: &[usize], waiters: &[usize]) {
        let mut t = 0.0f64;
        for &s in signals {
            t = t.max(*self.stream_slot(s));
        }
        for &w in waiters {
            let slot = self.stream_slot(w);
            *slot = slot.max(t);
        }
    }

    pub(crate) fn evict_buffer(&mut self, buf: BufferId) {
        self.l2.evict(buf);
    }

    /// When `stream`'s recorded work completes (µs). Read-only peek for
    /// cross-device coupling: the cluster layer asks when a producer
    /// stream's data is ready before charging the interconnect.
    pub(crate) fn stream_ready(&self, stream: usize) -> f64 {
        self.stream_ready.get(stream).copied().unwrap_or(0.0)
    }

    /// Delays `stream` until absolute time `t` (µs) — the receiving end of
    /// a cross-device transfer. Monotonic: never moves a stream backwards.
    pub(crate) fn wait_stream_until(&mut self, stream: usize, t: f64) {
        let slot = self.stream_slot(stream);
        *slot = slot.max(t);
    }

    /// The host submission clock (µs).
    pub(crate) fn host_clock(&self) -> f64 {
        self.cpu_clock
    }

    /// Advances the host submission clock to at least `t` (µs). Used by the
    /// distributed executor to share one host clock across device timelines:
    /// before submitting to a device, the shared clock is imposed, and after,
    /// the device's advanced clock is read back.
    pub(crate) fn advance_host_to(&mut self, t: f64) {
        self.cpu_clock = self.cpu_clock.max(t);
    }

    pub(crate) fn spec(&self) -> &DeviceSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;

    fn tl() -> Timeline {
        Timeline::new(DeviceSpec::rtx_4090())
    }

    #[test]
    fn serial_kernels_on_one_stream() {
        let mut t = tl();
        let d = KernelDesc::new(KernelKind::Elementwise)
            .read(BufferId(1), 1 << 20)
            .write(BufferId(2), 1 << 20);
        let e1 = t.launch(0, &d);
        let e2 = t.launch(0, &d);
        assert!(e2 > e1);
    }

    #[test]
    fn streams_overlap_latency_but_share_dram() {
        // Two big streaming kernels on different streams: combined time must
        // respect aggregate DRAM bandwidth (no free parallel speedup).
        let mut t = tl();
        let bytes = 512u64 << 20; // 512 MB reads, distinct buffers => misses
        let mk = |i: u64| KernelDesc::new(KernelKind::Elementwise).read(BufferId(100 + i), bytes);
        t.launch(0, &mk(0));
        t.launch(1, &mk(1));
        let spec = DeviceSpec::rtx_4090();
        let lower_bound = 2.0 * bytes as f64 / spec.dram_bytes_per_us();
        assert!(
            t.makespan() >= lower_bound * 0.99,
            "{} < {}",
            t.makespan(),
            lower_bound
        );
    }

    #[test]
    fn l2_hit_speeds_up_second_read() {
        let mut t = tl();
        let buf = BufferId(5);
        let bytes = 4u64 << 20; // fits in 72MB L2
        let d = KernelDesc::new(KernelKind::Elementwise).read(buf, bytes);
        t.launch(0, &d);
        let miss_stats = t.stats.dram_read_bytes;
        t.launch(0, &d);
        assert_eq!(
            t.stats.dram_read_bytes, miss_stats,
            "second read should hit L2"
        );
        assert_eq!(t.stats.l2_hit_bytes, bytes);
    }

    #[test]
    fn working_set_beyond_l2_misses() {
        let mut t = tl();
        // Touch 100 buffers of 1MB each (100MB > 72MB), then re-read the first.
        for i in 0..100 {
            t.launch(
                0,
                &KernelDesc::new(KernelKind::Elementwise).read(BufferId(i), 1 << 20),
            );
        }
        let before = t.stats.dram_read_bytes;
        t.launch(
            0,
            &KernelDesc::new(KernelKind::Elementwise).read(BufferId(0), 1 << 20),
        );
        assert_eq!(
            t.stats.dram_read_bytes,
            before + (1 << 20),
            "evicted buffer must miss"
        );
    }

    #[test]
    fn launch_overhead_bounds_many_tiny_kernels() {
        let mut t = tl();
        for i in 0..1000u64 {
            t.launch(
                (i % 8) as usize,
                &KernelDesc::new(KernelKind::Elementwise).read(BufferId(i), 64),
            );
        }
        // 1000 launches × 2 µs host time ≥ 2000 µs regardless of stream count.
        assert!(t.makespan() >= 1000.0 * DeviceSpec::rtx_4090().kernel_launch_us);
    }

    #[test]
    fn fence_orders_streams() {
        let mut t = tl();
        let big = KernelDesc::new(KernelKind::Elementwise).read(BufferId(1), 256 << 20);
        t.launch(0, &big);
        let before = t.makespan();
        t.fence(&[0], &[3]);
        let tiny = KernelDesc::new(KernelKind::Elementwise).read(BufferId(2), 64);
        let end = t.launch(3, &tiny);
        assert!(end >= before, "stream 3 must wait for stream 0");
    }

    #[test]
    fn sync_aligns_clocks() {
        let mut t = tl();
        t.launch(
            0,
            &KernelDesc::new(KernelKind::Elementwise).read(BufferId(1), 1 << 20),
        );
        let m = t.sync_all();
        assert_eq!(t.makespan(), m);
        let m2 = t.sync_all();
        assert_eq!(m, m2, "idempotent");
    }

    #[test]
    fn compute_bound_kernel_charged_by_ops() {
        let mut t = tl();
        let d = KernelDesc::new(KernelKind::BaseConv).ops(10_000_000_000); // 10 G int32 ops
        let end = t.launch(0, &d);
        let spec = DeviceSpec::rtx_4090();
        let expect = 1e10 / spec.effective_int32_ops_per_us();
        assert!(
            (end - expect).abs() / expect < 0.1,
            "end={end} expect~{expect}"
        );
    }

    #[test]
    fn lru_never_evicts_active_buffer() {
        let mut l2 = L2Model::new(10);
        let (hit, _) = l2.touch(BufferId(0), 100, false); // clamped to capacity
        assert!(!hit);
        let (hit, _) = l2.touch(BufferId(0), 100, false);
        assert!(hit);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut l2 = L2Model::new(100);
        l2.touch(BufferId(1), 60, true); // dirty
        l2.touch(BufferId(2), 60, false); // evicts 1
        let (_, wb) = l2.touch(BufferId(3), 60, false); // evicts 2 (clean)
        assert!(wb.is_empty(), "clean eviction has no write-back");
        let mut l2 = L2Model::new(100);
        l2.touch(BufferId(1), 60, true);
        let (_, wb) = l2.touch(BufferId(2), 60, false);
        assert_eq!(wb, vec![60], "dirty eviction writes back");
    }
}
