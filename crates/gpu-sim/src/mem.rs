//! Device-memory accounting: buffer identities and the stream-ordered pool
//! model.
//!
//! FIDESlib manages device memory through the CUDA Stream Ordered Memory
//! Allocator wrapped in RAII `VectorGPU` objects (§III-D). The simulator
//! reproduces the accounting side: every allocation receives a [`BufferId`]
//! (the unit of the L2 residency model) and the pool tracks current/peak
//! usage so experiments can report device-memory footprints such as the
//! key-switching-key sizes discussed with Fig. 8.

use serde::{Deserialize, Serialize};

/// Opaque identity of one device allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufferId(pub u64);

/// Pool accounting state (guarded by the simulator lock).
#[derive(Debug, Default)]
pub(crate) struct PoolState {
    next_id: u64,
    pub(crate) current_bytes: u64,
    pub(crate) peak_bytes: u64,
    pub(crate) alloc_count: u64,
    pub(crate) free_count: u64,
}

impl PoolState {
    pub(crate) fn alloc(&mut self, bytes: u64) -> BufferId {
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.alloc_count += 1;
        self.current_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
        id
    }

    pub(crate) fn free(&mut self, bytes: u64) {
        self.free_count += 1;
        self.current_bytes = self.current_bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_tracks_peak() {
        let mut p = PoolState::default();
        let a = p.alloc(100);
        let b = p.alloc(200);
        assert_ne!(a, b);
        assert_eq!(p.current_bytes, 300);
        p.free(100);
        let _ = p.alloc(50);
        assert_eq!(p.current_bytes, 250);
        assert_eq!(p.peak_bytes, 300);
        assert_eq!(p.alloc_count, 3);
        assert_eq!(p.free_count, 1);
    }
}
