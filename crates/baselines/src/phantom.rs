//! Phantom comparator (paper §IV-B, §V).
//!
//! Phantom \[15\] is the leading open-source CUDA CKKS library and the paper's
//! GPU baseline. It differs from FIDESlib in exactly the design dimensions
//! Table VIII and §III enumerate, so the comparator is built as an *ablated
//! configuration* of the same engine:
//!
//! * **monolithic kernels** — no limb batching (one kernel covers every
//!   limb), so no stream-level overlap and whole-working-set L2 pressure;
//! * **no kernel fusions**;
//! * **Radix-8 single-kernel NTT profile** — fewer passes but strided,
//!   partially-coalesced global accesses, modeled as a derated
//!   memory-access efficiency (the Fig. 4 divergence);
//! * **reduced API** (Table VIII): no ScalarAdd/ScalarMult/HSquare, no
//!   hoisted rotations, no bootstrapping.

use std::sync::Arc;

use fides_core::{
    Ciphertext, CkksContext, CkksParameters, EvalKeySet, FusionConfig, Plaintext, Result,
};
use fides_gpu_sim::{ExecMode, GpuSim};

/// Memory-access efficiency of Phantom's strided NTT kernels relative to
/// FIDESlib's hierarchical scheme (calibrated against Fig. 4's high-limb
/// divergence).
pub const PHANTOM_ACCESS_EFFICIENCY: f64 = 0.55;

/// Radix-8 butterfly compute overhead versus Radix-2 (§III-F.4: "the
/// Radix-2 algorithm minimizes computational complexity, which we found to
/// be the primary bottleneck").
pub const PHANTOM_NTT_OP_FACTOR: f64 = 2.0;

/// Converts a parameter set into its Phantom-flavored configuration.
pub fn phantom_params(base: &CkksParameters) -> CkksParameters {
    base.clone()
        .with_fusion(FusionConfig::none())
        .with_limb_batch(256) // effectively monolithic: all limbs per kernel
        .with_access_efficiency(PHANTOM_ACCESS_EFFICIENCY)
        .with_ntt_op_factor(PHANTOM_NTT_OP_FACTOR)
}

/// A Phantom-configured CKKS server exposing only the operations Phantom
/// implements (Table VIII).
#[derive(Debug)]
pub struct PhantomCkks {
    ctx: Arc<CkksContext>,
}

impl PhantomCkks {
    /// Builds the Phantom comparator on a simulated device.
    pub fn new(base: &CkksParameters, gpu: Arc<GpuSim>) -> Self {
        Self {
            ctx: CkksContext::new(phantom_params(base), gpu),
        }
    }

    /// Builds on a device in the given execution mode.
    pub fn with_device(
        base: &CkksParameters,
        spec: fides_gpu_sim::DeviceSpec,
        mode: ExecMode,
    ) -> Self {
        Self::new(base, GpuSim::new(spec, mode))
    }

    /// The underlying context (Phantom-configured).
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// HAdd.
    ///
    /// # Errors
    ///
    /// Level/scale/slot mismatches.
    pub fn hadd(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext> {
        a.add(b)
    }

    /// PtAdd.
    ///
    /// # Errors
    ///
    /// Level/scale mismatches.
    pub fn ptadd(&self, a: &Ciphertext, p: &Plaintext) -> Result<Ciphertext> {
        a.add_plain(p)
    }

    /// PtMult.
    ///
    /// # Errors
    ///
    /// Level mismatch.
    pub fn ptmult(&self, a: &Ciphertext, p: &Plaintext) -> Result<Ciphertext> {
        a.mul_plain(p)
    }

    /// HMult (with relinearization).
    ///
    /// # Errors
    ///
    /// Mismatches or missing relinearization key.
    pub fn hmult(&self, a: &Ciphertext, b: &Ciphertext, keys: &EvalKeySet) -> Result<Ciphertext> {
        a.mul(b, keys)
    }

    /// Rescale.
    ///
    /// # Errors
    ///
    /// Not enough levels.
    pub fn rescale(&self, a: &mut Ciphertext) -> Result<()> {
        a.rescale_in_place()
    }

    /// HRotate.
    ///
    /// # Errors
    ///
    /// Missing rotation key.
    pub fn hrotate(&self, a: &Ciphertext, k: i32, keys: &EvalKeySet) -> Result<Ciphertext> {
        a.rotate(k, keys)
    }

    /// Operations Phantom does **not** provide (Table VIII); listed so
    /// benchmark tables can print `N/A` rows faithfully.
    pub fn unsupported_ops() -> &'static [&'static str] {
        &[
            "ScalarAdd",
            "ScalarMult",
            "HSquare",
            "HoistedRotate",
            "Bootstrap",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::DeviceSpec;

    #[test]
    fn phantom_config_is_ablated() {
        let p = phantom_params(&CkksParameters::paper_default());
        assert!(!p.fusion.rescale && !p.fusion.key_switch);
        assert!(p.limb_batch >= 64);
        assert!(p.access_efficiency < 1.0);
    }

    #[test]
    fn phantom_is_slower_than_fideslib_on_hmult() {
        // The ablation must reproduce the paper's ordering: Phantom behind
        // FIDESlib on the same simulated 4090.
        let params = CkksParameters::paper_default();

        let gpu_f = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let ctx_f = CkksContext::new(params.clone(), Arc::clone(&gpu_f));
        let keys_f = synth_keys(&ctx_f);
        let a = fides_core::adapter::placeholder_ciphertext(
            &ctx_f,
            ctx_f.max_level(),
            ctx_f.fresh_scale(),
            1 << 15,
        );
        let t0 = gpu_f.sync();
        let _ = a.mul(&a, &keys_f).unwrap();
        let fides_us = gpu_f.sync() - t0;

        let gpu_p = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let phantom = PhantomCkks::new(&params, Arc::clone(&gpu_p));
        let keys_p = synth_keys(phantom.context());
        let b = fides_core::adapter::placeholder_ciphertext(
            phantom.context(),
            phantom.context().max_level(),
            phantom.context().fresh_scale(),
            1 << 15,
        );
        let t0 = gpu_p.sync();
        let _ = phantom.hmult(&b, &b, &keys_p).unwrap();
        let phantom_us = gpu_p.sync() - t0;

        assert!(
            phantom_us > fides_us,
            "Phantom ({phantom_us} µs) must trail FIDESlib ({fides_us} µs)"
        );
    }

    use crate::util::synth_keys;
}
