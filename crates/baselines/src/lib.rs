//! # fides-baselines
//!
//! The comparator systems of the paper's evaluation: a Phantom-configured
//! GPU backend (the leading open-source CUDA CKKS library, modeled as an
//! ablation of the FIDESlib engine per Table VIII's feature matrix) and
//! calibrated OpenFHE CPU / HEXL device models, plus the placeholder-key
//! helpers cost-only benchmark runs use.

#![warn(missing_docs)]

pub mod openfhe;
pub mod phantom;
pub mod util;

pub use openfhe::{cpu_context, cpu_params, measure_wall_us, ryzen_1t, ryzen_hexl_24t};
pub use phantom::{phantom_params, PhantomCkks, PHANTOM_ACCESS_EFFICIENCY, PHANTOM_NTT_OP_FACTOR};
pub use util::{placeholder_switching_key, synth_keys, synth_keys_with_rotations};
