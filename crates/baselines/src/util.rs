//! Shared helpers for cost-only benchmark runs.

use std::sync::Arc;

use fides_client::{Domain, RawKeyDigit, RawPoly, RawSwitchingKey};
use fides_core::{adapter, CkksContext, EvalKeySet};

/// A zero-shaped raw switching key for cost-only execution (kernel bodies
/// never read the data; only shapes matter).
pub fn placeholder_switching_key(ctx: &Arc<CkksContext>) -> RawSwitchingKey {
    let chain = ctx.max_level() + 1 + ctx.alpha();
    RawSwitchingKey {
        digits: (0..ctx.raw_params().dnum)
            .map(|_| RawKeyDigit {
                b: RawPoly {
                    limbs: vec![Vec::new(); chain],
                    domain: Domain::Eval,
                },
                a: RawPoly {
                    limbs: vec![Vec::new(); chain],
                    domain: Domain::Eval,
                },
            })
            .collect(),
    }
}

/// Builds a key set with a relinearization key only (cost-only mode).
pub fn synth_keys(ctx: &Arc<CkksContext>) -> EvalKeySet {
    let mut keys = EvalKeySet::new();
    keys.set_mult(
        adapter::load_switching_key(ctx, &placeholder_switching_key(ctx))
            .expect("placeholder keys match the chain shape"),
    );
    keys
}

/// Builds a key set with relinearization, conjugation and the given rotation
/// shifts (cost-only mode).
pub fn synth_keys_with_rotations(ctx: &Arc<CkksContext>, shifts: &[i32]) -> EvalKeySet {
    let mut keys = synth_keys(ctx);
    keys.set_conj(
        adapter::load_switching_key(ctx, &placeholder_switching_key(ctx))
            .expect("placeholder keys match the chain shape"),
    );
    for &s in shifts {
        if s == 0 {
            continue;
        }
        let g = fides_client::galois_for_rotation(s, ctx.n());
        keys.insert_rotation(
            g,
            adapter::load_switching_key(ctx, &placeholder_switching_key(ctx))
                .expect("placeholder keys match the chain shape"),
        );
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_core::CkksParameters;
    use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

    #[test]
    fn synth_keys_shapes() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let ctx = CkksContext::new(CkksParameters::toy(), gpu);
        let keys = synth_keys_with_rotations(&ctx, &[1, -1, 0, 1]);
        assert!(keys.mult_key().is_ok());
        assert!(keys.conj_key().is_ok());
        assert_eq!(keys.loaded_rotations().len(), 2, "dedup and skip zero");
    }
}
