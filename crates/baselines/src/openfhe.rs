//! OpenFHE CPU comparators (paper Table V–VII baselines).
//!
//! Two substitution layers stand in for the paper's CPU baselines:
//!
//! 1. **Device models** — [`ryzen_1t`] (single-threaded scalar OpenFHE) and
//!    [`ryzen_hexl_24t`] (AVX-512/HEXL, 24 threads) are Table IV's Ryzen 9
//!    7900 with calibrated efficiency constants, driven through the *same*
//!    kernel schedule as the GPU backends. Calibration anchors: HMult =
//!    406 ms (1T) and 152 ms (HEXL) at `[2^16, 29, 59, 4]` from Table V.
//! 2. **Measured mode** — because this reproduction's functional math *is* a
//!    scalar CPU CKKS implementation, single-thread wall-clock of the
//!    functional path provides an honest measured baseline of the same
//!    order as OpenFHE's (used by `table5 --measure`).

use std::sync::Arc;
use std::time::Instant;

use fides_core::{CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceKind, DeviceSpec, ExecMode, GpuSim};

/// Single-threaded scalar CPU model (OpenFHE baseline column).
///
/// `compute_efficiency` is calibrated so HMult at the paper's default
/// parameters lands near Table V's 406 ms.
pub fn ryzen_1t() -> DeviceSpec {
    DeviceSpec {
        name: "Ryzen 9 7900 (1 thread)".into(),
        kind: DeviceKind::Cpu,
        sm_count: 1,
        freq_ghz: 3.70,
        int32_tops: 2.13,
        l2_bytes: 64 << 20,
        dram_gbps: 20.0, // single-thread achievable DDR5 bandwidth
        dram_bytes: 64 << 30,
        l2_gbps: 100.0,
        kernel_launch_us: 0.0,
        min_kernel_us: 0.0,
        compute_efficiency: 0.0072,
    }
}

/// HEXL-accelerated 24-thread CPU model (AVX-512 IFMA column).
///
/// Calibrated against Table V's per-operation 1T→HEXL speedups (≈2.6× on
/// HMult — OpenFHE's multithreaded scaling is far from linear because only
/// the limb-parallel regions parallelize).
pub fn ryzen_hexl_24t() -> DeviceSpec {
    DeviceSpec {
        name: "Ryzen 9 7900 (HEXL, 24 threads)".into(),
        kind: DeviceKind::Cpu,
        sm_count: 12,
        freq_ghz: 3.70,
        int32_tops: 2.13,
        l2_bytes: 64 << 20,
        dram_gbps: 65.0,
        dram_bytes: 64 << 30,
        l2_gbps: 300.0,
        kernel_launch_us: 0.0,
        min_kernel_us: 0.0,
        compute_efficiency: 0.0193,
    }
}

/// CPU-baseline parameter flavor: a CPU library processes whole polynomials
/// per call (no limb batching concept) but applies the same algorithmic
/// fusions OpenFHE uses.
pub fn cpu_params(base: &CkksParameters) -> CkksParameters {
    base.clone().with_limb_batch(256)
}

/// Builds a cost-only context on a CPU device model.
pub fn cpu_context(base: &CkksParameters, spec: DeviceSpec) -> (Arc<GpuSim>, Arc<CkksContext>) {
    let dev = GpuSim::new(spec, ExecMode::CostOnly);
    let ctx = CkksContext::new(cpu_params(base), Arc::clone(&dev));
    (dev, ctx)
}

/// Wall-clock measurement helper for the measured-functional baseline mode:
/// runs `op` once and returns elapsed microseconds.
pub fn measure_wall_us<F: FnOnce()>(op: F) -> f64 {
    let t = Instant::now();
    op();
    t.elapsed().as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_specs_have_no_launch_overhead() {
        for spec in [ryzen_1t(), ryzen_hexl_24t()] {
            assert_eq!(spec.kind, DeviceKind::Cpu);
            assert_eq!(spec.kernel_launch_us, 0.0);
            assert_eq!(spec.min_kernel_us, 0.0);
        }
        assert!(ryzen_hexl_24t().compute_efficiency > ryzen_1t().compute_efficiency);
    }

    #[test]
    fn measured_helper_returns_positive_time() {
        let us = measure_wall_us(|| {
            let mut x = 0u64;
            for i in 0..100_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        });
        assert!(us > 0.0);
    }

    #[test]
    fn cpu_model_is_orders_slower_than_gpu_model() {
        use fides_core::adapter;
        let params = CkksParameters::paper_default();
        let (cpu_dev, cpu_ctx) = cpu_context(&params, ryzen_1t());
        let keys = crate::util::synth_keys(&cpu_ctx);
        let a = adapter::placeholder_ciphertext(
            &cpu_ctx,
            cpu_ctx.max_level(),
            cpu_ctx.fresh_scale(),
            1 << 15,
        );
        let t0 = cpu_dev.sync();
        let _ = a.mul(&a, &keys).unwrap();
        let cpu_us = cpu_dev.sync() - t0;

        let gpu_dev = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let gpu_ctx = CkksContext::new(params, Arc::clone(&gpu_dev));
        let gkeys = crate::util::synth_keys(&gpu_ctx);
        let b = adapter::placeholder_ciphertext(
            &gpu_ctx,
            gpu_ctx.max_level(),
            gpu_ctx.fresh_scale(),
            1 << 15,
        );
        let t0 = gpu_dev.sync();
        let _ = b.mul(&b, &gkeys).unwrap();
        let gpu_us = gpu_dev.sync() - t0;

        assert!(
            cpu_us / gpu_us > 50.0,
            "expected ≫ order-of-magnitude gap: cpu {cpu_us} µs vs gpu {gpu_us} µs"
        );
    }
}
