//! Fuzz-style robustness suite for the persist layer: every record type
//! round-trips exactly through a full stream under arbitrary read
//! chunking, and whatever happens to the bytes afterwards — bit flips,
//! truncation, hostile length prefixes — decode returns a typed error.
//! It must never panic and never allocate an attacker-declared length
//! up front.

use std::io::Read;

use fides_client::persist::{
    kind, KeySetRecord, ParamsRecord, PlacementRecord, PlaintextRecord, RecordReader, RecordWriter,
    ServerMetaRecord, SessionRecord, MAX_RECORD_LEN,
};
use fides_client::wire::SessionRequest;
use fides_client::{ClientError, Domain, RawKeyDigit, RawPlaintext, RawPoly, RawSwitchingKey};
use proptest::prelude::*;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn gen_poly(s: &mut u64) -> RawPoly {
    let limbs = 1 + (xorshift(s) % 3) as usize;
    let n = 4 << (xorshift(s) % 3); // 4, 8 or 16 coefficients
    RawPoly {
        limbs: (0..limbs)
            .map(|_| (0..n).map(|_| xorshift(s)).collect())
            .collect(),
        domain: if xorshift(s) % 2 == 0 {
            Domain::Eval
        } else {
            Domain::Coeff
        },
    }
}

fn gen_key(s: &mut u64) -> RawSwitchingKey {
    let digits = 1 + (xorshift(s) % 3) as usize;
    RawSwitchingKey {
        digits: (0..digits)
            .map(|_| RawKeyDigit {
                b: gen_poly(s),
                a: gen_poly(s),
            })
            .collect(),
    }
}

fn gen_plaintext(s: &mut u64) -> RawPlaintext {
    RawPlaintext {
        poly: gen_poly(s),
        level: (xorshift(s) % 4) as usize,
        scale: 2f64.powi(30 + (xorshift(s) % 21) as i32),
        slots: 1 << (xorshift(s) % 5),
    }
}

fn gen_upload(s: &mut u64) -> SessionRequest {
    SessionRequest {
        params_hash: xorshift(s),
        relin: (xorshift(s) % 2 == 0).then(|| gen_key(s)),
        rotations: (0..xorshift(s) % 3)
            .map(|_| (xorshift(s) as i32 % 64, gen_key(s)))
            .collect(),
        conjugation: (xorshift(s) % 2 == 0).then(|| gen_key(s)),
        plaintexts: (0..xorshift(s) % 3).map(|_| gen_plaintext(s)).collect(),
    }
}

/// Every record type from one seed, encoded as `(kind, payload)` pairs.
fn gen_records(seed: u64) -> Vec<(u8, Vec<u8>)> {
    let mut s = seed | 1;
    vec![
        (
            kind::PARAMS,
            ParamsRecord {
                params_hash: xorshift(&mut s),
            }
            .encode(),
        ),
        (
            kind::SERVER,
            ServerMetaRecord {
                num_devices: 1 + (xorshift(&mut s) % 8) as u32,
                next_session_id: xorshift(&mut s),
                sessions: (xorshift(&mut s) % 16) as u32,
                plans: (xorshift(&mut s) % 16) as u32,
            }
            .encode(),
        ),
        (
            kind::KEY_SET,
            KeySetRecord {
                relin: (xorshift(&mut s) % 2 == 0).then(|| gen_key(&mut s)),
                rotations: (0..xorshift(&mut s) % 4)
                    .map(|_| (xorshift(&mut s) as i32 % 128, gen_key(&mut s)))
                    .collect(),
                conjugation: (xorshift(&mut s) % 2 == 0).then(|| gen_key(&mut s)),
            }
            .encode(),
        ),
        (
            kind::PLAINTEXT,
            PlaintextRecord {
                plaintext: gen_plaintext(&mut s),
            }
            .encode(),
        ),
        (
            kind::SESSION,
            SessionRecord {
                id: xorshift(&mut s),
                device: (xorshift(&mut s) % 8) as u32,
                weight: 1 + (xorshift(&mut s) % 16) as u32,
                upload: gen_upload(&mut s),
            }
            .encode(),
        ),
        (
            kind::PLACEMENT,
            PlacementRecord {
                tenant: xorshift(&mut s),
                device: (xorshift(&mut s) % 8) as u32,
                key_bytes: xorshift(&mut s),
            }
            .encode(),
        ),
    ]
}

fn stream_of(records: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut w = RecordWriter::new(Vec::new()).unwrap();
    for (kind, payload) in records {
        w.record(*kind, payload).unwrap();
    }
    w.finish().unwrap()
}

/// Decodes a full stream including each record's typed payload codec, so
/// corruption that survives the CRC by luck still has to parse.
fn decode_typed<R: Read>(r: R) -> Result<Vec<(u8, Vec<u8>)>, ClientError> {
    let mut reader = RecordReader::new(r)?;
    let mut out = Vec::new();
    while let Some(rec) = reader.next_record()? {
        match rec.kind {
            kind::PARAMS => drop(ParamsRecord::decode(&rec.payload)?),
            kind::SERVER => drop(ServerMetaRecord::decode(&rec.payload)?),
            kind::KEY_SET => drop(KeySetRecord::decode(&rec.payload)?),
            kind::PLAINTEXT => drop(PlaintextRecord::decode(&rec.payload)?),
            kind::SESSION => drop(SessionRecord::decode(&rec.payload)?),
            kind::PLACEMENT => drop(PlacementRecord::decode(&rec.payload)?),
            other => {
                return Err(ClientError::Serialization(format!(
                    "unexpected record kind {other}"
                )))
            }
        }
        out.push((rec.kind, rec.payload));
    }
    Ok(out)
}

/// A reader that yields at most `chunk` bytes per `read` call — the
/// worst-case `Read` impl a socket or pipe can legally present.
struct ChunkedReader<'a> {
    data: &'a [u8],
    chunk: usize,
}

impl Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len());
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every record type round-trips exactly: encode → stream → decode
    /// under arbitrary read chunking recovers the identical payloads, and
    /// each typed codec reproduces the original value.
    #[test]
    fn every_record_type_roundtrips_any_chunking(
        seed in any::<u64>(),
        chunk in 1usize..97,
    ) {
        let records = gen_records(seed);
        let stream = stream_of(&records);
        let got = decode_typed(ChunkedReader { data: &stream, chunk }).unwrap();
        prop_assert_eq!(got, records);

        // Typed equality, not just byte equality, for the richest types.
        let mut s = seed | 1;
        let keys = KeySetRecord {
            relin: Some(gen_key(&mut s)),
            rotations: vec![(-3, gen_key(&mut s))],
            conjugation: None,
        };
        prop_assert_eq!(KeySetRecord::decode(&keys.encode()).unwrap(), keys);
        let sess = SessionRecord {
            id: xorshift(&mut s),
            device: 1,
            weight: 7,
            upload: gen_upload(&mut s),
        };
        prop_assert_eq!(SessionRecord::decode(&sess.encode()).unwrap(), sess);
    }

    /// A single bit flip anywhere in a valid stream must surface as a
    /// typed error: the header checks catch bytes 0..8, the CRC covers
    /// kind and payload, and a corrupted length desynchronizes the CRC
    /// position. Decode must never panic and never succeed.
    #[test]
    fn single_bit_flips_are_typed_errors(seed in any::<u64>(), pick in any::<u64>()) {
        let stream = stream_of(&gen_records(seed));
        let bit = (pick % (stream.len() as u64 * 8)) as usize;
        let mut bad = stream.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            decode_typed(&bad[..]).is_err(),
            "bit {bit} flipped but the stream decoded cleanly"
        );
    }

    /// Every proper prefix is a typed error (truncation can never pass
    /// for a complete stream — completeness is the END record).
    #[test]
    fn truncations_are_typed_errors(seed in any::<u64>(), pick in any::<u64>()) {
        let stream = stream_of(&gen_records(seed));
        let cut = (pick % stream.len() as u64) as usize;
        prop_assert!(decode_typed(&stream[..cut]).is_err());
    }

    /// Byte-range scrambles (not just single bits) never panic: decode
    /// either errors or — only when the scramble happens to rewrite
    /// nothing — reproduces the original records.
    #[test]
    fn scrambles_never_panic(seed in any::<u64>(), start in any::<u64>(), len in 1usize..64) {
        let stream = stream_of(&gen_records(seed));
        let start = (start % stream.len() as u64) as usize;
        let end = (start + len).min(stream.len());
        let mut bad = stream.clone();
        let mut s = seed | 3;
        for b in &mut bad[start..end] {
            *b = xorshift(&mut s) as u8;
        }
        match decode_typed(&bad[..]) {
            Err(_) => {}
            Ok(got) => prop_assert_eq!(
                got,
                gen_records(seed),
                "scramble produced a different valid stream"
            ),
        }
    }

    /// A hostile length prefix past `MAX_RECORD_LEN` is rejected from the
    /// header alone — before any allocation of the declared size.
    #[test]
    fn oversized_length_prefix_rejected_before_allocation(extra in 1u64..(u32::MAX as u64 >> 1)) {
        let mut stream = RecordWriter::new(Vec::new()).unwrap().finish().unwrap();
        let declared = (MAX_RECORD_LEN as u64 + extra).min(u32::MAX as u64) as u32;
        // Splice a forged record header in front of the END record.
        let mut forged = stream[..8].to_vec();
        forged.push(kind::PARAMS);
        forged.extend_from_slice(&declared.to_be_bytes());
        forged.extend_from_slice(&stream.split_off(8));
        let mut r = RecordReader::new(&forged[..]).unwrap();
        match r.next_record() {
            Err(ClientError::FrameTooLarge { len, max }) => {
                prop_assert_eq!(len, declared as u64);
                prop_assert_eq!(max, MAX_RECORD_LEN as u64);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }

    /// Lying lengths *inside* the bound cost at most one bounded buffer
    /// and end in a typed error (either truncation or CRC desync), not a
    /// `len`-sized allocation of garbage.
    #[test]
    fn lying_length_within_bound_is_typed(seed in any::<u64>(), declared in 1u32..1 << 20) {
        let stream = stream_of(&gen_records(seed));
        let mut bad = stream.clone();
        // Rewrite the first record's length field (bytes 9..13); the
        // true length leaves the stream valid, so skip that one value.
        let true_len = u32::from_be_bytes([bad[9], bad[10], bad[11], bad[12]]);
        let declared = if declared == true_len { declared + 1 } else { declared };
        bad[9..13].copy_from_slice(&declared.to_be_bytes());
        prop_assert!(decode_typed(&bad[..]).is_err());
    }
}
