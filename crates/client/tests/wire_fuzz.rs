//! Fuzz-style robustness suite for the socket framing layer: whatever
//! bytes a peer sends — truncated frames, hostile length prefixes, bit
//! flips, pure garbage — the decoder must return a typed error or keep
//! waiting for more input. It must never panic, never allocate the
//! declared (attacker-controlled) length, and never mis-frame a stream
//! that later turns valid after an error was reported.

use fides_client::wire::{
    Frame, FrameDecoder, FrameKind, Reject, RejectCode, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
use fides_client::ClientError;
use proptest::prelude::*;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn sample_frames(seed: u64, n: usize) -> Vec<Frame> {
    let kinds = [
        FrameKind::OpenSession,
        FrameKind::SessionOpened,
        FrameKind::Eval,
        FrameKind::EvalDone,
        FrameKind::Reject,
    ];
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            let kind = kinds[(xorshift(&mut s) % kinds.len() as u64) as usize];
            let len = (xorshift(&mut s) % 512) as usize;
            let payload: Vec<u8> = (0..len).map(|_| xorshift(&mut s) as u8).collect();
            Frame::new(kind, seed.wrapping_add(i as u64), payload)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-trip: any frame sequence, cut into arbitrary chunk sizes,
    /// decodes back to exactly the frames that were encoded.
    #[test]
    fn roundtrip_any_chunking(
        seed in any::<u64>(),
        frames in 1usize..6,
        chunk in 1usize..97,
    ) {
        let frames = sample_frames(seed, frames);
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.feed(piece);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Truncating a valid stream anywhere is never an error — the tail
    /// frame stays pending and every complete prefix frame is delivered.
    #[test]
    fn truncation_is_pending_not_error(seed in any::<u64>(), cut_back in 1usize..64) {
        let frames = sample_frames(seed, 3);
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let cut = stream.len() - cut_back.min(stream.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.feed(&stream[..cut]);
        let mut delivered = 0;
        while let Some(f) = dec.next_frame().unwrap() {
            prop_assert_eq!(&f, &frames[delivered]);
            delivered += 1;
        }
        prop_assert!(delivered < frames.len(), "a truncated stream cannot complete");
        // Feeding the rest completes the remaining frames exactly.
        dec.feed(&stream[cut..]);
        while let Some(f) = dec.next_frame().unwrap() {
            prop_assert_eq!(&f, &frames[delivered]);
            delivered += 1;
        }
        prop_assert_eq!(delivered, frames.len());
    }

    /// A corrupted header byte yields a typed error (or, if the
    /// corruption only touched seq/len fields, at worst a differently
    /// framed stream) — never a panic, never an unbounded buffer.
    #[test]
    fn header_bit_flips_never_panic(seed in any::<u64>(), byte in 0usize..FRAME_HEADER_LEN, bit in 0u32..8) {
        let frames = sample_frames(seed, 2);
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        stream[byte] ^= 1u8 << bit;
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        // Drain until error or exhaustion; every outcome is acceptable
        // except panic/hang. Bound the loop defensively.
        for _ in 0..8 {
            match dec.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(ClientError::Serialization(_)) | Err(ClientError::FrameTooLarge { .. }) => break,
                Err(e) => prop_assert!(false, "unexpected error type: {e}"),
            }
        }
    }

    /// A hostile length prefix beyond the decoder bound is rejected from
    /// the header alone — before any payload bytes exist to buffer.
    #[test]
    fn oversized_length_prefix_rejected_early(seed in any::<u64>(), extra in 1u64..u32::MAX as u64) {
        let mut s = seed | 1;
        let max = 1usize << (10 + (xorshift(&mut s) % 8) as usize);
        let declared = (max as u64 + extra).min(u32::MAX as u64);
        let mut frame = Frame::new(FrameKind::Eval, seed, vec![]).encode();
        frame[13..17].copy_from_slice(&(declared as u32).to_be_bytes());
        let mut dec = FrameDecoder::with_max_len(max);
        dec.feed(&frame);
        match dec.next_frame() {
            Err(ClientError::FrameTooLarge { len, max: m }) => {
                prop_assert_eq!(len, declared);
                prop_assert_eq!(m, max as u64);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
        // The decoder held only the header bytes, not the declared size.
        prop_assert!(dec.buffered() <= FRAME_HEADER_LEN);
    }

    /// Pure garbage: random bytes produce typed errors or pending, and
    /// the decode loop always terminates.
    #[test]
    fn garbage_never_panics(seed in any::<u64>(), len in 0usize..4096) {
        let mut s = seed | 1;
        let garbage: Vec<u8> = (0..len).map(|_| xorshift(&mut s) as u8).collect();
        let mut dec = FrameDecoder::new();
        dec.feed(&garbage);
        for _ in 0..len + 1 {
            match dec.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    /// Reject payloads survive corruption the same way: typed error or
    /// valid parse, never a panic.
    #[test]
    fn reject_payload_corruption(seed in any::<u64>(), flip in 0usize..16) {
        let rej = Reject {
            code: RejectCode::Overloaded,
            retry_after_ticks: seed % 1000,
            message: format!("backlog {seed}"),
        };
        let mut bytes = rej.to_bytes();
        let idx = flip % bytes.len();
        bytes[idx] ^= 0x40;
        match Reject::from_bytes(&bytes) {
            Ok(_) => {}
            Err(ClientError::Serialization(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error type: {e}"),
        }
        // Truncations of the valid payload are typed errors.
        let bytes = rej.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(Reject::from_bytes(&bytes[..cut]).is_err());
        }
    }
}

/// The default bound itself is sane: a maximum-size frame round-trips.
#[test]
fn max_len_boundary_roundtrips() {
    let payload = vec![7u8; 1 << 16];
    let frame = Frame::new(FrameKind::EvalDone, 9, payload);
    let mut dec = FrameDecoder::with_max_len(1 << 16);
    dec.feed(&frame.encode());
    assert_eq!(dec.next_frame().unwrap().unwrap(), frame);
    // One byte over the bound is rejected.
    let over = Frame::new(FrameKind::EvalDone, 9, vec![7u8; (1 << 16) + 1]);
    let mut dec = FrameDecoder::with_max_len(1 << 16);
    dec.feed(&over.encode());
    assert!(matches!(
        dec.next_frame(),
        Err(ClientError::FrameTooLarge { .. })
    ));
    const _: () = assert!(MAX_FRAME_LEN >= 1 << 20, "default admits real key uploads");
}
