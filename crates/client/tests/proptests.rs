//! Property-based tests for the client: encode/decode precision envelopes
//! and homomorphic-operation correspondence at the raw level.

use fides_client::{ClientContext, KeyGenerator, RawParams};
use fides_math::{Complex64, PolyOps};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx() -> ClientContext {
    ClientContext::new(RawParams::generate(9, 2, 40, 50, 2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode/decode roundtrip stays within the quantization envelope for
    /// arbitrary bounded messages, at any power-of-two slot count.
    #[test]
    fn encode_decode_envelope(
        seed in any::<u64>(),
        log_slots in 0u32..8,
        magnitude in 0.01f64..100.0,
    ) {
        let c = ctx();
        let slots = 1usize << log_slots;
        let mut s = seed | 1;
        let values: Vec<Complex64> = (0..slots)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let re = (s % 2001) as f64 / 1000.0 - 1.0;
                let im = ((s >> 32) % 2001) as f64 / 1000.0 - 1.0;
                Complex64::new(re * magnitude, im * magnitude)
            })
            .collect();
        let pt = c.encode(&values, 2f64.powi(40), 1).unwrap();
        let back = c.decode(&pt).unwrap();
        // Quantization error ~ sqrt(N)/Δ per slot, scaled by nothing else.
        let tol = magnitude * 1e-9 + 1e-9;
        for (a, b) in back.iter().zip(&values) {
            prop_assert!((*a - *b).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    /// Raw-level homomorphic addition is exact up to encryption noise.
    #[test]
    fn raw_homomorphic_add(seed in any::<u64>()) {
        let c = ctx();
        let mut kg = KeyGenerator::new(&c, seed);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        let a: Vec<f64> = (0..64).map(|i| ((seed.wrapping_add(i) % 100) as f64) / 50.0 - 1.0).collect();
        let b: Vec<f64> = (0..64).map(|i| ((seed.wrapping_mul(31).wrapping_add(i) % 100) as f64) / 50.0 - 1.0).collect();
        let scale = c.params().scale();
        let ca = c.encrypt(&c.encode_real(&a, scale, 1).unwrap(), &pk, &mut rng).unwrap();
        let cb = c.encrypt(&c.encode_real(&b, scale, 1).unwrap(), &pk, &mut rng).unwrap();
        let mut sum = ca.clone();
        for i in 0..=1 {
            let m = c.moduli_q()[i];
            m.add_assign_slices(&mut sum.c0.limbs[i], &cb.c0.limbs[i]);
            m.add_assign_slices(&mut sum.c1.limbs[i], &cb.c1.limbs[i]);
        }
        let got = c.decode_real(&c.decrypt(&sum, &sk).unwrap()).unwrap();
        for i in 0..64 {
            prop_assert!((got[i] - (a[i] + b[i])).abs() < 1e-5);
        }
    }

    /// Serialization roundtrips arbitrary ciphertext frames.
    #[test]
    fn serialization_roundtrip(seed in any::<u64>()) {
        let c = ctx();
        let mut kg = KeyGenerator::new(&c, seed);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let mut rng = StdRng::seed_from_u64(seed);
        let v = vec![0.25f64, -0.5, 0.75, 0.125];
        let ct = c.encrypt(&c.encode_real(&v, c.params().scale(), 0).unwrap(), &pk, &mut rng).unwrap();
        let back = fides_client::RawCiphertext::from_bytes(&ct.to_bytes()).unwrap();
        prop_assert_eq!(ct, back);
    }
}
