//! CKKS encoding and decoding via the canonical embedding.
//!
//! Mirrors OpenFHE/HEAAN: `slots ≤ N/2` complex values are mapped through the
//! inverse special FFT onto polynomial coefficients at stride `gap = (N/2) /
//! slots` (real parts in the low half, imaginary parts in the high half),
//! scaled by `Δ` and rounded into RNS residues. Decoding reconstructs exact
//! centered coefficients through CRT and applies the forward special FFT.
//!
//! Every operation validates its inputs and reports failures as typed
//! [`ClientError`] values — the client is a service boundary, so malformed
//! inputs must never abort the process (the PR1 error-handling migration,
//! finished here: the old panicking convenience wrappers are gone).

use fides_math::Complex64;

use crate::context::ClientContext;
use crate::error::ClientError;
use crate::raw::{Domain, RawPlaintext, RawPoly};

impl ClientContext {
    /// Encodes `values` (length a power of two, at most `N/2`) at the given
    /// `scale` for ciphertext level `level`.
    ///
    /// # Errors
    ///
    /// [`ClientError::BadSlotCount`] when the slot count is not a power of
    /// two or exceeds `N/2`, [`ClientError::LevelOutOfRange`] when `level`
    /// is past the chain, [`ClientError::BadScale`] for non-positive or
    /// non-finite scales.
    pub fn encode(
        &self,
        values: &[Complex64],
        scale: f64,
        level: usize,
    ) -> Result<RawPlaintext, ClientError> {
        let n = self.n();
        let slots = values.len();
        if !slots.is_power_of_two() || slots > n / 2 {
            return Err(ClientError::BadSlotCount {
                slots,
                max_slots: n / 2,
            });
        }
        if level >= self.moduli_q().len() {
            return Err(ClientError::LevelOutOfRange {
                level,
                max: self.moduli_q().len() - 1,
            });
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(ClientError::BadScale(scale));
        }
        let gap = (n / 2) / slots;

        let mut u = values.to_vec();
        fides_math::special_ifft(&mut u, 2 * n);

        // Coefficients as exact signed integers.
        let mut coeffs = vec![0i128; n];
        for (k, v) in u.iter().enumerate() {
            coeffs[k * gap] = (v.re * scale).round() as i128;
            coeffs[n / 2 + k * gap] = (v.im * scale).round() as i128;
        }

        let limbs = self.moduli_q()[..=level]
            .iter()
            .map(|m| {
                coeffs
                    .iter()
                    .map(|&c| {
                        let p = m.value() as i128;
                        let mut r = c % p;
                        if r < 0 {
                            r += p;
                        }
                        r as u64
                    })
                    .collect()
            })
            .collect();
        Ok(RawPlaintext {
            poly: RawPoly {
                limbs,
                domain: Domain::Coeff,
            },
            level,
            scale,
            slots,
        })
    }

    /// Encodes real values (imaginary parts zero).
    ///
    /// # Errors
    ///
    /// See [`ClientContext::encode`].
    pub fn encode_real(
        &self,
        values: &[f64],
        scale: f64,
        level: usize,
    ) -> Result<RawPlaintext, ClientError> {
        let v: Vec<Complex64> = values.iter().map(|&x| Complex64::from_real(x)).collect();
        self.encode(&v, scale, level)
    }

    /// Decodes a plaintext back to complex slot values.
    ///
    /// # Errors
    ///
    /// [`ClientError::DomainMismatch`] if the plaintext is not in
    /// coefficient domain.
    pub fn decode(&self, pt: &RawPlaintext) -> Result<Vec<Complex64>, ClientError> {
        if pt.poly.domain != Domain::Coeff {
            return Err(ClientError::DomainMismatch {
                expected: "coefficient",
                found: "evaluation",
            });
        }
        let n = self.n();
        let slots = pt.slots;
        let gap = (n / 2) / slots;
        let crt = self.crt_at(pt.level);
        let inv_scale = 1.0 / pt.scale;
        let limbs = &pt.poly.limbs;
        let mut u = Vec::with_capacity(slots);
        let mut residues = vec![0u64; pt.level + 1];
        let coeff_at = |idx: usize, residues: &mut Vec<u64>| {
            for (i, limb) in limbs[..=pt.level].iter().enumerate() {
                residues[i] = limb[idx];
            }
            crt.reconstruct_centered_f64(residues)
        };
        for k in 0..slots {
            let re = coeff_at(k * gap, &mut residues) * inv_scale;
            let im = coeff_at(n / 2 + k * gap, &mut residues) * inv_scale;
            u.push(Complex64::new(re, im));
        }
        fides_math::special_fft(&mut u, 2 * n);
        Ok(u)
    }

    /// Decodes and keeps only real parts.
    ///
    /// # Errors
    ///
    /// See [`ClientContext::decode`].
    pub fn decode_real(&self, pt: &RawPlaintext) -> Result<Vec<f64>, ClientError> {
        Ok(self.decode(pt)?.into_iter().map(|c| c.re).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawParams;
    use fides_math::{automorphism_coeff, Modulus, PolyOps};

    fn ctx() -> ClientContext {
        ClientContext::new(RawParams::generate(10, 3, 40, 50, 2))
    }

    fn close_all(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "slot {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn roundtrip_full_and_sparse_slots() {
        let c = ctx();
        for slots in [512usize, 64, 8, 1] {
            let values: Vec<Complex64> = (0..slots)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let pt = c.encode(&values, 2f64.powi(40), 2).unwrap();
            let back = c.decode(&pt).unwrap();
            close_all(&back, &values, 1e-8);
        }
    }

    #[test]
    fn slotwise_addition_is_coefficient_addition() {
        let c = ctx();
        let scale = 2f64.powi(40);
        let a: Vec<Complex64> = (0..256)
            .map(|i| Complex64::new(i as f64 * 0.01, 0.3))
            .collect();
        let b: Vec<Complex64> = (0..256)
            .map(|i| Complex64::new(0.5, i as f64 * -0.02))
            .collect();
        let pa = c.encode(&a, scale, 1).unwrap();
        let pb = c.encode(&b, scale, 1).unwrap();
        let mut sum = pa.clone();
        for (i, m) in c.moduli_q()[..=1].iter().enumerate() {
            m.add_assign_slices(&mut sum.poly.limbs[i], &pb.poly.limbs[i]);
        }
        let got = c.decode(&sum).unwrap();
        let expect: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        close_all(&got, &expect, 1e-8);
    }

    #[test]
    fn slotwise_product_is_negacyclic_poly_product() {
        let c = ctx();
        let scale = 2f64.powi(20); // modest scale: product scale is 2^40 < q_i products
        let slots = 16usize;
        let a: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new(0.8 + 0.01 * i as f64, 0.1))
            .collect();
        let b: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new(0.5, 0.02 * i as f64 - 0.1))
            .collect();
        let pa = c.encode(&a, scale, 1).unwrap();
        let pb = c.encode(&b, scale, 1).unwrap();
        // Multiply polynomials mod each prime via NTT.
        let mut prod_limbs = Vec::new();
        for (i, t) in c.ntt_q()[..=1].iter().enumerate() {
            let mut ea = pa.poly.limbs[i].clone();
            let mut eb = pb.poly.limbs[i].clone();
            t.forward_inplace(&mut ea);
            t.forward_inplace(&mut eb);
            let m = t.modulus();
            let mut prod: Vec<u64> = ea.iter().zip(&eb).map(|(&x, &y)| m.mul_mod(x, y)).collect();
            t.inverse_inplace(&mut prod);
            prod_limbs.push(prod);
        }
        let ppt = RawPlaintext {
            poly: RawPoly {
                limbs: prod_limbs,
                domain: Domain::Coeff,
            },
            level: 1,
            scale: scale * scale,
            slots,
        };
        let got = c.decode(&ppt).unwrap();
        let expect: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        // Quantization error at scale 2^20 is ~2^-20 per factor.
        close_all(&got, &expect, 1e-4);
    }

    /// Pins down the rotation convention: the automorphism X → X^{5^k}
    /// rotates slots LEFT by k (slot i receives old slot i+k).
    #[test]
    fn galois_five_rotates_slots_left() {
        let c = ctx();
        let n = c.n();
        let slots = 8usize;
        let values: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::from_real(i as f64 + 1.0))
            .collect();
        let pt = c.encode(&values, 2f64.powi(40), 0).unwrap();
        let m: Modulus = c.moduli_q()[0];
        for k in [1usize, 2, 3] {
            let g = crate::keygen::galois_for_rotation(k as i32, n);
            let mut rotated = vec![0u64; n];
            automorphism_coeff(&pt.poly.limbs[0], g, &m, &mut rotated);
            let rpt = RawPlaintext {
                poly: RawPoly {
                    limbs: vec![rotated],
                    domain: Domain::Coeff,
                },
                level: 0,
                scale: pt.scale,
                slots,
            };
            let got = c.decode(&rpt).unwrap();
            let expect: Vec<Complex64> = (0..slots).map(|i| values[(i + k) % slots]).collect();
            close_all(&got, &expect, 1e-8);
        }
    }

    /// Conjugation is the Galois element 2N − 1.
    #[test]
    fn galois_conjugate() {
        let c = ctx();
        let n = c.n();
        let slots = 8usize;
        let values: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new(i as f64, 0.5 - i as f64))
            .collect();
        let pt = c.encode(&values, 2f64.powi(40), 0).unwrap();
        let m = c.moduli_q()[0];
        let mut conj = vec![0u64; n];
        automorphism_coeff(&pt.poly.limbs[0], 2 * n - 1, &m, &mut conj);
        let rpt = RawPlaintext {
            poly: RawPoly {
                limbs: vec![conj],
                domain: Domain::Coeff,
            },
            level: 0,
            scale: pt.scale,
            slots,
        };
        let got = c.decode(&rpt).unwrap();
        let expect: Vec<Complex64> = values.iter().map(|v| v.conj()).collect();
        close_all(&got, &expect, 1e-8);
    }

    #[test]
    fn oversized_slots_rejected_typed() {
        let c = ctx();
        let values = vec![Complex64::ZERO; 1024]; // N/2 = 512 max
        assert!(matches!(
            c.encode(&values, 2f64.powi(40), 0),
            Err(ClientError::BadSlotCount {
                slots: 1024,
                max_slots: 512
            })
        ));
    }

    #[test]
    fn wrong_domain_decode_rejected_typed() {
        let c = ctx();
        let pt = RawPlaintext {
            poly: RawPoly::zero(c.n(), 1, Domain::Eval),
            level: 0,
            scale: 2f64.powi(40),
            slots: 8,
        };
        assert!(matches!(
            c.decode(&pt),
            Err(ClientError::DomainMismatch {
                expected: "coefficient",
                ..
            })
        ));
    }
}
