//! Client-side CKKS context: moduli, NTT tables and CRT reconstruction.

use fides_math::{Modulus, NttTable};
use fides_rns::CrtContext;

use crate::raw::RawParams;

/// Everything the client needs for encoding, key generation, encryption and
/// decryption — the stand-in for OpenFHE's crypto-context on the client side
/// of Fig. 1.
#[derive(Debug)]
pub struct ClientContext {
    params: RawParams,
    moduli_q: Vec<Modulus>,
    moduli_p: Vec<Modulus>,
    ntt_q: Vec<NttTable>,
    ntt_p: Vec<NttTable>,
    /// `crt_levels[ℓ]` reconstructs over `q_0 … q_ℓ`.
    crt_levels: Vec<CrtContext>,
}

impl ClientContext {
    /// Builds all client tables for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if any modulus is not NTT-friendly for the ring degree.
    pub fn new(params: RawParams) -> Self {
        let n = params.n();
        let moduli_q: Vec<Modulus> = params.moduli_q.iter().map(|&q| Modulus::new(q)).collect();
        let moduli_p: Vec<Modulus> = params.moduli_p.iter().map(|&p| Modulus::new(p)).collect();
        let ntt_q = moduli_q.iter().map(|&m| NttTable::new(n, m)).collect();
        let ntt_p = moduli_p.iter().map(|&m| NttTable::new(n, m)).collect();
        let crt_levels = (0..moduli_q.len())
            .map(|l| CrtContext::new(&moduli_q[..=l]))
            .collect();
        Self {
            params,
            moduli_q,
            moduli_p,
            ntt_q,
            ntt_p,
            crt_levels,
        }
    }

    /// The shared parameter description.
    pub fn params(&self) -> &RawParams {
        &self.params
    }

    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        self.params.n()
    }

    /// Scaling-chain moduli.
    pub fn moduli_q(&self) -> &[Modulus] {
        &self.moduli_q
    }

    /// Auxiliary moduli.
    pub fn moduli_p(&self) -> &[Modulus] {
        &self.moduli_p
    }

    /// NTT tables for the scaling chain.
    pub fn ntt_q(&self) -> &[NttTable] {
        &self.ntt_q
    }

    /// NTT tables for the auxiliary primes.
    pub fn ntt_p(&self) -> &[NttTable] {
        &self.ntt_p
    }

    /// CRT reconstruction tables for level `level`.
    pub fn crt_at(&self, level: usize) -> &CrtContext {
        &self.crt_levels[level]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_consistent_tables() {
        let params = RawParams::generate(10, 3, 40, 50, 2);
        let ctx = ClientContext::new(params);
        assert_eq!(ctx.n(), 1024);
        assert_eq!(ctx.ntt_q().len(), ctx.moduli_q().len());
        assert_eq!(ctx.ntt_p().len(), ctx.moduli_p().len());
        assert_eq!(ctx.crt_at(0).moduli().len(), 1);
        assert_eq!(ctx.crt_at(3).moduli().len(), 4);
    }
}
