//! Blocking socket client for the serving-layer network front.
//!
//! [`NetClient`] speaks the length-prefixed frame protocol from [`wire`]
//! over a plain `std::net::TcpStream`. The server end is asynchronous and
//! batch-scheduled, so responses to pipelined requests may arrive out of
//! order (different batch ticks); the client correlates them by the frame
//! `seq` it assigned at send time.
//!
//! Two request shapes are supported:
//!
//! * [`NetClient::eval`] — one request, wait for its response (the simple
//!   request/response loop);
//! * [`NetClient::eval_pipelined`] — write a burst of requests back to
//!   back, then collect all responses. This keeps the server's admission
//!   queue fed across batch ticks, which is how a single connection
//!   reaches batch-level throughput.
//!
//! [`wire`]: crate::wire

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::ClientError;
use crate::wire::{
    EvalRequest, EvalResponse, Frame, FrameDecoder, FrameKind, Reject, RejectCode, SessionRequest,
};

/// Read-buffer chunk size for draining the socket.
const READ_CHUNK: usize = 64 * 1024;

/// A blocking connection to a serving-layer network front.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_seq: u64,
}

impl NetClient {
    /// Connects to a server's listen address.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            next_seq: 0,
        })
    }

    fn send(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<u64, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = Frame::new(kind, seq, payload).encode();
        self.stream
            .write_all(&frame)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(seq)
    }

    /// Blocks until the next complete frame arrives.
    fn recv(&mut self) -> Result<Frame, ClientError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let mut chunk = [0u8; READ_CHUNK];
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| ClientError::Io(e.to_string()))?;
            if n == 0 {
                return Err(ClientError::Io(
                    "connection closed by server mid-response".into(),
                ));
            }
            self.decoder.feed(&chunk[..n]);
        }
    }

    /// Maps a `Reject` frame onto the typed error it represents.
    fn reject_to_error(payload: &[u8]) -> ClientError {
        match Reject::from_bytes(payload) {
            Ok(rej) => match rej.code {
                RejectCode::Overloaded => ClientError::Overloaded {
                    retry_after_ticks: rej.retry_after_ticks,
                },
                RejectCode::Malformed => {
                    ClientError::Serialization(format!("server reported: {}", rej.message))
                }
                RejectCode::Refused => ClientError::Refused(rej.message),
            },
            Err(e) => e,
        }
    }

    /// Uploads key material and opens a server session; returns the
    /// session id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure, [`ClientError::Overloaded`]
    /// if the server load-shed the upload, [`ClientError::Refused`] /
    /// [`ClientError::Serialization`] on rejection.
    pub fn open_session(&mut self, req: &SessionRequest) -> Result<u64, ClientError> {
        let seq = self.send(FrameKind::OpenSession, req.to_bytes())?;
        let frame = self.recv()?;
        if frame.seq != seq {
            return Err(ClientError::Serialization(format!(
                "response seq {} does not match request seq {seq}",
                frame.seq
            )));
        }
        match frame.kind {
            FrameKind::SessionOpened => {
                if frame.payload.len() != 8 {
                    return Err(ClientError::Serialization(
                        "session-opened payload must be 8 bytes".into(),
                    ));
                }
                let mut sid = [0u8; 8];
                sid.copy_from_slice(&frame.payload);
                Ok(u64::from_le_bytes(sid))
            }
            FrameKind::Reject => Err(Self::reject_to_error(&frame.payload)),
            k => Err(ClientError::Serialization(format!(
                "unexpected frame kind {k:?} in reply to OpenSession"
            ))),
        }
    }

    /// Sends one evaluation request and waits for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure, [`ClientError::Overloaded`]
    /// if load-shed (retry after the hinted number of ticks),
    /// [`ClientError::Refused`] / [`ClientError::Serialization`] on
    /// rejection.
    pub fn eval(&mut self, req: &EvalRequest) -> Result<EvalResponse, ClientError> {
        let mut out = self.eval_pipelined(std::slice::from_ref(req))?;
        out.pop()
            .expect("eval_pipelined returns one result per request")
    }

    /// Writes a burst of evaluation requests back to back, then collects
    /// every response.
    ///
    /// Returns one result per request, **in request order** (responses are
    /// matched by seq, so out-of-order completion across server batch
    /// ticks is fine). Per-request rejections (e.g. a load-shed tail of
    /// the burst) surface as `Err` entries in the returned vector without
    /// failing the burst.
    ///
    /// # Errors
    ///
    /// An outer `Err` means the connection itself broke (socket failure or
    /// framing desync) and remaining responses are unrecoverable.
    #[allow(clippy::type_complexity)]
    pub fn eval_pipelined(
        &mut self,
        reqs: &[EvalRequest],
    ) -> Result<Vec<Result<EvalResponse, ClientError>>, ClientError> {
        let mut seqs = Vec::with_capacity(reqs.len());
        for req in reqs {
            seqs.push(self.send(FrameKind::Eval, req.to_bytes())?);
        }
        let mut slots: Vec<Option<Result<EvalResponse, ClientError>>> =
            (0..reqs.len()).map(|_| None).collect();
        let mut outstanding = reqs.len();
        while outstanding > 0 {
            let frame = self.recv()?;
            let Some(idx) = seqs.iter().position(|&s| s == frame.seq) else {
                return Err(ClientError::Serialization(format!(
                    "response seq {} matches no outstanding request",
                    frame.seq
                )));
            };
            if slots[idx].is_some() {
                return Err(ClientError::Serialization(format!(
                    "duplicate response for seq {}",
                    frame.seq
                )));
            }
            slots[idx] = Some(match frame.kind {
                FrameKind::EvalDone => EvalResponse::from_bytes(&frame.payload),
                FrameKind::Reject => Err(Self::reject_to_error(&frame.payload)),
                k => {
                    return Err(ClientError::Serialization(format!(
                        "unexpected frame kind {k:?} in reply to Eval"
                    )))
                }
            });
            outstanding -= 1;
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all outstanding responses collected"))
            .collect())
    }
}
