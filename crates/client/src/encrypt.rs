//! RLWE encryption and decryption (client-side, Fig. 1).

use fides_math::{sample_gaussian_coeffs, sample_ternary_coeffs, signed_to_residues, PolyOps};
use rand::Rng;

use crate::context::ClientContext;
use crate::error::ClientError;
use crate::keygen::{SecretKey, ERROR_SIGMA};
use crate::raw::{Domain, RawCiphertext, RawPlaintext, RawPoly, RawPublicKey};

impl ClientContext {
    /// Public-key encryption of an encoded plaintext. The resulting
    /// ciphertext is in evaluation domain, ready for the server adapter.
    ///
    /// # Errors
    ///
    /// [`ClientError::DomainMismatch`] if the plaintext is not in
    /// coefficient domain.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pt: &RawPlaintext,
        pk: &RawPublicKey,
        rng: &mut R,
    ) -> Result<RawCiphertext, ClientError> {
        if pt.poly.domain != Domain::Coeff {
            return Err(ClientError::DomainMismatch {
                expected: "coefficient",
                found: "evaluation",
            });
        }
        let n = self.n();
        let level = pt.level;
        let v = sample_ternary_coeffs(rng, n);
        let e0 = sample_gaussian_coeffs(rng, n, ERROR_SIGMA);
        let e1 = sample_gaussian_coeffs(rng, n, ERROR_SIGMA);

        let mut c0_limbs = Vec::with_capacity(level + 1);
        let mut c1_limbs = Vec::with_capacity(level + 1);
        for (i, (m, t)) in self.moduli_q()[..=level]
            .iter()
            .zip(self.ntt_q())
            .enumerate()
        {
            let mut v_hat = signed_to_residues(&v, m);
            t.forward_inplace(&mut v_hat);
            // c0 = b·v + NTT(e0 + m)
            let mut w = signed_to_residues(&e0, m);
            m.add_assign_slices(&mut w, &pt.poly.limbs[i]);
            t.forward_inplace(&mut w);
            let mut c0 = vec![0u64; n];
            m.mul_slices(&pk.b.limbs[i], &v_hat, &mut c0);
            m.add_assign_slices(&mut c0, &w);
            // c1 = a·v + NTT(e1)
            let mut e1_hat = signed_to_residues(&e1, m);
            t.forward_inplace(&mut e1_hat);
            let mut c1 = vec![0u64; n];
            m.mul_slices(&pk.a.limbs[i], &v_hat, &mut c1);
            m.add_assign_slices(&mut c1, &e1_hat);
            c0_limbs.push(c0);
            c1_limbs.push(c1);
        }
        let noise_log2 = (ERROR_SIGMA * (n as f64).sqrt() * 8.0).log2();
        Ok(RawCiphertext {
            c0: RawPoly {
                limbs: c0_limbs,
                domain: Domain::Eval,
            },
            c1: RawPoly {
                limbs: c1_limbs,
                domain: Domain::Eval,
            },
            level,
            scale: pt.scale,
            slots: pt.slots,
            noise_log2,
        })
    }

    /// Decrypts a ciphertext to a coefficient-domain plaintext
    /// (`m ≈ c_0 + c_1·s`).
    ///
    /// # Errors
    ///
    /// [`ClientError::DomainMismatch`] if the ciphertext is not in
    /// evaluation domain.
    pub fn decrypt(&self, ct: &RawCiphertext, sk: &SecretKey) -> Result<RawPlaintext, ClientError> {
        if ct.c0.domain != Domain::Eval {
            return Err(ClientError::DomainMismatch {
                expected: "evaluation",
                found: "coefficient",
            });
        }
        let n = self.n();
        let mut limbs = Vec::with_capacity(ct.level + 1);
        for (i, (m, t)) in self.moduli_q()[..=ct.level]
            .iter()
            .zip(self.ntt_q())
            .enumerate()
        {
            let mut s_hat = signed_to_residues(&sk.coeffs, m);
            t.forward_inplace(&mut s_hat);
            let mut d = vec![0u64; n];
            m.mul_slices(&ct.c1.limbs[i], &s_hat, &mut d);
            m.add_assign_slices(&mut d, &ct.c0.limbs[i]);
            t.inverse_inplace(&mut d);
            limbs.push(d);
        }
        Ok(RawPlaintext {
            poly: RawPoly {
                limbs,
                domain: Domain::Coeff,
            },
            level: ct.level,
            scale: ct.scale,
            slots: ct.slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::KeyGenerator;
    use crate::raw::RawParams;
    use fides_math::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ClientContext, SecretKey, RawPublicKey) {
        let ctx = ClientContext::new(RawParams::generate(10, 3, 40, 50, 2));
        let mut kg = KeyGenerator::new(&ctx, 1234);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        (ctx, sk, pk)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, sk, pk) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<Complex64> = (0..512)
            .map(|i| Complex64::new((i as f64 * 0.01).sin(), (i as f64 * 0.02).cos()))
            .collect();
        let pt = ctx
            .encode(&values, ctx.params().scale(), ctx.params().max_level())
            .unwrap();
        let ct = ctx.encrypt(&pt, &pk, &mut rng).unwrap();
        let dec = ctx.decrypt(&ct, &sk).unwrap();
        let got = ctx.decode(&dec).unwrap();
        for (a, b) in got.iter().zip(&values) {
            assert!((*a - *b).abs() < 1e-6, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fresh_ciphertext_noise_is_small() {
        let (ctx, sk, pk) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        // Encrypt zero and inspect the raw noise magnitude.
        let pt = ctx
            .encode_real(&vec![0.0; 512], ctx.params().scale(), 1)
            .unwrap();
        let ct = ctx.encrypt(&pt, &pk, &mut rng).unwrap();
        let dec = ctx.decrypt(&ct, &sk).unwrap();
        let m0 = ctx.moduli_q()[0];
        let max_coeff = dec.poly.limbs[0]
            .iter()
            .map(|&c| m0.to_centered_i64(c).unsigned_abs())
            .max()
            .unwrap();
        // Noise must be far below the scale 2^40.
        assert!(max_coeff < 1 << 25, "fresh noise too large: {max_coeff}");
        assert!(max_coeff > 0, "noise must be present");
    }

    #[test]
    fn homomorphic_addition_at_raw_level() {
        let (ctx, sk, pk) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        use fides_math::PolyOps;
        let a: Vec<f64> = (0..256).map(|i| i as f64 * 0.001).collect();
        let b: Vec<f64> = (0..256).map(|i| 1.0 - i as f64 * 0.002).collect();
        let scale = ctx.params().scale();
        let cta = ctx
            .encrypt(&ctx.encode_real(&a, scale, 2).unwrap(), &pk, &mut rng)
            .unwrap();
        let ctb = ctx
            .encrypt(&ctx.encode_real(&b, scale, 2).unwrap(), &pk, &mut rng)
            .unwrap();
        let mut sum = cta.clone();
        for i in 0..=2 {
            let m = ctx.moduli_q()[i];
            m.add_assign_slices(&mut sum.c0.limbs[i], &ctb.c0.limbs[i]);
            m.add_assign_slices(&mut sum.c1.limbs[i], &ctb.c1.limbs[i]);
        }
        let got = ctx.decode_real(&ctx.decrypt(&sum, &sk).unwrap()).unwrap();
        for (i, g) in got.iter().enumerate() {
            assert!((g - (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn serialization_through_adapter_boundary() {
        let (ctx, sk, pk) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let values = vec![1.5f64, -2.5, 3.25, 0.0];
        let pt = ctx.encode_real(&values, ctx.params().scale(), 1).unwrap();
        let ct = ctx.encrypt(&pt, &pk, &mut rng).unwrap();
        let wire = ct.to_bytes();
        let back = RawCiphertext::from_bytes(&wire).unwrap();
        let got = ctx.decode_real(&ctx.decrypt(&back, &sk).unwrap()).unwrap();
        for (g, v) in got.iter().zip(&values) {
            assert!((g - v).abs() < 1e-6);
        }
    }
}
