//! HomomorphicEncryption.org security-standard bounds.
//!
//! OpenFHE adheres to the post-quantum security standards for homomorphic
//! encryption; FIDESlib inherits the guarantee because security depends only
//! on the client-side operations (paper §III-B). This module carries the
//! standard table of maximum `log2(Q·P)` per ring degree for 128-bit
//! classical security with ternary secrets.

use crate::raw::RawParams;

/// Maximum `log2(Q·P)` admitting 128-bit classical security with uniform
/// ternary secrets, per the HomomorphicEncryption.org standard tables.
pub fn max_log_qp_128(log_n: usize) -> Option<u32> {
    match log_n {
        10 => Some(27),
        11 => Some(54),
        12 => Some(109),
        13 => Some(218),
        14 => Some(438),
        15 => Some(881),
        16 => Some(1772),
        17 => Some(3544),
        _ => None,
    }
}

/// Security assessment for a parameter set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SecurityAssessment {
    /// `log2(QP)` is within the 128-bit standard bound.
    Meets128Bit,
    /// The modulus is too large for this ring degree (toy / test parameters).
    BelowStandard {
        /// Actual total modulus bits.
        log_qp: u32,
        /// Standard bound for this ring degree.
        bound: u32,
    },
    /// The ring degree is outside the standard table.
    UnknownRing,
}

/// Assesses a parameter set against the 128-bit standard.
pub fn assess(params: &RawParams) -> SecurityAssessment {
    let Some(bound) = max_log_qp_128(params.log_n) else {
        return SecurityAssessment::UnknownRing;
    };
    let log_qp = params.log_qp().ceil() as u32;
    if log_qp <= bound {
        SecurityAssessment::Meets128Bit
    } else {
        SecurityAssessment::BelowStandard { log_qp, bound }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_monotone() {
        let mut prev = 0;
        for log_n in 10..=17 {
            let b = max_log_qp_128(log_n).unwrap();
            assert!(b > prev);
            prev = b;
        }
        assert_eq!(max_log_qp_128(9), None);
    }

    #[test]
    fn paper_default_is_secure() {
        // [16, 29, 59, 4]: q0 = 60 bits, 29 × 59-bit scaling primes,
        // alpha = 8 aux primes of 60 bits → log QP ≈ 60 + 29·59 + 8·60 = 2251?
        // That exceeds 1772 — the paper (like OpenFHE defaults) uses
        // NotSet/128-bit-with-larger-N tradeoffs; our assessment must notice.
        let params = RawParams {
            log_n: 16,
            moduli_q: vec![(1 << 59) + 1; 30],
            moduli_p: vec![(1 << 59) + 1; 8],
            scale_bits: 59,
            dnum: 4,
        };
        match assess(&params) {
            SecurityAssessment::BelowStandard { log_qp, bound } => {
                assert!(log_qp > bound);
            }
            other => panic!("expected BelowStandard, got {other:?}"),
        }
    }

    #[test]
    fn small_chain_meets_standard() {
        let params = RawParams {
            log_n: 14,
            moduli_q: vec![(1 << 40) + 1; 5],
            moduli_p: vec![(1 << 40) + 1; 2],
            scale_bits: 40,
            dnum: 3,
        };
        assert_eq!(assess(&params), SecurityAssessment::Meets128Bit);
    }
}
