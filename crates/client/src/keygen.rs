//! Client-side key generation: secret, public, relinearization, rotation and
//! conjugation keys (the OpenFHE `KeyGen` box of Fig. 1).
//!
//! Switching keys follow the hybrid (Han–Ki) layout: for digit `j`,
//! `b_j = −a_j·s + e_j + P·s′` on the limbs of digit `j` (and without the
//! `P·s′` term elsewhere), over the extended base `Q ∪ P`, in evaluation
//! domain. The factor `Q̂_j·[Q̂_j^{-1}]_{Q_j}` reduces to `1` on digit-`j`
//! limbs and `0` elsewhere, which is why only `[P]_{q_i}` appears explicitly.

use fides_math::{
    sample_gaussian_coeffs, sample_ternary_coeffs, signed_to_residues, Modulus, NttTable, PolyOps,
};
use fides_rns::{product_mod, DigitPartition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::context::ClientContext;
use crate::raw::{Domain, RawKeyDigit, RawPoly, RawPublicKey, RawSwitchingKey};

/// Standard deviation of the RLWE error distribution
/// (HomomorphicEncryption.org standard).
pub const ERROR_SIGMA: f64 = 3.19;

/// The CKKS secret key: a ternary polynomial.
#[derive(Clone, Debug)]
pub struct SecretKey {
    pub(crate) coeffs: Vec<i64>,
}

impl SecretKey {
    /// The signed coefficient vector.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }
}

/// Returns the Galois element `g` such that `X → X^g` rotates slots **left**
/// by `k` (negative `k` rotates right). `n` is the ring degree.
pub fn galois_for_rotation(k: i32, n: usize) -> usize {
    let order = (n / 2) as i32; // multiplicative order of 5 modulo 2N
    let k = k.rem_euclid(order) as u64;
    let two_n = 2 * n;
    let mut g = 1usize;
    let mut base = 5usize % two_n;
    let mut e = k;
    while e > 0 {
        if e & 1 == 1 {
            g = g * base % two_n;
        }
        base = base * base % two_n;
        e >>= 1;
    }
    g
}

/// The Galois element for complex conjugation: `2N − 1`.
pub fn galois_for_conjugation(n: usize) -> usize {
    2 * n - 1
}

/// Applies `X → X^g` to a signed coefficient vector (used to derive rotated
/// secret keys).
fn automorphism_signed(a: &[i64], g: usize) -> Vec<i64> {
    let n = a.len();
    let mask = 2 * n - 1;
    let mut out = vec![0i64; n];
    for (i, &c) in a.iter().enumerate() {
        let j = (i * g) & mask;
        if j < n {
            out[j] = c;
        } else {
            out[j - n] = -c;
        }
    }
    out
}

/// Deterministic key generator (seeded), mirroring OpenFHE's client keygen.
#[derive(Debug)]
pub struct KeyGenerator<'a> {
    ctx: &'a ClientContext,
    rng: StdRng,
}

impl<'a> KeyGenerator<'a> {
    /// Creates a generator with an explicit seed for reproducible tests.
    pub fn new(ctx: &'a ClientContext, seed: u64) -> Self {
        Self {
            ctx,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a fresh uniform-ternary secret key.
    pub fn secret_key(&mut self) -> SecretKey {
        SecretKey {
            coeffs: sample_ternary_coeffs(&mut self.rng, self.ctx.n()),
        }
    }

    /// Generates the public key `(b, a) = (−a·s + e, a)` over the full `Q`
    /// chain, in evaluation domain.
    pub fn public_key(&mut self, sk: &SecretKey) -> RawPublicKey {
        let n = self.ctx.n();
        let e = sample_gaussian_coeffs(&mut self.rng, n, ERROR_SIGMA);
        let mut b_limbs = Vec::new();
        let mut a_limbs = Vec::new();
        for (m, t) in self.ctx.moduli_q().iter().zip(self.ctx.ntt_q()) {
            let a: Vec<u64> = (0..n)
                .map(|_| self.rng.random_range(0..m.value()))
                .collect();
            let mut s_hat = signed_to_residues(&sk.coeffs, m);
            t.forward_inplace(&mut s_hat);
            let mut e_hat = signed_to_residues(&e, m);
            t.forward_inplace(&mut e_hat);
            let mut b = vec![0u64; n];
            m.mul_slices(&a, &s_hat, &mut b);
            m.neg_assign(&mut b);
            m.add_assign_slices(&mut b, &e_hat);
            b_limbs.push(b);
            a_limbs.push(a);
        }
        RawPublicKey {
            b: RawPoly {
                limbs: b_limbs,
                domain: Domain::Eval,
            },
            a: RawPoly {
                limbs: a_limbs,
                domain: Domain::Eval,
            },
        }
    }

    /// Relinearization key: switches `s²` back to `s`.
    pub fn relinearization_key(&mut self, sk: &SecretKey) -> RawSwitchingKey {
        self.switching_key(sk, |_m, t, s_hat| {
            let modulus = *t.modulus();
            let mut sq = vec![0u64; s_hat.len()];
            modulus.mul_slices(s_hat, s_hat, &mut sq);
            sq
        })
    }

    /// Rotation key for a **left** rotation by `k` slots: switches
    /// `φ_{g}(s)` back to `s` with `g = 5^k mod 2N`.
    pub fn rotation_key(&mut self, sk: &SecretKey, k: i32) -> RawSwitchingKey {
        let g = galois_for_rotation(k, self.ctx.n());
        let rotated = automorphism_signed(&sk.coeffs, g);
        self.switching_key(sk, move |m, t, _s_hat| {
            let mut r = signed_to_residues(&rotated, m);
            t.forward_inplace(&mut r);
            r
        })
    }

    /// Conjugation key (`g = 2N − 1`).
    pub fn conjugation_key(&mut self, sk: &SecretKey) -> RawSwitchingKey {
        let g = galois_for_conjugation(self.ctx.n());
        let conj = automorphism_signed(&sk.coeffs, g);
        self.switching_key(sk, move |m, t, _s_hat| {
            let mut r = signed_to_residues(&conj, m);
            t.forward_inplace(&mut r);
            r
        })
    }

    /// Rotation keys for a set of shifts (deduplicated).
    pub fn rotation_keys(&mut self, sk: &SecretKey, shifts: &[i32]) -> Vec<(i32, RawSwitchingKey)> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for &k in shifts {
            if seen.insert(k) {
                out.push((k, self.rotation_key(sk, k)));
            }
        }
        out
    }

    /// Core hybrid switching-key generation. `s_prime` produces the
    /// evaluation-domain limb of the *source* secret for each chain modulus;
    /// it receives `(modulus, table, ŝ)` where `ŝ` is the evaluation form of
    /// the target secret `s` for that modulus.
    fn switching_key<F>(&mut self, sk: &SecretKey, s_prime: F) -> RawSwitchingKey
    where
        F: Fn(&Modulus, &NttTable, &[u64]) -> Vec<u64>,
    {
        let ctx = self.ctx;
        let n = ctx.n();
        let params = ctx.params();
        let num_q = params.moduli_q.len();
        let partition = DigitPartition::new(num_q, params.dnum);
        let chain: Vec<(&Modulus, &NttTable, bool, usize)> = ctx
            .moduli_q()
            .iter()
            .zip(ctx.ntt_q())
            .enumerate()
            .map(|(i, (m, t))| (m, t, true, i))
            .chain(
                ctx.moduli_p()
                    .iter()
                    .zip(ctx.ntt_p())
                    .enumerate()
                    .map(|(i, (m, t))| (m, t, false, i)),
            )
            .collect();

        let mut digits = Vec::with_capacity(params.dnum);
        for j in 0..params.dnum {
            let range = partition.digit_range(j);
            let e = sample_gaussian_coeffs(&mut self.rng, n, ERROR_SIGMA);
            let mut b_limbs = Vec::with_capacity(chain.len());
            let mut a_limbs = Vec::with_capacity(chain.len());
            for &(m, t, is_q, idx) in &chain {
                let a: Vec<u64> = (0..n)
                    .map(|_| self.rng.random_range(0..m.value()))
                    .collect();
                let mut s_hat = signed_to_residues(&sk.coeffs, m);
                t.forward_inplace(&mut s_hat);
                let mut e_hat = signed_to_residues(&e, m);
                t.forward_inplace(&mut e_hat);
                let mut b = vec![0u64; n];
                m.mul_slices(&a, &s_hat, &mut b);
                m.neg_assign(&mut b);
                m.add_assign_slices(&mut b, &e_hat);
                if is_q && range.contains(&idx) {
                    // + [P]_{q_i} · ŝ′ on digit-j limbs.
                    let p_mod = product_mod(&params.moduli_p, m);
                    let mut term = s_prime(m, t, &s_hat);
                    m.scalar_mul_assign(&mut term, p_mod);
                    m.add_assign_slices(&mut b, &term);
                }
                b_limbs.push(b);
                a_limbs.push(a);
            }
            digits.push(RawKeyDigit {
                b: RawPoly {
                    limbs: b_limbs,
                    domain: Domain::Eval,
                },
                a: RawPoly {
                    limbs: a_limbs,
                    domain: Domain::Eval,
                },
            });
        }
        RawSwitchingKey { digits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawParams;

    #[test]
    fn galois_elements() {
        let n = 1024;
        assert_eq!(galois_for_rotation(0, n), 1);
        assert_eq!(galois_for_rotation(1, n), 5);
        assert_eq!(galois_for_rotation(2, n), 25);
        // Inverse rotations compose to identity.
        let g = galois_for_rotation(3, n);
        let ginv = galois_for_rotation(-3, n);
        assert_eq!(g * ginv % (2 * n), 1);
        assert_eq!(galois_for_conjugation(n), 2047);
    }

    #[test]
    fn automorphism_signed_matches_unsigned() {
        let a = vec![1i64, -1, 0, 2];
        let out = automorphism_signed(&a, 3);
        // φ_3(1 - X + 2X^3) = 1 - X^3 + 2X^9 = 1 + 2X - X^3 (X^9 ≡ +X mod X^4+1).
        assert_eq!(out, vec![1, 2, 0, -1]);
    }

    #[test]
    fn key_shapes() {
        let ctx = ClientContext::new(RawParams::generate(8, 3, 30, 40, 2));
        let mut kg = KeyGenerator::new(&ctx, 7);
        let sk = kg.secret_key();
        assert!(sk.coeffs().iter().all(|&c| (-1..=1).contains(&c)));
        let pk = kg.public_key(&sk);
        assert_eq!(pk.b.limbs.len(), 4);
        let rk = kg.relinearization_key(&sk);
        assert_eq!(rk.digits.len(), 2);
        // 4 q-limbs + alpha=2 p-limbs.
        assert_eq!(rk.digits[0].b.limbs.len(), 6);
        let rots = kg.rotation_keys(&sk, &[1, 2, 1, -1]);
        assert_eq!(rots.len(), 3, "duplicates removed");
    }

    /// Validates the core switching-key identity on the full extended basis:
    /// b_j + a_j·s ≡ e_j + P·s′ (digit-j q-limbs) / e_j (elsewhere), i.e. the
    /// decrypted key must be a small error except for the planted term.
    #[test]
    fn switching_key_identity() {
        let ctx = ClientContext::new(RawParams::generate(6, 3, 30, 40, 2));
        let mut kg = KeyGenerator::new(&ctx, 99);
        let sk = kg.secret_key();
        let rk = kg.relinearization_key(&sk);
        let n = ctx.n();
        let params = ctx.params().clone();
        let partition = DigitPartition::new(params.moduli_q.len(), params.dnum);
        for (j, digit) in rk.digits.iter().enumerate() {
            let range = partition.digit_range(j);
            for (chain_idx, (m, t)) in ctx
                .moduli_q()
                .iter()
                .zip(ctx.ntt_q())
                .chain(ctx.moduli_p().iter().zip(ctx.ntt_p()))
                .enumerate()
            {
                let mut s_hat = signed_to_residues(&sk.coeffs, m);
                t.forward_inplace(&mut s_hat);
                // d = b + a·s in eval, then to coeff.
                let mut d = vec![0u64; n];
                m.mul_slices(&digit.a.limbs[chain_idx], &s_hat, &mut d);
                m.add_assign_slices(&mut d, &digit.b.limbs[chain_idx]);
                // Subtract the planted P·s² term on digit-j q-limbs.
                let is_digit_q = chain_idx < params.moduli_q.len() && range.contains(&chain_idx);
                if is_digit_q {
                    let p_mod = product_mod(&params.moduli_p, m);
                    let mut sq = vec![0u64; n];
                    m.mul_slices(&s_hat, &s_hat, &mut sq);
                    m.scalar_mul_assign(&mut sq, p_mod);
                    m.sub_assign_slices(&mut d, &sq);
                }
                t.inverse_inplace(&mut d);
                for &c in &d {
                    let centered = m.to_centered_i64(c);
                    assert!(
                        centered.abs() <= (6.0 * ERROR_SIGMA) as i64 + 1,
                        "digit {j} chain {chain_idx}: residual {centered} too large"
                    );
                }
            }
        }
    }
}
