//! The client↔server wire protocol of the serving layer (paper Fig. 1).
//!
//! The paper's architecture is client/server: a thin CKKS client feeds
//! `Raw*` interchange structures to a GPU evaluation server. This module
//! adds the three request/response frames that ride on top of the `Raw*`
//! serde layer so *many* clients can share one server:
//!
//! * [`SessionRequest`] — a keygen upload: evaluation keys (relinearization,
//!   rotations, conjugation) plus plaintext operands the tenant wants
//!   preloaded server-side (e.g. model weights), all bound to a parameter
//!   fingerprint so a client can never attach to a mismatched chain;
//! * [`EvalRequest`] — encrypted operands plus an [`OpProgram`] describing
//!   the homomorphic circuit to run over them;
//! * [`EvalResponse`] — the result ciphertexts (or a typed error message).
//!
//! Programs are a tiny register machine: registers `0..inputs` name the
//! request's ciphertexts, each executed op appends one result register, and
//! `outputs` selects which registers come back. The encoding is the same
//! compact explicit binary framing as [`RawCiphertext::to_bytes`] — the
//! vendored `serde` is a no-op stand-in, so nothing here depends on it.

use bytes::{Buf, BufMut};

use crate::error::ClientError;
use crate::raw::{
    get_poly, put_poly, RawCiphertext, RawKeyDigit, RawParams, RawPlaintext, RawSwitchingKey,
};

/// Stable fingerprint of a parameter set (FNV-1a over the canonical
/// encoding). Client and server must agree on it before any ciphertext
/// crosses the wire; [`SessionRequest::params_hash`] carries the client's
/// view.
pub fn params_fingerprint(p: &RawParams) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(p.log_n as u64);
    eat(p.scale_bits as u64);
    eat(p.dnum as u64);
    eat(p.moduli_q.len() as u64);
    for &q in &p.moduli_q {
        eat(q);
    }
    eat(p.moduli_p.len() as u64);
    for &q in &p.moduli_p {
        eat(q);
    }
    h
}

/// One instruction of the request register machine.
///
/// Register operands (`a`, `b`) index previously defined registers; `plain`
/// indexes the tenant's preloaded plaintext slots
/// ([`SessionRequest::plaintexts`]). Every op follows the engine's
/// standard-ladder policy: multiplications relinearize where needed and
/// rescale immediately, binary ops align operand levels by dropping the
/// higher one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProgramOp {
    /// HAdd (levels auto-aligned).
    Add {
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// HSub (levels auto-aligned).
    Sub {
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// HMult with relinearization, rescaled. Consumes one level.
    Mul {
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// HSquare with relinearization, rescaled. Consumes one level.
    Square {
        /// Operand register.
        a: u32,
    },
    /// Negation (exact).
    Negate {
        /// Operand register.
        a: u32,
    },
    /// ScalarAdd (exact, no level consumed).
    AddScalar {
        /// Operand register.
        a: u32,
        /// Scalar addend.
        c: f64,
    },
    /// ScalarMult at the ladder-exact constant scale, rescaled. Consumes one
    /// level.
    MulScalar {
        /// Operand register.
        a: u32,
        /// Scalar factor.
        c: f64,
    },
    /// Exact small-integer multiplication (no scale change).
    MulInt {
        /// Operand register.
        a: u32,
        /// Integer factor.
        k: i64,
    },
    /// HRotate by `k` slots (the session must carry the rotation key).
    Rotate {
        /// Operand register.
        a: u32,
        /// Slot shift (positive = left).
        k: i32,
    },
    /// HConjugate (the session must carry the conjugation key).
    Conjugate {
        /// Operand register.
        a: u32,
    },
    /// PtMult by preloaded plaintext slot `plain`, rescaled. Consumes one
    /// level.
    MulPlain {
        /// Operand register.
        a: u32,
        /// Preloaded plaintext slot.
        plain: u32,
    },
}

impl ProgramOp {
    fn regs(&self) -> (u32, Option<u32>) {
        match *self {
            ProgramOp::Add { a, b } | ProgramOp::Sub { a, b } | ProgramOp::Mul { a, b } => {
                (a, Some(b))
            }
            ProgramOp::Square { a }
            | ProgramOp::Negate { a }
            | ProgramOp::AddScalar { a, .. }
            | ProgramOp::MulScalar { a, .. }
            | ProgramOp::MulInt { a, .. }
            | ProgramOp::Rotate { a, .. }
            | ProgramOp::Conjugate { a } => (a, None),
            ProgramOp::MulPlain { a, .. } => (a, None),
        }
    }

    fn plain_slot(&self) -> Option<u32> {
        match *self {
            ProgramOp::MulPlain { plain, .. } => Some(plain),
            _ => None,
        }
    }
}

/// A homomorphic circuit over a request's input ciphertexts, as a register
/// program (see [`ProgramOp`] for the register convention).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpProgram {
    /// Number of input ciphertexts the program expects (registers
    /// `0..inputs`).
    pub inputs: u32,
    /// Instructions, in execution order; op `i` defines register
    /// `inputs + i`.
    pub ops: Vec<ProgramOp>,
    /// Registers returned to the client, in response order.
    pub outputs: Vec<u32>,
}

impl OpProgram {
    /// An empty program over `inputs` input ciphertexts.
    pub fn new(inputs: u32) -> Self {
        Self {
            inputs,
            ops: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Appends an instruction and returns the register it defines.
    pub fn push(&mut self, op: ProgramOp) -> u32 {
        self.ops.push(op);
        self.inputs + (self.ops.len() as u32 - 1)
    }

    /// Marks a register as an output.
    pub fn output(&mut self, reg: u32) {
        self.outputs.push(reg);
    }

    /// Total register count once fully executed.
    pub fn reg_count(&self) -> u32 {
        self.inputs + self.ops.len() as u32
    }

    /// Structural validation: every register operand must refer to an
    /// already-defined register, every plaintext slot must exist among the
    /// session's `plains` preloaded plaintexts, and at least one output must
    /// be requested.
    ///
    /// # Errors
    ///
    /// [`ClientError::BadProgram`] describing the first violation.
    pub fn validate(&self, plains: usize) -> Result<(), ClientError> {
        for (i, op) in self.ops.iter().enumerate() {
            let defined = self.inputs + i as u32;
            let (a, b) = op.regs();
            if a >= defined || b.is_some_and(|b| b >= defined) {
                return Err(ClientError::BadProgram(format!(
                    "op {i} ({op:?}) reads a register not yet defined (registers 0..{defined})"
                )));
            }
            if let Some(slot) = op.plain_slot() {
                if slot as usize >= plains {
                    return Err(ClientError::BadProgram(format!(
                        "op {i} reads preloaded plaintext slot {slot} but the session holds \
                         {plains}"
                    )));
                }
            }
        }
        if self.outputs.is_empty() {
            return Err(ClientError::BadProgram(
                "program requests no outputs".into(),
            ));
        }
        for &r in &self.outputs {
            if r >= self.reg_count() {
                return Err(ClientError::BadProgram(format!(
                    "output register {r} out of range (registers 0..{})",
                    self.reg_count()
                )));
            }
        }
        Ok(())
    }
}

/// A keygen upload: everything the server must hold to evaluate on behalf of
/// one tenant. The secret key never appears — security rests entirely on the
/// client side (§III-B).
#[derive(Clone, Debug, PartialEq)]
pub struct SessionRequest {
    /// The client's parameter fingerprint ([`params_fingerprint`]); the
    /// server rejects mismatches before touching any key material.
    pub params_hash: u64,
    /// Relinearization key (needed by `Mul`/`Square` ops).
    pub relin: Option<RawSwitchingKey>,
    /// Rotation keys, paired with their slot shifts.
    pub rotations: Vec<(i32, RawSwitchingKey)>,
    /// Conjugation key.
    pub conjugation: Option<RawSwitchingKey>,
    /// Plaintext operands preloaded into the server's evaluation-domain
    /// cache (the operands of repeated `MulPlain`s, e.g. model weights).
    pub plaintexts: Vec<RawPlaintext>,
}

/// One evaluation request: encrypted operands plus the circuit to run.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalRequest {
    /// Session id returned by the server at session-open.
    pub session_id: u64,
    /// Input ciphertexts (program registers `0..inputs.len()`).
    pub inputs: Vec<RawCiphertext>,
    /// The circuit.
    pub program: OpProgram,
}

/// The server's answer to an [`EvalRequest`].
#[derive(Clone, Debug, PartialEq)]
pub struct EvalResponse {
    /// Output ciphertexts, in [`OpProgram::outputs`] order (empty on error).
    pub outputs: Vec<RawCiphertext>,
    /// Human-readable failure description, when the request failed.
    pub error: Option<String>,
}

const SESSION_MAGIC: u32 = 0xF1DE_5E55;
const EVAL_MAGIC: u32 = 0xF1DE_0E4A;
const RESP_MAGIC: u32 = 0xF1DE_0E4B;

pub(crate) fn need(buf: &[u8], bytes: usize, what: &str) -> Result<(), ClientError> {
    if buf.remaining() < bytes {
        return Err(ClientError::Serialization(format!("truncated {what}")));
    }
    Ok(())
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, ClientError> {
    need(buf, 4, "string header")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "string body")?;
    let (head, rest) = buf.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| ClientError::Serialization("non-UTF8 string".into()))?
        .to_string();
    *buf = rest;
    Ok(s)
}

pub(crate) fn put_plaintext(buf: &mut Vec<u8>, pt: &RawPlaintext) {
    buf.put_u32(pt.level as u32);
    buf.put_f64(pt.scale);
    buf.put_u32(pt.slots as u32);
    put_poly(buf, &pt.poly);
}

pub(crate) fn get_plaintext(buf: &mut &[u8]) -> Result<RawPlaintext, ClientError> {
    need(buf, 16, "plaintext header")?;
    let level = buf.get_u32() as usize;
    let scale = buf.get_f64();
    let slots = buf.get_u32() as usize;
    let poly = get_poly(buf)?;
    Ok(RawPlaintext {
        poly,
        level,
        scale,
        slots,
    })
}

pub(crate) fn put_key(buf: &mut Vec<u8>, key: &RawSwitchingKey) {
    buf.put_u32(key.digits.len() as u32);
    for d in &key.digits {
        put_poly(buf, &d.b);
        put_poly(buf, &d.a);
    }
}

pub(crate) fn get_key(buf: &mut &[u8]) -> Result<RawSwitchingKey, ClientError> {
    need(buf, 4, "key header")?;
    let dnum = buf.get_u32() as usize;
    let mut digits = Vec::with_capacity(dnum);
    for _ in 0..dnum {
        let b = get_poly(buf)?;
        let a = get_poly(buf)?;
        digits.push(RawKeyDigit { b, a });
    }
    Ok(RawSwitchingKey { digits })
}

pub(crate) fn put_opt_key(buf: &mut Vec<u8>, key: &Option<RawSwitchingKey>) {
    match key {
        None => buf.put_u8(0),
        Some(k) => {
            buf.put_u8(1);
            put_key(buf, k);
        }
    }
}

pub(crate) fn get_opt_key(buf: &mut &[u8]) -> Result<Option<RawSwitchingKey>, ClientError> {
    need(buf, 1, "key presence tag")?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_key(buf)?)),
        t => Err(ClientError::Serialization(format!(
            "invalid key presence tag {t}"
        ))),
    }
}

fn put_ciphertext(buf: &mut Vec<u8>, ct: &RawCiphertext) {
    let frame = ct.to_bytes();
    buf.put_u64_le(frame.len() as u64);
    buf.extend_from_slice(&frame);
}

fn get_ciphertext(buf: &mut &[u8]) -> Result<RawCiphertext, ClientError> {
    need(buf, 8, "ciphertext frame header")?;
    let len = buf.get_u64_le() as usize;
    need(buf, len, "ciphertext frame body")?;
    let (head, rest) = buf.split_at(len);
    let ct = RawCiphertext::from_bytes(head)?;
    *buf = rest;
    Ok(ct)
}

fn put_op(buf: &mut Vec<u8>, op: &ProgramOp) {
    match *op {
        ProgramOp::Add { a, b } => {
            buf.put_u8(0);
            buf.put_u32(a);
            buf.put_u32(b);
        }
        ProgramOp::Sub { a, b } => {
            buf.put_u8(1);
            buf.put_u32(a);
            buf.put_u32(b);
        }
        ProgramOp::Mul { a, b } => {
            buf.put_u8(2);
            buf.put_u32(a);
            buf.put_u32(b);
        }
        ProgramOp::Square { a } => {
            buf.put_u8(3);
            buf.put_u32(a);
        }
        ProgramOp::Negate { a } => {
            buf.put_u8(4);
            buf.put_u32(a);
        }
        ProgramOp::AddScalar { a, c } => {
            buf.put_u8(5);
            buf.put_u32(a);
            buf.put_f64(c);
        }
        ProgramOp::MulScalar { a, c } => {
            buf.put_u8(6);
            buf.put_u32(a);
            buf.put_f64(c);
        }
        ProgramOp::MulInt { a, k } => {
            buf.put_u8(7);
            buf.put_u32(a);
            buf.put_u64_le(k as u64);
        }
        ProgramOp::Rotate { a, k } => {
            buf.put_u8(8);
            buf.put_u32(a);
            buf.put_u32(k as u32);
        }
        ProgramOp::Conjugate { a } => {
            buf.put_u8(9);
            buf.put_u32(a);
        }
        ProgramOp::MulPlain { a, plain } => {
            buf.put_u8(10);
            buf.put_u32(a);
            buf.put_u32(plain);
        }
    }
}

fn get_op(buf: &mut &[u8]) -> Result<ProgramOp, ClientError> {
    need(buf, 5, "program op")?;
    let tag = buf.get_u8();
    let a = buf.get_u32();
    Ok(match tag {
        0 => {
            need(buf, 4, "op operand")?;
            ProgramOp::Add {
                a,
                b: buf.get_u32(),
            }
        }
        1 => {
            need(buf, 4, "op operand")?;
            ProgramOp::Sub {
                a,
                b: buf.get_u32(),
            }
        }
        2 => {
            need(buf, 4, "op operand")?;
            ProgramOp::Mul {
                a,
                b: buf.get_u32(),
            }
        }
        3 => ProgramOp::Square { a },
        4 => ProgramOp::Negate { a },
        5 => {
            need(buf, 8, "op operand")?;
            ProgramOp::AddScalar {
                a,
                c: buf.get_f64(),
            }
        }
        6 => {
            need(buf, 8, "op operand")?;
            ProgramOp::MulScalar {
                a,
                c: buf.get_f64(),
            }
        }
        7 => {
            need(buf, 8, "op operand")?;
            ProgramOp::MulInt {
                a,
                k: buf.get_u64_le() as i64,
            }
        }
        8 => {
            need(buf, 4, "op operand")?;
            ProgramOp::Rotate {
                a,
                k: buf.get_u32() as i32,
            }
        }
        9 => ProgramOp::Conjugate { a },
        10 => {
            need(buf, 4, "op operand")?;
            ProgramOp::MulPlain {
                a,
                plain: buf.get_u32(),
            }
        }
        t => {
            return Err(ClientError::Serialization(format!(
                "invalid program op tag {t}"
            )))
        }
    })
}

impl OpProgram {
    fn put(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.inputs);
        buf.put_u32(self.ops.len() as u32);
        for op in &self.ops {
            put_op(buf, op);
        }
        buf.put_u32(self.outputs.len() as u32);
        for &r in &self.outputs {
            buf.put_u32(r);
        }
    }

    fn get(buf: &mut &[u8]) -> Result<Self, ClientError> {
        need(buf, 8, "program header")?;
        let inputs = buf.get_u32();
        let num_ops = buf.get_u32() as usize;
        let mut ops = Vec::with_capacity(num_ops.min(1 << 16));
        for _ in 0..num_ops {
            ops.push(get_op(buf)?);
        }
        need(buf, 4, "program outputs")?;
        let num_out = buf.get_u32() as usize;
        need(buf, num_out.saturating_mul(4), "program outputs")?;
        let mut outputs = Vec::with_capacity(num_out.min(1 << 16));
        for _ in 0..num_out {
            outputs.push(buf.get_u32());
        }
        Ok(Self {
            inputs,
            ops,
            outputs,
        })
    }
}

impl SessionRequest {
    /// Serializes into a compact binary frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u32(SESSION_MAGIC);
        buf.put_u64_le(self.params_hash);
        put_opt_key(&mut buf, &self.relin);
        buf.put_u32(self.rotations.len() as u32);
        for (shift, key) in &self.rotations {
            buf.put_u32(*shift as u32);
            put_key(&mut buf, key);
        }
        put_opt_key(&mut buf, &self.conjugation);
        buf.put_u32(self.plaintexts.len() as u32);
        for pt in &self.plaintexts {
            put_plaintext(&mut buf, pt);
        }
        buf
    }

    /// Deserializes a frame produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] describing the corruption.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut data;
        need(buf, 12, "session request header")?;
        if buf.get_u32() != SESSION_MAGIC {
            return Err(ClientError::Serialization("bad session magic".into()));
        }
        let params_hash = buf.get_u64_le();
        let relin = get_opt_key(buf)?;
        need(buf, 4, "rotation count")?;
        let num_rot = buf.get_u32() as usize;
        let mut rotations = Vec::with_capacity(num_rot.min(1 << 12));
        for _ in 0..num_rot {
            need(buf, 4, "rotation shift")?;
            let shift = buf.get_u32() as i32;
            rotations.push((shift, get_key(buf)?));
        }
        let conjugation = get_opt_key(buf)?;
        need(buf, 4, "plaintext count")?;
        let num_pt = buf.get_u32() as usize;
        let mut plaintexts = Vec::with_capacity(num_pt.min(1 << 12));
        for _ in 0..num_pt {
            plaintexts.push(get_plaintext(buf)?);
        }
        Ok(Self {
            params_hash,
            relin,
            rotations,
            conjugation,
            plaintexts,
        })
    }
}

impl EvalRequest {
    /// Serializes into a compact binary frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u32(EVAL_MAGIC);
        buf.put_u64_le(self.session_id);
        buf.put_u32(self.inputs.len() as u32);
        for ct in &self.inputs {
            put_ciphertext(&mut buf, ct);
        }
        self.program.put(&mut buf);
        buf
    }

    /// Deserializes a frame produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] describing the corruption.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut data;
        need(buf, 16, "eval request header")?;
        if buf.get_u32() != EVAL_MAGIC {
            return Err(ClientError::Serialization("bad request magic".into()));
        }
        let session_id = buf.get_u64_le();
        let num_in = buf.get_u32() as usize;
        let mut inputs = Vec::with_capacity(num_in.min(1 << 12));
        for _ in 0..num_in {
            inputs.push(get_ciphertext(buf)?);
        }
        let program = OpProgram::get(buf)?;
        Ok(Self {
            session_id,
            inputs,
            program,
        })
    }
}

impl EvalResponse {
    /// A successful response.
    pub fn ok(outputs: Vec<RawCiphertext>) -> Self {
        Self {
            outputs,
            error: None,
        }
    }

    /// A failed response carrying a description.
    pub fn failed(msg: impl Into<String>) -> Self {
        Self {
            outputs: Vec::new(),
            error: Some(msg.into()),
        }
    }

    /// Serializes into a compact binary frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u32(RESP_MAGIC);
        match &self.error {
            None => buf.put_u8(0),
            Some(msg) => {
                buf.put_u8(1);
                put_string(&mut buf, msg);
            }
        }
        buf.put_u32(self.outputs.len() as u32);
        for ct in &self.outputs {
            put_ciphertext(&mut buf, ct);
        }
        buf
    }

    /// Deserializes a frame produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] describing the corruption.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut data;
        need(buf, 5, "response header")?;
        if buf.get_u32() != RESP_MAGIC {
            return Err(ClientError::Serialization("bad response magic".into()));
        }
        let error = match buf.get_u8() {
            0 => None,
            1 => Some(get_string(buf)?),
            t => {
                return Err(ClientError::Serialization(format!(
                    "invalid response status tag {t}"
                )))
            }
        };
        need(buf, 4, "output count")?;
        let num_out = buf.get_u32() as usize;
        let mut outputs = Vec::with_capacity(num_out.min(1 << 12));
        for _ in 0..num_out {
            outputs.push(get_ciphertext(buf)?);
        }
        Ok(Self { outputs, error })
    }
}

// ---------------------------------------------------------------------------
// Socket framing
// ---------------------------------------------------------------------------

/// Magic prefix of every socket frame (distinct from the payload magics, so
/// a payload accidentally fed as a frame fails immediately).
const FRAME_MAGIC: u32 = 0xF1DE_F4A3;

/// Frame header size: magic (4) + kind (1) + seq (8) + length prefix (4).
pub const FRAME_HEADER_LEN: usize = 17;

/// Default upper bound on a frame's declared payload length. Large enough
/// for a paper-scale keygen upload (tens of MB of switching keys), small
/// enough that a hostile length prefix can never balloon the read buffer.
pub const MAX_FRAME_LEN: usize = 1 << 28;

/// What a socket frame carries. The framing layer is payload-agnostic:
/// each kind names which `to_bytes`/`from_bytes` codec applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: a [`SessionRequest`] keygen upload.
    OpenSession,
    /// Server → client: the session id (payload: `u64` LE) for an
    /// `OpenSession` frame.
    SessionOpened,
    /// Client → server: an [`EvalRequest`].
    Eval,
    /// Server → client: the [`EvalResponse`] for an `Eval` frame.
    EvalDone,
    /// Server → client: the request was not admitted (payload:
    /// [`Reject`]). After a `Malformed` reject the server closes the
    /// connection — framing sync is lost.
    Reject,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::OpenSession => 1,
            FrameKind::SessionOpened => 2,
            FrameKind::Eval => 3,
            FrameKind::EvalDone => 4,
            FrameKind::Reject => 5,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, ClientError> {
        Ok(match tag {
            1 => FrameKind::OpenSession,
            2 => FrameKind::SessionOpened,
            3 => FrameKind::Eval,
            4 => FrameKind::EvalDone,
            5 => FrameKind::Reject,
            t => {
                return Err(ClientError::Serialization(format!(
                    "invalid frame kind {t}"
                )))
            }
        })
    }
}

/// One length-prefixed socket frame:
/// `[u32 magic BE][u8 kind][u64 seq LE][u32 len BE][payload]`.
///
/// `seq` correlates responses with requests on a pipelined connection —
/// the server echoes the request's seq on its `EvalDone`/`Reject`, so
/// responses may complete out of order (different batch ticks) without
/// losing correlation.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Payload discriminator.
    pub kind: FrameKind,
    /// Request/response correlation id (client-assigned, server-echoed).
    pub seq: u64,
    /// The payload bytes (codec per [`FrameKind`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Wraps a payload in a frame.
    pub fn new(kind: FrameKind, seq: u64, payload: Vec<u8>) -> Self {
        Self { kind, seq, payload }
    }

    /// Serializes the frame for the socket.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        buf.put_u32(FRAME_MAGIC);
        buf.put_u8(self.kind.to_u8());
        buf.put_u64_le(self.seq);
        buf.put_u32(self.payload.len() as u32);
        buf.extend_from_slice(&self.payload);
        buf
    }
}

/// Incremental frame decoder for a byte stream.
///
/// Feed it whatever chunks the socket yields; [`FrameDecoder::next_frame`]
/// returns one complete frame at a time (`Ok(None)` = need more bytes).
/// Errors are **fatal for the stream**: a bad magic, kind, or an oversized
/// length prefix means framing sync is lost (or the peer is hostile), and
/// the connection must be closed. Truncation is *not* an error — an
/// incomplete frame simply stays pending, and idle-connection policy (not
/// the decoder) decides when to give up on it.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_len: usize,
}

impl FrameDecoder {
    /// A decoder with the default [`MAX_FRAME_LEN`] bound.
    pub fn new() -> Self {
        Self::with_max_len(MAX_FRAME_LEN)
    }

    /// A decoder rejecting frames whose declared payload exceeds
    /// `max_len`.
    pub fn with_max_len(max_len: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_len,
        }
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, if the buffer holds one.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] on a bad magic or kind,
    /// [`ClientError::FrameTooLarge`] on an oversized length prefix — both
    /// mean the stream must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ClientError> {
        if self.buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let mut head = &self.buf[..FRAME_HEADER_LEN];
        if head.get_u32() != FRAME_MAGIC {
            return Err(ClientError::Serialization("bad frame magic".into()));
        }
        let kind = FrameKind::from_u8(head.get_u8())?;
        let seq = head.get_u64_le();
        let len = head.get_u32() as usize;
        if len > self.max_len {
            return Err(ClientError::FrameTooLarge {
                len: len as u64,
                max: self.max_len as u64,
            });
        }
        if self.buf.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = self.buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        self.buf.drain(..FRAME_HEADER_LEN + len);
        Ok(Some(Frame { kind, seq, payload }))
    }
}

/// Why a request was rejected at the network front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// The admission queue is full; retry after `retry_after_ticks`.
    Overloaded,
    /// The frame or its payload failed to parse; the server closes the
    /// connection after sending this (framing sync is lost).
    Malformed,
    /// The request was understood but refused (foreign parameter chain,
    /// failed key load).
    Refused,
}

impl RejectCode {
    fn to_u8(self) -> u8 {
        match self {
            RejectCode::Overloaded => 1,
            RejectCode::Malformed => 2,
            RejectCode::Refused => 3,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, ClientError> {
        Ok(match tag {
            1 => RejectCode::Overloaded,
            2 => RejectCode::Malformed,
            3 => RejectCode::Refused,
            t => {
                return Err(ClientError::Serialization(format!(
                    "invalid reject code {t}"
                )))
            }
        })
    }
}

/// Payload of a [`FrameKind::Reject`] frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Reject {
    /// Why the request was rejected.
    pub code: RejectCode,
    /// For [`RejectCode::Overloaded`]: the server's estimate of how many
    /// batch ticks must drain before a retry can be admitted (0 for the
    /// other codes). A tick's wall duration is deployment-specific; the
    /// estimate is `ceil(queued / batch_size)` at shed time.
    pub retry_after_ticks: u64,
    /// Human-readable detail.
    pub message: String,
}

impl Reject {
    /// Serializes into a reject-frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u8(self.code.to_u8());
        buf.put_u64_le(self.retry_after_ticks);
        put_string(&mut buf, &self.message);
        buf
    }

    /// Deserializes a reject-frame payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] describing the corruption.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut data;
        need(buf, 9, "reject header")?;
        let code = RejectCode::from_u8(buf.get_u8())?;
        let retry_after_ticks = buf.get_u64_le();
        let message = get_string(buf)?;
        Ok(Self {
            code,
            retry_after_ticks,
            message,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::{Domain, RawPoly};

    fn sample_ct() -> RawCiphertext {
        RawCiphertext {
            c0: RawPoly {
                limbs: vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]],
                domain: Domain::Eval,
            },
            c1: RawPoly {
                limbs: vec![vec![9, 10, 11, 12], vec![13, 14, 15, 16]],
                domain: Domain::Eval,
            },
            level: 1,
            scale: 2f64.powi(40),
            slots: 2,
            noise_log2: 10.5,
        }
    }

    fn sample_key() -> RawSwitchingKey {
        RawSwitchingKey {
            digits: vec![RawKeyDigit {
                b: RawPoly::zero(4, 3, Domain::Eval),
                a: RawPoly::zero(4, 3, Domain::Eval),
            }],
        }
    }

    fn sample_program() -> OpProgram {
        let mut p = OpProgram::new(2);
        let s = p.push(ProgramOp::Add { a: 0, b: 1 });
        let sq = p.push(ProgramOp::Square { a: s });
        let t = p.push(ProgramOp::MulScalar { a: sq, c: 0.25 });
        let r = p.push(ProgramOp::Rotate { a: t, k: -1 });
        let m = p.push(ProgramOp::MulPlain { a: r, plain: 0 });
        p.output(m);
        p
    }

    #[test]
    fn fingerprint_distinguishes_parameter_sets() {
        let a = RawParams::generate(10, 3, 40, 50, 2);
        let b = RawParams::generate(10, 4, 40, 50, 2);
        assert_eq!(params_fingerprint(&a), params_fingerprint(&a));
        assert_ne!(params_fingerprint(&a), params_fingerprint(&b));
    }

    #[test]
    fn program_validation() {
        let p = sample_program();
        assert!(p.validate(1).is_ok());
        assert!(
            matches!(p.validate(0), Err(ClientError::BadProgram(_))),
            "missing plain slot"
        );
        let mut bad = OpProgram::new(1);
        bad.push(ProgramOp::Add { a: 0, b: 1 });
        bad.output(1);
        assert!(
            matches!(bad.validate(0), Err(ClientError::BadProgram(_))),
            "forward reference"
        );
        let mut no_out = OpProgram::new(1);
        no_out.push(ProgramOp::Negate { a: 0 });
        assert!(
            matches!(no_out.validate(0), Err(ClientError::BadProgram(_))),
            "no outputs"
        );
        let mut bad_out = OpProgram::new(1);
        bad_out.push(ProgramOp::Negate { a: 0 });
        bad_out.output(7);
        assert!(
            matches!(bad_out.validate(0), Err(ClientError::BadProgram(_))),
            "output range"
        );
    }

    #[test]
    fn session_request_roundtrip() {
        let pt = RawPlaintext {
            poly: RawPoly::zero(4, 2, Domain::Coeff),
            level: 1,
            scale: 2f64.powi(40),
            slots: 2,
        };
        let req = SessionRequest {
            params_hash: 0xDEAD_BEEF_0123,
            relin: Some(sample_key()),
            rotations: vec![(1, sample_key()), (-2, sample_key())],
            conjugation: None,
            plaintexts: vec![pt],
        };
        let back = SessionRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn eval_request_and_response_roundtrip() {
        let req = EvalRequest {
            session_id: 42,
            inputs: vec![sample_ct(), sample_ct()],
            program: sample_program(),
        };
        let back = EvalRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(req, back);

        let resp = EvalResponse::ok(vec![sample_ct()]);
        assert_eq!(resp, EvalResponse::from_bytes(&resp.to_bytes()).unwrap());
        let failed = EvalResponse::failed("missing rotation key");
        let back = EvalResponse::from_bytes(&failed.to_bytes()).unwrap();
        assert_eq!(back.error.as_deref(), Some("missing rotation key"));
        assert!(back.outputs.is_empty());
    }

    #[test]
    fn corrupt_wire_frames_rejected() {
        let req = EvalRequest {
            session_id: 1,
            inputs: vec![sample_ct()],
            program: sample_program(),
        };
        let mut bytes = req.to_bytes();
        bytes[0] ^= 0xff;
        assert!(EvalRequest::from_bytes(&bytes).is_err(), "bad magic");
        let bytes = req.to_bytes();
        assert!(
            EvalRequest::from_bytes(&bytes[..bytes.len() - 3]).is_err(),
            "truncated"
        );
        assert!(SessionRequest::from_bytes(&[1, 2, 3]).is_err());
        assert!(EvalResponse::from_bytes(&[]).is_err());
    }

    #[test]
    fn frame_roundtrip_and_incremental_decode() {
        let frames = vec![
            Frame::new(FrameKind::OpenSession, 0, vec![1, 2, 3]),
            Frame::new(FrameKind::Eval, 7, vec![]),
            Frame::new(FrameKind::EvalDone, 7, vec![0xAA; 1000]),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        // Feed in awkward chunk sizes; every frame must come out intact.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(13) {
            dec.feed(chunk);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frame_decoder_rejects_corruption() {
        // Bad magic.
        let mut dec = FrameDecoder::new();
        dec.feed(&[0u8; FRAME_HEADER_LEN]);
        assert!(matches!(
            dec.next_frame(),
            Err(ClientError::Serialization(_))
        ));

        // Bad kind tag.
        let mut bytes = Frame::new(FrameKind::Eval, 1, vec![]).encode();
        bytes[4] = 99;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(
            dec.next_frame(),
            Err(ClientError::Serialization(_))
        ));

        // Oversized length prefix is rejected from the header alone —
        // before any payload arrives or is buffered.
        let mut huge = Frame::new(FrameKind::Eval, 1, vec![]).encode();
        huge[13..17].copy_from_slice(&(u32::MAX).to_be_bytes());
        let mut dec = FrameDecoder::with_max_len(1 << 20);
        dec.feed(&huge);
        assert!(matches!(
            dec.next_frame(),
            Err(ClientError::FrameTooLarge { .. })
        ));

        // Truncation is pending, not an error.
        let whole = Frame::new(FrameKind::Eval, 2, vec![5; 64]).encode();
        let mut dec = FrameDecoder::new();
        dec.feed(&whole[..whole.len() - 1]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.feed(&whole[whole.len() - 1..]);
        assert!(dec.next_frame().unwrap().is_some());
    }

    #[test]
    fn reject_payload_roundtrip() {
        let rej = Reject {
            code: RejectCode::Overloaded,
            retry_after_ticks: 3,
            message: "queue full".into(),
        };
        assert_eq!(rej, Reject::from_bytes(&rej.to_bytes()).unwrap());
        assert!(Reject::from_bytes(&[0xFF]).is_err());
    }
}
