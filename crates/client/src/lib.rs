//! # fides-client
//!
//! The client half of the FIDESlib architecture (Fig. 1): an
//! OpenFHE-equivalent CKKS client providing **Encode / Decode / KeyGen /
//! Encrypt / Decrypt / Serialize / Deserialize**, plus the thin adapter-layer
//! interchange structures (`Raw*`) the GPU server consumes.
//!
//! Security rests entirely on these client-side operations (§III-B); the
//! [`security`] module carries the HomomorphicEncryption.org standard bounds.
//!
//! ```
//! use fides_client::{ClientContext, KeyGenerator, RawParams};
//! use rand::SeedableRng;
//!
//! let params = RawParams::generate(10, 2, 40, 50, 2); // [logN, L, Δ, dnum]
//! let ctx = ClientContext::new(params);
//! let mut kg = KeyGenerator::new(&ctx, 42);
//! let sk = kg.secret_key();
//! let pk = kg.public_key(&sk);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let pt = ctx.encode_real(&[1.0, 2.0, 3.0, 4.0], ctx.params().scale(), 2)?;
//! let ct = ctx.encrypt(&pt, &pk, &mut rng)?;
//! let back = ctx.decode_real(&ctx.decrypt(&ct, &sk)?)?;
//! assert!((back[2] - 3.0).abs() < 1e-6);
//! # Ok::<(), fides_client::ClientError>(())
//! ```
//!
//! The [`wire`] module adds the serving-layer protocol on top: session
//! (keygen) uploads, evaluation requests carrying op programs, and
//! responses — plus the length-prefixed socket framing. The [`net`]
//! module is a blocking TCP client for that protocol, with pipelined
//! submission ([`net::NetClient::eval_pipelined`]).

#![warn(missing_docs)]

mod context;
mod encode;
mod encrypt;
mod error;
mod keygen;
pub mod net;
pub mod persist;
mod raw;
pub mod security;
pub mod wire;

pub use context::ClientContext;
pub use error::ClientError;
pub use keygen::{
    galois_for_conjugation, galois_for_rotation, KeyGenerator, SecretKey, ERROR_SIGMA,
};
pub use raw::{
    Domain, RawCiphertext, RawKeyDigit, RawParams, RawPlaintext, RawPoly, RawPublicKey,
    RawSwitchingKey,
};
