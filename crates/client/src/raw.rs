//! The adapter-layer interchange structures (paper §III-B).
//!
//! FIDESlib decouples itself from OpenFHE through a thin adapter that copies
//! OpenFHE objects into "simplified data structures that retain essential data
//! and metadata fields". These `Raw*` types are those structures: plain
//! `Vec`-backed RNS polynomials plus metadata, independent of both the client
//! internals and the server's GPU layout, with a compact binary serialization
//! for the client↔server boundary.

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use crate::error::ClientError;

/// Polynomial representation domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Coefficient representation.
    Coeff,
    /// Evaluation (NTT, bit-reversed) representation.
    Eval,
}

/// CKKS parameter description shared by client and server.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawParams {
    /// log2 of the ring degree `N`.
    pub log_n: usize,
    /// The scaling-modulus chain `q_0 … q_L` (`q_0` is the decryption
    /// modulus, ~2^60; the rest sit near `2^Δ`).
    pub moduli_q: Vec<u64>,
    /// The auxiliary primes `P = p_0 … p_{α-1}` for hybrid key switching.
    pub moduli_p: Vec<u64>,
    /// log2 of the encoding scale `Δ`.
    pub scale_bits: u32,
    /// Number of key-switching digits.
    pub dnum: usize,
}

impl RawParams {
    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Maximum level (`L`): index of the last scaling prime.
    pub fn max_level(&self) -> usize {
        self.moduli_q.len() - 1
    }

    /// The default (full) slot count `N/2`.
    pub fn max_slots(&self) -> usize {
        self.n() / 2
    }

    /// The encoding scale `Δ`.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// Total bit-length of `Q·P` (for security accounting).
    pub fn log_qp(&self) -> f64 {
        self.moduli_q
            .iter()
            .chain(&self.moduli_p)
            .map(|&q| (q as f64).log2())
            .sum()
    }

    /// Generates a parameter set `[log N, L, Δ, dnum]` in the paper's
    /// notation: a `first_bits`-sized decryption modulus `q_0`, `levels`
    /// scaling primes alternating around `2^Δ`, and `α = ⌈(L+1)/dnum⌉`
    /// auxiliary primes of `first_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `scale_bits ≥ first_bits` (the chains must not collide) or
    /// the ring cannot host the requested prime sizes.
    pub fn generate(
        log_n: usize,
        levels: usize,
        scale_bits: u32,
        first_bits: u32,
        dnum: usize,
    ) -> Self {
        assert!(
            scale_bits < first_bits,
            "scaling primes must stay below the first modulus size"
        );
        let n = 1usize << log_n;
        let alpha = (levels + 1).div_ceil(dnum);
        // One 2^first_bits prime for q_0 plus α for P, all distinct.
        let big = fides_math::generate_ntt_primes(first_bits, 1 + alpha, n);
        let q0 = big[0];
        let moduli_p = big[1..].to_vec();
        let mut moduli_q = vec![q0];
        moduli_q.extend(fides_math::generate_scaling_primes(scale_bits, levels, n));
        Self {
            log_n,
            moduli_q,
            moduli_p,
            scale_bits,
            dnum,
        }
    }
}

/// An RNS polynomial as plain host data: one `Vec<u64>` per limb.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawPoly {
    /// Per-prime residue vectors, each of length `N`.
    pub limbs: Vec<Vec<u64>>,
    /// Representation domain.
    pub domain: Domain,
}

impl RawPoly {
    /// An all-zero polynomial with `count` limbs of length `n`.
    pub fn zero(n: usize, count: usize, domain: Domain) -> Self {
        Self {
            limbs: vec![vec![0u64; n]; count],
            domain,
        }
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.limbs.first().map_or(0, |l| l.len())
    }
}

/// A CKKS plaintext: encoded message polynomial plus scale metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawPlaintext {
    /// The encoded polynomial over the active primes.
    pub poly: RawPoly,
    /// Chain index of the top active prime.
    pub level: usize,
    /// Exact encoding scale.
    pub scale: f64,
    /// Number of encoded slots.
    pub slots: usize,
}

/// A CKKS ciphertext `(c_0, c_1)` plus metadata — the structure the adapter
/// moves between client and server.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawCiphertext {
    /// `c_0` component.
    pub c0: RawPoly,
    /// `c_1` component.
    pub c1: RawPoly,
    /// Chain index of the top active prime.
    pub level: usize,
    /// Exact scale of the underlying message.
    pub scale: f64,
    /// Number of encoded slots.
    pub slots: usize,
    /// Static noise-estimate (log2 of expected error magnitude) carried back
    /// to the client for decryption bookkeeping (§III-B).
    pub noise_log2: f64,
}

/// One digit of a hybrid key-switching key: a pair of polynomials over the
/// extended base `Q ∪ P`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawKeyDigit {
    /// `b_j = -a_j·s + e_j + P·s'` (on digit-j limbs).
    pub b: RawPoly,
    /// Uniform `a_j`.
    pub a: RawPoly,
}

/// A complete key-switching key (`dnum` digits).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawSwitchingKey {
    /// Per-digit components.
    pub digits: Vec<RawKeyDigit>,
}

/// The public encryption key `(b, a)` over the full `Q` chain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawPublicKey {
    /// `b = -a·s + e`.
    pub b: RawPoly,
    /// Uniform `a`.
    pub a: RawPoly,
}

const MAGIC: u32 = 0xF1DE_517B;

pub(crate) fn put_poly(buf: &mut Vec<u8>, poly: &RawPoly) {
    buf.put_u8(match poly.domain {
        Domain::Coeff => 0,
        Domain::Eval => 1,
    });
    buf.put_u32(poly.limbs.len() as u32);
    buf.put_u32(poly.n() as u32);
    for limb in &poly.limbs {
        for &w in limb {
            buf.put_u64_le(w);
        }
    }
}

pub(crate) fn get_poly(buf: &mut &[u8]) -> Result<RawPoly, ClientError> {
    if buf.remaining() < 9 {
        return Err(ClientError::Serialization(
            "truncated polynomial header".into(),
        ));
    }
    let domain = match buf.get_u8() {
        0 => Domain::Coeff,
        1 => Domain::Eval,
        d => {
            return Err(ClientError::Serialization(format!(
                "invalid domain tag {d}"
            )))
        }
    };
    let count = buf.get_u32() as usize;
    let n = buf.get_u32() as usize;
    if count
        .checked_mul(n)
        .and_then(|c| c.checked_mul(8))
        .is_none_or(|b| buf.remaining() < b)
    {
        return Err(ClientError::Serialization(
            "truncated polynomial body".into(),
        ));
    }
    let mut limbs = Vec::with_capacity(count);
    for _ in 0..count {
        let mut limb = Vec::with_capacity(n);
        for _ in 0..n {
            limb.push(buf.get_u64_le());
        }
        limbs.push(limb);
    }
    Ok(RawPoly { limbs, domain })
}

impl RawCiphertext {
    /// Serializes into a compact binary frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + 16 * self.c0.limbs.len() * self.c0.n());
        buf.put_u32(MAGIC);
        buf.put_u32(self.level as u32);
        buf.put_f64(self.scale);
        buf.put_u32(self.slots as u32);
        buf.put_f64(self.noise_log2);
        put_poly(&mut buf, &self.c0);
        put_poly(&mut buf, &self.c1);
        buf
    }

    /// Deserializes a frame produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] describing the corruption if the frame
    /// is malformed.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut data;
        if buf.remaining() < 28 {
            return Err(ClientError::Serialization(
                "truncated ciphertext header".into(),
            ));
        }
        if buf.get_u32() != MAGIC {
            return Err(ClientError::Serialization("bad magic".into()));
        }
        let level = buf.get_u32() as usize;
        let scale = buf.get_f64();
        let slots = buf.get_u32() as usize;
        let noise_log2 = buf.get_f64();
        let c0 = get_poly(buf)?;
        let c1 = get_poly(buf)?;
        Ok(Self {
            c0,
            c1,
            level,
            scale,
            slots,
            noise_log2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ct() -> RawCiphertext {
        RawCiphertext {
            c0: RawPoly {
                limbs: vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]],
                domain: Domain::Eval,
            },
            c1: RawPoly {
                limbs: vec![vec![9, 10, 11, 12], vec![13, 14, 15, 16]],
                domain: Domain::Eval,
            },
            level: 1,
            scale: 2f64.powi(40),
            slots: 2,
            noise_log2: 10.5,
        }
    }

    #[test]
    fn ciphertext_serialization_roundtrip() {
        let ct = sample_ct();
        let bytes = ct.to_bytes();
        let back = RawCiphertext::from_bytes(&bytes).unwrap();
        assert_eq!(ct, back);
    }

    #[test]
    fn corrupt_frames_rejected() {
        let ct = sample_ct();
        let mut bytes = ct.to_bytes();
        bytes[0] ^= 0xff;
        assert!(RawCiphertext::from_bytes(&bytes).is_err(), "bad magic");
        let bytes = ct.to_bytes();
        assert!(
            RawCiphertext::from_bytes(&bytes[..bytes.len() - 4]).is_err(),
            "truncated"
        );
        assert!(RawCiphertext::from_bytes(&[]).is_err(), "empty");
    }

    #[test]
    fn params_accessors() {
        let p = RawParams {
            log_n: 12,
            moduli_q: vec![3, 5, 7],
            moduli_p: vec![11],
            scale_bits: 40,
            dnum: 2,
        };
        assert_eq!(p.n(), 4096);
        assert_eq!(p.max_level(), 2);
        assert_eq!(p.max_slots(), 2048);
        assert_eq!(p.scale(), 2f64.powi(40));
        assert!(p.log_qp() > 0.0);
    }

    #[test]
    fn zero_poly_shape() {
        let z = RawPoly::zero(8, 3, Domain::Coeff);
        assert_eq!(z.n(), 8);
        assert_eq!(z.limbs.len(), 3);
        assert!(z.limbs.iter().all(|l| l.iter().all(|&x| x == 0)));
    }
}
