//! Versioned binary persistence for durable sessions.
//!
//! The [`wire`](crate::wire) module frames what travels between a live
//! client and a live server; this module frames what survives a restart:
//! evaluation-key sets, preloaded plaintexts, the tenant session registry
//! and (one layer up, in `fides-core`) plan-cache entries. The format is
//! deliberately dumber than the wire protocol — a flat sequence of
//! self-checking records — because its failure mode is different: a wire
//! frame arrives once from a live peer that can resend, while a snapshot
//! is read back months later from storage that may have rotted.
//!
//! ## Stream layout
//!
//! ```text
//! [u32 PERSIST_MAGIC] [u32 FORMAT_VERSION]
//! repeat:
//!   [u8 kind] [u32 len] [len payload bytes] [u32 crc32(kind ‖ payload)]
//! terminated by an END record (kind 0, empty payload)
//! ```
//!
//! * **Versioned.** The header carries [`FORMAT_VERSION`]; a reader that
//!   sees any other version fails with
//!   [`ClientError::UnsupportedFormat`] before touching a record. Layout
//!   changes bump the version — there is no in-place format evolution.
//! * **Tagged + length-prefixed.** Every record declares its [`kind`] and
//!   payload length, so a reader can walk a stream without understanding
//!   every record (and reject unknown kinds with a typed error).
//! * **CRC-guarded.** Each record carries a CRC-32 over its kind byte and
//!   payload; any bit flip surfaces as
//!   [`ClientError::ChecksumMismatch`], never as garbage state.
//!
//! Decoding follows the same hostile-input discipline as the wire
//! `FrameDecoder`: truncation and corruption are typed [`ClientError`]s,
//! never panics, and a declared length beyond [`MAX_RECORD_LEN`] is
//! rejected *before* any allocation ([`ClientError::FrameTooLarge`]).

use std::io::{Read, Write};

use bytes::{Buf, BufMut};

use crate::error::ClientError;
use crate::raw::{RawPlaintext, RawSwitchingKey};
use crate::wire::{
    get_key, get_opt_key, get_plaintext, need, put_key, put_opt_key, put_plaintext, SessionRequest,
};

/// Stream magic: distinguishes a persist stream from every wire frame.
pub const PERSIST_MAGIC: u32 = 0xF1DE_D15C;

/// The only format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Hard bound on a single record's payload (2⁲⁸ bytes, matching the wire
/// decoder's frame bound). A declared length past this is rejected before
/// allocation.
pub const MAX_RECORD_LEN: usize = 1 << 28;

/// Record-kind tags. New kinds append; existing tags are frozen per
/// format version.
pub mod kind {
    /// Stream terminator (empty payload). A stream without one is
    /// truncated.
    pub const END: u8 = 0;
    /// [`ParamsRecord`](super::ParamsRecord): the parameter-chain
    /// fingerprint everything else in the stream is relative to.
    pub const PARAMS: u8 = 1;
    /// [`KeySetRecord`](super::KeySetRecord): relin/galois/conjugation
    /// switching keys.
    pub const KEY_SET: u8 = 2;
    /// [`PlaintextRecord`](super::PlaintextRecord): one preloaded
    /// evaluation-domain plaintext.
    pub const PLAINTEXT: u8 = 3;
    /// [`SessionRecord`](super::SessionRecord): one tenant's registry
    /// entry (id, device, weight, full key upload).
    pub const SESSION: u8 = 4;
    /// [`PlacementRecord`](super::PlacementRecord): one shard-router
    /// tenant → device placement.
    pub const PLACEMENT: u8 = 5;
    /// A serialized plan-cache entry. The payload codec lives in
    /// `fides-core` (plans reference scheduler types this crate does not
    /// know); this layer treats it as opaque bytes.
    pub const PLAN: u8 = 6;
    /// [`ServerMetaRecord`](super::ServerMetaRecord): server-level
    /// counters a restore validates against.
    pub const SERVER: u8 = 7;
}

const CRC_POLY: u32 = 0xEDB8_8320;

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (CRC_POLY & mask);
        }
    }
    crc
}

/// CRC-32 (IEEE, reflected) of a record's kind byte followed by its
/// payload.
pub fn record_crc(kind: u8, payload: &[u8]) -> u32 {
    !crc32_update(crc32_update(!0, &[kind]), payload)
}

fn io_err(e: std::io::Error) -> ClientError {
    ClientError::Io(e.to_string())
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), ClientError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ClientError::Serialization(format!("truncated {what}"))
        } else {
            io_err(e)
        }
    })
}

/// Errors unless a record payload was consumed exactly.
fn expect_consumed(buf: &[u8], what: &str) -> Result<(), ClientError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(ClientError::Serialization(format!(
            "{} trailing bytes after {what}",
            buf.len()
        )))
    }
}

/// Writes a persist stream: header, then CRC-guarded records, then the
/// END terminator on [`RecordWriter::finish`].
pub struct RecordWriter<W: Write> {
    w: W,
}

impl<W: Write> RecordWriter<W> {
    /// Starts a stream on `w`, writing the magic/version header.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the sink fails.
    pub fn new(mut w: W) -> Result<Self, ClientError> {
        let mut hdr = Vec::with_capacity(8);
        hdr.put_u32(PERSIST_MAGIC);
        hdr.put_u32(FORMAT_VERSION);
        w.write_all(&hdr).map_err(io_err)?;
        Ok(Self { w })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// [`ClientError::FrameTooLarge`] past [`MAX_RECORD_LEN`];
    /// [`ClientError::Io`] when the sink fails.
    pub fn record(&mut self, kind: u8, payload: &[u8]) -> Result<(), ClientError> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(ClientError::FrameTooLarge {
                len: payload.len() as u64,
                max: MAX_RECORD_LEN as u64,
            });
        }
        let mut hdr = Vec::with_capacity(5);
        hdr.put_u8(kind);
        hdr.put_u32(payload.len() as u32);
        self.w.write_all(&hdr).map_err(io_err)?;
        self.w.write_all(payload).map_err(io_err)?;
        self.w
            .write_all(&record_crc(kind, payload).to_be_bytes())
            .map_err(io_err)?;
        Ok(())
    }

    /// Writes the END terminator, flushes, and returns the sink. A stream
    /// abandoned without this reads back as truncated — by design.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the sink fails.
    pub fn finish(mut self) -> Result<W, ClientError> {
        self.record(kind::END, &[])?;
        self.w.flush().map_err(io_err)?;
        Ok(self.w)
    }
}

/// One decoded record: its kind tag and raw payload (already
/// CRC-verified).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The [`kind`] tag.
    pub kind: u8,
    /// The payload bytes (interpret per kind).
    pub payload: Vec<u8>,
}

/// Reads a persist stream, validating the header once and each record's
/// length and CRC as it goes.
pub struct RecordReader<R: Read> {
    r: R,
    done: bool,
}

impl<R: Read> RecordReader<R> {
    /// Opens a stream, checking magic and version.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] for a foreign magic or truncated
    /// header; [`ClientError::UnsupportedFormat`] for a version this
    /// build does not read.
    pub fn new(mut r: R) -> Result<Self, ClientError> {
        let mut hdr = [0u8; 8];
        read_exact(&mut r, &mut hdr, "persist header")?;
        let magic = u32::from_be_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        if magic != PERSIST_MAGIC {
            return Err(ClientError::Serialization(format!(
                "bad persist magic {magic:#010x}"
            )));
        }
        let version = u32::from_be_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]);
        if version != FORMAT_VERSION {
            return Err(ClientError::UnsupportedFormat {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(Self { r, done: false })
    }

    /// The next record, or `None` once the END terminator has been read.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] for truncation,
    /// [`ClientError::FrameTooLarge`] for an oversized declared length
    /// (checked before allocation), [`ClientError::ChecksumMismatch`]
    /// for CRC failures, [`ClientError::Io`] for source failures.
    pub fn next_record(&mut self) -> Result<Option<Record>, ClientError> {
        if self.done {
            return Ok(None);
        }
        let mut hdr = [0u8; 5];
        read_exact(&mut self.r, &mut hdr, "record header")?;
        let kind = hdr[0];
        let len = u32::from_be_bytes([hdr[1], hdr[2], hdr[3], hdr[4]]) as usize;
        if len > MAX_RECORD_LEN {
            return Err(ClientError::FrameTooLarge {
                len: len as u64,
                max: MAX_RECORD_LEN as u64,
            });
        }
        // Bounded-capacity growth: a lying length prefix costs at most one
        // read buffer, never a `len`-sized allocation up front.
        let mut payload = Vec::with_capacity(len.min(1 << 16));
        let got = (&mut self.r)
            .take(len as u64)
            .read_to_end(&mut payload)
            .map_err(io_err)?;
        if got < len {
            return Err(ClientError::Serialization(format!(
                "truncated record payload (kind {kind}: {got} of {len} bytes)"
            )));
        }
        let mut crc_buf = [0u8; 4];
        read_exact(&mut self.r, &mut crc_buf, "record checksum")?;
        if u32::from_be_bytes(crc_buf) != record_crc(kind, &payload) {
            return Err(ClientError::ChecksumMismatch { kind });
        }
        if kind == kind::END {
            if !payload.is_empty() {
                return Err(ClientError::Serialization(
                    "end record carries a payload".into(),
                ));
            }
            self.done = true;
            return Ok(None);
        }
        Ok(Some(Record { kind, payload }))
    }

    /// Whether the END terminator has been consumed (a clean stream).
    pub fn finished(&self) -> bool {
        self.done
    }
}

/// The parameter-chain fingerprint a stream's key material belongs to
/// ([`kind::PARAMS`]). Readers reject streams whose fingerprint does not
/// match the chain they serve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamsRecord {
    /// [`crate::wire::params_fingerprint`] of the chain.
    pub params_hash: u64,
}

impl ParamsRecord {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8);
        buf.put_u64_le(self.params_hash);
        buf
    }

    /// Deserializes a [`kind::PARAMS`] payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] for truncation or trailing bytes.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut payload;
        need(buf, 8, "params record")?;
        let params_hash = buf.get_u64_le();
        expect_consumed(buf, "params record")?;
        Ok(Self { params_hash })
    }
}

/// Server-level restore metadata ([`kind::SERVER`]): shape counters a
/// restore validates so a silently truncated stream cannot pass for a
/// complete one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerMetaRecord {
    /// Device-shard count the snapshot's placements assume.
    pub num_devices: u32,
    /// The registry's next session id (ids are never reused across a
    /// restart).
    pub next_session_id: u64,
    /// Session records that follow in the stream.
    pub sessions: u32,
    /// Plan records that follow in the stream.
    pub plans: u32,
}

impl ServerMetaRecord {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(20);
        buf.put_u32(self.num_devices);
        buf.put_u64_le(self.next_session_id);
        buf.put_u32(self.sessions);
        buf.put_u32(self.plans);
        buf
    }

    /// Deserializes a [`kind::SERVER`] payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] for truncation or trailing bytes.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut payload;
        need(buf, 20, "server meta record")?;
        let num_devices = buf.get_u32();
        let next_session_id = buf.get_u64_le();
        let sessions = buf.get_u32();
        let plans = buf.get_u32();
        expect_consumed(buf, "server meta record")?;
        Ok(Self {
            num_devices,
            next_session_id,
            sessions,
            plans,
        })
    }
}

/// An evaluation-key set ([`kind::KEY_SET`]): the relinearization key,
/// rotation (galois) keys by shift, and the conjugation key — the same
/// material a wire `SessionRequest` uploads, minus plaintexts.
#[derive(Clone, Debug, PartialEq)]
pub struct KeySetRecord {
    /// Relinearization key, when generated.
    pub relin: Option<RawSwitchingKey>,
    /// Rotation keys as `(shift, key)` pairs.
    pub rotations: Vec<(i32, RawSwitchingKey)>,
    /// Conjugation key, when generated.
    pub conjugation: Option<RawSwitchingKey>,
}

impl KeySetRecord {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_opt_key(&mut buf, &self.relin);
        buf.put_u32(self.rotations.len() as u32);
        for (shift, key) in &self.rotations {
            buf.put_u32(*shift as u32);
            put_key(&mut buf, key);
        }
        put_opt_key(&mut buf, &self.conjugation);
        buf
    }

    /// Deserializes a [`kind::KEY_SET`] payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] describing the corruption.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut payload;
        let relin = get_opt_key(buf)?;
        need(buf, 4, "rotation count")?;
        let num_rot = buf.get_u32() as usize;
        let mut rotations = Vec::with_capacity(num_rot.min(1 << 12));
        for _ in 0..num_rot {
            need(buf, 4, "rotation shift")?;
            let shift = buf.get_u32() as i32;
            rotations.push((shift, get_key(buf)?));
        }
        let conjugation = get_opt_key(buf)?;
        expect_consumed(buf, "key-set record")?;
        Ok(Self {
            relin,
            rotations,
            conjugation,
        })
    }
}

/// One preloaded evaluation-domain plaintext ([`kind::PLAINTEXT`]) — the
/// serialized form a server's `BackendPt` cache entry is rebuilt from.
#[derive(Clone, Debug, PartialEq)]
pub struct PlaintextRecord {
    /// The plaintext in wire form.
    pub plaintext: RawPlaintext,
}

impl PlaintextRecord {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_plaintext(&mut buf, &self.plaintext);
        buf
    }

    /// Deserializes a [`kind::PLAINTEXT`] payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] describing the corruption.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut payload;
        let plaintext = get_plaintext(buf)?;
        expect_consumed(buf, "plaintext record")?;
        Ok(Self { plaintext })
    }
}

/// One tenant's registry entry ([`kind::SESSION`]): the session id and
/// scheduling weight plus the tenant's full key upload, from which a
/// restore rebuilds device residency. Records appear in
/// least-recently-used-first order so a restore reproduces the LRU
/// eviction order exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionRecord {
    /// Session id (preserved across restarts — clients keep their
    /// tickets).
    pub id: u64,
    /// Device shard holding the tenant's keys.
    pub device: u32,
    /// DRR scheduling weight (1 = default).
    pub weight: u32,
    /// The tenant's original keygen upload.
    pub upload: SessionRequest,
}

impl SessionRecord {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(self.id);
        buf.put_u32(self.device);
        buf.put_u32(self.weight);
        let upload = self.upload.to_bytes();
        buf.put_u64_le(upload.len() as u64);
        buf.extend_from_slice(&upload);
        buf
    }

    /// Deserializes a [`kind::SESSION`] payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] describing the corruption.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut payload;
        need(buf, 24, "session record header")?;
        let id = buf.get_u64_le();
        let device = buf.get_u32();
        let weight = buf.get_u32();
        let len = buf.get_u64_le() as usize;
        need(buf, len, "session upload")?;
        let (head, rest) = buf.split_at(len);
        let upload = SessionRequest::from_bytes(head)?;
        *buf = rest;
        expect_consumed(buf, "session record")?;
        Ok(Self {
            id,
            device,
            weight,
            upload,
        })
    }
}

/// One shard-router placement ([`kind::PLACEMENT`]): where a tenant's
/// keys live and what re-placing them costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementRecord {
    /// Tenant (session) id.
    pub tenant: u64,
    /// Home device shard.
    pub device: u32,
    /// Key-frame size in bytes (the migration cost).
    pub key_bytes: u64,
}

impl PlacementRecord {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(20);
        buf.put_u64_le(self.tenant);
        buf.put_u32(self.device);
        buf.put_u64_le(self.key_bytes);
        buf
    }

    /// Deserializes a [`kind::PLACEMENT`] payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Serialization`] for truncation or trailing bytes.
    pub fn decode(mut payload: &[u8]) -> Result<Self, ClientError> {
        let buf = &mut payload;
        need(buf, 20, "placement record")?;
        let tenant = buf.get_u64_le();
        let device = buf.get_u32();
        let key_bytes = buf.get_u64_le();
        expect_consumed(buf, "placement record")?;
        Ok(Self {
            tenant,
            device,
            key_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::{Domain, RawKeyDigit, RawPoly};

    fn sample_key(seed: u64) -> RawSwitchingKey {
        let mut x = seed | 1;
        let mut word = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let poly = |w: &mut dyn FnMut() -> u64| RawPoly {
            limbs: (0..2).map(|_| (0..8).map(|_| w()).collect()).collect(),
            domain: Domain::Eval,
        };
        RawSwitchingKey {
            digits: (0..2)
                .map(|_| RawKeyDigit {
                    b: poly(&mut word),
                    a: poly(&mut word),
                })
                .collect(),
        }
    }

    fn sample_plaintext() -> RawPlaintext {
        RawPlaintext {
            poly: RawPoly::zero(16, 2, Domain::Eval),
            level: 1,
            scale: 2f64.powi(40),
            slots: 8,
        }
    }

    fn roundtrip_stream(records: &[(u8, Vec<u8>)]) -> Vec<u8> {
        let mut w = RecordWriter::new(Vec::new()).unwrap();
        for (kind, payload) in records {
            w.record(*kind, payload).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn stream_roundtrips_records_in_order() {
        let recs = vec![
            (kind::PARAMS, ParamsRecord { params_hash: 42 }.encode()),
            (
                kind::PLAINTEXT,
                PlaintextRecord {
                    plaintext: sample_plaintext(),
                }
                .encode(),
            ),
        ];
        let bytes = roundtrip_stream(&recs);
        let mut r = RecordReader::new(&bytes[..]).unwrap();
        for (kind, payload) in &recs {
            let rec = r.next_record().unwrap().unwrap();
            assert_eq!(rec.kind, *kind);
            assert_eq!(&rec.payload, payload);
        }
        assert!(r.next_record().unwrap().is_none());
        assert!(r.finished());
        // Idempotent after END.
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn key_set_roundtrip() {
        let rec = KeySetRecord {
            relin: Some(sample_key(3)),
            rotations: vec![(1, sample_key(5)), (-4, sample_key(7))],
            conjugation: None,
        };
        assert_eq!(KeySetRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn session_record_roundtrip() {
        let rec = SessionRecord {
            id: 9,
            device: 2,
            weight: 4,
            upload: SessionRequest {
                params_hash: 77,
                relin: Some(sample_key(11)),
                rotations: vec![(2, sample_key(13))],
                conjugation: Some(sample_key(17)),
                plaintexts: vec![sample_plaintext()],
            },
        };
        assert_eq!(SessionRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn meta_and_placement_roundtrip() {
        let meta = ServerMetaRecord {
            num_devices: 4,
            next_session_id: 17,
            sessions: 3,
            plans: 2,
        };
        assert_eq!(ServerMetaRecord::decode(&meta.encode()).unwrap(), meta);
        let p = PlacementRecord {
            tenant: 8,
            device: 3,
            key_bytes: 123456,
        };
        assert_eq!(PlacementRecord::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = roundtrip_stream(&[]);
        bytes[7] = 9; // forge version 9
        match RecordReader::new(&bytes[..]).err() {
            Some(ClientError::UnsupportedFormat {
                found: 9,
                supported: FORMAT_VERSION,
            }) => {}
            other => panic!("expected UnsupportedFormat, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = roundtrip_stream(&[]);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            RecordReader::new(&bytes[..]).err(),
            Some(ClientError::Serialization(_))
        ));
    }

    #[test]
    fn bit_flip_fails_crc() {
        let bytes = roundtrip_stream(&[(kind::PARAMS, ParamsRecord { params_hash: 1 }.encode())]);
        // Flip one payload bit (past the 8-byte header and 5-byte record
        // header).
        let mut corrupt = bytes.clone();
        corrupt[14] ^= 0x01;
        let mut r = RecordReader::new(&corrupt[..]).unwrap();
        assert!(matches!(
            r.next_record(),
            Err(ClientError::ChecksumMismatch { kind: kind::PARAMS })
        ));
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let bytes = roundtrip_stream(&[(kind::PARAMS, ParamsRecord { params_hash: 1 }.encode())]);
        for cut in 0..bytes.len() {
            let slice = &bytes[..cut];
            if let Ok(mut r) = RecordReader::new(slice) {
                loop {
                    match r.next_record() {
                        Ok(Some(_)) => continue,
                        Ok(None) => {
                            assert!(r.finished(), "clean EOF only via END record");
                            break;
                        }
                        Err(_) => break,
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.put_u32(PERSIST_MAGIC);
        bytes.put_u32(FORMAT_VERSION);
        bytes.put_u8(kind::PLAN);
        bytes.put_u32(u32::MAX); // 4 GiB declared, nothing behind it
        let mut r = RecordReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            r.next_record(),
            Err(ClientError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn missing_end_record_reads_as_truncated() {
        let mut w = RecordWriter::new(Vec::new()).unwrap();
        w.record(kind::PARAMS, &ParamsRecord { params_hash: 5 }.encode())
            .unwrap();
        let bytes = w.w; // abandon without finish()
        let mut r = RecordReader::new(&bytes[..]).unwrap();
        assert!(r.next_record().unwrap().is_some());
        assert!(matches!(
            r.next_record(),
            Err(ClientError::Serialization(_))
        ));
    }
}
