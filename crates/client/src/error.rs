//! Typed errors for client-side operations.
//!
//! The client historically validated inputs with `assert!`; these variants
//! carry the same conditions as values so service-style callers (and the
//! `CkksEngine` session API) can surface them instead of aborting.

use std::fmt;

/// Errors produced by client-side CKKS operations.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Slot count must be a power of two within `1..=N/2`.
    BadSlotCount {
        /// Requested slot count.
        slots: usize,
        /// Ring capacity `N/2`.
        max_slots: usize,
    },
    /// Level index beyond the modulus chain.
    LevelOutOfRange {
        /// Requested level.
        level: usize,
        /// Last valid level.
        max: usize,
    },
    /// Encoding scale must be strictly positive and finite.
    BadScale(f64),
    /// Data arrived in the wrong representation domain.
    DomainMismatch {
        /// Required domain.
        expected: &'static str,
        /// Actual domain.
        found: &'static str,
    },
    /// A serialized frame was malformed.
    Serialization(String),
    /// A request program is structurally invalid (undefined registers,
    /// missing plaintext slots, out-of-range outputs).
    BadProgram(String),
    /// A network frame declared a length beyond the decoder's bound — the
    /// stream is treated as hostile and must be closed (never buffered).
    FrameTooLarge {
        /// The declared payload length.
        len: u64,
        /// The decoder's configured maximum.
        max: u64,
    },
    /// A persisted stream declared a format version this build does not
    /// understand — re-export it with a matching release instead of
    /// guessing at the layout.
    UnsupportedFormat {
        /// The version tag found in the stream header.
        found: u32,
        /// The only version this decoder accepts.
        supported: u32,
    },
    /// A persisted record failed its CRC check: the payload was corrupted
    /// at rest (bit rot, a torn write, or tampering).
    ChecksumMismatch {
        /// The record-kind tag of the damaged record.
        kind: u8,
    },
    /// A socket-level failure (connect, read, write, or unexpected EOF).
    Io(String),
    /// The server load-shed the request: its admission queue is full.
    /// Retry after roughly this many batch ticks have drained (the
    /// server's own backlog estimate; see the serving-layer docs).
    Overloaded {
        /// Server-estimated ticks until the backlog drains.
        retry_after_ticks: u64,
    },
    /// The server refused the request for a non-transient reason (foreign
    /// parameter chain, failed key load, malformed frame report).
    Refused(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::BadSlotCount { slots, max_slots } => write!(
                f,
                "bad slot count {slots}: must be a power of two in 1..={max_slots}"
            ),
            ClientError::LevelOutOfRange { level, max } => {
                write!(f, "level {level} out of range (chain supports 0..={max})")
            }
            ClientError::BadScale(s) => write!(f, "encoding scale {s} must be positive and finite"),
            ClientError::DomainMismatch { expected, found } => {
                write!(
                    f,
                    "domain mismatch: expected {expected} representation, found {found}"
                )
            }
            ClientError::Serialization(msg) => write!(f, "malformed frame: {msg}"),
            ClientError::BadProgram(msg) => write!(f, "invalid request program: {msg}"),
            ClientError::FrameTooLarge { len, max } => write!(
                f,
                "frame length prefix {len} exceeds the decoder bound {max}"
            ),
            ClientError::UnsupportedFormat { found, supported } => write!(
                f,
                "unsupported persist format version {found} (this build reads version {supported})"
            ),
            ClientError::ChecksumMismatch { kind } => {
                write!(f, "record checksum mismatch (kind {kind}): corrupted data")
            }
            ClientError::Io(msg) => write!(f, "socket error: {msg}"),
            ClientError::Overloaded { retry_after_ticks } => write!(
                f,
                "server overloaded: admission queue full, retry after ~{retry_after_ticks} ticks"
            ),
            ClientError::Refused(msg) => write!(f, "server refused request: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ClientError::BadSlotCount {
            slots: 3,
            max_slots: 512,
        };
        assert!(e.to_string().contains("power of two"));
        let e = ClientError::Serialization("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = ClientError::DomainMismatch {
            expected: "coefficient",
            found: "evaluation",
        };
        assert!(e.to_string().contains("coefficient"));
    }
}
