//! # fides-workloads
//!
//! Realistic encrypted workloads for `fideslib-rs`: the logistic-regression
//! training benchmark of the paper's §IV-B (Table VII) on a synthetic
//! loan-eligibility dataset with the published shape (45,000 samples,
//! 25 → 32 features, 1,024-sample mini-batches).

#![warn(missing_docs)]

pub mod loans;
pub mod lr;
pub mod lr_boot;
pub mod lr_engine;

pub use loans::LoanDataset;
pub use lr::{LrConfig, LrTrainer};
pub use lr_boot::{BootTrainStats, BootstrappedLrTrainer};
pub use lr_engine::EngineLrTrainer;
