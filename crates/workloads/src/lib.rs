//! # fides-workloads
//!
//! Realistic encrypted workloads for `fideslib-rs`: the logistic-regression
//! training benchmark of the paper's §IV-B (Table VII) on a synthetic
//! loan-eligibility dataset with the published shape (45,000 samples,
//! 25 → 32 features, 1,024-sample mini-batches), plus the serving-side
//! LR **scoring** workload ([`serve_lr`]) the multi-tenant session server
//! batches across tenants.

#![warn(missing_docs)]

pub mod loans;
pub mod lr;
pub mod lr_boot;
pub mod lr_engine;
pub mod serve_lr;

pub use loans::LoanDataset;
pub use lr::{LrConfig, LrTrainer};
pub use lr_boot::{BootTrainStats, BootstrappedLrTrainer};
pub use lr_engine::EngineLrTrainer;
pub use serve_lr::ServeLrModel;
