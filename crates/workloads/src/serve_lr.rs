//! The serving-layer workload: logistic-regression **scoring** as a wire
//! request program.
//!
//! Training (the other `lr_*` modules) is a batch job; serving is the
//! steady-state traffic of the ROADMAP's north star — millions of tenants,
//! each holding their own model, scoring small feature batches against a
//! shared evaluation server. This module packages one tenant's scoring
//! circuit as the serving layer's register program:
//!
//! ```text
//!   score(x) = σ(w · x),   σ(t) ≈ 0.5 + 0.197·t − 0.004·t³
//! ```
//!
//! * the model `w` is a **preloaded session plaintext** (uploaded once at
//!   keygen, resident in the server's evaluation-domain cache);
//! * the dot product is the classic rotate-and-add reduction over the
//!   packed feature slots (`log2(dim)` rotations);
//! * the sigmoid is the paper's degree-3 least-squares approximation, the
//!   same polynomial the training workloads use.
//!
//! Feature count must be a power of two; callers pad (the loan workload's
//! 25 → 32 padding is the template). The circuit consumes 4 levels
//! (`MulPlain`, `Square`, `Mul`, `MulScalar` ladders included), so any
//! chain with ≥ 4 scaling primes serves it.

use fides_client::wire::{OpProgram, ProgramOp, SessionRequest};

/// Degree-3 sigmoid approximation coefficients (§IV-B): σ(t) ≈ a0 + a1·t +
/// a3·t³ on the training domain.
pub const SIGMOID_A0: f64 = 0.5;
/// Linear coefficient of the degree-3 sigmoid approximation.
pub const SIGMOID_A1: f64 = 0.197;
/// Cubic coefficient of the degree-3 sigmoid approximation.
pub const SIGMOID_A3: f64 = -0.004;

/// One tenant's scoring model: the weight vector the server holds as a
/// preloaded plaintext.
#[derive(Clone, Debug)]
pub struct ServeLrModel {
    /// Model weights, one per feature; `weights.len()` must be a power of
    /// two (pad like the loan workload pads 25 → 32).
    pub weights: Vec<f64>,
}

impl ServeLrModel {
    /// Wraps a weight vector (the feature dimension must be a power of
    /// two).
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.len().is_power_of_two(),
            "feature dimension must be a power of two (pad the model)"
        );
        Self { weights }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The rotation shifts the scoring circuit needs: the power-of-two
    /// strides of the rotate-and-add reduction. A tenant's keygen upload
    /// (and an engine session's `.rotations(..)`) must cover these.
    pub fn required_rotations(&self) -> Vec<i32> {
        (0..self.dim().trailing_zeros())
            .map(|k| 1i32 << k)
            .collect()
    }

    /// The preloaded-plaintext table of the session upload: slot 0 holds
    /// the weights, encoded for ciphertexts at `input_level` (the level
    /// request inputs arrive at — the chain top for fresh encryptions).
    ///
    /// Returns `(values, level)` pairs in the form
    /// [`Session::session_request`](../../fides_api/struct.Session.html)
    /// consumes.
    pub fn session_plains(&self, input_level: usize) -> Vec<(Vec<f64>, usize)> {
        vec![(self.weights.clone(), input_level)]
    }

    /// Builds the scoring program over one input ciphertext (register 0 =
    /// the packed feature vector, preloaded plaintext slot `plain_slot` =
    /// the weights). Output: one ciphertext whose slot 0 carries the
    /// score (every slot carries the same reduced value).
    pub fn scoring_program(&self, plain_slot: u32) -> OpProgram {
        let mut p = OpProgram::new(1);
        // w ⊙ x, rescaled onto the ladder (consumes 1 level).
        let mut acc = p.push(ProgramOp::MulPlain {
            a: 0,
            plain: plain_slot,
        });
        // Rotate-and-add reduction: after the k-th step every slot holds
        // the sum of 2^(k+1) neighbours.
        for k in 0..self.dim().trailing_zeros() {
            let rot = p.push(ProgramOp::Rotate { a: acc, k: 1 << k });
            acc = p.push(ProgramOp::Add { a: acc, b: rot });
        }
        // σ(t) ≈ a0 + a1·t + a3·t³ — Horner-free form matching the exact
        // op order the engine training workloads use.
        let t2 = p.push(ProgramOp::Square { a: acc });
        let t3 = p.push(ProgramOp::Mul { a: t2, b: acc });
        let c3 = p.push(ProgramOp::MulScalar {
            a: t3,
            c: SIGMOID_A3,
        });
        let c1 = p.push(ProgramOp::MulScalar {
            a: acc,
            c: SIGMOID_A1,
        });
        let sum = p.push(ProgramOp::Add { a: c1, b: c3 });
        let out = p.push(ProgramOp::AddScalar {
            a: sum,
            c: SIGMOID_A0,
        });
        p.output(out);
        p
    }

    /// Plaintext reference: what the encrypted circuit computes for
    /// `features` (including the approximation, so encrypted results agree
    /// to CKKS precision, not merely sigmoid precision).
    pub fn score_plain(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dim());
        let t: f64 = self.weights.iter().zip(features).map(|(w, x)| w * x).sum();
        SIGMOID_A0 + SIGMOID_A1 * t + SIGMOID_A3 * t * t * t
    }

    /// Levels the scoring circuit consumes (MulPlain + Square/Mul ladder +
    /// MulScalar): the serving chain needs at least this many scaling
    /// primes above the output level.
    pub const LEVELS_CONSUMED: usize = 4;
}

/// A deterministic synthetic model for tenant `seed`: weights in
/// `[-0.5, 0.5)`, distinct per tenant so cross-tenant result mixups are
/// caught by value, not just by frame bytes.
pub fn synthetic_model(dim: usize, seed: u64) -> ServeLrModel {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let weights = (0..dim)
        .map(|_| {
            // xorshift64* — cheap, deterministic, dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    ServeLrModel::new(weights)
}

/// A deterministic synthetic feature batch for (`tenant`, `request`):
/// values in `[-1, 1)` scaled down so the dot product stays inside the
/// sigmoid approximation domain.
pub fn synthetic_features(dim: usize, tenant: u64, request: u64) -> Vec<f64> {
    let mut state = (tenant ^ request.rotate_left(32))
        .wrapping_mul(0xD6E8_FEB8_6659_FD93)
        .max(1);
    (0..dim)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5) * 0.5
        })
        .collect()
}

/// Validates that a tenant keygen upload covers the scoring circuit: the
/// relinearization key (for `Square`/`Mul`) and every reduction rotation.
/// Returns the missing pieces as human-readable labels (empty = servable).
pub fn missing_key_material(model: &ServeLrModel, upload: &SessionRequest) -> Vec<String> {
    let mut missing = Vec::new();
    if upload.relin.is_none() {
        missing.push("relinearization key".to_string());
    }
    for k in model.required_rotations() {
        if !upload.rotations.iter().any(|(shift, _)| *shift == k) {
            missing.push(format!("rotation key {k}"));
        }
    }
    if upload.plaintexts.is_empty() {
        missing.push("preloaded weight plaintext".to_string());
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_shape_matches_dim() {
        let m = synthetic_model(8, 1);
        let p = m.scoring_program(0);
        // 1 MulPlain + 3×(Rotate+Add) + Square + Mul + 2×MulScalar + Add +
        // AddScalar = 13 ops, 1 output.
        assert_eq!(p.ops.len(), 13);
        assert_eq!(p.outputs.len(), 1);
        assert!(p.validate(1).is_ok());
        assert!(p.validate(0).is_err(), "needs the preloaded weight slot");
        assert_eq!(m.required_rotations(), vec![1, 2, 4]);
    }

    #[test]
    fn synthetic_data_is_deterministic_and_distinct() {
        let a = synthetic_model(16, 3);
        let b = synthetic_model(16, 3);
        assert_eq!(a.weights, b.weights);
        let c = synthetic_model(16, 4);
        assert_ne!(a.weights, c.weights);
        let f1 = synthetic_features(16, 1, 0);
        assert_eq!(f1, synthetic_features(16, 1, 0));
        assert_ne!(f1, synthetic_features(16, 1, 1));
        assert!(f1.iter().all(|x| x.abs() <= 0.5));
    }

    #[test]
    fn plain_score_is_sigmoid_approx_of_dot() {
        let m = ServeLrModel::new(vec![0.5, -0.25, 0.0, 0.25]);
        let x = [1.0, 1.0, 1.0, 1.0];
        let t = 0.5 - 0.25 + 0.25;
        let want = SIGMOID_A0 + SIGMOID_A1 * t + SIGMOID_A3 * t * t * t;
        assert!((m.score_plain(&x) - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_dim_rejected() {
        ServeLrModel::new(vec![0.0; 25]);
    }
}
