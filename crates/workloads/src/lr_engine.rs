//! Encrypted logistic-regression training on the `CkksEngine` session API.
//!
//! The same Han et al. packing and iteration as [`LrTrainer`]
//! (`crate::lr::LrTrainer`, kept on the raw layered API for the cost-only
//! paper benchmarks), expressed through operator-overloaded [`Ct`] handles —
//! relinearization, rescaling and level alignment are the engine's job, so
//! the iteration reads like the algorithm.
//!
//! ```
//! use fides_api::CkksEngine;
//! use fides_workloads::{EngineLrTrainer, LrConfig};
//!
//! let cfg = LrConfig { batch: 8, features: 8, learning_rate: 1.0 };
//! let engine = CkksEngine::builder()
//!     .log_n(10)
//!     .levels(9)
//!     .scale_bits(40)
//!     .dnum(2)
//!     .rotations(&cfg.required_rotations())
//!     .seed(7)
//!     .build()?;
//! let trainer = EngineLrTrainer::new(&engine, cfg)?;
//! # Ok::<(), fides_api::FidesError>(())
//! ```
//!
//! [`LrTrainer`]: crate::lr::LrTrainer

use fides_api::{CkksEngine, Ct, FidesError, Result};

use crate::lr::{LrConfig, SIGMOID_C0, SIGMOID_C1, SIGMOID_C3};

/// Encrypted mini-batch gradient-descent trainer over a [`CkksEngine`]
/// session.
///
/// The session must have been built with `.rotations(&config.required_rotations())`.
#[derive(Debug)]
pub struct EngineLrTrainer<'a> {
    engine: &'a CkksEngine,
    config: LrConfig,
}

impl<'a> EngineLrTrainer<'a> {
    /// Multiplicative levels consumed by one iteration.
    pub const LEVELS_PER_ITERATION: usize = 6;

    /// Creates a trainer over an engine session.
    ///
    /// # Errors
    ///
    /// [`FidesError::InvalidParams`] when batch/features are not powers of
    /// two or exceed the session's slot capacity.
    pub fn new(engine: &'a CkksEngine, config: LrConfig) -> Result<Self> {
        if !config.batch.is_power_of_two() || !config.features.is_power_of_two() {
            return Err(FidesError::InvalidParams(
                "batch and features must be powers of two".into(),
            ));
        }
        if config.slots() > engine.max_slots() {
            return Err(FidesError::InvalidParams(format!(
                "batch × features = {} exceeds the ring's {} slots",
                config.slots(),
                engine.max_slots()
            )));
        }
        Ok(Self { engine, config })
    }

    /// The configuration.
    pub fn config(&self) -> &LrConfig {
        &self.config
    }

    /// Encrypts a packed mini-batch of feature rows.
    ///
    /// # Errors
    ///
    /// Encoding failures ([`FidesError::Client`]).
    pub fn encrypt_features(&self, rows: &[&[f64]]) -> Result<Ct> {
        self.engine.encrypt(&self.config.pack_features(rows))
    }

    /// Encrypts packed labels.
    ///
    /// # Errors
    ///
    /// As [`EngineLrTrainer::encrypt_features`].
    pub fn encrypt_labels(&self, labels: &[f64]) -> Result<Ct> {
        self.engine.encrypt(&self.config.pack_labels(labels))
    }

    /// Encrypts a weight vector (tiled across sample blocks).
    ///
    /// # Errors
    ///
    /// As [`EngineLrTrainer::encrypt_features`].
    pub fn encrypt_weights(&self, w: &[f64]) -> Result<Ct> {
        self.engine.encrypt(&self.config.pack_weights(w))
    }

    /// Decrypts a weight ciphertext back to the feature-length vector.
    ///
    /// # Errors
    ///
    /// Decryption failures.
    pub fn decrypt_weights(&self, w: &Ct) -> Result<Vec<f64>> {
        Ok(self.config.unpack_weights(&self.engine.decrypt(w)?))
    }

    /// One encrypted gradient-descent iteration:
    /// `w ← w + (lr/b)·Xᵀ(y − σ̃(X·w))`. Consumes
    /// [`Self::LEVELS_PER_ITERATION`] levels below `w`'s level.
    ///
    /// # Errors
    ///
    /// Missing rotation keys or insufficient levels.
    pub fn iteration(&self, w: &Ct, x: &Ct, y: &Ct) -> Result<Ct> {
        let f = self.config.features as i32;
        let b = self.config.batch;

        // 1. Per-slot products, folded over features: block starts hold the
        //    dot products X·w. (`try_mul` aligns x down to w's level.)
        let mut prod = x.try_mul(w)?;
        let mut k = 1i32;
        while k < f {
            prod = prod.try_add(&prod.rotate(k)?)?;
            k <<= 1;
        }

        // 2. Mask the block starts, then replicate each dot product across
        //    its block.
        let mut mask = vec![0.0; self.config.slots()];
        for i in 0..b {
            mask[i * self.config.features] = 1.0;
        }
        let mut z = prod.try_mul_plain(&mask)?;
        let mut k = 1i32;
        while k < f {
            z = z.try_add(&z.rotate(-k)?)?;
            k <<= 1;
        }

        // 3. Polynomial sigmoid p = c0 + c1·z + c3·z³ (two levels).
        let z2 = z.try_square()?;
        let cz = z.try_mul_scalar(SIGMOID_C3)?;
        let z3c = z2.try_mul(&cz)?;
        let c1z = z.try_mul_scalar(SIGMOID_C1)?;
        let p = z3c.try_add(&c1z)?.try_add_scalar(SIGMOID_C0)?;

        // 4. Error e = y − p (y auto-aligns down to p's level).
        let e = y.try_sub(&p)?;

        // 5. Gradient: fold e ⊙ x over samples.
        let mut g = e.try_mul(x)?;
        let mut k = f;
        while (k as usize) < b * self.config.features {
            g = g.try_add(&g.rotate(k)?)?;
            k <<= 1;
        }

        // 6. Update: w ← w + (lr/b)·g.
        let g = g.try_mul_scalar(self.config.learning_rate / b as f64)?;
        w.try_add(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_api::CkksEngine;

    #[test]
    fn rejects_oversized_configs() {
        let engine = CkksEngine::builder()
            .log_n(10)
            .levels(3)
            .seed(1)
            .build()
            .unwrap();
        let cfg = LrConfig {
            batch: 512,
            features: 8,
            learning_rate: 1.0,
        }; // 4096 > 512 slots
        assert!(matches!(
            EngineLrTrainer::new(&engine, cfg),
            Err(FidesError::InvalidParams(_))
        ));
        let cfg = LrConfig {
            batch: 3,
            features: 8,
            learning_rate: 1.0,
        };
        assert!(matches!(
            EngineLrTrainer::new(&engine, cfg),
            Err(FidesError::InvalidParams(_))
        ));
    }
}
