//! Unbounded-depth encrypted LR training: gradient descent with automatic
//! bootstrapping whenever the weight ciphertext runs out of levels — the
//! paper's Table VII workload ("iteration + bootstrap") as a *functional*
//! training loop rather than a cost model.
//!
//! Each [`EngineLrTrainer`] iteration consumes
//! [`EngineLrTrainer::LEVELS_PER_ITERATION`] levels; without bootstrapping a
//! chain of depth `L` caps training at `⌊L/6⌋` iterations. This trainer
//! refreshes the weights through [`Ct::bootstrap`] when the next iteration
//! would not fit, so the epoch count is limited only by noise — training
//! runs **past the chain's level budget**.
//!
//! ```no_run
//! use fides_api::{BackendChoice, BootstrapConfig, CkksEngine};
//! use fides_workloads::{BootstrappedLrTrainer, LrConfig};
//!
//! let cfg = LrConfig { batch: 4, features: 4, learning_rate: 1.0 };
//! let engine = CkksEngine::builder()
//!     .log_n(11)
//!     .levels(26)
//!     .scale_bits(50)
//!     .first_mod_bits(55)
//!     .dnum(3)
//!     .backend(BackendChoice::Cpu)
//!     .rotations(&cfg.required_rotations())
//!     .bootstrap_config(BootstrapConfig {
//!         slots: cfg.slots(),
//!         level_budget: (2, 2),
//!         k_range: 128.0,
//!         double_angles: 6,
//!         degree: 40,
//!     })
//!     .seed(7)
//!     .build()?;
//! let trainer = BootstrappedLrTrainer::new(&engine, cfg)?;
//! # Ok::<(), fides_api::FidesError>(())
//! ```

use fides_api::{CkksEngine, Ct, FidesError, Result};

use crate::lr::LrConfig;
use crate::lr_engine::EngineLrTrainer;

/// Encrypted LR trainer that bootstraps the weight ciphertext whenever the
/// next iteration would exhaust the modulus chain.
///
/// The session must have been built with
/// `.rotations(&config.required_rotations())` **and** bootstrapping for
/// `config.slots()` slots, with `min_bootstrap_level()` of at least
/// [`EngineLrTrainer::LEVELS_PER_ITERATION`].
#[derive(Debug)]
pub struct BootstrappedLrTrainer<'a> {
    inner: EngineLrTrainer<'a>,
    engine: &'a CkksEngine,
}

/// Outcome of a bootstrapped training run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BootTrainStats {
    /// Gradient-descent iterations executed.
    pub iterations: usize,
    /// Bootstraps interleaved between them.
    pub bootstraps: usize,
}

impl<'a> BootstrappedLrTrainer<'a> {
    /// Creates the trainer, validating that the session can both run
    /// iterations and refresh between them.
    ///
    /// # Errors
    ///
    /// [`FidesError::InvalidParams`] for shape violations (see
    /// [`EngineLrTrainer::new`]), [`FidesError::Unsupported`] when the
    /// session has no bootstrapping material or refreshes too shallow to
    /// continue training.
    pub fn new(engine: &'a CkksEngine, config: LrConfig) -> Result<Self> {
        let inner = EngineLrTrainer::new(engine, config)?;
        let min_out = engine.min_bootstrap_level().ok_or_else(|| {
            FidesError::Unsupported(
                "bootstrapped training needs a session built with .bootstrap_slots(..)".into(),
            )
        })?;
        if min_out < EngineLrTrainer::LEVELS_PER_ITERATION {
            return Err(FidesError::Unsupported(format!(
                "bootstrap returns ciphertexts at level {min_out}, below the {} levels one LR \
                 iteration consumes — deepen the chain or cheapen the transform budgets",
                EngineLrTrainer::LEVELS_PER_ITERATION
            )));
        }
        Ok(Self { inner, engine })
    }

    /// The wrapped per-iteration trainer.
    pub fn trainer(&self) -> &EngineLrTrainer<'a> {
        &self.inner
    }

    /// Runs `iterations` gradient-descent steps from `w0`, bootstrapping the
    /// weights whenever fewer than [`EngineLrTrainer::LEVELS_PER_ITERATION`]
    /// levels remain. Returns the final weights and the iteration/bootstrap
    /// counts.
    ///
    /// # Errors
    ///
    /// Missing keys or insufficient levels (only possible when the session
    /// violates the construction-time validation).
    pub fn train(
        &self,
        w0: &Ct,
        x: &Ct,
        y: &Ct,
        iterations: usize,
    ) -> Result<(Ct, BootTrainStats)> {
        let mut stats = BootTrainStats::default();
        let mut w = w0.clone();
        for _ in 0..iterations {
            if w.level() < EngineLrTrainer::LEVELS_PER_ITERATION {
                w = self.engine.bootstrap(&w)?;
                stats.bootstraps += 1;
            }
            w = self.inner.iteration(&w, x, y)?;
            stats.iterations += 1;
        }
        Ok((w, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr::{SIGMOID_C0, SIGMOID_C1, SIGMOID_C3};
    use fides_api::{BackendChoice, BootstrapConfig, CkksEngine};

    fn boot_engine() -> CkksEngine {
        let cfg = test_cfg();
        CkksEngine::builder()
            .log_n(11)
            .levels(26)
            .scale_bits(50)
            .first_mod_bits(55)
            .dnum(3)
            .backend(BackendChoice::Cpu)
            .rotations(&cfg.required_rotations())
            .bootstrap_config(BootstrapConfig {
                slots: cfg.slots(),
                level_budget: (2, 2),
                k_range: 128.0,
                double_angles: 6,
                degree: 40,
            })
            .seed(0x17b)
            .build()
            .expect("bootstrapped LR parameters are valid")
    }

    fn test_cfg() -> LrConfig {
        LrConfig {
            batch: 4,
            features: 4,
            learning_rate: 1.0,
        }
    }

    /// Plaintext mirror of the encrypted iteration (same polynomial
    /// sigmoid), for convergence cross-checks.
    fn plain_iteration(cfg: &LrConfig, w: &mut [f64], xs: &[Vec<f64>], ys: &[f64]) {
        let b = cfg.batch;
        let mut grad = vec![0.0; cfg.features];
        for (row, &label) in xs.iter().zip(ys) {
            let z: f64 = row.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
            let p = SIGMOID_C0 + SIGMOID_C1 * z + SIGMOID_C3 * z * z * z;
            let e = label - p;
            for (g, &xi) in grad.iter_mut().zip(row) {
                *g += e * xi;
            }
        }
        for (wi, g) in w.iter_mut().zip(&grad) {
            *wi += cfg.learning_rate / b as f64 * g;
        }
    }

    /// Training must run past the chain's level budget (26 levels = 4
    /// iterations) by bootstrapping, and stay close to the plaintext
    /// trajectory.
    #[test]
    fn trains_past_the_level_budget() {
        let engine = boot_engine();
        let cfg = test_cfg();
        let trainer = BootstrappedLrTrainer::new(&engine, cfg).unwrap();

        let xs: Vec<Vec<f64>> = (0..cfg.batch)
            .map(|i| {
                (0..cfg.features)
                    .map(|j| 0.3 * (((i * cfg.features + j) % 5) as f64 / 5.0 - 0.4))
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = (0..cfg.batch).map(|i| (i % 2) as f64).collect();
        let row_refs: Vec<&[f64]> = xs.iter().map(|r| r.as_slice()).collect();
        let x = trainer.trainer().encrypt_features(&row_refs).unwrap();
        let y = trainer.trainer().encrypt_labels(&ys).unwrap();
        let w0 = trainer
            .trainer()
            .encrypt_weights(&vec![0.0; cfg.features])
            .unwrap();

        // 5 iterations need ≥ 30 levels of depth: impossible without a
        // bootstrap on this 26-level chain.
        let iters = 5usize;
        let (w, stats) = trainer.train(&w0, &x, &y, iters).unwrap();
        assert_eq!(stats.iterations, iters);
        assert!(
            stats.bootstraps >= 1,
            "training past the budget must have bootstrapped"
        );

        let got = trainer.trainer().decrypt_weights(&w).unwrap();
        let mut expect = vec![0.0; cfg.features];
        for _ in 0..iters {
            plain_iteration(&cfg, &mut expect, &xs, &ys);
        }
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() < 0.05,
                "weight {i}: encrypted {g} vs plaintext {e}"
            );
        }
    }

    /// Construction validates the refresh depth.
    #[test]
    fn rejects_sessions_without_bootstrapping() {
        let cfg = test_cfg();
        let engine = CkksEngine::builder()
            .log_n(10)
            .levels(9)
            .scale_bits(40)
            .dnum(2)
            .backend(BackendChoice::Cpu)
            .rotations(&cfg.required_rotations())
            .seed(3)
            .build()
            .unwrap();
        assert!(matches!(
            BootstrappedLrTrainer::new(&engine, cfg),
            Err(FidesError::Unsupported(_))
        ));
    }
}
