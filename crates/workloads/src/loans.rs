//! Synthetic loan-eligibility dataset.
//!
//! The paper trains logistic regression "on a dataset of 45,000 loan
//! eligibility samples … each data sample had 25 parameters after encoding,
//! aligned to the next power of two boundary, 32" (§IV-B). The original data
//! is not published; this generator produces a deterministic dataset with the
//! same shape and a planted logistic ground truth, so the workload exercises
//! identical code paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of samples in the paper's dataset.
pub const PAPER_SAMPLES: usize = 45_000;
/// Real features per sample.
pub const PAPER_FEATURES: usize = 25;
/// Features after power-of-two padding.
pub const PADDED_FEATURES: usize = 32;

/// A binary-labelled dataset with standardized features.
#[derive(Clone, Debug)]
pub struct LoanDataset {
    /// `samples × padded_features` row-major feature matrix; the first
    /// padded feature is the constant 1 (bias), trailing pads are zero.
    pub features: Vec<Vec<f64>>,
    /// Labels in `{0.0, 1.0}`.
    pub labels: Vec<f64>,
    /// The planted generating weights (for evaluation only).
    pub true_weights: Vec<f64>,
}

/// Logistic function.
pub fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LoanDataset {
    /// Generates `samples` rows with `features` informative columns padded to
    /// `padded` (bias column included in the padding budget).
    ///
    /// # Panics
    ///
    /// Panics if `padded < features + 1`.
    pub fn generate(samples: usize, features: usize, padded: usize, seed: u64) -> Self {
        assert!(padded > features, "padding must fit the bias column");
        let mut rng = StdRng::seed_from_u64(seed);
        // Planted weights: moderate magnitudes so labels are separable-ish.
        let true_weights: Vec<f64> = (0..=features)
            .map(|j| {
                if j == 0 {
                    0.2
                } else {
                    4.0 * ((j as f64 * 2.399).sin()) / (features as f64).sqrt()
                }
            })
            .collect();
        let mut rows = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut row = vec![0.0f64; padded];
            row[0] = 1.0; // bias
            for v in row.iter_mut().take(features + 1).skip(1) {
                // Standardized feature values in roughly [-1, 1].
                let u: f64 = rng.random::<f64>() + rng.random::<f64>() + rng.random::<f64>();
                *v = (u / 1.5 - 1.0).clamp(-1.0, 1.0);
            }
            let z: f64 = true_weights.iter().zip(&row).map(|(w, x)| w * x).sum();
            let p = sigmoid(z);
            let label = if rng.random::<f64>() < p { 1.0 } else { 0.0 };
            rows.push(row);
            labels.push(label);
        }
        Self {
            features: rows,
            labels,
            true_weights,
        }
    }

    /// The paper-shaped dataset: 45,000 × (25 → 32).
    pub fn paper_shape(seed: u64) -> Self {
        Self::generate(PAPER_SAMPLES, PAPER_FEATURES, PADDED_FEATURES, seed)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Padded feature count.
    pub fn padded_features(&self) -> usize {
        self.features.first().map_or(0, |r| r.len())
    }

    /// A contiguous mini-batch (wrapping).
    pub fn batch(&self, start: usize, size: usize) -> (Vec<&[f64]>, Vec<f64>) {
        let n = self.len();
        let rows = (0..size)
            .map(|i| self.features[(start + i) % n].as_slice())
            .collect();
        let labels = (0..size).map(|i| self.labels[(start + i) % n]).collect();
        (rows, labels)
    }

    /// Classification accuracy of a weight vector on this dataset.
    pub fn accuracy(&self, weights: &[f64]) -> f64 {
        let correct = self
            .features
            .iter()
            .zip(&self.labels)
            .filter(|(row, &y)| {
                let z: f64 = weights.iter().zip(row.iter()).map(|(w, x)| w * x).sum();
                (sigmoid(z) > 0.5) == (y > 0.5)
            })
            .count();
        correct as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = LoanDataset::generate(100, 5, 8, 42);
        let b = LoanDataset::generate(100, 5, 8, 42);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
        let c = LoanDataset::generate(100, 5, 8, 43);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn shape_and_padding() {
        let d = LoanDataset::generate(50, 5, 8, 1);
        assert_eq!(d.len(), 50);
        assert_eq!(d.padded_features(), 8);
        for row in &d.features {
            assert_eq!(row[0], 1.0, "bias column");
            assert_eq!(row[6], 0.0, "padding zero");
            assert_eq!(row[7], 0.0, "padding zero");
            assert!(row.iter().all(|x| x.abs() <= 1.0));
        }
    }

    #[test]
    fn planted_weights_are_learnable_signal() {
        let d = LoanDataset::generate(2000, 8, 16, 7);
        let acc = d.accuracy(&{
            let mut w = d.true_weights.clone();
            w.resize(16, 0.0);
            w
        });
        assert!(acc > 0.6, "planted weights should beat chance: {acc}");
        let zero_acc = d.accuracy(&[0.0; 16]);
        assert!(acc > zero_acc, "signal exists");
    }

    #[test]
    fn paper_shape_dimensions() {
        // Smaller sample count for test speed; shape logic identical.
        let d = LoanDataset::generate(1000, PAPER_FEATURES, PADDED_FEATURES, 3);
        assert_eq!(d.padded_features(), 32);
    }

    #[test]
    fn batches_wrap() {
        let d = LoanDataset::generate(10, 3, 4, 9);
        let (rows, labels) = d.batch(8, 4);
        assert_eq!(rows.len(), 4);
        assert_eq!(labels.len(), 4);
        assert_eq!(rows[2], d.features[0].as_slice(), "wraps to start");
    }
}
