//! Encrypted logistic-regression training (paper §IV-B, Table VII).
//!
//! Follows the Han et al. \[51\] approach the paper adapts: mini-batches of
//! `b` samples × `f` (power-of-two padded) features packed sample-major into
//! `b·f` slots, rotation-based folds for the dot products and gradient
//! reductions, a degree-3 polynomial sigmoid, and mini-batch gradient
//! descent with one bootstrap per iteration at full scale.

use std::sync::Arc;

use fides_client::ClientContext;
use fides_core::{adapter, Ciphertext, CkksContext, EvalKeySet, Result};

use crate::loans::sigmoid;

/// Degree-3 least-squares sigmoid approximation on `[-8, 8]` (Han et al.).
pub const SIGMOID_C0: f64 = 0.5;
/// Linear coefficient.
pub const SIGMOID_C1: f64 = 0.15012;
/// Cubic coefficient.
pub const SIGMOID_C3: f64 = -0.001593;

/// Polynomial sigmoid used by both the encrypted and reference paths.
pub fn sigmoid_poly(z: f64) -> f64 {
    SIGMOID_C0 + SIGMOID_C1 * z + SIGMOID_C3 * z * z * z
}

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct LrConfig {
    /// Samples per mini-batch ciphertext (power of two).
    pub batch: usize,
    /// Padded feature count (power of two).
    pub features: usize,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
}

impl LrConfig {
    /// The paper's configuration: 1,024 samples × 32 features per
    /// ciphertext.
    pub fn paper() -> Self {
        Self {
            batch: 1024,
            features: 32,
            learning_rate: 1.0,
        }
    }

    /// Slots used per ciphertext.
    pub fn slots(&self) -> usize {
        self.batch * self.features
    }

    /// Rotation shifts one iteration needs keys for.
    pub fn required_rotations(&self) -> Vec<i32> {
        let f = self.features as i32;
        let mut shifts = Vec::new();
        let mut k = 1i32;
        while k < f {
            shifts.push(k); // feature fold (left)
            shifts.push(-k); // replicate (right)
            k <<= 1;
        }
        let mut k = f;
        while k < (self.batch as i32) * f {
            shifts.push(k); // sample fold
            k <<= 1;
        }
        shifts
    }

    /// Packs a batch sample-major: slot `i·f + j` = `rows[i][j]`.
    pub fn pack_features(&self, rows: &[&[f64]]) -> Vec<f64> {
        let f = self.features;
        assert_eq!(rows.len(), self.batch);
        let mut slots = vec![0.0; self.slots()];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), f);
            slots[i * f..(i + 1) * f].copy_from_slice(row);
        }
        slots
    }

    /// Packs labels block-constant: slot `i·f + j` = `labels[i]`.
    pub fn pack_labels(&self, labels: &[f64]) -> Vec<f64> {
        let f = self.features;
        assert_eq!(labels.len(), self.batch);
        let mut slots = vec![0.0; self.slots()];
        for (i, &y) in labels.iter().enumerate() {
            slots[i * f..(i + 1) * f].fill(y);
        }
        slots
    }

    /// Packs a weight vector tiled across every sample block.
    pub fn pack_weights(&self, w: &[f64]) -> Vec<f64> {
        let f = self.features;
        assert_eq!(w.len(), f);
        let mut slots = vec![0.0; self.slots()];
        for block in slots.chunks_mut(f) {
            block.copy_from_slice(w);
        }
        slots
    }

    /// Extracts the weight vector from decoded slots (first block).
    pub fn unpack_weights(&self, slots: &[f64]) -> Vec<f64> {
        slots[..self.features].to_vec()
    }

    /// Plaintext reference iteration with the **same** polynomial sigmoid
    /// the encrypted path evaluates.
    pub fn iteration_plain(&self, w: &[f64], rows: &[&[f64]], labels: &[f64]) -> Vec<f64> {
        let f = self.features;
        let b = self.batch;
        let mut grad = vec![0.0f64; f];
        for (row, &y) in rows.iter().zip(labels) {
            let z: f64 = w.iter().zip(row.iter()).map(|(wj, xj)| wj * xj).sum();
            let e = y - sigmoid_poly(z);
            for (gj, xj) in grad.iter_mut().zip(row.iter()) {
                *gj += e * xj;
            }
        }
        w.iter()
            .zip(&grad)
            .map(|(wj, gj)| wj + self.learning_rate * gj / b as f64)
            .collect()
    }

    /// Plaintext training loop (reference / accuracy baseline), using the
    /// exact sigmoid for comparison purposes.
    pub fn train_plain_exact(&self, w0: &[f64], batches: &[(Vec<&[f64]>, Vec<f64>)]) -> Vec<f64> {
        let mut w = w0.to_vec();
        for (rows, labels) in batches {
            let f = self.features;
            let b = self.batch;
            let mut grad = vec![0.0f64; f];
            for (row, &y) in rows.iter().zip(labels) {
                let z: f64 = w.iter().zip(row.iter()).map(|(wj, xj)| wj * xj).sum();
                let e = y - sigmoid(z);
                for (gj, xj) in grad.iter_mut().zip(row.iter()) {
                    *gj += e * xj;
                }
            }
            for (wj, gj) in w.iter_mut().zip(&grad) {
                *wj += self.learning_rate * gj / b as f64;
            }
        }
        w
    }
}

/// Encrypted mini-batch gradient-descent trainer.
///
/// The client packs/encrypts batches and the initial weights; the server
/// (this struct) runs iterations homomorphically.
#[derive(Debug)]
pub struct LrTrainer<'a> {
    ctx: &'a Arc<CkksContext>,
    client: &'a ClientContext,
    config: LrConfig,
}

impl<'a> LrTrainer<'a> {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if batch/features are not powers of two or exceed the slot
    /// capacity.
    pub fn new(ctx: &'a Arc<CkksContext>, client: &'a ClientContext, config: LrConfig) -> Self {
        assert!(config.batch.is_power_of_two() && config.features.is_power_of_two());
        assert!(
            config.slots() <= ctx.n() / 2,
            "batch × features exceeds slot capacity"
        );
        Self {
            ctx,
            client,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LrConfig {
        &self.config
    }

    /// Multiplicative levels consumed by one iteration.
    pub const LEVELS_PER_ITERATION: usize = 6;

    /// Rotation shifts one iteration needs keys for.
    pub fn required_rotations(&self) -> Vec<i32> {
        self.config.required_rotations()
    }

    /// Packs a batch sample-major (see [`LrConfig::pack_features`]).
    pub fn pack_features(&self, rows: &[&[f64]]) -> Vec<f64> {
        self.config.pack_features(rows)
    }

    /// Packs labels block-constant (see [`LrConfig::pack_labels`]).
    pub fn pack_labels(&self, labels: &[f64]) -> Vec<f64> {
        self.config.pack_labels(labels)
    }

    /// Packs a weight vector tiled across every sample block.
    pub fn pack_weights(&self, w: &[f64]) -> Vec<f64> {
        self.config.pack_weights(w)
    }

    /// Extracts the weight vector from decoded slots (first block).
    pub fn unpack_weights(&self, slots: &[f64]) -> Vec<f64> {
        self.config.unpack_weights(slots)
    }

    /// One encrypted gradient-descent iteration:
    /// `w ← w + (lr/b)·Xᵀ(y − σ̃(X·w))`. Consumes
    /// [`Self::LEVELS_PER_ITERATION`] levels.
    ///
    /// # Errors
    ///
    /// Missing keys or insufficient levels.
    pub fn iteration(
        &self,
        w: &Ciphertext,
        x: &Ciphertext,
        y: &Ciphertext,
        keys: &EvalKeySet,
    ) -> Result<Ciphertext> {
        let f = self.config.features;
        let b = self.config.batch;
        let lvl = w.level();
        let mut x_now = x.duplicate();
        x_now.drop_to_level(lvl)?;

        // 1. Per-slot products, then fold over features: block starts hold
        //    the dot products X·w.
        let mut prod = x_now.mul(w, keys)?;
        prod.rescale_in_place()?;
        let mut k = 1i32;
        while (k as usize) < f {
            let rot = prod.rotate(k, keys)?;
            prod.add_assign_ct(&rot)?;
            k <<= 1;
        }

        // 2. Mask the block starts, then replicate the dot product across
        //    each block.
        let mask = {
            let mut m = vec![0.0; self.config.slots()];
            for i in 0..b {
                m[i * f] = 1.0;
            }
            self.encode_at(&m, prod.level())
        };
        let mut z = prod.mul_plain(&mask)?;
        z.rescale_in_place()?;
        let mut k = 1i32;
        while (k as usize) < f {
            let rot = z.rotate(-k, keys)?;
            z.add_assign_ct(&rot)?;
            k <<= 1;
        }

        // 3. Polynomial sigmoid: p = c0 + c1·z + c3·z³ (2 levels).
        let mut z2 = z.square(keys)?;
        z2.rescale_in_place()?;
        let cz = z.mul_scalar_rescale(SIGMOID_C3)?;
        let mut z3c = z2.mul(&cz, keys)?;
        z3c.rescale_in_place()?;
        let mut c1z = z.mul_scalar_rescale(SIGMOID_C1)?;
        c1z.drop_to_level(z3c.level())?;
        let mut p = z3c;
        p.add_assign_ct(&c1z)?;
        p.add_scalar_assign(SIGMOID_C0);

        // 4. Error e = y − p.
        let mut y_now = y.duplicate();
        y_now.drop_to_level(p.level())?;
        let e = y_now.sub(&p)?;

        // 5. Gradient: fold e ⊙ x over samples.
        let mut x_low = x.duplicate();
        x_low.drop_to_level(e.level())?;
        let mut g = e.mul(&x_low, keys)?;
        g.rescale_in_place()?;
        let mut k = f as i32;
        while (k as usize) < b * f {
            let rot = g.rotate(k, keys)?;
            g.add_assign_ct(&rot)?;
            k <<= 1;
        }

        // 6. Update: w ← w + (lr/b)·g.
        let g = g.mul_scalar_rescale(self.config.learning_rate / b as f64)?;
        let mut w_now = w.duplicate();
        w_now.drop_to_level(g.level())?;
        let mut out = w_now;
        out.add_assign_ct(&g)?;
        Ok(out)
    }

    /// Plaintext reference iteration with the **same** polynomial sigmoid.
    pub fn iteration_plain(&self, w: &[f64], rows: &[&[f64]], labels: &[f64]) -> Vec<f64> {
        self.config.iteration_plain(w, rows, labels)
    }

    /// Plaintext training loop (reference / accuracy baseline), using the
    /// exact sigmoid for comparison purposes.
    pub fn train_plain_exact(&self, w0: &[f64], batches: &[(Vec<&[f64]>, Vec<f64>)]) -> Vec<f64> {
        self.config.train_plain_exact(w0, batches)
    }

    fn encode_at(&self, slots: &[f64], level: usize) -> fides_core::Plaintext {
        if self.ctx.gpu().is_functional() {
            let q_l = self.ctx.moduli_q()[level].value() as f64;
            let scale = q_l * self.ctx.standard_scale(level - 1) / self.ctx.standard_scale(level);
            let raw = self
                .client
                .encode_real(slots, scale, level)
                .expect("internally encoded plaintexts are always valid");
            adapter::load_plaintext(self.ctx, &raw)
                .expect("internally encoded plaintexts are always loadable")
        } else {
            let q_l = self.ctx.moduli_q()[level].value() as f64;
            let scale = q_l * self.ctx.standard_scale(level - 1) / self.ctx.standard_scale(level);
            adapter::placeholder_plaintext(self.ctx, level, scale, slots.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loans::LoanDataset;

    #[test]
    fn packing_layout() {
        // A minimal config for layout checks (no crypto needed → use any ctx).
        let gpu = fides_gpu_sim::GpuSim::new(
            fides_gpu_sim::DeviceSpec::rtx_4090(),
            fides_gpu_sim::ExecMode::CostOnly,
        );
        let ctx = fides_core::CkksContext::new(fides_core::CkksParameters::toy(), gpu);
        let client = fides_client::ClientContext::new(ctx.raw_params().clone());
        let cfg = LrConfig {
            batch: 4,
            features: 4,
            learning_rate: 1.0,
        };
        let t = LrTrainer::new(&ctx, &client, cfg);
        let rows_data: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| (i * 4 + j) as f64).collect())
            .collect();
        let rows: Vec<&[f64]> = rows_data.iter().map(|r| r.as_slice()).collect();
        let x = t.pack_features(&rows);
        assert_eq!(x[5], 5.0);
        let y = t.pack_labels(&[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(&y[0..4], &[1.0; 4]);
        assert_eq!(&y[4..8], &[0.0; 4]);
        let w = t.pack_weights(&[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(&w[4..8], &[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(t.unpack_weights(&w), vec![9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn rotation_requirements_cover_folds() {
        let gpu = fides_gpu_sim::GpuSim::new(
            fides_gpu_sim::DeviceSpec::rtx_4090(),
            fides_gpu_sim::ExecMode::CostOnly,
        );
        let ctx = fides_core::CkksContext::new(fides_core::CkksParameters::toy(), gpu);
        let client = fides_client::ClientContext::new(ctx.raw_params().clone());
        let cfg = LrConfig {
            batch: 8,
            features: 8,
            learning_rate: 1.0,
        };
        let t = LrTrainer::new(&ctx, &client, cfg);
        let shifts = t.required_rotations();
        for k in [1, 2, 4, -1, -2, -4, 8, 16, 32] {
            assert!(shifts.contains(&k), "missing shift {k}");
        }
    }

    #[test]
    fn plain_training_reduces_error_on_planted_data() {
        let data = LoanDataset::generate(512, 6, 8, 5);
        let gpu = fides_gpu_sim::GpuSim::new(
            fides_gpu_sim::DeviceSpec::rtx_4090(),
            fides_gpu_sim::ExecMode::CostOnly,
        );
        let ctx = fides_core::CkksContext::new(fides_core::CkksParameters::toy(), gpu);
        let client = fides_client::ClientContext::new(ctx.raw_params().clone());
        let cfg = LrConfig {
            batch: 64,
            features: 8,
            learning_rate: 2.0,
        };
        let t = LrTrainer::new(&ctx, &client, cfg);
        let mut w = vec![0.0f64; 8];
        let acc_before = data.accuracy(&w);
        for i in 0..16 {
            let (rows, labels) = data.batch(i * 64 % data.len(), 64);
            w = t.iteration_plain(&w, &rows, &labels);
        }
        let acc_after = data.accuracy(&w);
        assert!(
            acc_after > acc_before + 0.05,
            "training must improve accuracy: {acc_before} → {acc_after}"
        );
    }

    #[test]
    fn sigmoid_poly_tracks_sigmoid_in_range() {
        for i in 0..=32 {
            let z = -4.0 + 8.0 * i as f64 / 32.0;
            // Han et al.'s degree-3 fit has ~0.1 max error on [-8, 8].
            assert!((sigmoid_poly(z) - sigmoid(z)).abs() < 0.12, "z={z}");
        }
    }
}
