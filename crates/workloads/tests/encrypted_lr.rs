//! Integration tests: encrypted logistic-regression iterations validated
//! against the plaintext reference, including a bootstrap inside the
//! training loop (the Table VII scenario at functional scale).

use std::sync::Arc;

use fides_client::{ClientContext, KeyGenerator, RawSwitchingKey, SecretKey};
use fides_core::{
    adapter, BootstrapConfig, Bootstrapper, Ciphertext, CkksContext, CkksParameters, EvalKeySet,
};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use fides_workloads::{LoanDataset, LrConfig, LrTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

struct Harness {
    ctx: Arc<CkksContext>,
    client: ClientContext,
    sk: SecretKey,
    pk: fides_client::RawPublicKey,
    rng: RefCell<StdRng>,
}

impl Harness {
    fn new(params: CkksParameters) -> Self {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        let ctx = CkksContext::new(params, gpu);
        let client = ClientContext::new(ctx.raw_params().clone());
        let mut kg = KeyGenerator::new(&client, 77);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        Self { ctx, client, sk, pk, rng: RefCell::new(StdRng::seed_from_u64(99)) }
    }

    fn keys(&self, shifts: &[i32]) -> EvalKeySet {
        let mut kg = KeyGenerator::new(&self.client, 78);
        let relin = kg.relinearization_key(&self.sk);
        let rots: Vec<(i32, RawSwitchingKey)> = {
            let mut seen = std::collections::BTreeSet::new();
            shifts
                .iter()
                .filter(|&&k| k != 0 && seen.insert(k))
                .map(|&k| (k, kg.rotation_key(&self.sk, k)))
                .collect()
        };
        let conj = kg.conjugation_key(&self.sk);
        adapter::load_eval_keys(&self.ctx, Some(&relin), &rots, Some(&conj))
    }

    fn encrypt(&self, slots: &[f64]) -> Ciphertext {
        let pt = self.client.encode_real(
            slots,
            self.ctx.standard_scale(self.ctx.max_level()),
            self.ctx.max_level(),
        );
        let raw = self.client.encrypt(&pt, &self.pk, &mut *self.rng.borrow_mut());
        adapter::load_ciphertext(&self.ctx, &raw)
    }

    fn decrypt(&self, ct: &Ciphertext) -> Vec<f64> {
        let raw = adapter::store_ciphertext(ct);
        self.client.decode_real(&self.client.decrypt(&raw, &self.sk))
    }
}

#[test]
fn encrypted_iteration_matches_plain_reference() {
    // 9-level chain: enough for one iteration without bootstrapping.
    let params = CkksParameters::new(10, 9, 40, 2).unwrap();
    let h = Harness::new(params);
    let cfg = LrConfig { batch: 8, features: 8, learning_rate: 1.0 };
    let trainer = LrTrainer::new(&h.ctx, &h.client, cfg);
    let keys = h.keys(&trainer.required_rotations());

    let data = LoanDataset::generate(32, 6, 8, 11);
    let (rows, labels) = data.batch(0, 8);

    let w0 = vec![0.0f64; 8];
    let x_ct = h.encrypt(&trainer.pack_features(&rows));
    let y_ct = h.encrypt(&trainer.pack_labels(&labels));
    let w_ct = h.encrypt(&trainer.pack_weights(&w0));

    let w1_ct = trainer.iteration(&w_ct, &x_ct, &y_ct, &keys).unwrap();
    assert_eq!(w1_ct.level(), h.ctx.max_level() - LrTrainer::LEVELS_PER_ITERATION);

    let got = trainer.unpack_weights(&h.decrypt(&w1_ct));
    let expect = trainer.iteration_plain(&w0, &rows, &labels);
    for (j, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert!((g - e).abs() < 5e-3, "weight {j}: {g} vs {e}");
    }
    // The weights must also be replicated across blocks (packing invariant).
    let slots = h.decrypt(&w1_ct);
    for blk in 1..8 {
        for j in 0..8 {
            assert!((slots[blk * 8 + j] - slots[j]).abs() < 1e-3, "block {blk} slot {j}");
        }
    }
}

#[test]
fn two_encrypted_iterations_track_plain_training() {
    let params = CkksParameters::new(10, 14, 40, 2).unwrap();
    let h = Harness::new(params);
    let cfg = LrConfig { batch: 8, features: 8, learning_rate: 2.0 };
    let trainer = LrTrainer::new(&h.ctx, &h.client, cfg);
    let keys = h.keys(&trainer.required_rotations());

    let data = LoanDataset::generate(64, 6, 8, 13);
    let mut w_plain = vec![0.0f64; 8];
    let mut w_ct = h.encrypt(&trainer.pack_weights(&w_plain));

    for it in 0..2 {
        let (rows, labels) = data.batch(it * 8, 8);
        let x_ct = h.encrypt(&trainer.pack_features(&rows));
        let y_ct = h.encrypt(&trainer.pack_labels(&labels));
        w_ct = trainer.iteration(&w_ct, &x_ct, &y_ct, &keys).unwrap();
        w_plain = trainer.iteration_plain(&w_plain, &rows, &labels);
    }
    let got = trainer.unpack_weights(&h.decrypt(&w_ct));
    for (j, (g, e)) in got.iter().zip(&w_plain).enumerate() {
        assert!((g - e).abs() < 2e-2, "weight {j}: {g} vs {e}");
    }
}

#[test]
fn iteration_with_bootstrap_in_the_loop() {
    // Deep enough chain that bootstrap output supports a full iteration:
    // budgets (1,1) + Chebyshev depth 9 + 6 double angles = 17 levels,
    // leaving 23 − 17 = 6 = LEVELS_PER_ITERATION.
    let params = CkksParameters::new(11, 23, 50, 3).unwrap().with_first_mod_bits(55);
    let h = Harness::new(params);
    let cfg = LrConfig { batch: 8, features: 8, learning_rate: 2.0 };
    let trainer = LrTrainer::new(&h.ctx, &h.client, cfg);

    let boot_cfg = BootstrapConfig {
        slots: cfg.slots(),
        level_budget: (1, 1),
        k_range: 128.0,
        double_angles: 6,
        degree: 40,
    };
    let boot = Bootstrapper::new(&h.ctx, &h.client, boot_cfg).unwrap();
    assert!(boot.min_output_level() >= LrTrainer::LEVELS_PER_ITERATION);

    let mut shifts = trainer.required_rotations();
    shifts.extend(boot.required_rotations());
    let keys = h.keys(&shifts);

    let data = LoanDataset::generate(64, 6, 8, 17);
    let mut w_plain = vec![0.0f64; 8];

    // Iteration 1 at the top of the chain.
    let (rows, labels) = data.batch(0, 8);
    let x_ct = h.encrypt(&trainer.pack_features(&rows));
    let y_ct = h.encrypt(&trainer.pack_labels(&labels));
    let w_ct = h.encrypt(&trainer.pack_weights(&w_plain));
    let w_ct = trainer.iteration(&w_ct, &x_ct, &y_ct, &keys).unwrap();
    w_plain = trainer.iteration_plain(&w_plain, &rows, &labels);

    // Exhaust the remaining depth, then bootstrap (Table VII's
    // iteration+bootstrap step).
    let mut w_low = w_ct;
    w_low.drop_to_level(0).unwrap();
    let w_fresh = boot.bootstrap(&w_low, &keys).unwrap();
    assert!(w_fresh.level() >= LrTrainer::LEVELS_PER_ITERATION);

    // Iteration 2 on the refreshed weights.
    let (rows2, labels2) = data.batch(8, 8);
    let x2 = h.encrypt(&trainer.pack_features(&rows2));
    let y2 = h.encrypt(&trainer.pack_labels(&labels2));
    // Bring x/y to the refreshed level happens inside iteration().
    let w2 = trainer.iteration(&w_fresh, &x2, &y2, &keys).unwrap();
    w_plain = trainer.iteration_plain(&w_plain, &rows2, &labels2);

    let got = trainer.unpack_weights(&h.decrypt(&w2));
    for (j, (g, e)) in got.iter().zip(&w_plain).enumerate() {
        assert!((g - e).abs() < 0.05, "weight {j}: {g} vs {e} (post-bootstrap)");
    }
}
