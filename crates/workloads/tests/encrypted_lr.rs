//! Integration tests: encrypted logistic-regression iterations validated
//! against the plaintext reference, including a bootstrap inside the
//! training loop (the Table VII scenario at functional scale) — all through
//! the `CkksEngine` session API.

use fides_api::{BootstrapConfig, CkksEngine};
use fides_workloads::{EngineLrTrainer, LoanDataset, LrConfig};

#[test]
fn encrypted_iteration_matches_plain_reference() {
    // 9-level chain: enough for one iteration without bootstrapping.
    let cfg = LrConfig {
        batch: 8,
        features: 8,
        learning_rate: 1.0,
    };
    let engine = CkksEngine::builder()
        .log_n(10)
        .levels(9)
        .scale_bits(40)
        .dnum(2)
        .rotations(&cfg.required_rotations())
        .seed(77)
        .build()
        .unwrap();
    let trainer = EngineLrTrainer::new(&engine, cfg).unwrap();

    let data = LoanDataset::generate(32, 6, 8, 11);
    let (rows, labels) = data.batch(0, 8);

    let w0 = vec![0.0f64; 8];
    let x_ct = trainer.encrypt_features(&rows).unwrap();
    let y_ct = trainer.encrypt_labels(&labels).unwrap();
    let w_ct = trainer.encrypt_weights(&w0).unwrap();

    let w1_ct = trainer.iteration(&w_ct, &x_ct, &y_ct).unwrap();
    assert_eq!(
        w1_ct.level(),
        engine.max_level() - EngineLrTrainer::LEVELS_PER_ITERATION
    );

    let got = trainer.decrypt_weights(&w1_ct).unwrap();
    let expect = cfg.iteration_plain(&w0, &rows, &labels);
    for (j, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert!((g - e).abs() < 5e-3, "weight {j}: {g} vs {e}");
    }
    // The weights must also be replicated across blocks (packing invariant).
    let slots = engine.decrypt(&w1_ct).unwrap();
    for blk in 1..8 {
        for j in 0..8 {
            assert!(
                (slots[blk * 8 + j] - slots[j]).abs() < 1e-3,
                "block {blk} slot {j}"
            );
        }
    }
}

#[test]
fn two_encrypted_iterations_track_plain_training() {
    let cfg = LrConfig {
        batch: 8,
        features: 8,
        learning_rate: 2.0,
    };
    let engine = CkksEngine::builder()
        .log_n(10)
        .levels(14)
        .scale_bits(40)
        .dnum(2)
        .rotations(&cfg.required_rotations())
        .seed(78)
        .build()
        .unwrap();
    let trainer = EngineLrTrainer::new(&engine, cfg).unwrap();

    let data = LoanDataset::generate(64, 6, 8, 13);
    let mut w_plain = vec![0.0f64; 8];
    let mut w_ct = trainer.encrypt_weights(&w_plain).unwrap();

    for it in 0..2 {
        let (rows, labels) = data.batch(it * 8, 8);
        let x_ct = trainer.encrypt_features(&rows).unwrap();
        let y_ct = trainer.encrypt_labels(&labels).unwrap();
        w_ct = trainer.iteration(&w_ct, &x_ct, &y_ct).unwrap();
        w_plain = cfg.iteration_plain(&w_plain, &rows, &labels);
    }
    let got = trainer.decrypt_weights(&w_ct).unwrap();
    for (j, (g, e)) in got.iter().zip(&w_plain).enumerate() {
        assert!((g - e).abs() < 2e-2, "weight {j}: {g} vs {e}");
    }
}

#[test]
fn iteration_with_bootstrap_in_the_loop() {
    // Deep enough chain that bootstrap output supports a full iteration:
    // budgets (1,1) + Chebyshev depth 9 + 6 double angles = 17 levels,
    // leaving 23 − 17 = 6 = LEVELS_PER_ITERATION.
    let cfg = LrConfig {
        batch: 8,
        features: 8,
        learning_rate: 2.0,
    };
    let boot_cfg = BootstrapConfig {
        slots: cfg.slots(),
        level_budget: (1, 1),
        k_range: 128.0,
        double_angles: 6,
        degree: 40,
    };
    let engine = CkksEngine::builder()
        .log_n(11)
        .levels(23)
        .scale_bits(50)
        .first_mod_bits(55)
        .dnum(3)
        .rotations(&cfg.required_rotations())
        .bootstrap_config(boot_cfg)
        .seed(79)
        .build()
        .unwrap();
    let trainer = EngineLrTrainer::new(&engine, cfg).unwrap();
    assert!(engine.min_bootstrap_level().unwrap() >= EngineLrTrainer::LEVELS_PER_ITERATION);

    let data = LoanDataset::generate(64, 6, 8, 17);
    let mut w_plain = vec![0.0f64; 8];

    // Iteration 1 at the top of the chain.
    let (rows, labels) = data.batch(0, 8);
    let x_ct = trainer.encrypt_features(&rows).unwrap();
    let y_ct = trainer.encrypt_labels(&labels).unwrap();
    let w_ct = trainer.encrypt_weights(&w_plain).unwrap();
    let w_ct = trainer.iteration(&w_ct, &x_ct, &y_ct).unwrap();
    w_plain = cfg.iteration_plain(&w_plain, &rows, &labels);

    // Exhaust the remaining depth, then bootstrap (Table VII's
    // iteration+bootstrap step).
    let w_low = w_ct.at_level(0).unwrap();
    let w_fresh = w_low.bootstrap().unwrap();
    assert!(w_fresh.level() >= EngineLrTrainer::LEVELS_PER_ITERATION);

    // Iteration 2 on the refreshed weights (x/y align inside iteration()).
    let (rows2, labels2) = data.batch(8, 8);
    let x2 = trainer.encrypt_features(&rows2).unwrap();
    let y2 = trainer.encrypt_labels(&labels2).unwrap();
    let w2 = trainer.iteration(&w_fresh, &x2, &y2).unwrap();
    w_plain = cfg.iteration_plain(&w_plain, &rows2, &labels2);

    let got = trainer.decrypt_weights(&w2).unwrap();
    for (j, (g, e)) in got.iter().zip(&w_plain).enumerate() {
        assert!(
            (g - e).abs() < 0.05,
            "weight {j}: {g} vs {e} (post-bootstrap)"
        );
    }
}
