//! Session-bound ciphertext handles with operator overloading.

use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

use fides_core::backend::BackendCt;
use fides_core::{FidesError, Result};

use crate::engine::EngineInner;

/// A ciphertext bound to its [`CkksEngine`](crate::CkksEngine) session.
///
/// `Ct` carries an `Arc` to the session, so handles combine with plain
/// operators — `&a * &b + &a * 2.0` — without an engine reference at every
/// call site. The operators apply the standard-ladder policy automatically:
///
/// * `*` (ct × ct, ct × plaintext, ct × scalar) relinearizes where needed
///   and **rescales immediately**, consuming one level;
/// * `+` / `-` align operand levels by dropping the higher operand
///   (LevelReduce — exact, no precision cost);
/// * scalar `+` / `-` are exact and consume nothing.
///
/// Operators panic on unrecoverable misuse (exhausted levels, missing keys,
/// handles from different sessions) — the same conditions the `try_*`
/// methods report as typed [`FidesError`]s. Long-running services should
/// prefer the `try_*` forms.
pub struct Ct {
    pub(crate) inner: Arc<EngineInner>,
    pub(crate) ct: BackendCt,
    /// Number of values the caller encrypted (decrypt truncates to this).
    pub(crate) len: usize,
}

// Manual impl: metadata only — the derived form would print megabytes of
// limb data per handle.
impl std::fmt::Debug for Ct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ct")
            .field("level", &self.ct.level())
            .field("scale", &self.ct.scale())
            .field("slots", &self.ct.slots())
            .field("len", &self.len)
            .field("noise_log2", &self.ct.noise_log2())
            .finish_non_exhaustive()
    }
}

impl Clone for Ct {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            ct: self.ct.duplicate(),
            len: self.len,
        }
    }
}

impl Ct {
    /// Wraps a backend handle (e.g. one just loaded from a wire frame) into
    /// a session ciphertext. `len` is the value count [`CkksEngine::decrypt`]
    /// should report.
    ///
    /// [`CkksEngine::decrypt`]: crate::CkksEngine::decrypt
    pub fn from_backend(engine: &crate::CkksEngine, ct: BackendCt, len: usize) -> Ct {
        Ct {
            inner: Arc::clone(&engine.inner),
            ct,
            len,
        }
    }

    /// Current level (multiplications remaining on the chain).
    pub fn level(&self) -> usize {
        self.ct.level()
    }

    /// Exact message scale.
    pub fn scale(&self) -> f64 {
        self.ct.scale()
    }

    /// Packed (padded) slot count.
    pub fn slots(&self) -> usize {
        self.ct.slots()
    }

    /// Number of values encrypted into this ciphertext.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values were encrypted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Static noise estimate (log2 magnitude).
    pub fn noise_log2(&self) -> f64 {
        self.ct.noise_log2()
    }

    /// The raw backend handle (for interop with the layered API).
    pub fn backend_ct(&self) -> &BackendCt {
        &self.ct
    }

    /// Downloads the ciphertext in the portable wire form — the frame the
    /// client would decrypt. Backends that agree bit-for-bit produce
    /// identical frames, which the cross-backend determinism tests assert.
    ///
    /// # Errors
    ///
    /// Backend `store` failures (e.g. a handle from another session).
    pub fn to_raw(&self) -> Result<fides_client::RawCiphertext> {
        self.inner.backend.store(&self.ct)
    }

    fn wrap(&self, ct: BackendCt) -> Ct {
        Ct {
            inner: Arc::clone(&self.inner),
            ct,
            len: self.len,
        }
    }

    fn same_session(&self, other: &Ct) -> Result<()> {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            Ok(())
        } else {
            Err(FidesError::Unsupported(
                "combining ciphertexts from different engine sessions".into(),
            ))
        }
    }

    /// Aligns two operands to a common level by dropping the higher one
    /// (exact LevelReduce), then applies `op`.
    fn with_aligned(
        &self,
        other: &Ct,
        op: impl FnOnce(&BackendCt, &BackendCt) -> Result<BackendCt>,
    ) -> Result<Ct> {
        self.same_session(other)?;
        let backend = self.inner.backend.as_ref();
        let (la, lb) = (self.ct.level(), other.ct.level());
        let target = la.min(lb);
        let dropped_a;
        let a = if la > target {
            let mut d = self.ct.duplicate();
            backend.drop_to_level(&mut d, target)?;
            dropped_a = d;
            &dropped_a
        } else {
            &self.ct
        };
        let dropped_b;
        let b = if lb > target {
            let mut d = other.ct.duplicate();
            backend.drop_to_level(&mut d, target)?;
            dropped_b = d;
            &dropped_b
        } else {
            &other.ct
        };
        Ok(self.wrap(op(a, b)?).with_len(self.len.max(other.len)))
    }

    fn with_len(mut self, len: usize) -> Ct {
        self.len = len;
        self
    }

    /// HAdd with automatic level alignment.
    ///
    /// # Errors
    ///
    /// Scale/slot mismatches, or handles from different sessions.
    pub fn try_add(&self, other: &Ct) -> Result<Ct> {
        self.with_aligned(other, |a, b| self.inner.backend.add(a, b))
    }

    /// HSub with automatic level alignment.
    ///
    /// # Errors
    ///
    /// As [`Ct::try_add`].
    pub fn try_sub(&self, other: &Ct) -> Result<Ct> {
        self.with_aligned(other, |a, b| self.inner.backend.sub(a, b))
    }

    /// HMult: aligns levels, multiplies with relinearization, rescales.
    /// Consumes one level.
    ///
    /// # Errors
    ///
    /// [`FidesError::NotEnoughLevels`] at level 0, mismatches as
    /// [`Ct::try_add`].
    pub fn try_mul(&self, other: &Ct) -> Result<Ct> {
        let mut out = self.with_aligned(other, |a, b| self.inner.backend.mul(a, b))?;
        self.inner.backend.rescale(&mut out.ct)?;
        Ok(out)
    }

    /// HSquare (cheaper than `self * self`), rescaled. Consumes one level.
    ///
    /// # Errors
    ///
    /// As [`Ct::try_mul`].
    pub fn try_square(&self) -> Result<Ct> {
        let mut out = self.wrap(self.inner.backend.square(&self.ct)?);
        self.inner.backend.rescale(&mut out.ct)?;
        Ok(out)
    }

    /// Negation (exact).
    ///
    /// # Errors
    ///
    /// Backend mismatches only.
    pub fn try_neg(&self) -> Result<Ct> {
        Ok(self.wrap(self.inner.backend.negate(&self.ct)?))
    }

    /// ScalarAdd (exact, no level consumed).
    ///
    /// # Errors
    ///
    /// Backend mismatches only.
    pub fn try_add_scalar(&self, c: f64) -> Result<Ct> {
        Ok(self.wrap(self.inner.backend.add_scalar(&self.ct, c)?))
    }

    /// ScalarMult at the ladder-exact constant scale, rescaled. Consumes one
    /// level.
    ///
    /// # Errors
    ///
    /// [`FidesError::NotEnoughLevels`] at level 0.
    pub fn try_mul_scalar(&self, c: f64) -> Result<Ct> {
        let level = self.ct.level();
        if level == 0 {
            return Err(FidesError::NotEnoughLevels {
                needed: 1,
                available: 0,
            });
        }
        let backend = self.inner.backend.as_ref();
        let q_l = backend.modulus_value(level) as f64;
        let const_scale = q_l * backend.standard_scale(level - 1) / backend.standard_scale(level);
        let mut out = self.wrap(backend.mul_scalar_at(&self.ct, c, const_scale)?);
        backend.rescale(&mut out.ct)?;
        Ok(out)
    }

    /// Exact multiplication by a small signed integer (no scale change, no
    /// level consumed).
    ///
    /// # Errors
    ///
    /// Backend mismatches only.
    pub fn try_mul_int(&self, k: i64) -> Result<Ct> {
        Ok(self.wrap(self.inner.backend.mul_int(&self.ct, k)?))
    }

    /// PtAdd of a plain vector, encoded at this ciphertext's level and
    /// scale. Values are zero-padded to the slot count.
    ///
    /// # Errors
    ///
    /// [`FidesError::Client`] when `values` exceed the slot capacity.
    pub fn try_add_plain(&self, values: &[f64]) -> Result<Ct> {
        let pt = self.encode_padded(values, self.ct.scale(), self.ct.level())?;
        Ok(self.wrap(self.inner.backend.add_plain(&self.ct, &pt)?))
    }

    /// PtMult of a plain vector encoded at the ladder-exact constant scale,
    /// rescaled. Consumes one level.
    ///
    /// # Errors
    ///
    /// [`FidesError::NotEnoughLevels`] at level 0, [`FidesError::Client`]
    /// when `values` exceed the slot capacity.
    pub fn try_mul_plain(&self, values: &[f64]) -> Result<Ct> {
        let level = self.ct.level();
        if level == 0 {
            return Err(FidesError::NotEnoughLevels {
                needed: 1,
                available: 0,
            });
        }
        let backend = self.inner.backend.as_ref();
        let q_l = backend.modulus_value(level) as f64;
        let const_scale = q_l * backend.standard_scale(level - 1) / backend.standard_scale(level);
        let pt = self.encode_padded(values, const_scale, level)?;
        let mut out = self.wrap(backend.mul_plain(&self.ct, &pt)?);
        backend.rescale(&mut out.ct)?;
        Ok(out)
    }

    /// HRotate: slots move left by `k` (negative `k` rotates right). The
    /// session must have been built with `.rotations(&[.., k, ..])`.
    ///
    /// # Errors
    ///
    /// [`FidesError::MissingKey`] for undeclared shifts.
    pub fn rotate(&self, k: i32) -> Result<Ct> {
        Ok(self.wrap(self.inner.backend.rotate(&self.ct, k)?))
    }

    /// Rotations by every shift in `shifts`, sharing the hoisted
    /// decomposition where the backend supports it (§III-F.6).
    ///
    /// # Errors
    ///
    /// As [`Ct::rotate`].
    pub fn rotate_many(&self, shifts: &[i32]) -> Result<Vec<Ct>> {
        Ok(self
            .inner
            .backend
            .hoisted_rotations(&self.ct, shifts)?
            .into_iter()
            .map(|ct| self.wrap(ct))
            .collect())
    }

    /// HConjugate. The session must have been built with `.conjugation()`.
    ///
    /// # Errors
    ///
    /// [`FidesError::MissingKey`] without the conjugation key.
    pub fn conjugate(&self) -> Result<Ct> {
        Ok(self.wrap(self.inner.backend.conjugate(&self.ct)?))
    }

    /// Bootstrap: refresh an exhausted ciphertext back to computing depth.
    /// The session must have been built with `.bootstrap_slots(..)`.
    /// Available on both backends; refreshed ciphertexts are bit-identical
    /// across them.
    ///
    /// # Errors
    ///
    /// [`FidesError::Unsupported`] when the session has no bootstrapping
    /// material.
    pub fn bootstrap(&self) -> Result<Ct> {
        Ok(self.wrap(self.inner.backend.bootstrap(&self.ct)?))
    }

    /// Evaluates the Chebyshev series `Σ coeffs[j]·T_j(x)` on this
    /// ciphertext with the Paterson–Stockmeyer BSGS evaluator (the
    /// ApproxModEval machinery of bootstrapping, exposed for general
    /// polynomial approximation). Slot values must lie in `[−1, 1]`.
    ///
    /// Consumes `ChebyshevEvaluator::depth_estimate(deg)` levels at most.
    ///
    /// # Errors
    ///
    /// [`FidesError::NotEnoughLevels`] when the chain is too shallow for
    /// the series degree, or a missing relinearization key.
    pub fn try_chebyshev(&self, coeffs: &[f64]) -> Result<Ct> {
        let backend = self.inner.backend.as_ref();
        // Trim trailing ~zero coefficients before sizing the evaluator:
        // padded coefficient buffers must not inflate the depth budget.
        let degree = fides_core::boot::trim_degree(coeffs);
        let ev = fides_core::boot::ChebyshevEvaluator::new(backend, &self.ct, degree)?;
        Ok(self.wrap(ev.evaluate(&coeffs[..(degree + 1).min(coeffs.len())])?))
    }

    /// An exact copy dropped to `level` (LevelReduce).
    ///
    /// # Errors
    ///
    /// [`FidesError::NotEnoughLevels`] when `level` exceeds the current one.
    pub fn at_level(&self, level: usize) -> Result<Ct> {
        let mut d = self.ct.duplicate();
        self.inner.backend.drop_to_level(&mut d, level)?;
        Ok(self.wrap(d))
    }

    fn encode_padded(
        &self,
        values: &[f64],
        scale: f64,
        level: usize,
    ) -> Result<fides_client::RawPlaintext> {
        let slots = self.ct.slots();
        if values.len() > slots {
            return Err(FidesError::Client(format!(
                "plaintext operand has {} values but the ciphertext packs {slots} slots",
                values.len()
            )));
        }
        let mut padded = values.to_vec();
        padded.resize(slots, 0.0);
        Ok(self.inner.client.encode_real(&padded, scale, level)?)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $try_method:ident, $what:literal) => {
        impl $trait<&Ct> for &Ct {
            type Output = Ct;
            fn $method(self, rhs: &Ct) -> Ct {
                self.$try_method(rhs)
                    .unwrap_or_else(|e| panic!(concat!("homomorphic ", $what, " failed: {}"), e))
            }
        }
        impl $trait<Ct> for Ct {
            type Output = Ct;
            fn $method(self, rhs: Ct) -> Ct {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Ct> for Ct {
            type Output = Ct;
            fn $method(self, rhs: &Ct) -> Ct {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Ct> for &Ct {
            type Output = Ct;
            fn $method(self, rhs: Ct) -> Ct {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add, try_add, "add");
forward_binop!(Sub, sub, try_sub, "sub");
forward_binop!(Mul, mul, try_mul, "mul");

macro_rules! forward_scalar_binop {
    ($trait:ident, $method:ident, $expr:expr, $what:literal) => {
        impl $trait<f64> for &Ct {
            type Output = Ct;
            fn $method(self, rhs: f64) -> Ct {
                let f: fn(&Ct, f64) -> crate::Result<Ct> = $expr;
                f(self, rhs)
                    .unwrap_or_else(|e| panic!(concat!("homomorphic ", $what, " failed: {}"), e))
            }
        }
        impl $trait<f64> for Ct {
            type Output = Ct;
            fn $method(self, rhs: f64) -> Ct {
                $trait::$method(&self, rhs)
            }
        }
    };
}

forward_scalar_binop!(Add, add, |ct, c| ct.try_add_scalar(c), "scalar add");
forward_scalar_binop!(Sub, sub, |ct, c| ct.try_add_scalar(-c), "scalar sub");
forward_scalar_binop!(Mul, mul, |ct, c| ct.try_mul_scalar(c), "scalar mul");

impl Add<&Ct> for f64 {
    type Output = Ct;
    fn add(self, rhs: &Ct) -> Ct {
        rhs + self
    }
}

impl Add<Ct> for f64 {
    type Output = Ct;
    fn add(self, rhs: Ct) -> Ct {
        &rhs + self
    }
}

impl Mul<&Ct> for f64 {
    type Output = Ct;
    fn mul(self, rhs: &Ct) -> Ct {
        rhs * self
    }
}

impl Mul<Ct> for f64 {
    type Output = Ct;
    fn mul(self, rhs: Ct) -> Ct {
        &rhs * self
    }
}

impl Sub<&Ct> for f64 {
    type Output = Ct;
    fn sub(self, rhs: &Ct) -> Ct {
        -rhs + self
    }
}

impl Sub<Ct> for f64 {
    type Output = Ct;
    fn sub(self, rhs: Ct) -> Ct {
        -&rhs + self
    }
}

macro_rules! forward_plain_binop {
    ($trait:ident, $method:ident, $try_method:ident, $what:literal) => {
        impl $trait<&[f64]> for &Ct {
            type Output = Ct;
            fn $method(self, rhs: &[f64]) -> Ct {
                self.$try_method(rhs)
                    .unwrap_or_else(|e| panic!(concat!("homomorphic ", $what, " failed: {}"), e))
            }
        }
        impl $trait<&[f64]> for Ct {
            type Output = Ct;
            fn $method(self, rhs: &[f64]) -> Ct {
                $trait::$method(&self, rhs)
            }
        }
    };
}

forward_plain_binop!(Add, add, try_add_plain, "plaintext add");
forward_plain_binop!(Mul, mul, try_mul_plain, "plaintext mul");

impl Neg for &Ct {
    type Output = Ct;
    fn neg(self) -> Ct {
        self.try_neg()
            .unwrap_or_else(|e| panic!("homomorphic negate failed: {e}"))
    }
}

impl Neg for Ct {
    type Output = Ct;
    fn neg(self) -> Ct {
        -&self
    }
}
