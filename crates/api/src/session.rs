//! Client-side session handles for the serving layer.
//!
//! A [`Session`] is the **thin-client view** of a [`CkksEngine`]: it speaks
//! the wire protocol of `fides_client::wire` — exporting the engine's
//! evaluation keys as a keygen upload, encrypting request operands, and
//! decrypting responses — without ever exposing the secret key to the
//! server side (paper §III-B: security rests entirely with the client).

use std::sync::Arc;

use fides_client::wire::{
    params_fingerprint, EvalRequest, EvalResponse, OpProgram, SessionRequest,
};
use fides_core::{FidesError, Result};

use crate::engine::CkksEngine;

/// The client half of an engine, packaged for a serving endpoint.
///
/// Cloning is cheap (the underlying session state is shared with the
/// engine).
///
/// ```
/// use fides_api::CkksEngine;
/// use fides_client::wire::{OpProgram, ProgramOp};
///
/// let engine = CkksEngine::builder().log_n(10).levels(3).seed(9).build()?;
/// let session = engine.session();
/// // Keygen upload: what the server must hold to serve this tenant.
/// let open = session.session_request(&[])?;
/// assert_eq!(open.params_hash, session.params_hash());
/// // An evaluation request: one input, squared.
/// let mut p = OpProgram::new(1);
/// let sq = p.push(ProgramOp::Square { a: 0 });
/// p.output(sq);
/// let req = session.eval_request(7, &[&[0.5, -0.25]], &p)?;
/// assert_eq!(req.session_id, 7);
/// assert_eq!(req.inputs.len(), 1);
/// # Ok::<(), fides_api::FidesError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Session {
    engine: CkksEngine,
}

impl Session {
    pub(crate) fn new(engine: CkksEngine) -> Self {
        Self { engine }
    }

    /// The parameter fingerprint a server will check this tenant against.
    pub fn params_hash(&self) -> u64 {
        params_fingerprint(self.engine.inner.client.params())
    }

    /// Builds the keygen upload for this session: the engine's
    /// relinearization, rotation and conjugation keys, plus `plains` —
    /// plaintext operands (values, level) the server should preload into
    /// its evaluation-domain cache (e.g. model weights), each encoded at
    /// the ladder-exact constant scale for its level.
    ///
    /// Values are padded to the next power of two — the engine's canonical
    /// packing, shared with [`Session::eval_request`] and
    /// [`CkksEngine::encrypt`](crate::CkksEngine::encrypt) — so a
    /// plaintext's packing matches request inputs of the same value count
    /// (a program's `MulPlain` requires matching slot packings).
    ///
    /// The secret key never leaves the engine.
    ///
    /// # Errors
    ///
    /// [`FidesError::NotEnoughLevels`] for a plaintext at level 0,
    /// [`FidesError::Client`] when plaintext values exceed the ring's slot
    /// capacity.
    pub fn session_request(&self, plains: &[(&[f64], usize)]) -> Result<SessionRequest> {
        let inner = &self.engine.inner;
        let backend = inner.backend.as_ref();
        let mut plaintexts = Vec::with_capacity(plains.len());
        for (values, level) in plains {
            let scale = fides_core::const_scale_for(backend, *level)?;
            plaintexts.push(inner.encode_padded_real(values, scale, *level)?);
        }
        Ok(SessionRequest {
            params_hash: self.params_hash(),
            relin: inner.raw_keys.relin.clone(),
            rotations: inner.raw_keys.rotations.clone(),
            conjugation: inner.raw_keys.conj.clone(),
            plaintexts,
        })
    }

    /// Encrypts `inputs` (each a value vector, padded to the engine's
    /// canonical next-power-of-two packing and encrypted at the top level)
    /// into an evaluation request carrying `program`.
    ///
    /// An input composes with a preloaded session plaintext (`MulPlain`)
    /// when both were built from the same value count — the shared padding
    /// policy then gives them identical slot packings.
    ///
    /// # Errors
    ///
    /// [`FidesError::Client`] when a value vector exceeds the slot
    /// capacity.
    pub fn eval_request(
        &self,
        session_id: u64,
        inputs: &[&[f64]],
        program: &OpProgram,
    ) -> Result<EvalRequest> {
        let inner = &self.engine.inner;
        let level = self.engine.max_level();
        let scale = inner.backend.standard_scale(level);
        let mut cts = Vec::with_capacity(inputs.len());
        for values in inputs {
            let pt = inner.encode_padded_real(values, scale, level)?;
            let raw = {
                let mut rng = inner.rng.lock().unwrap_or_else(|e| e.into_inner());
                inner.client.encrypt(&pt, &inner.pk, &mut *rng)?
            };
            cts.push(raw);
        }
        Ok(EvalRequest {
            session_id,
            inputs: cts,
            program: program.clone(),
        })
    }

    /// Decrypts a server response; `lens[i]` is the number of meaningful
    /// values in output `i` (decoded vectors are truncated to it; pass the
    /// ring's slot capacity to keep everything).
    ///
    /// # Errors
    ///
    /// [`FidesError::Client`] when the response carries a server error or
    /// `lens` doesn't match the output count; decryption errors otherwise.
    pub fn decrypt_response(
        &self,
        response: &EvalResponse,
        lens: &[usize],
    ) -> Result<Vec<Vec<f64>>> {
        if let Some(err) = &response.error {
            return Err(FidesError::Client(format!(
                "server rejected request: {err}"
            )));
        }
        if lens.len() != response.outputs.len() {
            return Err(FidesError::Client(format!(
                "response carries {} outputs but {} lengths were supplied",
                response.outputs.len(),
                lens.len()
            )));
        }
        let inner = &self.engine.inner;
        response
            .outputs
            .iter()
            .zip(lens)
            .map(|(raw, &len)| {
                let pt = inner.client.decrypt(raw, &inner.sk)?;
                let mut vals = inner.client.decode_real(&pt)?;
                vals.truncate(len);
                Ok(vals)
            })
            .collect()
    }

    /// Encrypts one request per entry of `batches` and pipelines the whole
    /// burst over `client` with
    /// [`NetClient::eval_pipelined`](fides_client::net::NetClient::eval_pipelined),
    /// so later requests don't wait for earlier batch ticks.
    ///
    /// Returns one result per batch, in order. Per-request rejections
    /// (e.g. a load-shed tail under overload — see
    /// [`ClientError::Overloaded`](fides_client::ClientError::Overloaded))
    /// come back as `Err` entries without failing the burst.
    ///
    /// # Errors
    ///
    /// An outer `Err` means encryption failed or the connection itself
    /// broke.
    #[allow(clippy::type_complexity)]
    pub fn eval_many(
        &self,
        client: &mut fides_client::net::NetClient,
        session_id: u64,
        batches: &[&[&[f64]]],
        program: &OpProgram,
    ) -> Result<Vec<std::result::Result<EvalResponse, fides_client::ClientError>>> {
        let mut reqs = Vec::with_capacity(batches.len());
        for inputs in batches {
            reqs.push(self.eval_request(session_id, inputs, program)?);
        }
        client
            .eval_pipelined(&reqs)
            .map_err(|e| FidesError::Client(format!("pipelined eval failed: {e}")))
    }

    /// Writes this session's key material as a versioned persist stream
    /// (`fides_client::persist`): a params record followed by a session
    /// record carrying the same keygen upload
    /// [`Session::session_request`] would send. A tenant that exported
    /// its keys can re-attach to a restarted server without regenerating
    /// them — [`Session::import_keys`] reads the stream back into a
    /// [`SessionRequest`] for `open_session`. The secret key never
    /// appears in the stream.
    ///
    /// # Errors
    ///
    /// As [`Session::session_request`] for `plains`;
    /// [`FidesError::Client`] when the sink fails.
    pub fn export_keys<W: std::io::Write>(&self, w: W, plains: &[(&[f64], usize)]) -> Result<()> {
        use fides_client::persist::{kind, ParamsRecord, RecordWriter, SessionRecord};
        let upload = self.session_request(plains)?;
        let to_client = |e: fides_client::ClientError| FidesError::Client(e.to_string());
        let mut writer = RecordWriter::new(w).map_err(to_client)?;
        writer
            .record(
                kind::PARAMS,
                &ParamsRecord {
                    params_hash: upload.params_hash,
                }
                .encode(),
            )
            .map_err(to_client)?;
        writer
            .record(
                kind::SESSION,
                &SessionRecord {
                    id: 0,
                    device: 0,
                    weight: 1,
                    upload,
                }
                .encode(),
            )
            .map_err(to_client)?;
        writer.finish().map_err(to_client)?;
        Ok(())
    }

    /// Reads a [`Session::export_keys`] stream back into the keygen
    /// upload it carried, validating the stream's params record against
    /// the upload's own fingerprint. The result feeds straight into a
    /// server's `open_session`.
    ///
    /// # Errors
    ///
    /// [`FidesError::Client`] for truncation, corruption, a format
    /// version this build does not read, a missing or mismatched params
    /// record, or a stream without a session record.
    pub fn import_keys<R: std::io::Read>(r: R) -> Result<SessionRequest> {
        use fides_client::persist::{kind, ParamsRecord, RecordReader, SessionRecord};
        let to_client = |e: fides_client::ClientError| FidesError::Client(e.to_string());
        let mut reader = RecordReader::new(r).map_err(to_client)?;
        let mut params: Option<ParamsRecord> = None;
        let mut upload: Option<SessionRequest> = None;
        while let Some(rec) = reader.next_record().map_err(to_client)? {
            match rec.kind {
                kind::PARAMS => {
                    params = Some(ParamsRecord::decode(&rec.payload).map_err(to_client)?);
                }
                kind::SESSION => {
                    let sess = SessionRecord::decode(&rec.payload).map_err(to_client)?;
                    upload = Some(sess.upload);
                }
                other => {
                    return Err(FidesError::Client(format!(
                        "unexpected record kind {other} in a key export"
                    )))
                }
            }
        }
        let upload = upload
            .ok_or_else(|| FidesError::Client("key export carries no session record".into()))?;
        match params {
            Some(p) if p.params_hash == upload.params_hash => Ok(upload),
            Some(p) => Err(FidesError::Client(format!(
                "key export params fingerprint {:#018x} does not match its upload's {:#018x}",
                p.params_hash, upload.params_hash
            ))),
            None => Err(FidesError::Client(
                "key export carries no params record".into(),
            )),
        }
    }

    /// The engine this session fronts.
    pub fn engine(&self) -> &CkksEngine {
        &self.engine
    }
}

// The serving layer shares engines and sessions across request threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CkksEngine>();
    assert_send_sync::<Session>();
    assert_send_sync::<Arc<fides_core::CkksContext>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use fides_client::wire::ProgramOp;

    #[test]
    fn session_request_carries_engine_keys() {
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(3)
            .rotations(&[1, -2])
            .conjugation()
            .seed(3)
            .build()
            .unwrap();
        let s = e.session();
        let req = s.session_request(&[(&[1.0, 2.0][..], 2)]).unwrap();
        assert!(req.relin.is_some());
        assert_eq!(req.rotations.len(), 2);
        assert!(req.conjugation.is_some());
        assert_eq!(req.plaintexts.len(), 1);
        assert_eq!(req.plaintexts[0].level, 2);
        // Round-trips through the wire form.
        let back = SessionRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn eval_program_matches_handle_circuit() {
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(4)
            .seed(8)
            .build()
            .unwrap();
        let x = e.encrypt(&[0.5, -0.25, 0.125]).unwrap();
        let y = e.encrypt(&[0.1, 0.2, 0.3]).unwrap();

        // Handle circuit: (x * y + x) * 0.5
        let by_handles = (&x * &y + &x) * 0.5;

        let mut p = OpProgram::new(2);
        let m = p.push(ProgramOp::Mul { a: 0, b: 1 });
        let s = p.push(ProgramOp::Add { a: m, b: 0 });
        let h = p.push(ProgramOp::MulScalar { a: s, c: 0.5 });
        p.output(h);
        let by_program = e.eval_program(&[x.clone(), y.clone()], &[], &p).unwrap();

        let a = by_handles.to_raw().unwrap().to_bytes();
        let b = by_program[0].to_raw().unwrap().to_bytes();
        assert_eq!(a, b, "program execution must be bit-identical to handles");
    }

    #[test]
    fn preload_plain_feeds_mul_plain() {
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(3)
            .seed(2)
            .build()
            .unwrap();
        let x = e.encrypt(&[1.0, 2.0, 4.0]).unwrap();
        let w = e.preload_plain(&[0.5, 0.5, 0.5], e.max_level()).unwrap();
        let mut p = OpProgram::new(1);
        let m = p.push(ProgramOp::MulPlain { a: 0, plain: 0 });
        p.output(m);
        let out = e.eval_program(&[x], &[w], &p).unwrap();
        let got = e.decrypt(&out[0]).unwrap();
        for (g, want) in got.iter().zip([0.5, 1.0, 2.0]) {
            assert!((g - want).abs() < 1e-4, "{g} vs {want}");
        }
    }

    #[test]
    fn mul_plain_packing_mismatch_is_typed_error() {
        // 3 values pack 4 slots; 5 values pack 8 — multiplying across
        // packings must fail typed, never decode to garbage.
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(3)
            .seed(6)
            .build()
            .unwrap();
        let x = e.encrypt(&[1.0, 2.0, 4.0]).unwrap();
        let w = e.preload_plain(&[0.5; 5], e.max_level()).unwrap();
        let mut p = OpProgram::new(1);
        let m = p.push(ProgramOp::MulPlain { a: 0, plain: 0 });
        p.output(m);
        assert!(matches!(
            e.eval_program(&[x], &[w], &p),
            Err(FidesError::SlotMismatch { left: 4, right: 8 })
        ));
    }

    #[test]
    fn key_export_roundtrips_and_rejects_corruption() {
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(3)
            .rotations(&[1])
            .seed(4)
            .build()
            .unwrap();
        let s = e.session();
        let mut buf = Vec::new();
        s.export_keys(&mut buf, &[(&[1.0, 2.0][..], 2)]).unwrap();
        let back = Session::import_keys(&buf[..]).unwrap();
        assert_eq!(back, s.session_request(&[(&[1.0, 2.0][..], 2)]).unwrap());
        // A flipped payload bit fails the record CRC, typed.
        let mut corrupt = buf.clone();
        corrupt[40] ^= 0x01;
        assert!(matches!(
            Session::import_keys(&corrupt[..]),
            Err(FidesError::Client(_))
        ));
        // Truncation is typed, never a panic.
        assert!(matches!(
            Session::import_keys(&buf[..buf.len() - 5]),
            Err(FidesError::Client(_))
        ));
    }

    #[test]
    fn bad_response_is_typed_error() {
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(2)
            .seed(1)
            .build()
            .unwrap();
        let s = e.session();
        let failed = EvalResponse::failed("missing rotation key");
        assert!(matches!(
            s.decrypt_response(&failed, &[]),
            Err(FidesError::Client(_))
        ));
        let empty = EvalResponse::ok(vec![]);
        assert!(s.decrypt_response(&empty, &[]).unwrap().is_empty());
        assert!(s.decrypt_response(&empty, &[4]).is_err(), "arity mismatch");
    }
}
