//! The engine: builder, session state, encrypt/decrypt.

use std::sync::{Arc, Mutex};

use fides_client::{ClientContext, KeyGenerator, RawPublicKey, SecretKey};
use fides_core::backend::{EvalBackend, GpuSimBackend};
use fides_core::cpu_ref::CpuBackend;
use fides_core::{
    adapter, BootstrapConfig, Bootstrapper, CkksContext, CkksParameters, FidesError, FusionConfig,
    Result,
};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim, SimStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ct::Ct;

/// Which execution substrate the engine builds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// The paper-faithful simulated-GPU pipeline (kernels, streams, timing).
    #[default]
    GpuSim,
    /// The plain-CPU reference implementation of the same math.
    Cpu,
}

/// The engine's key material in client (wire) form, retained so sessions
/// can be exported to a serving endpoint (see [`Session`](crate::Session)).
pub(crate) struct RawEvalKeys {
    pub(crate) relin: Option<fides_client::RawSwitchingKey>,
    pub(crate) rotations: Vec<(i32, fides_client::RawSwitchingKey)>,
    pub(crate) conj: Option<fides_client::RawSwitchingKey>,
}

/// Everything one encrypted session owns. [`Ct`] handles share it by `Arc`,
/// so ciphertexts can be combined with plain operators without threading an
/// engine reference around.
pub(crate) struct EngineInner {
    pub(crate) client: ClientContext,
    pub(crate) sk: SecretKey,
    pub(crate) pk: RawPublicKey,
    pub(crate) backend: Box<dyn EvalBackend>,
    pub(crate) rng: Mutex<StdRng>,
    pub(crate) raw_keys: RawEvalKeys,
}

impl EngineInner {
    /// Validates slot capacity and pads `values` to the engine's canonical
    /// packing — the next power of two — before encoding. This is the
    /// **single** padding policy shared by encryption, plaintext
    /// preloading and the wire session layer, so slot packings always
    /// match across the engine and serving paths (CKKS packing makes the
    /// slot count part of the encoding; mismatched packings would decode
    /// to garbage, not errors).
    pub(crate) fn encode_padded_real(
        &self,
        values: &[f64],
        scale: f64,
        level: usize,
    ) -> Result<fides_client::RawPlaintext> {
        let max_slots = self.client.n() / 2;
        if values.len() > max_slots {
            return Err(FidesError::Client(format!(
                "operand has {} values but the ring packs {max_slots} slots",
                values.len()
            )));
        }
        let mut padded = values.to_vec();
        padded.resize(values.len().next_power_of_two().max(1), 0.0);
        Ok(self.client.encode_real(&padded, scale, level)?)
    }
}

// Manual impl: the derived form would dump the secret key (and megabytes of
// key material) into any `{:?}` log line.
impl std::fmt::Debug for EngineInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineInner")
            .field("backend", &self.backend.name())
            .field("max_level", &self.backend.max_level())
            .field("n", &self.client.n())
            .field("sk", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// A complete CKKS session: parameters, simulator, server context, client
/// context, and evaluation keys, constructed in one validated step.
///
/// Cloning is cheap (the session state is shared).
#[derive(Clone, Debug)]
pub struct CkksEngine {
    pub(crate) inner: Arc<EngineInner>,
}

/// Builder for [`CkksEngine`] — see [`CkksEngine::builder`].
#[derive(Clone, Debug)]
pub struct CkksEngineBuilder {
    log_n: usize,
    levels: usize,
    scale_bits: u32,
    first_mod_bits: u32,
    dnum: Option<usize>,
    limb_batch: Option<usize>,
    fusion: Option<FusionConfig>,
    num_streams: Option<usize>,
    num_devices: Option<usize>,
    graph_exec: Option<bool>,
    sched_v2: Option<bool>,
    workers: Option<usize>,
    device: DeviceSpec,
    exec_mode: ExecMode,
    seed: u64,
    backend: BackendChoice,
    rotations: Vec<i32>,
    conjugation: bool,
    bootstrap: Option<BootstrapConfig>,
}

impl CkksEngine {
    /// Starts a builder with the library defaults:
    /// `[log N, L, Δ] = [12, 6, 2^40]`, simulated RTX 4090, functional
    /// execution, the GPU-sim backend, and no rotation keys.
    ///
    /// ```
    /// use fides_api::CkksEngine;
    ///
    /// let engine = CkksEngine::builder()
    ///     .log_n(10)
    ///     .levels(4)
    ///     .scale_bits(40)
    ///     .rotations(&[1])
    ///     .seed(1)
    ///     .build()?;
    /// let x = engine.encrypt(&[1.0, 2.0, 3.0, 4.0])?;
    /// let shifted = x.rotate(1)?;
    /// assert!((engine.decrypt(&shifted)?[0] - 2.0).abs() < 1e-4);
    /// # Ok::<(), fides_api::FidesError>(())
    /// ```
    pub fn builder() -> CkksEngineBuilder {
        CkksEngineBuilder {
            log_n: 12,
            levels: 6,
            scale_bits: 40,
            first_mod_bits: 60,
            dnum: None,
            limb_batch: None,
            fusion: None,
            num_streams: None,
            num_devices: None,
            graph_exec: None,
            sched_v2: None,
            workers: None,
            device: DeviceSpec::rtx_4090(),
            exec_mode: ExecMode::Functional,
            seed: 0,
            backend: BackendChoice::GpuSim,
            rotations: Vec::new(),
            conjugation: false,
            bootstrap: None,
        }
    }

    /// Encrypts real values into a session ciphertext at the top level.
    ///
    /// The slot count is padded up to the next power of two; [`decrypt`]
    /// returns exactly `values.len()` entries.
    ///
    /// # Errors
    ///
    /// [`FidesError::Client`] when the (padded) value count exceeds the
    /// ring's `N/2` slot capacity.
    ///
    /// [`decrypt`]: CkksEngine::decrypt
    pub fn encrypt(&self, values: &[f64]) -> Result<Ct> {
        self.encrypt_at(values, self.max_level())
    }

    /// Encrypts real values at an explicit `level` of the chain.
    ///
    /// # Errors
    ///
    /// As [`CkksEngine::encrypt`], plus [`FidesError::LevelOutOfRange`].
    pub fn encrypt_at(&self, values: &[f64], level: usize) -> Result<Ct> {
        if level > self.max_level() {
            return Err(FidesError::LevelOutOfRange {
                level,
                max: self.max_level(),
            });
        }
        let scale = self.inner.backend.standard_scale(level);
        let pt = self.inner.encode_padded_real(values, scale, level)?;
        let raw = {
            let mut rng = self.inner.rng.lock().unwrap_or_else(|e| e.into_inner());
            self.inner.client.encrypt(&pt, &self.inner.pk, &mut *rng)?
        };
        let ct = self.inner.backend.load(&raw)?;
        Ok(Ct {
            inner: Arc::clone(&self.inner),
            ct,
            len: values.len(),
        })
    }

    /// Decrypts a session ciphertext, returning as many values as were
    /// encrypted into it.
    ///
    /// # Errors
    ///
    /// Backend `store` failures (e.g. a handle from another session).
    pub fn decrypt(&self, ct: &Ct) -> Result<Vec<f64>> {
        let raw = self.inner.backend.store(&ct.ct)?;
        let pt = self.inner.client.decrypt(&raw, &self.inner.sk)?;
        let mut out = self.inner.client.decode_real(&pt)?;
        out.truncate(ct.len);
        Ok(out)
    }

    /// The active backend.
    pub fn backend(&self) -> &dyn EvalBackend {
        self.inner.backend.as_ref()
    }

    /// Short name of the active backend (`"gpu-sim"`, `"cpu-reference"`).
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend.name()
    }

    /// Maximum level `L` of the modulus chain.
    pub fn max_level(&self) -> usize {
        self.inner.backend.max_level()
    }

    /// Slot capacity `N/2`.
    pub fn max_slots(&self) -> usize {
        self.inner.client.n() / 2
    }

    /// Minimum level a bootstrapped ciphertext comes back at, when the
    /// session was built with bootstrapping.
    pub fn min_bootstrap_level(&self) -> Option<usize> {
        self.inner.backend.min_bootstrap_level()
    }

    /// Bootstrap: refreshes an exhausted ciphertext back to computing depth
    /// (ModRaise → CoeffToSlot → ApproxModEval → SlotToCoeff). The session
    /// must have been built with [`bootstrap_slots`] (or
    /// [`bootstrap_config`]); both backends support it and agree bit for
    /// bit.
    ///
    /// ```
    /// use fides_api::{BackendChoice, CkksEngine};
    ///
    /// let engine = CkksEngine::builder()
    ///     .log_n(10)
    ///     .levels(18)
    ///     .scale_bits(50)
    ///     .first_mod_bits(55)
    ///     .dnum(3)
    ///     .backend(BackendChoice::Cpu)
    ///     .bootstrap_slots(4)
    ///     .seed(7)
    ///     .build()?;
    /// let values = [0.25, -0.125, 0.0625, 0.2];
    /// // Encrypt at the *bottom* of the chain: no multiplications left...
    /// let exhausted = engine.encrypt_at(&values, 0)?;
    /// // ...bootstrap back to computing depth and keep going.
    /// let refreshed = engine.bootstrap(&exhausted)?;
    /// assert!(refreshed.level() >= engine.min_bootstrap_level().unwrap());
    /// let squared = refreshed.try_square()?;
    /// let got = engine.decrypt(&squared)?;
    /// assert!((got[0] - 0.0625).abs() < 1e-3);
    /// # Ok::<(), fides_api::FidesError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`FidesError::Unsupported`] when the session has no bootstrapping
    /// material, [`FidesError::MissingKey`] for missing rotation keys.
    ///
    /// [`bootstrap_slots`]: CkksEngineBuilder::bootstrap_slots
    /// [`bootstrap_config`]: CkksEngineBuilder::bootstrap_config
    pub fn bootstrap(&self, ct: &Ct) -> Result<Ct> {
        ct.bootstrap()
    }

    /// Simulated-device name, when the backend models a device.
    pub fn device_name(&self) -> Option<String> {
        self.inner.backend.device_name()
    }

    /// Snapshot of the simulated-device statistics ledger, when timed.
    pub fn sim_stats(&self) -> Option<SimStats> {
        self.inner.backend.sim_stats()
    }

    /// Simulated-device makespan in µs (device-wide sync), when timed.
    /// The standard timing idiom is two calls around the measured section.
    pub fn sync_time_us(&self) -> Option<f64> {
        self.inner.backend.sync_time_us()
    }

    /// Scheduling-pass counters (graphs planned, kernels fused), when the
    /// backend runs the stream-graph engine.
    pub fn sched_stats(&self) -> Option<fides_core::SchedStats> {
        self.inner.backend.sched_stats()
    }

    /// Runs `f` as **one deferred-execution graph**: every operation inside
    /// records into a single kernel graph, so the scheduling pass fuses and
    /// interleaves across op boundaries before replaying onto the stream
    /// timeline. On backends without graph execution (CPU reference) `f`
    /// simply runs.
    ///
    /// # Errors
    ///
    /// Whatever `f` reports; the recorded graph is still executed (the work
    /// already happened).
    pub fn eval_scope<R>(&self, f: impl FnOnce() -> Result<R>) -> Result<R> {
        let began = self.inner.backend.graph_begin();
        // A panicking closure must not leak the open region: close it
        // discarding the recording on unwind.
        struct AbortGuard<'a> {
            backend: &'a dyn EvalBackend,
            armed: bool,
        }
        impl Drop for AbortGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.backend.graph_abort();
                }
            }
        }
        let mut guard = AbortGuard {
            backend: self.inner.backend.as_ref(),
            armed: began,
        };
        let r = f();
        if began {
            guard.armed = false;
            self.inner.backend.graph_end();
        }
        r
    }

    /// Evaluates `op` over a batch of ciphertexts inside a single graph:
    /// the per-ciphertext kernel schedules interleave round-robin across
    /// the device streams instead of serializing op by op — the batching
    /// the ROADMAP's heavy-traffic serving story needs.
    ///
    /// # Errors
    ///
    /// The first error `op` reports (remaining items are skipped).
    pub fn eval_batch(&self, cts: &[Ct], op: impl Fn(&Ct) -> Result<Ct>) -> Result<Vec<Ct>> {
        self.eval_scope(|| cts.iter().map(&op).collect())
    }

    /// Evaluates a request-program circuit (the serving layer's
    /// [`OpProgram`](fides_client::wire::OpProgram) register machine) over
    /// session ciphertexts, inside one evaluation graph.
    ///
    /// This is the single-tenant twin of the multi-tenant server's request
    /// path: both call [`fides_core::exec_program`] under the identical
    /// standard-ladder policy, so results are bit-identical to the same
    /// request served by `fides-serve`.
    ///
    /// `plains` are preloaded plaintext operands for the program's
    /// `MulPlain` ops (see [`CkksEngine::preload_plain`]).
    ///
    /// # Errors
    ///
    /// [`FidesError::Client`] for structurally invalid programs; the usual
    /// evaluation errors (missing keys, exhausted levels) otherwise.
    pub fn eval_program(
        &self,
        inputs: &[Ct],
        plains: &[fides_core::BackendPt],
        program: &fides_client::wire::OpProgram,
    ) -> Result<Vec<Ct>> {
        let len = inputs.iter().map(|ct| ct.len()).max().unwrap_or(0);
        let backend_inputs: Vec<_> = inputs
            .iter()
            .map(|ct| ct.backend_ct().duplicate())
            .collect();
        let outs = self.eval_scope(|| {
            fides_core::exec_program(self.inner.backend.as_ref(), backend_inputs, plains, program)
        })?;
        Ok(outs
            .into_iter()
            .map(|ct| Ct {
                inner: Arc::clone(&self.inner),
                ct,
                len,
            })
            .collect())
    }

    /// Encodes `values` at the ladder-exact constant scale for `level` and
    /// preloads them into the backend's evaluation-domain plaintext cache —
    /// the operand form a program's `MulPlain` consumes (multiply, rescale,
    /// land exactly back on the standard-scale ladder).
    ///
    /// Values are zero-padded to the next power of two — the same packing
    /// [`CkksEngine::encrypt`] applies — so the operand matches ciphertexts
    /// that encrypted the same value count (CKKS packing makes the slot
    /// count part of the encoding).
    ///
    /// # Errors
    ///
    /// [`FidesError::NotEnoughLevels`] at level 0 (a `MulPlain` there could
    /// never rescale), [`FidesError::Client`] when `values` exceed the slot
    /// capacity.
    pub fn preload_plain(&self, values: &[f64], level: usize) -> Result<fides_core::BackendPt> {
        let backend = self.inner.backend.as_ref();
        let scale = fides_core::const_scale_for(backend, level)?;
        let raw = self.inner.encode_padded_real(values, scale, level)?;
        backend.load_plain(&raw)
    }

    /// The client half of this engine as a serving-layer tenant: a handle
    /// that exports the session's evaluation keys as a
    /// [`SessionRequest`](fides_client::wire::SessionRequest), encrypts
    /// request inputs, and decrypts responses — everything a thin client
    /// needs to talk to a `fides-serve` endpoint.
    pub fn session(&self) -> crate::Session {
        crate::Session::new(self.clone())
    }
}

impl CkksEngineBuilder {
    /// log2 of the ring degree `N`.
    pub fn log_n(mut self, log_n: usize) -> Self {
        self.log_n = log_n;
        self
    }

    /// Multiplicative depth (number of scaling primes).
    pub fn levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// log2 of the encoding scale `Δ`.
    pub fn scale_bits(mut self, scale_bits: u32) -> Self {
        self.scale_bits = scale_bits;
        self
    }

    /// Bits of the first (decryption) modulus and the auxiliary primes.
    pub fn first_mod_bits(mut self, bits: u32) -> Self {
        self.first_mod_bits = bits;
        self
    }

    /// Key-switching digit count (default: `min(3, L + 1)`).
    pub fn dnum(mut self, dnum: usize) -> Self {
        self.dnum = Some(dnum);
        self
    }

    /// Limbs per kernel launch (GPU-sim backend; §III-F.1).
    pub fn limb_batch(mut self, batch: usize) -> Self {
        self.limb_batch = Some(batch);
        self
    }

    /// Kernel fusion toggles (GPU-sim backend; §III-F.5). The
    /// `elementwise` flag controls the graph-level fusion pass.
    pub fn fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = Some(fusion);
        self
    }

    /// Stream count limb batches cycle over (GPU-sim backend; default 16).
    pub fn num_streams(mut self, streams: usize) -> Self {
        self.num_streams = Some(streams);
        self
    }

    /// Simulated device count (default 1). The engine itself always
    /// evaluates on one device; the knob flows into the parameter set,
    /// where the serving layer shards tenants across that many device
    /// workers and the plan cache keys on the topology.
    pub fn num_devices(mut self, devices: usize) -> Self {
        self.num_devices = Some(devices);
        self
    }

    /// Enables/disables the recorded-graph execution engine (GPU-sim
    /// backend; default on). Off = eager per-op dispatch, the A/B baseline.
    pub fn graph_exec(mut self, enabled: bool) -> Self {
        self.graph_exec = Some(enabled);
        self
    }

    /// Enables/disables scheduler v2 — dependency-aware stream scheduling
    /// plus the memory liveness pass (GPU-sim backend; default on). Off =
    /// the v1 modulo stream remap, the A/B baseline `BENCH_PR5.json`
    /// gates against. Bit-identical either way.
    pub fn sched_v2(mut self, enabled: bool) -> Self {
        self.sched_v2 = Some(enabled);
        self
    }

    /// Worker threads for limb-parallel execution (CPU backend; default:
    /// `FIDES_WORKERS` or the machine's parallelism). Results are
    /// bit-identical at every worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// The simulated device model (GPU-sim backend).
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Functional (math runs) or cost-only (timing-only) execution
    /// (GPU-sim backend).
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Seed for key generation and encryption randomness. Sessions with the
    /// same seed and parameters are fully reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the execution backend.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Declares slot shifts the session will rotate by (keys are generated
    /// at build time; rotating by an undeclared shift reports
    /// [`FidesError::MissingKey`]).
    pub fn rotations(mut self, shifts: &[i32]) -> Self {
        self.rotations.extend_from_slice(shifts);
        self
    }

    /// Generates the conjugation key.
    pub fn conjugation(mut self) -> Self {
        self.conjugation = true;
        self
    }

    /// Prepares bootstrapping for ciphertexts of `slots` slots: generates
    /// the Chebyshev/DFT material and every rotation key the pipeline
    /// needs. Works on both backends — refreshed ciphertexts are
    /// bit-identical across them.
    pub fn bootstrap_slots(self, slots: usize) -> Self {
        self.bootstrap_config(BootstrapConfig::for_slots(slots))
    }

    /// Prepares bootstrapping with an explicit configuration (transform
    /// budgets, approximation degree). Works on both backends.
    pub fn bootstrap_config(mut self, config: BootstrapConfig) -> Self {
        self.bootstrap = Some(config);
        self
    }

    /// Builds the session: validates parameters, generates the prime
    /// chains, constructs the simulator and server context (GPU-sim), runs
    /// key generation, and uploads every evaluation key.
    ///
    /// # Errors
    ///
    /// [`FidesError::InvalidParams`] for inconsistent parameters,
    /// [`FidesError::Unsupported`] for capability mismatches (e.g.
    /// bootstrapping on the CPU backend).
    pub fn build(self) -> Result<CkksEngine> {
        let dnum = self.dnum.unwrap_or_else(|| 3.min(self.levels + 1));
        if self.scale_bits >= self.first_mod_bits {
            return Err(FidesError::InvalidParams(
                "scale must be smaller than the first modulus".into(),
            ));
        }
        // `CkksParameters::new` validates against its default first-modulus
        // size, so re-check the cap the override must respect here.
        if self.first_mod_bits > 60 {
            return Err(FidesError::InvalidParams(
                "first modulus limited to 60 bits".into(),
            ));
        }
        let mut params = CkksParameters::new(self.log_n, self.levels, self.scale_bits, dnum)?
            .with_first_mod_bits(self.first_mod_bits);
        if let Some(batch) = self.limb_batch {
            params = params.with_limb_batch(batch);
        }
        if let Some(fusion) = self.fusion {
            params = params.with_fusion(fusion);
        }
        if let Some(streams) = self.num_streams {
            params = params.with_num_streams(streams);
        }
        if let Some(devices) = self.num_devices {
            params = params.with_num_devices(devices);
        }
        if let Some(graph) = self.graph_exec {
            params = params.with_graph_exec(graph);
        }
        if let Some(v2) = self.sched_v2 {
            params = params.with_sched_v2(v2);
        }
        let raw = params.to_raw();
        let client = ClientContext::new(raw.clone());
        let mut kg = KeyGenerator::new(&client, self.seed);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let relin = kg.relinearization_key(&sk);

        // Bootstrapping needs its circuit's rotation keys (computed from the
        // transform structure alone) and the conjugation key on either
        // backend; the heavyweight precomputation happens after the backend
        // exists, so the encoded diagonals land in its native form.
        let mut shifts = self.rotations.clone();
        if let Some(config) = &self.bootstrap {
            shifts.extend(fides_core::boot::required_rotations(raw.n(), config));
        }
        let rot_keys = dedup_rotation_keys(&mut kg, &sk, &shifts);
        let conj = (self.conjugation || self.bootstrap.is_some()).then(|| kg.conjugation_key(&sk));

        let backend: Box<dyn EvalBackend> = match self.backend {
            BackendChoice::GpuSim => {
                let gpu = GpuSim::new(self.device, self.exec_mode);
                let ctx = CkksContext::from_raw(params, raw, gpu);
                let keys = adapter::load_eval_keys(&ctx, Some(&relin), &rot_keys, conj.as_ref())?;
                let mut backend = GpuSimBackend::new(ctx, keys);
                if let Some(config) = self.bootstrap {
                    let boot = Bootstrapper::new(&backend, &client, config)?;
                    backend = backend.with_bootstrapper(boot);
                }
                Box::new(backend)
            }
            BackendChoice::Cpu => {
                let mut backend = CpuBackend::new(raw);
                if let Some(workers) = self.workers {
                    backend = backend.with_workers(workers);
                }
                backend.set_relin_key(relin.clone());
                for (shift, key) in &rot_keys {
                    backend.insert_rotation_key(*shift, key.clone());
                }
                if let Some(conj) = &conj {
                    backend.set_conj_key(conj.clone());
                }
                if let Some(config) = self.bootstrap {
                    let boot = Bootstrapper::new(&backend, &client, config)?;
                    backend.set_bootstrapper(boot);
                }
                Box::new(backend)
            }
        };

        // Encryption randomness is derived from (but distinct from) the key
        // generation seed, so sessions are reproducible end to end.
        let rng = Mutex::new(StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15));
        Ok(CkksEngine {
            inner: Arc::new(EngineInner {
                client,
                sk,
                pk,
                backend,
                rng,
                raw_keys: RawEvalKeys {
                    relin: Some(relin),
                    rotations: rot_keys,
                    conj,
                },
            }),
        })
    }
}

fn dedup_rotation_keys(
    kg: &mut KeyGenerator<'_>,
    sk: &SecretKey,
    shifts: &[i32],
) -> Vec<(i32, fides_client::RawSwitchingKey)> {
    let mut seen = std::collections::BTreeSet::new();
    shifts
        .iter()
        .filter(|&&k| k != 0 && seen.insert(k))
        .map(|&k| (k, kg.rotation_key(sk, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_parameters() {
        assert!(matches!(
            CkksEngine::builder().log_n(3).build(),
            Err(FidesError::InvalidParams(_))
        ));
        assert!(matches!(
            CkksEngine::builder().levels(0).build(),
            Err(FidesError::InvalidParams(_))
        ));
        assert!(matches!(
            CkksEngine::builder().scale_bits(60).build(),
            Err(FidesError::InvalidParams(_))
        ));
    }

    #[test]
    fn bootstrap_rejects_shallow_chains_on_both_backends() {
        // 3 levels cannot host the transform + ApproxModEval budget; the
        // builder surfaces the validation error instead of panicking later.
        for backend in [BackendChoice::GpuSim, BackendChoice::Cpu] {
            let r = CkksEngine::builder()
                .log_n(10)
                .levels(3)
                .backend(backend)
                .bootstrap_slots(8)
                .build();
            assert!(matches!(r, Err(FidesError::InvalidParams(_))));
        }
    }

    #[test]
    fn eval_batch_runs_one_graph_across_ops() {
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(3)
            .num_streams(8)
            .seed(3)
            .build()
            .unwrap();
        let cts: Vec<_> = (0..4)
            .map(|i| e.encrypt(&[i as f64, 0.5]).unwrap())
            .collect();
        let before = e.sched_stats().unwrap().graphs;
        let doubled = e.eval_batch(&cts, |ct| ct.try_mul_int(2)).unwrap();
        let after = e.sched_stats().unwrap().graphs;
        assert_eq!(after - before, 1, "whole batch = one planned graph");
        for (i, ct) in doubled.iter().enumerate() {
            let got = e.decrypt(ct).unwrap();
            assert!((got[0] - 2.0 * i as f64).abs() < 1e-4);
        }
        // eval_scope passes errors through but still closes the graph.
        let err =
            e.eval_scope(|| -> Result<()> { Err(FidesError::Unsupported("synthetic".into())) });
        assert!(matches!(err, Err(FidesError::Unsupported(_))));
        let x = e.encrypt(&[1.0]).unwrap();
        assert!(e.decrypt(&x).is_ok(), "engine still usable after error");
    }

    #[test]
    fn workers_knob_reaches_cpu_backend() {
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(2)
            .backend(BackendChoice::Cpu)
            .workers(2)
            .seed(4)
            .build()
            .unwrap();
        assert!(e.sched_stats().is_none(), "no graph engine on the CPU path");
        let x = e.encrypt(&[0.25]).unwrap();
        let y = x.try_add(&x).unwrap();
        assert!((e.decrypt(&y).unwrap()[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn engine_exposes_session_metadata() {
        let e = CkksEngine::builder()
            .log_n(10)
            .levels(3)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(e.backend_name(), "gpu-sim");
        assert_eq!(e.max_level(), 3);
        assert_eq!(e.max_slots(), 512);
        assert!(e.device_name().unwrap().contains("4090"));
        assert!(e.sim_stats().is_some());
        let c = CkksEngine::builder()
            .log_n(10)
            .levels(3)
            .backend(BackendChoice::Cpu)
            .build()
            .unwrap();
        assert_eq!(c.backend_name(), "cpu-reference");
        assert!(c.sim_stats().is_none());
    }
}
