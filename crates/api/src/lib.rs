//! # fides-api — the `CkksEngine` session API
//!
//! One object that owns the whole FIDESlib pipeline. The raw layered API
//! (client contexts, key generators, the adapter, device ciphertexts) stays
//! public for benchmarks and research code, but everyday encrypted programs
//! go through here:
//!
//! ```
//! use fides_api::CkksEngine;
//!
//! let engine = CkksEngine::builder().log_n(11).levels(4).scale_bits(40).seed(42).build()?;
//! let x = engine.encrypt(&[1.0, 2.0, 3.0])?;
//! let y = engine.encrypt(&[0.5, 0.25, 0.125])?;
//! let z = &x * &y + &x * 2.0; // relinearize / rescale / align automatically
//! let out = engine.decrypt(&z)?;
//! assert!((out[1] - (2.0 * 0.25 + 2.0 * 2.0)).abs() < 1e-4);
//! # Ok::<(), fides_core::FidesError>(())
//! ```
//!
//! The engine is **backend-pluggable** ([`EvalBackend`]): the default runs
//! on the simulated GPU exactly like the raw API; `BackendChoice::Cpu`
//! executes the identical RNS math limb-parallel on a worker pool,
//! which cross-checks the simulator and opens the door to real-hardware
//! backends.
//!
//! ## Deferred (graph) evaluation
//!
//! On the gpu-sim backend every op runs through the stream-graph engine
//! (`fides_core::sched`): kernels are recorded into a lazy graph, fused, and
//! replayed over the configured stream count. [`CkksEngine::eval_scope`]
//! widens one graph across several ops, and [`CkksEngine::eval_batch`]
//! evaluates a batch of ciphertexts inside a single graph so their kernels
//! interleave across streams. Knobs: `num_streams`, `fusion`, `graph_exec`,
//! and `workers` (CPU backend) on the builder.
//!
//! ## Scale management
//!
//! Ciphertexts stay on the FLEXIBLEAUTO-style standard-scale ladder:
//! ciphertext and plaintext multiplications rescale immediately, scalar
//! multiplications encode the constant at the ladder-exact scale, and
//! additions align operand levels by dropping the higher operand. This is
//! the policy OpenFHE applies inside `EvalMult`; the raw layered API leaves
//! it to the caller.

#![deny(missing_docs)]

mod ct;
mod engine;
mod session;

pub use ct::Ct;
pub use engine::{BackendChoice, CkksEngine, CkksEngineBuilder};
pub use session::Session;

// The vocabulary types callers need alongside the engine.
pub use fides_core::backend::{BackendCt, BackendPt, EvalBackend};
pub use fides_core::{BootstrapConfig, FidesError, FusionConfig, Result, SchedStats};
pub use fides_gpu_sim::{DeviceSpec, ExecMode, SimStats, StreamStats};
