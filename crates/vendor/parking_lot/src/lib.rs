//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` calling convention the codebase relies on —
//! `lock()` without a `Result` — by recovering from poisoning (a panicked
//! holder does not poison these locks, matching parking_lot semantics).

#![warn(missing_docs)]

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Reader–writer lock with parking_lot's panic-free signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
