//! Offline stand-in for the `mio` crate: a readiness-polling event loop
//! over `std::net`.
//!
//! The build image has no registry access, so this vendored crate provides
//! the mio API *shape* — explicit [`Token`]s, [`Interest`] registration, a
//! [`Poll`]/[`Events`] readiness loop, and non-blocking
//! [`net::TcpListener`]/[`net::TcpStream`] wrappers — implemented with
//! portable `std::net` probing instead of epoll/kqueue:
//!
//! * **stream readability** is probed with a 1-byte `peek` (`WouldBlock`
//!   means not ready; `Ok(0)` means the peer closed, which *is* readable —
//!   the next `read` returns EOF);
//! * **listener readability** is probed by attempting a non-blocking
//!   `accept`; an accepted connection is stashed inside the shared
//!   listener state and handed back by the next [`net::TcpListener::accept`]
//!   call, so no connection is ever dropped by the probe;
//! * **writability** is reported whenever it is registered for — there is
//!   no portable probe for socket send-buffer space, so writers must treat
//!   `WouldBlock` from `write` as "keep the rest for the next event-loop
//!   turn" (which is how real mio applications are written anyway).
//!
//! [`Poll::poll`] scans registered sources every 500 µs until an event
//! fires or the timeout elapses. That makes this a *polling* stand-in, not
//! an epoll: per-turn latency is bounded by the scan interval, which is
//! plenty for the serving layer's tick-granular scheduler and for tests,
//! while keeping the loop structure byte-for-byte portable to real mio.

use std::io;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long [`Poll::poll`] sleeps between readiness scans.
const SCAN_INTERVAL: Duration = Duration::from_micros(500);

/// Associates a registered event source with the events it produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Interest in readiness events, registered per source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in readable readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in writable readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether this interest includes readable readiness.
    pub fn is_readable(self) -> bool {
        self.0 & Interest::READABLE.0 != 0
    }

    /// Whether this interest includes writable readiness.
    pub fn is_writable(self) -> bool {
        self.0 & Interest::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// Readiness event types.
pub mod event {
    use super::Token;

    /// One readiness event: a token plus the readiness it observed.
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        pub(crate) token: Token,
        pub(crate) readable: bool,
        pub(crate) writable: bool,
    }

    impl Event {
        /// The token the source was registered with.
        pub fn token(&self) -> Token {
            self.token
        }

        /// Whether the source is ready for reading (or has hit EOF/error,
        /// which the next read surfaces).
        pub fn is_readable(&self) -> bool {
            self.readable
        }

        /// Whether the source is ready for writing.
        pub fn is_writable(&self) -> bool {
            self.writable
        }
    }
}

/// A batch of readiness events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<event::Event>,
    capacity: usize,
}

impl Events {
    /// An event buffer holding at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, event::Event> {
        self.inner.iter()
    }

    /// Whether the last poll produced no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer (done automatically by [`Poll::poll`]).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a event::Event;
    type IntoIter = std::slice::Iter<'a, event::Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// What the registry keeps per registered source: a probe that reports
/// current readiness without consuming any data (opaque; produced by the
/// [`Source`] implementations in [`net`]).
pub struct Probe(ProbeKind);

enum ProbeKind {
    Listener(std::sync::Arc<ListenerShared>),
    Stream(std::sync::Arc<StreamShared>),
}

impl Probe {
    fn is_readable(&self) -> bool {
        match &self.0 {
            // Try a non-blocking accept; stash success so the caller's
            // `accept()` gets it. An accept error other than WouldBlock is
            // readable too — the caller's accept surfaces it.
            ProbeKind::Listener(shared) => {
                if !shared
                    .stash
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty()
                {
                    return true;
                }
                match shared.inner.accept() {
                    Ok(conn) => {
                        shared
                            .stash
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(conn);
                        true
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                    Err(_) => true,
                }
            }
            ProbeKind::Stream(shared) => {
                let mut byte = [0u8; 1];
                match shared.inner.peek(&mut byte) {
                    Ok(_) => true, // data buffered, or EOF (read returns 0)
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                    Err(_) => true, // socket error: surfaces on read
                }
            }
        }
    }
}

struct Registration {
    token: Token,
    interest: Interest,
    probe: Probe,
}

/// Registers event sources with a [`Poll`] instance.
pub struct Registry {
    sources: Mutex<Vec<Registration>>,
}

impl Registry {
    /// Registers an event source with a token and interest set.
    /// Re-registering the same source replaces its previous registration.
    pub fn register<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let probe = source.probe();
        let mut sources = self.sources.lock().unwrap_or_else(|e| e.into_inner());
        sources.retain(|r| r.token != token);
        sources.push(Registration {
            token,
            interest,
            probe,
        });
        Ok(())
    }

    /// Changes the interest set of an already-registered token (mio's
    /// `reregister`). Unknown tokens register fresh.
    pub fn reregister<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.register(source, token, interest)
    }

    /// Removes a source's registration by token.
    pub fn deregister_token(&self, token: Token) {
        self.sources
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|r| r.token != token);
    }
}

/// An event source registrable with a [`Registry`].
pub trait Source {
    /// The readiness probe the registry retains (shares state with the
    /// source, so probing never steals data from it).
    fn probe(&self) -> Probe;
}

/// The event loop: polls registered sources for readiness.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// A fresh poll instance with an empty registry.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                sources: Mutex::new(Vec::new()),
            },
        })
    }

    /// The registry sources are registered with.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Scans registered sources until at least one event fires or
    /// `timeout` elapses (`None` waits until an event fires). Events land
    /// in `events`, cleared first, at most its capacity per call.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            {
                let sources = self
                    .registry
                    .sources
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                for reg in sources.iter() {
                    if events.inner.len() >= events.capacity {
                        break;
                    }
                    let readable = reg.interest.is_readable() && reg.probe.is_readable();
                    // No portable send-buffer probe exists; writable
                    // interest is level-triggered every scan and writers
                    // absorb `WouldBlock` (see module docs).
                    let writable = reg.interest.is_writable();
                    if readable || writable {
                        events.inner.push(event::Event {
                            token: reg.token,
                            readable,
                            writable,
                        });
                    }
                }
            }
            if !events.is_empty() {
                return Ok(());
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Ok(());
                }
            }
            std::thread::sleep(SCAN_INTERVAL);
        }
    }
}

/// Non-blocking TCP types mirroring `mio::net`.
pub mod net {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{Shutdown, SocketAddr, ToSocketAddrs};

    /// A non-blocking TCP listener registrable with a [`Poll`].
    pub struct TcpListener {
        pub(crate) shared: std::sync::Arc<ListenerShared>,
    }

    impl TcpListener {
        /// Binds a non-blocking listener.
        pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpListener> {
            let inner = std::net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener {
                shared: std::sync::Arc::new(ListenerShared {
                    inner,
                    stash: Mutex::new(Vec::new()),
                }),
            })
        }

        /// The bound address (for `bind("127.0.0.1:0")` ephemeral ports).
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.shared.inner.local_addr()
        }

        /// Accepts one pending connection, non-blocking: connections the
        /// readiness probe already accepted are handed back first. The
        /// returned stream is non-blocking.
        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let stashed = self
                .shared
                .stash
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop();
            let (stream, addr) = match stashed {
                Some(conn) => conn,
                None => self.shared.inner.accept()?,
            };
            stream.set_nonblocking(true)?;
            Ok((
                TcpStream {
                    shared: std::sync::Arc::new(StreamShared { inner: stream }),
                },
                addr,
            ))
        }
    }

    impl Source for TcpListener {
        fn probe(&self) -> Probe {
            Probe(ProbeKind::Listener(std::sync::Arc::clone(&self.shared)))
        }
    }

    /// A non-blocking TCP stream registrable with a [`Poll`].
    pub struct TcpStream {
        pub(crate) shared: std::sync::Arc<StreamShared>,
    }

    impl TcpStream {
        /// Opens a non-blocking connection (the connect itself is issued
        /// blocking for simplicity; only I/O afterwards is non-blocking).
        pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            let stream = std::net::TcpStream::connect(addr)?;
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true)?;
            Ok(TcpStream {
                shared: std::sync::Arc::new(StreamShared { inner: stream }),
            })
        }

        /// The peer's address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.shared.inner.peer_addr()
        }

        /// Shuts the connection down.
        pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
            self.shared.inner.shutdown(how)
        }
    }

    impl Source for TcpStream {
        fn probe(&self) -> Probe {
            Probe(ProbeKind::Stream(std::sync::Arc::clone(&self.shared)))
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            (&self.shared.inner).read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.shared.inner).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.shared.inner).flush()
        }
    }

    impl Read for &TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            (&self.shared.inner).read(buf)
        }
    }

    impl Write for &TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.shared.inner).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.shared.inner).flush()
        }
    }
}

/// Shared state between a listener handle and its registry probe: the
/// probe's non-blocking accepts stash connections here for the handle.
pub struct ListenerShared {
    inner: std::net::TcpListener,
    #[allow(clippy::type_complexity)]
    stash: Mutex<Vec<(std::net::TcpStream, std::net::SocketAddr)>>,
}

/// Shared state between a stream handle and its registry probe.
pub struct StreamShared {
    inner: std::net::TcpStream,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);

    #[test]
    fn listener_and_stream_readiness_roundtrip() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);

        let mut listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, LISTENER, Interest::READABLE)
            .unwrap();

        // Nothing pending yet: a short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty(), "no connection pending");

        // A connect makes the listener readable; accept yields the conn.
        let mut client = net::TcpStream::connect(addr).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == LISTENER && e.is_readable()));
        let (mut server_side, _) = listener.accept().unwrap();

        // Register the client readable; server writes; client becomes
        // readable and reads the bytes back.
        poll.registry()
            .register(&mut client, CLIENT, Interest::READABLE)
            .unwrap();
        server_side.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_readable()));
        let mut buf = [0u8; 4];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // EOF reports readable too (read then returns 0).
        drop(server_side);
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_readable()));
        assert_eq!(client.read(&mut buf).unwrap(), 0, "clean EOF");
    }

    #[test]
    fn writable_interest_is_level_triggered_and_deregister_works() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = net::TcpStream::connect(addr).unwrap();

        poll.registry()
            .register(&mut client, CLIENT, Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_writable()));

        // Dropping writable interest silences the token.
        poll.registry()
            .reregister(&mut client, CLIENT, Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty(), "no data, no writable interest");

        poll.registry().deregister_token(CLIENT);
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn interest_combinators() {
        let rw = Interest::READABLE | Interest::WRITABLE;
        assert!(rw.is_readable() && rw.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
