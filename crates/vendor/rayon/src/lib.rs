//! Offline stand-in for `rayon`, backed by `std::thread` scoped threads.
//!
//! Implements exactly the API subset the workspace uses for limb-parallel
//! execution: `par_iter`/`par_iter_mut` over slices (with `enumerate` and
//! `for_each`), `into_par_iter().map(..).collect()` over index ranges,
//! [`scope`], [`join`], and a [`ThreadPool`] whose `install` pins the worker
//! count for a region.
//!
//! Work is split into one contiguous chunk per worker, each chunk processed
//! in index order, and (for `collect`) chunk results concatenated in index
//! order — so results are **bit-identical at every worker count**, which the
//! cross-backend determinism tests rely on.
//!
//! The default worker count comes from the `FIDES_WORKERS` environment
//! variable when set (the CI matrix sweeps it), otherwise from
//! `std::thread::available_parallelism()`.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`]
    /// (0 = no override).
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel operations on this thread use.
pub fn current_num_threads() -> usize {
    let over = POOL_OVERRIDE.with(|c| c.get());
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var("FIDES_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type of [`ThreadPoolBuilder::build`] (construction cannot fail in
/// the stand-in; the type exists for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool (infallible in the stand-in).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads,
        })
    }
}

/// A handle fixing the worker count for regions run under
/// [`ThreadPool::install`]. The stand-in spawns scoped threads per operation
/// rather than keeping persistent workers; only the count is pinned.
#[derive(Debug)]
pub struct ThreadPool {
    /// Configured worker count (0 = resolve default at use).
    threads: usize,
}

impl ThreadPool {
    /// The worker count operations under this pool use.
    pub fn current_num_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            current_num_threads()
        }
    }

    /// Runs `f` with this pool's worker count installed on the calling
    /// thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let n = self.current_num_threads();
        let _restore = Restore(POOL_OVERRIDE.with(|c| c.replace(n)));
        f()
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined task panicked");
        (ra, rb)
    })
}

/// A fork–join scope: tasks spawned on it all complete before [`scope`]
/// returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that must finish before the scope ends.
    ///
    /// (Divergence from rayon: the closure takes no `&Scope` argument;
    /// nested spawns need their own [`scope`].)
    pub fn spawn<F: FnOnce() + Send + 'scope>(&self, f: F) {
        self.inner.spawn(f);
    }
}

/// Creates a fork–join scope; returns once every spawned task finished.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Ceil-divide `len` work items into per-worker chunk size.
///
/// The split is capped at the host's physical parallelism: the stand-in
/// spawns a fresh scoped thread per chunk (no persistent workers), so
/// threads beyond the core count cost spawn overhead without gaining
/// anything. The *configured* worker count still decides the cap's upper
/// bound, and the chunk→output mapping stays deterministic either way
/// (disjoint slots, index order).
fn chunk_size(len: usize) -> usize {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = current_num_threads().min(host).max(1);
    len.div_ceil(workers).max(1)
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

/// Index-carrying variant of [`ParIter`].
pub struct ParIterEnumerate<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIterEnumerate<'a, T> {
        ParIterEnumerate { slice: self.slice }
    }

    /// Applies `f` to every item across the workers.
    pub fn for_each(self, f: impl Fn(&T) + Sync) {
        self.enumerate().for_each(|(_, x)| f(x));
    }
}

impl<T: Sync> ParIterEnumerate<'_, T> {
    /// Applies `f` to every `(index, item)` pair across the workers.
    pub fn for_each(self, f: impl Fn((usize, &T)) + Sync) {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let chunk = chunk_size(len);
        if chunk >= len {
            for (i, x) in self.slice.iter().enumerate() {
                f((i, x));
            }
            return;
        }
        let f = &f;
        std::thread::scope(|s| {
            for (ci, part) in self.slice.chunks(chunk).enumerate() {
                let base = ci * chunk;
                s.spawn(move || {
                    for (off, x) in part.iter().enumerate() {
                        f((base + off, x));
                    }
                });
            }
        });
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

/// Index-carrying variant of [`ParIterMut`].
pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }

    /// Applies `f` to every item across the workers.
    pub fn for_each(self, f: impl Fn(&mut T) + Sync) {
        self.enumerate().for_each(|(_, x)| f(x));
    }
}

impl<T: Send> ParIterMutEnumerate<'_, T> {
    /// Applies `f` to every `(index, item)` pair across the workers.
    pub fn for_each(self, f: impl Fn((usize, &mut T)) + Sync) {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let chunk = chunk_size(len);
        if chunk >= len {
            for (i, x) in self.slice.iter_mut().enumerate() {
                f((i, x));
            }
            return;
        }
        let f = &f;
        std::thread::scope(|s| {
            for (ci, part) in self.slice.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                s.spawn(move || {
                    for (off, x) in part.iter_mut().enumerate() {
                        f((base + off, x));
                    }
                });
            }
        });
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

/// A mapped [`ParRange`], ready to [`collect`](ParRangeMap::collect) or
/// [`for_each`](ParRangeMap::for_each).
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl ParRange {
    /// Maps every index through `f`.
    pub fn map<R, F: Fn(usize) -> R + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Applies `f` to every index across the workers.
    pub fn for_each(self, f: impl Fn(usize) + Sync) {
        self.map(f).for_each(|()| {});
    }
}

impl<R: Send, F: Fn(usize) -> R + Sync> ParRangeMap<F> {
    /// Collects the mapped values in index order (deterministic at any
    /// worker count).
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let len = self.range.len();
        let chunk = chunk_size(len);
        if len == 0 || chunk >= len {
            let v: Vec<R> = self.range.map(&self.f).collect();
            return C::from(v);
        }
        let f = &self.f;
        let start = self.range.start;
        let parts: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..len.div_ceil(chunk))
                .map(|ci| {
                    let lo = start + ci * chunk;
                    let hi = (lo + chunk).min(self.range.end);
                    s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("joined task panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(len);
        for p in parts {
            out.extend(p);
        }
        C::from(out)
    }

    /// Applies the mapped computation for its effects only.
    pub fn for_each(self, sink: impl Fn(R) + Sync) {
        let len = self.range.len();
        if len == 0 {
            return;
        }
        let chunk = chunk_size(len);
        if chunk >= len {
            for i in self.range {
                sink((self.f)(i));
            }
            return;
        }
        let f = &self.f;
        let sink = &sink;
        let start = self.range.start;
        std::thread::scope(|s| {
            for ci in 0..len.div_ceil(chunk) {
                let lo = start + ci * chunk;
                let hi = (lo + chunk).min(self.range.end);
                s.spawn(move || {
                    for i in lo..hi {
                        sink(f(i));
                    }
                });
            }
        });
    }
}

/// Maps `0..len` through `f` on at most `workers` threads, collecting the
/// results in index order (`workers == 0` resolves the ambient count).
///
/// This is the bounded fan-out the scheduler's plan-miss path uses: the
/// caller picks an explicit worker cap per call site instead of mutating
/// the thread-local pool override, so concurrent callers with different
/// caps cannot race each other's settings. Determinism matches the rest
/// of the stand-in — one contiguous chunk per worker, chunk results
/// concatenated in index order.
pub fn map_bounded<T, F>(workers: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = if workers == 0 {
        current_num_threads()
    } else {
        workers
    };
    if len == 0 {
        return Vec::new();
    }
    if workers <= 1 || len == 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(workers).max(1);
    if chunk >= len {
        return (0..len).map(f).collect();
    }
    let f = &f;
    let parts: Vec<Vec<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..len.div_ceil(chunk))
            .map(|ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(len);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("joined task panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// `par_iter` over shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: 'a;
    /// Creates a parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// `par_iter_mut` over exclusive slices.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type.
    type Item: 'a;
    /// Creates a parallel iterator over `&mut self`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// The rayon-style glob-import module.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn par_iter_mut_visits_every_index_once() {
        for workers in [1, 2, 8] {
            let mut v = vec![0usize; 103];
            pool(workers).install(|| {
                v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 3);
            });
            for (i, x) in v.iter().enumerate() {
                assert_eq!(*x, i * 3, "workers={workers}");
            }
        }
    }

    #[test]
    fn range_collect_preserves_order_at_any_worker_count() {
        let expect: Vec<usize> = (0..57).map(|i| i * i).collect();
        for workers in [1, 3, 8, 64] {
            let got: Vec<usize> =
                pool(workers).install(|| (0..57).into_par_iter().map(|i| i * i).collect());
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn par_iter_counts_all_items() {
        let hits = AtomicUsize::new(0);
        let v: Vec<u32> = (0..41).collect();
        pool(4).install(|| {
            v.par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 41);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn scope_waits_for_spawns() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn install_pins_and_restores_worker_count() {
        let p = pool(3);
        let inside = p.install(current_num_threads);
        assert_eq!(inside, 3);
        let p2 = pool(5);
        p.install(|| {
            assert_eq!(current_num_threads(), 3);
            assert_eq!(p2.install(current_num_threads), 5);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn map_bounded_is_order_preserving_at_any_cap() {
        let expect: Vec<usize> = (0..91).map(|i| i * 7).collect();
        for workers in [0, 1, 2, 8, 64] {
            let got = map_bounded(workers, 91, |i| i * 7);
            assert_eq!(got, expect, "workers={workers}");
        }
        assert!(map_bounded(4, 0, |i| i).is_empty());
    }

    #[test]
    fn map_bounded_ignores_pool_override() {
        // An explicit cap wins over the ambient install — callers with
        // different caps must not interfere through the thread-local.
        let got = pool(1).install(|| map_bounded(8, 33, |i| i + 1));
        assert_eq!(got, (1..34).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut v: Vec<u64> = Vec::new();
        v.par_iter_mut().for_each(|_| {});
        let got: Vec<u64> = (0..0).into_par_iter().map(|_| 1).collect();
        assert!(got.is_empty());
    }
}
