//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait, `any::<T>()`, range strategies, [`Just`],
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, `ProptestConfig`, and
//! the `proptest!` test-harness macro. The driver is a deterministic
//! fixed-seed exerciser (no shrinking): each test function runs
//! `config.cases` times over strategy-drawn inputs, plus a sweep of
//! adversarial boundary draws (0, 1, `MAX`, …) that real proptest finds
//! through shrinking.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The deterministic generator driving a test run.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
    /// Index of the current case; cases 0..N_EDGE bias draws to boundaries.
    case: u64,
}

/// Number of leading cases that draw boundary values where available.
const N_EDGE: u64 = 8;

impl TestRng {
    /// A fresh deterministic generator (fixed seed: runs are reproducible).
    pub fn deterministic() -> Self {
        Self {
            inner: StdRng::seed_from_u64(0x_F1DE_517B_D00D_FEED),
            case: 0,
        }
    }

    /// Advances to the next test case.
    pub fn next_case(&mut self) {
        self.case += 1;
    }

    /// True while the driver is in the boundary-sweep phase.
    fn edge_phase(&self) -> bool {
        self.case < N_EDGE
    }

    fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value (with boundary bias in the edge phase).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.edge_phase() {
                    let edges: [$t; 4] = [0, 1, <$t>::MAX, <$t>::MAX - 1];
                    return edges[(rng.bits() % 4) as usize];
                }
                let mut v: $t = 0;
                let mut shift = 0u32;
                while shift < <$t>::BITS {
                    v |= (rng.bits() as $t) << shift;
                    shift += 64;
                }
                v
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_arbitrary_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.edge_phase() {
                    // MIN + 1 rather than MIN: |MIN| overflows, and real
                    // proptest essentially never emits exactly MIN either.
                    let edges: [$t; 5] = [0, 1, -1, <$t>::MIN + 1, <$t>::MAX];
                    return edges[(rng.bits() % 5) as usize];
                }
                <$u as Arbitrary>::arbitrary(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.edge_phase() {
            let edges = [0.0f64, 1.0, -1.0, f64::MIN_POSITIVE, 1e300, -1e300];
            return edges[(rng.bits() % 6) as usize];
        }
        // Finite values across magnitudes: mantissa in [-1, 1], exponent
        // in [-300, 300].
        let mantissa = (rng.bits() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let exp = (rng.bits() % 601) as i32 - 300;
        mantissa * 10f64.powi(exp)
    }
}

struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> impl Strategy<Value = T> {
    AnyStrategy::<T>(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                if rng.edge_phase() {
                    let edges = [self.start, self.end - 1];
                    return edges[(rng.bits() % 2) as usize];
                }
                let span = (self.end - self.start) as u128;
                self.start + ((rng.bits() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if rng.edge_phase() {
                    let edges = [lo, hi];
                    return edges[(rng.bits() % 2) as usize];
                }
                let span = (hi - lo) as u128 + 1;
                lo + ((rng.bits() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                if rng.edge_phase() {
                    let edges = [self.start, self.end - 1];
                    return edges[(rng.bits() % 2) as usize];
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.bits() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if rng.edge_phase() {
                    let edges = [lo, hi];
                    return edges[(rng.bits() % 2) as usize];
                }
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.bits() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        if rng.edge_phase() {
            // Stay strictly inside the half-open bound.
            let edges = [
                self.start,
                self.start + (self.end - self.start) * (1.0 - 1e-12),
            ];
            return edges[(rng.bits() % 2) as usize];
        }
        let u = (rng.bits() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

/// A choice among boxed alternatives (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.bits() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Run configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Asserts a condition inside a property test (no early-return machinery in
/// this stand-in: behaves as `assert!` with the same message forms).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Chooses among strategies with uniform weight.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    { $body }
                    rng.next_case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.01f64..100.0).generate(&mut rng);
            assert!((0.01..100.0).contains(&f));
            rng.next_case();
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mut rng = TestRng::deterministic();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<u64>>(), vec![1, 2, 3]);
    }

    #[test]
    fn edge_phase_hits_boundaries() {
        let mut rng = TestRng::deterministic();
        let mut saw_extreme = false;
        for _ in 0..8 {
            let v: u64 = any::<u64>().generate(&mut rng);
            if v == 0 || v >= u64::MAX - 1 || v == 1 {
                saw_extreme = true;
            }
        }
        assert!(saw_extreme);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_macro_runs(a in any::<u64>(), b in 1u64..100) {
            prop_assert!((1..100).contains(&b));
            prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        }
    }
}
