//! Offline stand-in for the `bytes` crate: the [`Buf`] / [`BufMut`] cursor
//! subset the wire framing in `fides-client::raw` uses. Multi-byte integers
//! follow the real crate's conventions — big-endian for the plain getters /
//! putters, little-endian for the `_le` variants.

#![warn(missing_docs)]

/// Read cursor over a byte buffer (implemented for `&[u8]`, advancing it).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted (guard with [`Buf::remaining`]).
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64;
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    #[inline]
    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().unwrap())
    }

    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }

    #[inline]
    fn get_f64(&mut self) -> f64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        f64::from_be_bytes(head.try_into().unwrap())
    }
}

/// Write cursor appending to a growable buffer (implemented for `Vec<u8>`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64(&mut self, v: f64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64(-1234.5678);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64(), -1234.5678);
        assert_eq!(r.remaining(), 0);
    }
}
