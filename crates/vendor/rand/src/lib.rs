//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! small slice of the `rand 0.9` API the codebase uses: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], `random::<f64>()` and
//! `random_range(..)`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, statistically solid for the
//! sampling this library performs (uniform residues, ternary secrets,
//! Box–Muller Gaussians). **Not** a cryptographically secure generator; see
//! `fides-client`'s security notes.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be produced uniformly from raw generator output.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for u64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift rejection (Lemire).
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span || lo >= span.wrapping_neg() % span {
                        return self.start + hi as $t;
                    }
                }
            }
        }
    )*};
}

impl_range_uint!(u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let draw = (0..span).sample_from(rng);
        self.start.wrapping_add(draw as i64)
    }
}

/// The random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard uniform distribution.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.random_range(0..977u64);
            assert!(x < 977);
            let y: u32 = r.random_range(0..3u32);
            assert!(y < 3);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_f64_mean() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn dyn_compatible_through_unsized_param() {
        fn takes<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..10u64)
        }
        let mut r = StdRng::seed_from_u64(1);
        assert!(takes(&mut r) < 10);
    }
}
