//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace has no registry access and nothing in-tree serializes
//! through serde (the wire format is the hand-rolled binary framing in
//! `fides-client`), so `#[derive(Serialize, Deserialize)]` expands to
//! nothing. The attributes stay in the source so the real serde can be
//! swapped back in when a registry is available.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
