//! Offline stand-in for `serde`: empty marker traits plus no-op derives.
//!
//! Nothing in-tree serializes through serde (the client↔server wire format
//! is the explicit binary framing in `fides-client::raw`), so the derive
//! attributes are kept purely as forward-compatible annotations.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
