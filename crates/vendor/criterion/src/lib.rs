//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `fides-bench` benchmarks use —
//! `criterion_group!` / `criterion_main!`, benchmark groups, `iter` /
//! `iter_batched`, `Throughput`, `BenchmarkId` — with a simple wall-clock
//! driver: each routine is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window, and the mean time per
//! iteration (plus derived throughput) is printed. No statistics, plots or
//! comparison baselines — swap the real criterion back in when a registry
//! is available.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(600);

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter rendered into the id.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation for a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this driver).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Few iterations per setup.
    LargeInput,
    /// Many iterations per setup.
    SmallInput,
    /// One iteration per setup.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over a measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + WARMUP;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let end = start + MEASURE;
        while Instant::now() < end {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the timing).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_end = Instant::now() + WARMUP;
        while Instant::now() < warm_end {
            std::hint::black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < MEASURE {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            spent += t0.elapsed();
            iters += 1;
        }
        self.mean_ns = spent.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility; unused).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { mean_ns: f64::NAN };
        f(&mut b);
        let per_iter = b.mean_ns;
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.1} Melem/s", n as f64 / per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>12.1} MiB/s",
                    n as f64 / per_iter * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{}/{id:<40} {:>12.1} ns/iter{extra}", self.name, per_iter);
        self
    }

    /// Finishes the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Hint the optimizer to keep a value (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
