//! Server-side execution of client [`OpProgram`]s (the serving layer's
//! request circuits).
//!
//! A request program is a tiny register machine over backend ciphertexts
//! (see [`fides_client::wire`]). This module runs one against any
//! [`EvalBackend`] under the **standard-ladder policy** — exactly the policy
//! the `fides-api` operator overloads apply, so a program evaluated here is
//! bit-identical to the same circuit written against `CkksEngine`
//! ciphertext handles:
//!
//! * `Mul` / `Square` relinearize and **rescale immediately**, consuming one
//!   level;
//! * `MulScalar` / `MulPlain` multiply at the ladder-exact constant scale
//!   and rescale, consuming one level;
//! * binary ops align operand levels by dropping the higher operand
//!   (LevelReduce — exact);
//! * `AddScalar` / `MulInt` / `Negate` are exact and consume nothing.
//!
//! Both the multi-tenant server (`fides-serve`) and the single-tenant
//! engine entry point (`CkksEngine::eval_program`) call into this executor,
//! which is what makes "batched multi-tenant results ≡ serial engine
//! results" a structural property rather than a testing aspiration.

use fides_client::wire::{OpProgram, ProgramOp};

use crate::backend::{BackendCt, BackendPt, EvalBackend};
use crate::error::{FidesError, Result};

/// The ladder-exact constant scale for a multiplication consuming the prime
/// at `level`: `q_level · σ_{level-1} / σ_level`. Multiplying at this scale
/// and rescaling lands the result exactly on the standard-scale ladder.
///
/// # Errors
///
/// [`FidesError::NotEnoughLevels`] at level 0 (no prime left to consume).
pub fn const_scale_for(backend: &dyn EvalBackend, level: usize) -> Result<f64> {
    if level == 0 {
        return Err(FidesError::NotEnoughLevels {
            needed: 1,
            available: 0,
        });
    }
    let q_l = backend.modulus_value(level) as f64;
    Ok(q_l * backend.standard_scale(level - 1) / backend.standard_scale(level))
}

/// Aligns two operands to a common level by dropping the higher one (exact
/// LevelReduce), then applies `op`.
fn with_aligned(
    backend: &dyn EvalBackend,
    a: &BackendCt,
    b: &BackendCt,
    op: impl FnOnce(&BackendCt, &BackendCt) -> Result<BackendCt>,
) -> Result<BackendCt> {
    let (la, lb) = (a.level(), b.level());
    let target = la.min(lb);
    let dropped_a;
    let a = if la > target {
        let mut d = a.duplicate();
        backend.drop_to_level(&mut d, target)?;
        dropped_a = d;
        &dropped_a
    } else {
        a
    };
    let dropped_b;
    let b = if lb > target {
        let mut d = b.duplicate();
        backend.drop_to_level(&mut d, target)?;
        dropped_b = d;
        &dropped_b
    } else {
        b
    };
    op(a, b)
}

/// Executes `program` over `inputs` on `backend` under the standard-ladder
/// policy, returning the ciphertexts of the program's output registers in
/// order.
///
/// `plains` are the session's preloaded evaluation-domain plaintexts
/// (`MulPlain` operands); each must sit at the level its consuming
/// ciphertext has when the op runs, at the ladder-exact constant scale for
/// that level (see [`const_scale_for`]).
///
/// The program is validated structurally before any ciphertext math runs,
/// so a malformed request costs nothing on the device.
///
/// # Errors
///
/// [`FidesError::Client`] for structurally invalid programs (wrapping the
/// client-side [`ClientError::BadProgram`](fides_client::ClientError)), the
/// usual backend errors (missing keys, exhausted levels, level mismatches)
/// for valid programs whose ops cannot run.
pub fn exec_program(
    backend: &dyn EvalBackend,
    inputs: Vec<BackendCt>,
    plains: &[BackendPt],
    program: &OpProgram,
) -> Result<Vec<BackendCt>> {
    program.validate(plains.len())?;
    if inputs.len() != program.inputs as usize {
        return Err(FidesError::Client(format!(
            "program expects {} input ciphertexts, request carries {}",
            program.inputs,
            inputs.len()
        )));
    }
    let mut regs: Vec<BackendCt> = inputs;
    regs.reserve(program.ops.len());
    for op in &program.ops {
        let out = exec_op(backend, &regs, plains, op)?;
        regs.push(out);
    }
    Ok(program
        .outputs
        .iter()
        .map(|&r| regs[r as usize].duplicate())
        .collect())
}

fn exec_op(
    backend: &dyn EvalBackend,
    regs: &[BackendCt],
    plains: &[BackendPt],
    op: &ProgramOp,
) -> Result<BackendCt> {
    match *op {
        ProgramOp::Add { a, b } => {
            with_aligned(backend, &regs[a as usize], &regs[b as usize], |x, y| {
                backend.add(x, y)
            })
        }
        ProgramOp::Sub { a, b } => {
            with_aligned(backend, &regs[a as usize], &regs[b as usize], |x, y| {
                backend.sub(x, y)
            })
        }
        ProgramOp::Mul { a, b } => {
            let mut out = with_aligned(backend, &regs[a as usize], &regs[b as usize], |x, y| {
                backend.mul(x, y)
            })?;
            backend.rescale(&mut out)?;
            Ok(out)
        }
        ProgramOp::Square { a } => {
            let mut out = backend.square(&regs[a as usize])?;
            backend.rescale(&mut out)?;
            Ok(out)
        }
        ProgramOp::Negate { a } => backend.negate(&regs[a as usize]),
        ProgramOp::AddScalar { a, c } => backend.add_scalar(&regs[a as usize], c),
        ProgramOp::MulScalar { a, c } => {
            let ct = &regs[a as usize];
            let const_scale = const_scale_for(backend, ct.level())?;
            let mut out = backend.mul_scalar_at(ct, c, const_scale)?;
            backend.rescale(&mut out)?;
            Ok(out)
        }
        ProgramOp::MulInt { a, k } => backend.mul_int(&regs[a as usize], k),
        ProgramOp::Rotate { a, k } => backend.rotate(&regs[a as usize], k),
        ProgramOp::Conjugate { a } => backend.conjugate(&regs[a as usize]),
        ProgramOp::MulPlain { a, plain } => {
            let ct = &regs[a as usize];
            let pt = &plains[plain as usize];
            if pt.level() < ct.level() {
                return Err(FidesError::LevelMismatch {
                    left: ct.level(),
                    right: pt.level(),
                });
            }
            // Packing is part of the CKKS encoding: a slot-count mismatch
            // would multiply against a differently-packed polynomial and
            // decode to garbage rather than fail — reject it typed.
            if pt.slots() != ct.slots() {
                return Err(FidesError::SlotMismatch {
                    left: ct.slots(),
                    right: pt.slots(),
                });
            }
            let mut out = backend.mul_plain_pre(ct, pt)?;
            backend.rescale(&mut out)?;
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu_ref::CpuBackend;
    use fides_client::wire::OpProgram;
    use fides_client::{ClientContext, KeyGenerator, RawParams};
    use rand::SeedableRng;

    fn setup() -> (
        CpuBackend,
        ClientContext,
        fides_client::RawPublicKey,
        fides_client::SecretKey,
    ) {
        let raw = RawParams::generate(10, 4, 40, 60, 3);
        let client = ClientContext::new(raw.clone());
        let mut kg = KeyGenerator::new(&client, 5);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let mut backend = CpuBackend::new(raw);
        backend.set_relin_key(kg.relinearization_key(&sk));
        backend.insert_rotation_key(1, kg.rotation_key(&sk, 1));
        (backend, client, pk, sk)
    }

    fn encrypt(
        backend: &CpuBackend,
        client: &ClientContext,
        pk: &fides_client::RawPublicKey,
        values: &[f64],
        seed: u64,
    ) -> BackendCt {
        let level = backend.max_level();
        let pt = client
            .encode_real(values, backend.standard_scale(level), level)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        backend
            .load(&client.encrypt(&pt, pk, &mut rng).unwrap())
            .unwrap()
    }

    fn decrypt(
        backend: &CpuBackend,
        client: &ClientContext,
        sk: &fides_client::SecretKey,
        ct: &BackendCt,
    ) -> Vec<f64> {
        client
            .decode_real(&client.decrypt(&backend.store(ct).unwrap(), sk).unwrap())
            .unwrap()
    }

    #[test]
    fn program_matches_handwritten_circuit() {
        let (backend, client, pk, sk) = setup();
        let a = encrypt(&backend, &client, &pk, &[0.5, -0.25, 0.125, 0.0], 11);
        let b = encrypt(&backend, &client, &pk, &[0.1, 0.2, 0.3, 0.4], 12);

        // (a + b)² · 0.5 − b, rotated by 1.
        let mut p = OpProgram::new(2);
        let s = p.push(ProgramOp::Add { a: 0, b: 1 });
        let sq = p.push(ProgramOp::Square { a: s });
        let h = p.push(ProgramOp::MulScalar { a: sq, c: 0.5 });
        let d = p.push(ProgramOp::Sub { a: h, b: 1 });
        let r = p.push(ProgramOp::Rotate { a: d, k: 1 });
        p.output(r);

        let out = exec_program(&backend, vec![a, b], &[], &p).unwrap();
        assert_eq!(out.len(), 1);
        let got = decrypt(&backend, &client, &sk, &out[0]);
        let av = [0.5f64, -0.25, 0.125, 0.0];
        let bv = [0.1f64, 0.2, 0.3, 0.4];
        for (i, g) in got.iter().take(4).enumerate() {
            let j = (i + 1) % 4;
            let expect = (av[j] + bv[j]).powi(2) * 0.5 - bv[j];
            assert!((g - expect).abs() < 1e-3, "slot {i}: {g} vs {expect}");
        }
    }

    #[test]
    fn invalid_program_rejected_before_execution() {
        let (backend, client, pk, _sk) = setup();
        let a = encrypt(&backend, &client, &pk, &[0.5], 13);
        let mut p = OpProgram::new(1);
        p.push(ProgramOp::Add { a: 0, b: 9 });
        p.output(1);
        assert!(matches!(
            exec_program(&backend, vec![a], &[], &p),
            Err(FidesError::Client(_))
        ));
    }

    #[test]
    fn input_arity_checked() {
        let (backend, client, pk, _sk) = setup();
        let a = encrypt(&backend, &client, &pk, &[0.5], 14);
        let mut p = OpProgram::new(2);
        let s = p.push(ProgramOp::Add { a: 0, b: 1 });
        p.output(s);
        assert!(matches!(
            exec_program(&backend, vec![a], &[], &p),
            Err(FidesError::Client(_))
        ));
    }

    #[test]
    fn const_scale_matches_ladder() {
        let (backend, _client, _pk, _sk) = setup();
        let l = backend.max_level();
        let s = const_scale_for(&backend, l).unwrap();
        let q_l = backend.modulus_value(l) as f64;
        assert_eq!(
            s,
            q_l * backend.standard_scale(l - 1) / backend.standard_scale(l)
        );
        assert!(matches!(
            const_scale_for(&backend, 0),
            Err(FidesError::NotEnoughLevels { .. })
        ));
    }
}
