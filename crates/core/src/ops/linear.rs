//! Ciphertext × plaintext-matrix products via BSGS over diagonals, plus
//! rotate-and-add folding — the building blocks of CoeffToSlot/SlotToCoeff
//! (§III-F.7).
//!
//! Both routines are backend-generic: they drive any [`EvalBackend`] through
//! its trait surface (hoisted rotations, preloaded-plaintext products), so
//! the simulated-GPU pipeline and the CPU reference backend execute the
//! identical operation sequence and agree bit for bit.

use std::collections::BTreeMap;

use crate::backend::{BackendCt, BackendPt, EvalBackend};
use crate::error::{FidesError, Result};

/// One diagonal of a BSGS-decomposed matrix: the plaintext is the diagonal at
/// shift `giant·n1 + baby`, **pre-rotated** left by `−giant·n1` at
/// construction time (the standard BSGS trick), preloaded into the owning
/// backend's native plaintext form.
#[derive(Debug)]
pub struct BsgsEntry {
    /// Giant-step multiple (`shift / n1`).
    pub giant: usize,
    /// Baby-step offset (`shift % n1`).
    pub baby: usize,
    /// Pre-rotated encoded diagonal.
    pub pt: BackendPt,
}

/// A plaintext matrix in BSGS form.
#[derive(Debug)]
pub struct BsgsPlan {
    /// Baby-step count `n1`.
    pub n1: usize,
    /// All non-zero diagonals.
    pub entries: Vec<BsgsEntry>,
}

impl BsgsPlan {
    /// Baby shifts required by [`Self::apply`] (excluding 0).
    pub fn baby_shifts(&self) -> Vec<i32> {
        let mut s: Vec<i32> = self
            .entries
            .iter()
            .map(|e| e.baby as i32)
            .filter(|&b| b != 0)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Giant shifts required by [`Self::apply`] (excluding 0).
    pub fn giant_shifts(&self) -> Vec<i32> {
        let mut s: Vec<i32> = self
            .entries
            .iter()
            .map(|e| (e.giant * self.n1) as i32)
            .filter(|&g| g != 0)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// All rotation shifts this plan needs keys for.
    pub fn required_shifts(&self) -> Vec<i32> {
        let mut s = self.baby_shifts();
        s.extend(self.giant_shifts());
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Applies the matrix: `out = Σ_g rot_{g·n1}( Σ_b pt_{g,b} ⊙ rot_b(ct) )`,
    /// with the baby rotations hoisted (§III-F.6) and a single final rescale.
    ///
    /// # Errors
    ///
    /// Level mismatch with the encoded diagonals or missing rotation keys.
    pub fn apply(&self, backend: &dyn EvalBackend, ct: &BackendCt) -> Result<BackendCt> {
        let pt_level = self.entries[0].pt.level();
        // Tolerate inputs above the encoded level (LevelReduce down to it).
        let owned;
        let ct = if ct.level() > pt_level {
            let mut d = ct.duplicate();
            backend.drop_to_level(&mut d, pt_level)?;
            owned = d;
            &owned
        } else {
            ct
        };
        let level = ct.level();
        if pt_level != level {
            return Err(FidesError::LevelMismatch {
                left: level,
                right: pt_level,
            });
        }
        // Hoisted baby rotations (0 handled as a copy inside).
        let mut baby_shift_list = vec![0i32];
        baby_shift_list.extend(self.baby_shifts());
        let babies = backend.hoisted_rotations(ct, &baby_shift_list)?;
        let baby_index: BTreeMap<usize, usize> = baby_shift_list
            .iter()
            .enumerate()
            .map(|(pos, &b)| (b as usize, pos))
            .collect();

        // Group entries by giant step.
        let mut by_giant: BTreeMap<usize, Vec<&BsgsEntry>> = BTreeMap::new();
        for e in &self.entries {
            by_giant.entry(e.giant).or_default().push(e);
        }

        let mut acc: Option<BackendCt> = None;
        for (&giant, entries) in &by_giant {
            // Inner sum: Σ_b pt ⊙ baby_b at scale ct.scale · pt.scale.
            let mut inner: Option<BackendCt> = None;
            for e in entries {
                let term = backend.mul_plain_pre(&babies[baby_index[&e.baby]], &e.pt)?;
                inner = Some(match inner {
                    None => term,
                    Some(acc) => backend.add(&acc, &term)?,
                });
            }
            let inner = inner.expect("giant group has at least one diagonal");
            let rotated = if giant == 0 {
                inner
            } else {
                backend.rotate(&inner, (giant * self.n1) as i32)?
            };
            acc = Some(match acc {
                None => rotated,
                Some(a) => backend.add(&a, &rotated)?,
            });
        }
        let mut out = acc.expect("plan has at least one diagonal");
        backend.rescale(&mut out)?;
        Ok(out)
    }
}

/// Rotate-and-add folding: returns `Σ_{j=0}^{2^iterations − 1} rot(ct,
/// j·step)` using `iterations` rotations (the partial-sums step of sparse
/// bootstrapping).
///
/// # Errors
///
/// Missing rotation keys for `step·2^i`.
pub fn fold_rotations(
    backend: &dyn EvalBackend,
    ct: &BackendCt,
    step: i32,
    iterations: u32,
) -> Result<BackendCt> {
    let mut acc = ct.duplicate();
    for i in 0..iterations {
        let shift = step * (1 << i);
        let rotated = backend.rotate(&acc, shift)?;
        acc = backend.add(&acc, &rotated)?;
    }
    Ok(acc)
}
