//! Server-side CKKS operations (the `FIDESlib::CKKS` API surface of Fig. 1).
//!
//! | Paper operation | Rust API |
//! |---|---|
//! | `HAdd` | [`Ciphertext::add`](crate::Ciphertext::add) |
//! | `PtAdd` | [`Ciphertext::add_plain`](crate::Ciphertext::add_plain) |
//! | `ScalarAdd` | [`Ciphertext::add_scalar`](crate::Ciphertext::add_scalar) |
//! | `HMult` | [`Ciphertext::mul`](crate::Ciphertext::mul) |
//! | `HSquare` | [`Ciphertext::square`](crate::Ciphertext::square) |
//! | `PtMult` | [`Ciphertext::mul_plain`](crate::Ciphertext::mul_plain) |
//! | `ScalarMult` | [`Ciphertext::mul_scalar`](crate::Ciphertext::mul_scalar) |
//! | `Rescale` | [`Ciphertext::rescale_in_place`](crate::Ciphertext::rescale_in_place) |
//! | `HRotate` | [`Ciphertext::rotate`](crate::Ciphertext::rotate) |
//! | `HConjugate` | [`Ciphertext::conjugate`](crate::Ciphertext::conjugate) |
//! | `HoistedRotate` | [`Ciphertext::hoisted_rotations`](crate::Ciphertext::hoisted_rotations) |
//! | `KeySwitch`/`ModUp`/`ModDown` | internal (`ops::keyswitch`) |
//! | `Bootstrap` | [`Bootstrapper`](crate::boot::Bootstrapper) |

pub(crate) mod arith;
pub(crate) mod keyswitch;
pub(crate) mod linear;
pub(crate) mod mult;
pub(crate) mod rescale;
pub(crate) mod rotate;
