//! Rotations and conjugation: HRotate, HConjugate, HoistedRotate
//! (§III-F.6).

use std::sync::Arc;

use fides_client::{galois_for_conjugation, galois_for_rotation};

use crate::ciphertext::Ciphertext;
use crate::error::Result;
use crate::keys::{EvalKeySet, KeySwitchingKey};
use crate::ops::keyswitch::{key_switch_core, ksk_inner_product, mod_down, mod_up_digit};
use crate::poly::RNSPoly;

impl Ciphertext {
    /// HRotate: rotates slots **left** by `k` (negative `k` rotates right).
    ///
    /// # Errors
    ///
    /// Missing rotation key for the required Galois element.
    pub fn rotate(&self, k: i32, keys: &EvalKeySet) -> Result<Ciphertext> {
        if k == 0 {
            return Ok(self.duplicate());
        }
        let g = galois_for_rotation(k, self.context().n());
        let ksk = keys.rotation_key(g)?;
        Ok(self.apply_galois(g, ksk))
    }

    /// HConjugate: complex-conjugates every slot.
    ///
    /// # Errors
    ///
    /// Missing conjugation key.
    pub fn conjugate(&self, keys: &EvalKeySet) -> Result<Ciphertext> {
        let g = galois_for_conjugation(self.context().n());
        let ksk = keys.conj_key()?;
        Ok(self.apply_galois(g, ksk))
    }

    /// Core Galois transform: automorphism on both components followed by a
    /// key switch of the `c_1` part.
    pub(crate) fn apply_galois(&self, g: usize, ksk: &KeySwitchingKey) -> Ciphertext {
        let ctx = Arc::clone(self.context());
        let (c0, c1) = ctx.scheduled(|| {
            let a0 = self.c0.automorph_eval(g);
            let a1 = self.c1.automorph_eval(g);
            let (ks0, ks1) = key_switch_core(&a1, ksk);
            let mut c0 = a0;
            c0.add_assign_poly(&ks0);
            (c0, ks1)
        });
        Ciphertext {
            c0,
            c1,
            scale: self.scale,
            slots: self.slots,
            noise_log2: self.noise_log2 + 1.0,
        }
    }

    /// HoistedRotate: produces the rotations of `self` by every shift in
    /// `shifts`, performing the expensive decomposition + ModUp of `c_1`
    /// **once** (Halevi–Shoup hoisting, §III-F.6). Shift 0 returns a copy.
    ///
    /// # Errors
    ///
    /// Missing rotation key for any requested shift.
    pub fn hoisted_rotations(&self, shifts: &[i32], keys: &EvalKeySet) -> Result<Vec<Ciphertext>> {
        let ctx = Arc::clone(self.context());
        let n = ctx.n();
        // Check all keys up front.
        for &k in shifts {
            if k != 0 {
                keys.rotation_key(galois_for_rotation(k, n))?;
            }
        }
        let level = self.level();
        let digits = ctx.partition().digits_at_level(level);
        ctx.scheduled(|| {
            // Hoisted: decompose + ModUp once.
            let lifted: Vec<RNSPoly> = (0..digits).map(|j| mod_up_digit(&self.c1, j)).collect();

            let mut out = Vec::with_capacity(shifts.len());
            for &k in shifts {
                if k == 0 {
                    out.push(self.duplicate());
                    continue;
                }
                let g = galois_for_rotation(k, n);
                let ksk = keys.rotation_key(g)?;
                let mut acc0 = RNSPoly::zero(&ctx, level, true, fides_client::Domain::Eval);
                let mut acc1 = RNSPoly::zero(&ctx, level, true, fides_client::Domain::Eval);
                for (j, lift) in lifted.iter().enumerate() {
                    // Automorphism commutes with ModUp: permute the lifted
                    // digit.
                    let permuted = lift.automorph_eval(g);
                    ksk_inner_product(&mut acc0, &mut acc1, &permuted, ksk, j);
                }
                mod_down(&mut acc0);
                mod_down(&mut acc1);
                let mut c0 = self.c0.automorph_eval(g);
                c0.add_assign_poly(&acc0);
                out.push(Ciphertext {
                    c0,
                    c1: acc1,
                    scale: self.scale,
                    slots: self.slots,
                    noise_log2: self.noise_log2 + 1.0,
                });
            }
            Ok(out)
        })
    }
}
