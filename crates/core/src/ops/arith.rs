//! Additive operations: HAdd, HSub, PtAdd, ScalarAdd (Fig. 1 API surface).
//!
//! Each operation runs as one scheduled region of the stream-graph engine
//! ([`sched`](crate::sched)): the `c_0`/`c_1` limb-batch kernels are
//! recorded, the planner fuses the elementwise chains (both components of
//! one batch collapse into a single launch), and the plan replays onto the
//! stream timeline.

use std::sync::Arc;

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::error::{FidesError, Result};

impl Ciphertext {
    /// HAdd: homomorphic addition of two ciphertexts.
    ///
    /// # Errors
    ///
    /// Level/scale/slot mismatches.
    pub fn add(&self, other: &Ciphertext) -> Result<Ciphertext> {
        let mut out = self.duplicate();
        out.add_assign_ct(other)?;
        Ok(out)
    }

    /// In-place HAdd.
    ///
    /// # Errors
    ///
    /// Level/scale/slot mismatches.
    pub fn add_assign_ct(&mut self, other: &Ciphertext) -> Result<()> {
        self.check_compatible(other)?;
        let ctx = Arc::clone(self.context());
        ctx.scheduled(|| {
            self.c0.add_assign_poly(&other.c0);
            self.c1.add_assign_poly(&other.c1);
        });
        self.noise_log2 = self.noise_log2.max(other.noise_log2) + 0.5;
        Ok(())
    }

    /// HSub: homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// Level/scale/slot mismatches.
    pub fn sub(&self, other: &Ciphertext) -> Result<Ciphertext> {
        let mut out = self.duplicate();
        out.sub_assign_ct(other)?;
        Ok(out)
    }

    /// In-place HSub.
    ///
    /// # Errors
    ///
    /// Level/scale/slot mismatches.
    pub fn sub_assign_ct(&mut self, other: &Ciphertext) -> Result<()> {
        self.check_compatible(other)?;
        let ctx = Arc::clone(self.context());
        ctx.scheduled(|| {
            self.c0.sub_assign_poly(&other.c0);
            self.c1.sub_assign_poly(&other.c1);
        });
        self.noise_log2 = self.noise_log2.max(other.noise_log2) + 0.5;
        Ok(())
    }

    /// Negates the message.
    pub fn negate_assign(&mut self) {
        let ctx = Arc::clone(self.context());
        ctx.scheduled(|| {
            self.c0.neg_assign();
            self.c1.neg_assign();
        });
    }

    /// PtAdd: adds an encoded plaintext.
    ///
    /// # Errors
    ///
    /// Level/scale/slot mismatches.
    pub fn add_plain(&self, pt: &Plaintext) -> Result<Ciphertext> {
        let mut out = self.duplicate();
        out.add_plain_assign(pt)?;
        Ok(out)
    }

    /// In-place PtAdd.
    ///
    /// # Errors
    ///
    /// Level/scale/slot mismatches.
    pub fn add_plain_assign(&mut self, pt: &Plaintext) -> Result<()> {
        if pt.level() != self.level() {
            return Err(FidesError::LevelMismatch {
                left: self.level(),
                right: pt.level(),
            });
        }
        let drift = (self.scale / pt.scale - 1.0).abs();
        if drift > crate::ciphertext::SCALE_TOLERANCE {
            return Err(FidesError::ScaleMismatch {
                left: self.scale,
                right: pt.scale,
            });
        }
        self.c0.add_assign_poly(&pt.poly);
        self.noise_log2 += 0.25;
        Ok(())
    }

    /// ScalarAdd: adds the real constant `c` to every slot. Exact (no level
    /// consumed): adds `round(c·scale)` to the constant coefficient, which in
    /// evaluation domain is a per-limb scalar addition.
    pub fn add_scalar(&self, c: f64) -> Ciphertext {
        let mut out = self.duplicate();
        out.add_scalar_assign(c);
        out
    }

    /// In-place ScalarAdd.
    pub fn add_scalar_assign(&mut self, c: f64) {
        let v = (c * self.scale).round() as i128;
        let scalars: Vec<u64> = (0..self.c0.num_q())
            .map(|i| {
                let m = &self.context().moduli_q()[i];
                let p = m.value() as i128;
                let mut r = v % p;
                if r < 0 {
                    r += p;
                }
                r as u64
            })
            .collect();
        self.c0.scalar_add_assign(&scalars);
        self.noise_log2 += 0.1;
    }

    /// ScalarSub: subtracts a constant from every slot.
    pub fn sub_scalar_assign(&mut self, c: f64) {
        self.add_scalar_assign(-c);
    }
}
