//! Multiplicative operations: HMult, HSquare, PtMult, ScalarMult, Rescale,
//! and the exact monomial multiplication bootstrapping uses.
//!
//! Every multi-kernel operation runs as one scheduled region of the
//! stream-graph engine ([`sched`](crate::sched)): the tensor products, key
//! switch and rescale pipelines record their kernel nodes (with the
//! cross-limb sync points as graph barriers), a planning pass fuses the
//! elementwise chains and assigns streams, and the plan replays onto the
//! timeline before the op returns.

use std::sync::Arc;

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::error::{FidesError, Result};
use crate::keys::EvalKeySet;
use crate::ops::keyswitch::key_switch_core;
use crate::ops::rescale::rescale_poly;
use crate::poly::RNSPoly;

impl Ciphertext {
    /// HMult: homomorphic multiplication with relinearization (hybrid key
    /// switching). Does **not** rescale — pair with
    /// [`Ciphertext::rescale_in_place`], as in FIDESlib.
    ///
    /// # Errors
    ///
    /// Level/scale/slot mismatches or a missing relinearization key.
    pub fn mul(&self, other: &Ciphertext, keys: &EvalKeySet) -> Result<Ciphertext> {
        if self.level() != other.level() {
            return Err(FidesError::LevelMismatch {
                left: self.level(),
                right: other.level(),
            });
        }
        if self.slots != other.slots {
            return Err(FidesError::SlotMismatch {
                left: self.slots,
                right: other.slots,
            });
        }
        let ksk = keys.mult_key()?;
        let ctx = Arc::clone(self.context());
        let (c0, c1) = ctx.scheduled(|| {
            // Tensor.
            let d0 = RNSPoly::mul_poly(&self.c0, &other.c0);
            let mut d1 = RNSPoly::mul_poly(&self.c0, &other.c1);
            d1.mul_add_assign_poly(&self.c1, &other.c0);
            let d2 = RNSPoly::mul_poly(&self.c1, &other.c1);
            // Relinearize d2.
            let (ks0, ks1) = key_switch_core(&d2, ksk);
            let mut c0 = d0;
            c0.add_assign_poly(&ks0);
            let mut c1 = d1;
            c1.add_assign_poly(&ks1);
            (c0, c1)
        });
        Ok(Ciphertext {
            c0,
            c1,
            scale: self.scale * other.scale,
            slots: self.slots,
            noise_log2: self.noise_log2
                + other.noise_log2
                + (self.context().n() as f64).log2() / 2.0,
        })
    }

    /// HSquare: optimized squaring (saves one elementwise multiplication
    /// versus HMult — the "repetitive data" optimization of §III-A).
    ///
    /// # Errors
    ///
    /// Missing relinearization key.
    pub fn square(&self, keys: &EvalKeySet) -> Result<Ciphertext> {
        let ksk = keys.mult_key()?;
        let ctx = Arc::clone(self.context());
        let (c0, c1) = ctx.scheduled(|| {
            let d0 = RNSPoly::mul_poly(&self.c0, &self.c0);
            let mut d1 = RNSPoly::mul_poly(&self.c0, &self.c1);
            let d1_copy = d1.duplicate();
            d1.add_assign_poly(&d1_copy); // 2·c0·c1
            let d2 = RNSPoly::mul_poly(&self.c1, &self.c1);
            let (ks0, ks1) = key_switch_core(&d2, ksk);
            let mut c0 = d0;
            c0.add_assign_poly(&ks0);
            let mut c1 = d1;
            c1.add_assign_poly(&ks1);
            (c0, c1)
        });
        Ok(Ciphertext {
            c0,
            c1,
            scale: self.scale * self.scale,
            slots: self.slots,
            noise_log2: 2.0 * self.noise_log2 + (self.context().n() as f64).log2() / 2.0,
        })
    }

    /// PtMult: multiplication by an encoded plaintext. Does not rescale.
    ///
    /// # Errors
    ///
    /// Level mismatch.
    pub fn mul_plain(&self, pt: &Plaintext) -> Result<Ciphertext> {
        if pt.level() != self.level() {
            return Err(FidesError::LevelMismatch {
                left: self.level(),
                right: pt.level(),
            });
        }
        let ctx = Arc::clone(self.context());
        let mut out = ctx.scheduled(|| {
            let mut out = self.duplicate();
            out.c0.mul_assign_poly(&pt.poly);
            out.c1.mul_assign_poly(&pt.poly);
            out
        });
        out.scale = self.scale * pt.scale;
        out.noise_log2 = self.noise_log2 + 1.0;
        Ok(out)
    }

    /// ScalarMult: multiplies every slot by the real constant `c`, encoding
    /// the constant at the default scale `Δ` (result scale = `scale·Δ`).
    pub fn mul_scalar(&self, c: f64) -> Ciphertext {
        let delta = self.context().fresh_scale();
        self.mul_scalar_at(c, delta)
    }

    /// ScalarMult with an explicit constant scale: multiplies by
    /// `round(c·const_scale)`; result scale = `scale·const_scale`.
    pub fn mul_scalar_at(&self, c: f64, const_scale: f64) -> Ciphertext {
        let v = (c * const_scale).round() as i128;
        let scalars: Vec<u64> = (0..self.c0.num_q())
            .map(|i| {
                let m = &self.context().moduli_q()[i];
                let p = m.value() as i128;
                let mut r = v % p;
                if r < 0 {
                    r += p;
                }
                r as u64
            })
            .collect();
        let ctx = Arc::clone(self.context());
        let mut out = ctx.scheduled(|| {
            let mut out = self.duplicate();
            out.c0.scalar_mul_assign(&scalars);
            out.c1.scalar_mul_assign(&scalars);
            out
        });
        out.scale = self.scale * const_scale;
        out.noise_log2 = self.noise_log2 + 1.0;
        out
    }

    /// ScalarMult by a constant, immediately rescaled such that a ciphertext
    /// on the standard-scale ladder stays on it: the constant is encoded at
    /// exactly `q_ℓ · σ_{ℓ-1} / σ_ℓ`.
    ///
    /// # Errors
    ///
    /// Not enough levels.
    pub fn mul_scalar_rescale(&self, c: f64) -> Result<Ciphertext> {
        if self.level() == 0 {
            return Err(FidesError::NotEnoughLevels {
                needed: 1,
                available: 0,
            });
        }
        let ctx = self.context();
        let l = self.level();
        let q_l = ctx.moduli_q()[l].value() as f64;
        let const_scale = q_l * ctx.standard_scale(l - 1) / ctx.standard_scale(l);
        let mut out = self.mul_scalar_at(c, const_scale);
        out.rescale_in_place()?;
        Ok(out)
    }

    /// Exact multiplication by a small signed integer (no scale change, no
    /// level consumed) — e.g. the ×2 of the double-angle iterations.
    pub fn mul_int(&self, k: i64) -> Ciphertext {
        let scalars: Vec<u64> = (0..self.c0.num_q())
            .map(|i| self.context().moduli_q()[i].from_i64(k))
            .collect();
        let ctx = Arc::clone(self.context());
        let mut out = ctx.scheduled(|| {
            let mut out = self.duplicate();
            out.c0.scalar_mul_assign(&scalars);
            out.c1.scalar_mul_assign(&scalars);
            out
        });
        out.noise_log2 = self.noise_log2 + (k.unsigned_abs() as f64).log2().max(0.0);
        out
    }

    /// Rescale: drops the top prime, dividing the message scale by it
    /// (§III-F.3, with the Rescale fusion of §III-F.5).
    ///
    /// # Errors
    ///
    /// [`FidesError::NotEnoughLevels`] at level 0.
    pub fn rescale_in_place(&mut self) -> Result<()> {
        if self.level() == 0 {
            return Err(FidesError::NotEnoughLevels {
                needed: 1,
                available: 0,
            });
        }
        let ctx = Arc::clone(self.context());
        let q_l = ctx.moduli_q()[self.level()].value() as f64;
        ctx.scheduled(|| {
            rescale_poly(&mut self.c0);
            rescale_poly(&mut self.c1);
        });
        self.scale /= q_l;
        self.noise_log2 = (self.noise_log2 - q_l.log2()).max(4.0);
        Ok(())
    }

    /// Multiplies the message by the exact monomial `X^{N/2}`, i.e. by the
    /// imaginary unit `i` in every slot. Exact: no scale change, no level
    /// consumed (used by bootstrapping's real/imaginary extraction).
    pub fn mul_by_i(&self) -> Ciphertext {
        let ctx = Arc::clone(self.context());
        ctx.scheduled(|| {
            let mut out = self.duplicate();
            let n = ctx.n();
            let ops = crate::kernels::mul_ops(n);
            for poly in [&mut out.c0, &mut out.c1] {
                poly.indexed_kernel(ops, |idx, m, dst| {
                    let mono = ctx.monomial_half(idx);
                    for (d, &w) in dst.iter_mut().zip(mono) {
                        *d = m.mul_mod(*d, w);
                    }
                });
            }
            out
        })
    }
}
