//! Hybrid key switching: ModUp, key inner product, ModDown (§III-F.3, F.5).
//!
//! The kernel pipeline mirrors FIDESlib's HMult fusion schedule:
//!
//! 1. per digit, the relevant limbs are copied and iNTT'd with the Eq. 1
//!    scaling (`(C/c_i)^{-1}`) fused into the second iNTT pass;
//! 2. the base-conversion kernel lifts the digit to `Q_ℓ ∪ P` (the digit's
//!    own limbs are reused directly in evaluation form);
//! 3. the NTT of each lifted limb fuses the two switching-key inner-product
//!    multiplications (`x̃ ⊙ ksk_{0}`, `x̃ ⊙ ksk_{1}`);
//! 4. both accumulators are ModDown'ed by `P` with the `P^{-1}(x − NTT(x'))`
//!    sequence fused into the NTT kernels.
//!
//! With the corresponding [`FusionConfig`](crate::params::FusionConfig) flags
//! off, every step launches separate kernels (the ablation baseline).

use std::sync::Arc;

use fides_client::Domain;
use fides_gpu_sim::{KernelDesc, KernelKind, VectorGpu};
use fides_math::PolyOps;

use crate::context::ChainIdx;
use crate::kernels;
use crate::keys::KeySwitchingKey;
use crate::poly::{Limb, LimbPartition, RNSPoly};

/// Lifts digit `j` of `d2` (evaluation domain, level `ℓ`) to the extended
/// base `Q_ℓ ∪ P`. Returns an extended polynomial in evaluation domain.
pub(crate) fn mod_up_digit(d2: &RNSPoly, j: usize) -> RNSPoly {
    assert_eq!(d2.format(), Domain::Eval);
    assert_eq!(d2.num_p(), 0);
    let ctx = Arc::clone(d2.context());
    let gpu = Arc::clone(ctx.gpu());
    let n = ctx.n();
    let lb = kernels::limb_bytes(n);
    let level = d2.level();
    let tables = ctx.mod_up_tables(level, j);
    let src_range = ctx.partition().digit_range_at_level(j, level);
    let src_len = src_range.len();
    assert!(src_len > 0, "digit {j} inactive at level {level}");
    let fused = ctx.params().fusion.key_switch;

    // Step 1: coefficient-domain, Eq.1-scaled copies of the digit limbs.
    let mut scaled: Vec<VectorGpu<u64>> = Vec::with_capacity(src_len);
    for (k, range) in ctx.batch_ranges(src_len).into_iter().enumerate() {
        let stream = ctx.stream_for_batch(k);
        // Copy kernel.
        let mut copy_desc = KernelDesc::new(KernelKind::Fill);
        let mut fresh: Vec<VectorGpu<u64>> = Vec::with_capacity(range.len());
        for di in range.clone() {
            let src = d2.limb(src_range.start + di);
            let dst = VectorGpu::new(ctx.gpu(), n);
            copy_desc = copy_desc
                .read(src.data.buffer(), lb)
                .write(dst.buffer(), lb);
            fresh.push(dst);
        }
        gpu.launch(stream, copy_desc, || {
            for (off, di) in range.clone().enumerate() {
                fresh[off].copy_from_slice(d2.limb(src_range.start + di).data.as_slice());
            }
        });
        // iNTT pass 1.
        let phase_ops = ctx.ntt_phase_ops_scaled() * range.len() as u64;
        let mut d1 = KernelDesc::new(KernelKind::InttPhase1)
            .ops(phase_ops)
            .access_efficiency(ctx.params().access_efficiency);
        for f in &fresh {
            d1 = d1.read(f.buffer(), lb).write(f.buffer(), lb);
        }
        gpu.launch(stream, d1, || {
            for (off, di) in range.clone().enumerate() {
                let chain = ChainIdx::Q(src_range.start + di);
                ctx.ntt(chain).inverse_pass1(fresh[off].as_mut_slice());
            }
        });
        // iNTT pass 2, with the Eq. 1 scaling fused (or separate).
        let mut ops2 = phase_ops;
        if fused {
            ops2 += kernels::shoup_ops(n) * range.len() as u64;
        }
        let mut d2k = KernelDesc::new(KernelKind::InttPhase2)
            .ops(ops2)
            .access_efficiency(ctx.params().access_efficiency);
        for f in &fresh {
            d2k = d2k.read(f.buffer(), lb).write(f.buffer(), lb);
        }
        gpu.launch(stream, d2k, || {
            for (off, di) in range.clone().enumerate() {
                let chain = ChainIdx::Q(src_range.start + di);
                ctx.ntt(chain).inverse_pass2(fresh[off].as_mut_slice());
                if fused {
                    tables
                        .conv
                        .scale_input_inplace(di, fresh[off].as_mut_slice());
                }
            }
        });
        if !fused {
            let mut ds = KernelDesc::new(KernelKind::Elementwise)
                .ops(kernels::shoup_ops(n) * range.len() as u64);
            for f in &fresh {
                ds = ds.read(f.buffer(), lb).write(f.buffer(), lb);
            }
            gpu.launch(stream, ds, || {
                for (off, di) in range.clone().enumerate() {
                    tables
                        .conv
                        .scale_input_inplace(di, fresh[off].as_mut_slice());
                }
            });
        }
        scaled.extend(fresh);
    }
    ctx.sync_batch_streams();

    // Step 2: assemble the lifted polynomial.
    let alpha = ctx.alpha();
    let total = level + 1 + alpha;
    let mut slots: Vec<Option<Limb>> = (0..total).map(|_| None).collect();
    // Own digit limbs: direct evaluation-domain copies.
    for (k, range) in ctx.batch_ranges(src_len).into_iter().enumerate() {
        let stream = ctx.stream_for_batch(k);
        let mut desc = KernelDesc::new(KernelKind::Fill);
        let mut fresh: Vec<(usize, VectorGpu<u64>)> = Vec::with_capacity(range.len());
        for di in range.clone() {
            let i = src_range.start + di;
            let dst = VectorGpu::new(ctx.gpu(), n);
            desc = desc
                .read(d2.limb(i).data.buffer(), lb)
                .write(dst.buffer(), lb);
            fresh.push((i, dst));
        }
        gpu.launch(stream, desc, || {
            for (off, di) in range.clone().enumerate() {
                let i = src_range.start + di;
                fresh[off].1.copy_from_slice(d2.limb(i).data.as_slice());
            }
        });
        for (i, dst) in fresh {
            slots[i] = Some(Limb {
                data: dst,
                chain: ChainIdx::Q(i),
            });
        }
    }

    // Converted limbs: dst position → chain index.
    let dst_chains: Vec<ChainIdx> = tables
        .dst_q_indices
        .iter()
        .map(|&i| ChainIdx::Q(i))
        .chain((0..alpha).map(ChainIdx::P))
        .collect();
    let scaled_bufs: Vec<_> = scaled.iter().map(|s| (s.buffer(), lb)).collect();
    for (k, range) in ctx.batch_ranges(dst_chains.len()).into_iter().enumerate() {
        let stream = ctx.stream_for_batch(k);
        // Base-conversion kernel for this batch of destination limbs.
        let mut conv_desc = KernelDesc::new(KernelKind::BaseConv)
            .ops(kernels::base_conv_ops(n, src_len) * range.len() as u64);
        for &(b, bytes) in &scaled_bufs {
            conv_desc = conv_desc.read(b, bytes);
        }
        let mut fresh: Vec<(usize, VectorGpu<u64>)> = Vec::with_capacity(range.len());
        for dpos in range.clone() {
            let dst = VectorGpu::new(ctx.gpu(), n);
            conv_desc = conv_desc.write(dst.buffer(), lb);
            fresh.push((dpos, dst));
        }
        gpu.launch(stream, conv_desc, || {
            let scaled_refs: Vec<&[u64]> = scaled.iter().map(|s| s.as_slice()).collect();
            for (off, dpos) in range.clone().enumerate() {
                tables
                    .conv
                    .convert_scaled_limb(&scaled_refs, dpos, fresh[off].1.as_mut_slice());
            }
        });
        // NTT the converted limbs back to evaluation domain.
        let phase_ops = ctx.ntt_phase_ops_scaled() * range.len() as u64;
        for pass in 0..2u8 {
            let kind = if pass == 0 {
                KernelKind::NttPhase1
            } else {
                KernelKind::NttPhase2
            };
            let mut nd = KernelDesc::new(kind)
                .ops(phase_ops)
                .access_efficiency(ctx.params().access_efficiency);
            for (_, dst) in &fresh {
                nd = nd.read(dst.buffer(), lb).write(dst.buffer(), lb);
            }
            gpu.launch(stream, nd, || {
                for (off, dpos) in range.clone().enumerate() {
                    let t = ctx.ntt(dst_chains[dpos]);
                    let data = fresh[off].1.as_mut_slice();
                    if pass == 0 {
                        t.forward_pass1(data);
                    } else {
                        t.forward_pass2(data);
                    }
                }
            });
        }
        for (dpos, dst) in fresh {
            let chain = dst_chains[dpos];
            let slot = match chain {
                ChainIdx::Q(i) => i,
                ChainIdx::P(kk) => level + 1 + kk,
            };
            slots[slot] = Some(Limb { data: dst, chain });
        }
    }
    ctx.sync_batch_streams();

    let limbs: Vec<Limb> = slots
        .into_iter()
        .map(|s| s.expect("all limbs assigned"))
        .collect();
    RNSPoly {
        ctx: Arc::clone(&ctx),
        part: LimbPartition { limbs },
        num_q: level + 1,
        num_p: alpha,
        format: Domain::Eval,
    }
}

/// Fused inner product: `acc0 += lifted ⊙ b_j`, `acc1 += lifted ⊙ a_j` for
/// one digit, over the extended basis.
pub(crate) fn ksk_inner_product(
    acc0: &mut RNSPoly,
    acc1: &mut RNSPoly,
    lifted: &RNSPoly,
    ksk: &KeySwitchingKey,
    digit: usize,
) {
    let ctx = Arc::clone(lifted.context());
    let gpu = Arc::clone(ctx.gpu());
    let n = ctx.n();
    let lb = kernels::limb_bytes(n);
    let num_q_full = ctx.max_level() + 1;
    let fused = ctx.params().fusion.dot_product;
    let total = lifted.num_limbs();
    assert_eq!(acc0.num_limbs(), total);
    assert_eq!(acc1.num_limbs(), total);

    for (k, range) in ctx.batch_ranges(total).into_iter().enumerate() {
        let stream = ctx.stream_for_batch(k);
        let launches: usize = if fused { 1 } else { 2 };
        for li in 0..launches {
            let ops = kernels::mul_add_ops(n) * range.len() as u64 * if fused { 2 } else { 1 };
            let mut desc = KernelDesc::new(KernelKind::Elementwise).ops(ops);
            for i in range.clone() {
                let chain = lifted.limb(i).chain;
                let (kb, ka) = ksk.limbs_for(digit, chain, num_q_full);
                desc = desc.read(lifted.limb(i).data.buffer(), lb);
                if fused || li == 0 {
                    desc = desc
                        .read(kb.data.buffer(), lb)
                        .read(acc0.limb(i).data.buffer(), lb)
                        .write(acc0.limb(i).data.buffer(), lb);
                }
                if fused || li == 1 {
                    desc = desc
                        .read(ka.data.buffer(), lb)
                        .read(acc1.limb(i).data.buffer(), lb)
                        .write(acc1.limb(i).data.buffer(), lb);
                }
            }
            gpu.launch(stream, desc, || {
                for i in range.clone() {
                    let chain = lifted.limb(i).chain;
                    let m = ctx.modulus(chain);
                    let (kb, ka) = ksk.limbs_for(digit, chain, num_q_full);
                    let src = lifted.limb(i).data.as_slice();
                    if fused || li == 0 {
                        m.mul_add_assign_slices(
                            acc0.part.limbs[i].data.as_mut_slice(),
                            src,
                            kb.data.as_slice(),
                        );
                    }
                    if fused || li == 1 {
                        m.mul_add_assign_slices(
                            acc1.part.limbs[i].data.as_mut_slice(),
                            src,
                            ka.data.as_slice(),
                        );
                    }
                }
            });
        }
    }
}

/// ModDown by `P`: `x ← P^{-1}·(x − Conv_{P→Q_ℓ}([x]_P))`, dropping the
/// extension limbs.
pub(crate) fn mod_down(poly: &mut RNSPoly) {
    assert_eq!(poly.format(), Domain::Eval);
    let alpha = poly.num_p();
    assert!(alpha > 0, "mod_down needs extension limbs");
    let ctx = Arc::clone(poly.context());
    let gpu = Arc::clone(ctx.gpu());
    let n = ctx.n();
    let lb = kernels::limb_bytes(n);
    let level = poly.level();
    let num_q = poly.num_q();
    let conv = ctx.mod_down_conv(level);
    let fused = ctx.params().fusion.mod_down;

    // Step 1: iNTT the P limbs with the Eq. 1 scaling fused into pass 2.
    {
        let (_q_limbs, p_limbs) = poly.part.limbs.split_at_mut(num_q);
        for (k, range) in ctx.batch_ranges(alpha).into_iter().enumerate() {
            let stream = ctx.stream_for_batch(k);
            let phase_ops = ctx.ntt_phase_ops_scaled() * range.len() as u64;
            for pass in 0..2u8 {
                let kind = if pass == 0 {
                    KernelKind::InttPhase1
                } else {
                    KernelKind::InttPhase2
                };
                let mut ops = phase_ops;
                if pass == 1 {
                    ops += kernels::shoup_ops(n) * range.len() as u64;
                }
                let mut desc = KernelDesc::new(kind)
                    .ops(ops)
                    .access_efficiency(ctx.params().access_efficiency);
                for i in range.clone() {
                    desc = desc
                        .read(p_limbs[i].data.buffer(), lb)
                        .write(p_limbs[i].data.buffer(), lb);
                }
                gpu.launch(stream, desc, || {
                    for i in range.clone() {
                        let t = ctx.ntt(ChainIdx::P(i));
                        let data = p_limbs[i].data.as_mut_slice();
                        if pass == 0 {
                            t.inverse_pass1(data);
                        } else {
                            t.inverse_pass2(data);
                            conv.scale_input_inplace(i, data);
                        }
                    }
                });
            }
        }
    }
    ctx.sync_batch_streams();

    // Step 2: per q limb, convert, NTT, and combine (fused into the NTT
    // kernels when enabled).
    let (q_limbs, p_limbs) = poly.part.limbs.split_at_mut(num_q);
    let p_bufs: Vec<_> = p_limbs.iter().map(|l| (l.data.buffer(), lb)).collect();
    for (k, range) in ctx.batch_ranges(num_q).into_iter().enumerate() {
        let stream = ctx.stream_for_batch(k);
        let mut conv_desc = KernelDesc::new(KernelKind::BaseConv)
            .ops(kernels::base_conv_ops(n, alpha) * range.len() as u64);
        for &(b, bytes) in &p_bufs {
            conv_desc = conv_desc.read(b, bytes);
        }
        let mut tmps: Vec<VectorGpu<u64>> = Vec::with_capacity(range.len());
        for _ in range.clone() {
            let t = VectorGpu::new(ctx.gpu(), n);
            conv_desc = conv_desc.write(t.buffer(), lb);
            tmps.push(t);
        }
        gpu.launch(stream, conv_desc, || {
            let p_refs: Vec<&[u64]> = p_limbs.iter().map(|l| l.data.as_slice()).collect();
            for (off, i) in range.clone().enumerate() {
                conv.convert_scaled_limb(&p_refs, i, tmps[off].as_mut_slice());
            }
        });
        let phase_ops = ctx.ntt_phase_ops_scaled() * range.len() as u64;
        for pass in 0..2u8 {
            let kind = if pass == 0 {
                KernelKind::NttPhase1
            } else {
                KernelKind::NttPhase2
            };
            let mut ops = phase_ops;
            if pass == 1 && fused {
                ops += (kernels::add_ops(n) + kernels::shoup_ops(n)) * range.len() as u64;
            }
            let mut desc = KernelDesc::new(kind)
                .ops(ops)
                .access_efficiency(ctx.params().access_efficiency);
            for (off, i) in range.clone().enumerate() {
                desc = desc
                    .read(tmps[off].buffer(), lb)
                    .write(tmps[off].buffer(), lb);
                if pass == 1 && fused {
                    desc = desc
                        .read(q_limbs[i].data.buffer(), lb)
                        .write(q_limbs[i].data.buffer(), lb);
                }
            }
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    let t = ctx.ntt(ChainIdx::Q(i));
                    if pass == 0 {
                        t.forward_pass1(tmps[off].as_mut_slice());
                    } else {
                        t.forward_pass2(tmps[off].as_mut_slice());
                        if fused {
                            combine_mod_down(
                                &ctx,
                                i,
                                q_limbs[i].data.as_mut_slice(),
                                tmps[off].as_slice(),
                            );
                        }
                    }
                }
            });
        }
        if !fused {
            let mut desc = KernelDesc::new(KernelKind::Elementwise)
                .ops((kernels::add_ops(n) + kernels::shoup_ops(n)) * range.len() as u64);
            for (off, i) in range.clone().enumerate() {
                desc = desc
                    .read(tmps[off].buffer(), lb)
                    .read(q_limbs[i].data.buffer(), lb)
                    .write(q_limbs[i].data.buffer(), lb);
            }
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    combine_mod_down(
                        &ctx,
                        i,
                        q_limbs[i].data.as_mut_slice(),
                        tmps[off].as_slice(),
                    );
                }
            });
        }
    }
    ctx.sync_batch_streams();
    poly.truncate_p();
}

fn combine_mod_down(
    ctx: &crate::context::CkksContext,
    q_idx: usize,
    x: &mut [u64],
    converted: &[u64],
) {
    let m = &ctx.moduli_q()[q_idx];
    let inv = ctx.p_inv_mod_q(q_idx);
    for (xi, &c) in x.iter_mut().zip(converted) {
        *xi = inv.mul(m.sub_mod(*xi, c), m);
    }
}

/// Full key switch of an evaluation-domain polynomial `d2` with `ksk`:
/// returns the pair to add onto `(c_0, c_1)`.
pub(crate) fn key_switch_core(d2: &RNSPoly, ksk: &KeySwitchingKey) -> (RNSPoly, RNSPoly) {
    let ctx = Arc::clone(d2.context());
    let level = d2.level();
    let digits = ctx.partition().digits_at_level(level);
    assert!(ksk.dnum() >= digits, "switching key has too few digits");
    let mut acc0 = RNSPoly::zero(&ctx, level, true, Domain::Eval);
    let mut acc1 = RNSPoly::zero(&ctx, level, true, Domain::Eval);
    for j in 0..digits {
        let lifted = mod_up_digit(d2, j);
        ksk_inner_product(&mut acc0, &mut acc1, &lifted, ksk, j);
    }
    mod_down(&mut acc0);
    mod_down(&mut acc1);
    (acc0, acc1)
}
