//! Rescale: drop the top prime and divide the message by it (§III-F.3).
//!
//! Pipeline (with the Rescale fusion of §III-F.5): iNTT the last limb, then
//! for every remaining limb one fused NTT pair computes
//! `q_ℓ^{-1}·(x_i − NTT(SwitchModulus(x_ℓ)))`.

use std::sync::Arc;

use fides_client::Domain;
use fides_gpu_sim::{KernelDesc, KernelKind, VectorGpu};
use fides_math::switch_modulus_centered;

use crate::context::ChainIdx;
use crate::kernels;
use crate::poly::RNSPoly;

/// Rescales a single polynomial in place, dropping its top limb.
pub(crate) fn rescale_poly(poly: &mut RNSPoly) {
    assert_eq!(
        poly.format(),
        Domain::Eval,
        "rescale operates on evaluation-domain polynomials"
    );
    assert_eq!(poly.num_p(), 0);
    assert!(poly.num_q() >= 2, "cannot rescale at the last level");
    let ctx = Arc::clone(poly.context());
    let gpu = Arc::clone(ctx.gpu());
    let n = ctx.n();
    let lb = kernels::limb_bytes(n);
    let l = poly.num_q() - 1;
    let fused = ctx.params().fusion.rescale;
    let q_last = ctx.moduli_q()[l];

    // iNTT a copy of the dropped limb.
    let mut last = VectorGpu::<u64>::new(ctx.gpu(), n);
    {
        let stream = ctx.stream_for_batch(l);
        let copy = KernelDesc::new(KernelKind::Fill)
            .read(poly.limb(l).data.buffer(), lb)
            .write(last.buffer(), lb);
        gpu.launch(stream, copy, || {
            last.copy_from_slice(poly.limb(l).data.as_slice());
        });
        for pass in 0..2u8 {
            let kind = if pass == 0 {
                KernelKind::InttPhase1
            } else {
                KernelKind::InttPhase2
            };
            let desc = KernelDesc::new(kind)
                .ops(ctx.ntt_phase_ops_scaled())
                .read(last.buffer(), lb)
                .write(last.buffer(), lb);
            gpu.launch(stream, desc, || {
                let t = ctx.ntt(ChainIdx::Q(l));
                if pass == 0 {
                    t.inverse_pass1(last.as_mut_slice());
                } else {
                    t.inverse_pass2(last.as_mut_slice());
                }
            });
        }
    }
    ctx.sync_batch_streams();

    // Fused per-limb pipeline on the remaining limbs.
    for (k, range) in ctx.batch_ranges(l).into_iter().enumerate() {
        let stream = ctx.stream_for_batch(k);
        let mut tmps: Vec<VectorGpu<u64>> = Vec::with_capacity(range.len());
        for _ in range.clone() {
            tmps.push(VectorGpu::new(ctx.gpu(), n));
        }
        if !fused {
            // Separate SwitchModulus kernel.
            let mut desc = KernelDesc::new(KernelKind::SwitchModulus)
                .ops(kernels::switch_modulus_ops(n) * range.len() as u64)
                .read(last.buffer(), lb);
            for t in &tmps {
                desc = desc.write(t.buffer(), lb);
            }
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    let m = &ctx.moduli_q()[i];
                    for (o, &v) in tmps[off].as_mut_slice().iter_mut().zip(last.as_slice()) {
                        *o = switch_modulus_centered(v, &q_last, m);
                    }
                }
            });
        }
        let phase_ops = ctx.ntt_phase_ops_scaled() * range.len() as u64;
        for pass in 0..2u8 {
            let kind = if pass == 0 {
                KernelKind::NttPhase1
            } else {
                KernelKind::NttPhase2
            };
            let mut ops = phase_ops;
            let mut desc = KernelDesc::new(kind);
            if pass == 0 && fused {
                // SwitchModulus fused into the first NTT pass: reads the
                // dropped limb instead of a precomputed tmp.
                ops += kernels::switch_modulus_ops(n) * range.len() as u64;
                desc = desc.read(last.buffer(), lb);
            }
            if pass == 1 && fused {
                ops += (kernels::add_ops(n) + kernels::shoup_ops(n)) * range.len() as u64;
            }
            desc = desc.ops(ops);
            for (off, i) in range.clone().enumerate() {
                desc = desc
                    .read(tmps[off].buffer(), lb)
                    .write(tmps[off].buffer(), lb);
                if pass == 1 && fused {
                    desc = desc
                        .read(poly.limb(i).data.buffer(), lb)
                        .write(poly.limb(i).data.buffer(), lb);
                }
            }
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    let t = ctx.ntt(ChainIdx::Q(i));
                    if pass == 0 {
                        if fused {
                            let m = &ctx.moduli_q()[i];
                            for (o, &v) in tmps[off].as_mut_slice().iter_mut().zip(last.as_slice())
                            {
                                *o = switch_modulus_centered(v, &q_last, m);
                            }
                        }
                        t.forward_pass1(tmps[off].as_mut_slice());
                    } else {
                        t.forward_pass2(tmps[off].as_mut_slice());
                        if fused {
                            combine_rescale(
                                &ctx,
                                l,
                                i,
                                poly.part.limbs[i].data.as_mut_slice(),
                                tmps[off].as_slice(),
                            );
                        }
                    }
                }
            });
        }
        if !fused {
            let mut desc = KernelDesc::new(KernelKind::Elementwise)
                .ops((kernels::add_ops(n) + kernels::shoup_ops(n)) * range.len() as u64);
            for (off, i) in range.clone().enumerate() {
                desc = desc
                    .read(tmps[off].buffer(), lb)
                    .read(poly.limb(i).data.buffer(), lb)
                    .write(poly.limb(i).data.buffer(), lb);
            }
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    combine_rescale(
                        &ctx,
                        l,
                        i,
                        poly.part.limbs[i].data.as_mut_slice(),
                        tmps[off].as_slice(),
                    );
                }
            });
        }
    }
    ctx.sync_batch_streams();
    poly.part.limbs.truncate(l);
    poly.num_q = l;
}

fn combine_rescale(
    ctx: &crate::context::CkksContext,
    l: usize,
    i: usize,
    x: &mut [u64],
    switched: &[u64],
) {
    let m = &ctx.moduli_q()[i];
    let inv = ctx.rescale_scalar(l, i);
    for (xi, &s) in x.iter_mut().zip(switched) {
        *xi = inv.mul(m.sub_mod(*xi, s), m);
    }
}
