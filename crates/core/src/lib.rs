//! # fides-core
//!
//! The server half of FIDESlib: every CKKS server-side operation of Fig. 1 —
//! HAdd/PtAdd/ScalarAdd, HMult/HSquare/PtMult/ScalarMult, Rescale, hybrid
//! KeySwitch (ModUp/ModDown), HRotate/HConjugate/HoistedRotate, and full
//! bootstrapping — executed as kernels on the simulated GPU backend
//! (`fides-gpu-sim`), with limb batching, stream-parallel execution and the
//! kernel fusions of §III-F.5.
//!
//! Client-side operations (encoding, key generation, encryption, decryption)
//! live in `fides-client`; data crosses the boundary through the adapter
//! layer ([`adapter`]).
//!
//! ```
//! use fides_core::{adapter, CkksContext, CkksParameters};
//! use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
//! use fides_client::{ClientContext, KeyGenerator};
//! use rand::SeedableRng;
//!
//! // Server context on a simulated RTX 4090.
//! let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
//! let params = CkksParameters::toy();
//! let ctx = CkksContext::new(params, gpu);
//!
//! // Client encrypts...
//! let client = ClientContext::new(ctx.raw_params().clone());
//! let mut kg = KeyGenerator::new(&client, 1);
//! let sk = kg.secret_key();
//! let pk = kg.public_key(&sk);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let pt = client.encode_real(&[1.0, 2.0], client.params().scale(), ctx.max_level())?;
//! let raw_ct = client.encrypt(&pt, &pk, &mut rng)?;
//!
//! // ...server computes...
//! let ct = adapter::load_ciphertext(&ctx, &raw_ct).unwrap();
//! let sum = ct.add(&ct).unwrap();
//!
//! // ...client decrypts.
//! let back = client.decode_real(&client.decrypt(&adapter::store_ciphertext(&sum), &sk)?)?;
//! assert!((back[0] - 2.0).abs() < 1e-4);
//! # Ok::<(), fides_client::ClientError>(())
//! ```

#![warn(missing_docs)]

pub mod adapter;
pub mod backend;
pub mod boot;
mod ciphertext;
mod context;
pub mod cpu_ref;
mod error;
mod kernels;
mod keys;
mod ops;
mod params;
mod poly;
pub mod program;
pub mod sched;

pub use backend::{BackendCt, BackendPt, EvalBackend, GpuSimBackend};
pub use boot::{BootPhases, BootstrapConfig, Bootstrapper};
pub use ciphertext::{Ciphertext, Plaintext, SCALE_TOLERANCE};
pub use context::{ChainIdx, CkksContext, EvalPerm, NUM_STREAMS};
pub use cpu_ref::{CpuBackend, HostCiphertext, HostPlaintext};
pub use error::{FidesError, Result};
pub use keys::{EvalKeySet, KeySwitchingKey};
pub use ops::linear::{fold_rotations, BsgsEntry, BsgsPlan};
pub use params::{CkksParameters, FusionConfig};
pub use poly::{Limb, LimbPartition, RNSPoly};
pub use program::{const_scale_for, exec_program};
pub use sched::{ExecGraph, ExecPlan, PlanConfig, Planner, SchedStats};
