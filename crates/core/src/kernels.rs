//! Kernel-cost helpers: translate CKKS work units into [`KernelDesc`]s.
//!
//! Centralizing the traffic/compute formulas keeps the simulator charges
//! consistent across operations and lets the Phantom baseline reuse them with
//! different configuration (monolithic kernels, no fusion, derated access
//! efficiency).

use fides_gpu_sim::{
    ADD_OPS, BARRETT_MULMOD_OPS, BUTTERFLY_OPS, MODADD_OPS, SHOUP_MULMOD_OPS, WIDE_MUL_OPS,
};

/// Bytes of one limb of ring degree `n`.
#[inline]
pub(crate) fn limb_bytes(n: usize) -> u64 {
    (n * 8) as u64
}

/// int32 ops of one forward/inverse NTT *phase* (half the stages) over one
/// limb.
#[inline]
pub(crate) fn ntt_phase_ops(n: usize) -> u64 {
    let log_n = n.trailing_zeros() as u64;
    // Each phase runs ~log_n/2 stages of n/2 butterflies.
    (n as u64 / 2) * log_n.div_ceil(2) * BUTTERFLY_OPS
}

/// int32 ops of an elementwise modular multiply over one limb.
#[inline]
pub(crate) fn mul_ops(n: usize) -> u64 {
    n as u64 * BARRETT_MULMOD_OPS
}

/// int32 ops of an elementwise modular add over one limb.
#[inline]
pub(crate) fn add_ops(n: usize) -> u64 {
    n as u64 * MODADD_OPS
}

/// int32 ops of an elementwise multiply-accumulate over one limb.
#[inline]
pub(crate) fn mul_add_ops(n: usize) -> u64 {
    n as u64 * (BARRETT_MULMOD_OPS + ADD_OPS)
}

/// int32 ops of a Shoup constant multiply over one limb.
#[inline]
pub(crate) fn shoup_ops(n: usize) -> u64 {
    n as u64 * SHOUP_MULMOD_OPS
}

/// int32 ops of one base-conversion output limb accumulating `src` inputs
/// over `n` coefficients (wide multiply-accumulate + one deferred reduction,
/// §III-F.3).
#[inline]
pub(crate) fn base_conv_ops(n: usize, src: usize) -> u64 {
    n as u64 * (src as u64 * (WIDE_MUL_OPS + 2 * ADD_OPS) + BARRETT_MULMOD_OPS)
}

/// int32 ops of a centered modulus switch over one limb.
#[inline]
pub(crate) fn switch_modulus_ops(n: usize) -> u64 {
    n as u64 * (BARRETT_MULMOD_OPS / 2 + ADD_OPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_scale_with_n() {
        assert!(ntt_phase_ops(1 << 16) > ntt_phase_ops(1 << 12));
        assert_eq!(mul_ops(1024), 1024 * BARRETT_MULMOD_OPS);
        assert!(base_conv_ops(1024, 8) > base_conv_ops(1024, 2));
        assert!(shoup_ops(64) < mul_ops(64), "Shoup cheaper than Barrett");
        assert!(switch_modulus_ops(16) > 0);
        assert!(add_ops(16) < mul_add_ops(16));
    }

    #[test]
    fn limb_bytes_is_8n() {
        assert_eq!(limb_bytes(1 << 16), 512 * 1024);
    }
}
