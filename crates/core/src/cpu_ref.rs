//! Plain-CPU reference backend with **limb-parallel execution**.
//!
//! Implements the identical server-side CKKS math as the simulated-GPU
//! pipeline — elementwise tensor products, hybrid key switching
//! (ModUp → key inner product → ModDown), fused-equivalent Rescale, and
//! evaluation-domain Galois rotations — directly on host `Vec<u64>` limb
//! vectors, with no kernel descriptors or timing ledger.
//!
//! Where the gpu-sim backend spreads limb batches over device streams, this
//! backend spreads limbs over a worker pool (the vendored rayon stand-in):
//! every per-limb loop — RNS residues are independent between the cross-limb
//! sync points, exactly the property the paper's stream scheduling exploits —
//! runs `par_iter`-style across [`CpuBackend::workers`] threads. Each limb's
//! math is computed identically regardless of which worker runs it and
//! outputs land in disjoint, pre-assigned slots, so results are
//! **bit-identical at every worker count** (the determinism tests sweep
//! workers 1 and 8). The default count honours the `FIDES_WORKERS`
//! environment variable; override per session with
//! [`CpuBackend::with_workers`] or the engine builder's `workers` knob.
//!
//! It exists for three reasons:
//!
//! 1. **Cross-checking.** The GPU simulator's functional mode is intricate
//!    (limb batching, fusion variants, stream fences); this backend computes
//!    the same transformations in the most direct way possible, so any
//!    divergence localizes bugs to the execution machinery rather than the
//!    math.
//! 2. **Multi-backend support.** `CkksEngine` accepts any
//!    [`EvalBackend`]; this is the first
//!    non-simulator implementation and the template for a real-hardware one.
//! 3. **Real wall-clock throughput.** With the worker pool it is the
//!    fastest in-tree way to actually *run* encrypted workloads, and the
//!    second executor of the stream-graph architecture (the plan's limb
//!    batches map onto workers instead of streams).
//!
//! Representation: ciphertext components live in evaluation domain over the
//! active `q` limbs, exactly like [`RawCiphertext`] — loading and storing
//! are plain copies. Switching keys stay in their client
//! ([`RawSwitchingKey`]) form: full-chain limbs in evaluation domain,
//! `q` limbs first, then the `P` extension.

use std::collections::HashMap;
use std::sync::Arc;

use fides_client::{
    galois_for_conjugation, galois_for_rotation, Domain, RawCiphertext, RawParams, RawPlaintext,
    RawPoly, RawSwitchingKey,
};
use fides_math::{
    build_eval_permutation, switch_modulus_centered, Modulus, NttTable, PolyOps, ShoupPrecomp,
};
use fides_rns::{product_inv_mod, BaseConverter, DigitPartition};
use parking_lot::Mutex;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

use crate::backend::{BackendCt, BackendPt, EvalBackend};
use crate::boot::Bootstrapper;
use crate::ciphertext::SCALE_TOLERANCE;
use crate::error::{FidesError, Result};

/// A ciphertext as plain host data: evaluation-domain `q` limbs.
#[derive(Clone, Debug)]
pub struct HostCiphertext {
    /// `c_0` limbs (one per active prime).
    pub c0: Vec<Vec<u64>>,
    /// `c_1` limbs.
    pub c1: Vec<Vec<u64>>,
    /// Chain index of the top active prime.
    pub level: usize,
    /// Exact message scale.
    pub scale: f64,
    /// Packed slot count.
    pub slots: usize,
    /// Static noise estimate (log2).
    pub noise_log2: f64,
}

/// A preloaded plaintext as plain host data: evaluation-domain `q` limbs
/// (the CPU half of [`BackendPt`]).
#[derive(Clone, Debug)]
pub struct HostPlaintext {
    /// Evaluation-domain limbs (one per active prime).
    pub limbs: Vec<Vec<u64>>,
    /// Chain index of the top active prime.
    pub level: usize,
    /// Exact encoding scale.
    pub scale: f64,
    /// Packed slot count.
    pub slots: usize,
}

/// Limb vectors of a polynomial pair `(c_0, c_1)`.
type HostPolyPair = (Vec<Vec<u64>>, Vec<Vec<u64>>);

/// A pool of ring-degree-length limb buffers the NTT/key-switch hot path
/// recycles instead of allocating per op.
///
/// Key switching alone churns through `O(digits × chain)` scratch vectors
/// of `N` words each — digit lifts, base-conversion targets, inner-product
/// accumulators — and at `N = 2¹⁶` every one is a multi-hundred-KB
/// `malloc`/`free` round trip. The pool keeps returned buffers and hands
/// them back (zeroed, copied-into, or dirty-for-full-overwrite as the call
/// site requires), so steady-state evaluation allocates nothing on the hot
/// path. Results are bit-identical by construction: every variant
/// establishes the exact contents the old `vec![..]` produced before the
/// buffer is read.
///
/// Thread-safe (workers take/put under a short lock) and bounded, so a
/// deep circuit cannot hoard memory.
#[derive(Debug, Default)]
struct LimbPool {
    free: Mutex<Vec<Vec<u64>>>,
    reused: std::sync::atomic::AtomicU64,
}

impl LimbPool {
    /// Most buffers the pool retains (≈ two full key-switch footprints at
    /// paper scale; beyond that, freeing is cheaper than hoarding).
    const MAX_FREE: usize = 256;

    fn pop(&self, n: usize) -> Option<Vec<u64>> {
        let v = self.free.lock().pop()?;
        if v.len() == n {
            self.reused
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Some(v)
        } else {
            // Foreign ring degree (never happens within one context);
            // drop it rather than resize.
            None
        }
    }

    /// A zero-filled buffer of `n` words (accumulator call sites).
    fn take_zeroed(&self, n: usize) -> Vec<u64> {
        match self.pop(n) {
            Some(mut v) => {
                v.fill(0);
                v
            }
            None => vec![0u64; n],
        }
    }

    /// A buffer holding a copy of `src`.
    fn take_copy(&self, src: &[u64]) -> Vec<u64> {
        match self.pop(src.len()) {
            Some(mut v) => {
                v.copy_from_slice(src);
                v
            }
            None => src.to_vec(),
        }
    }

    /// A possibly-dirty buffer of `n` words — only for call sites that
    /// overwrite every element before reading any.
    fn take_dirty(&self, n: usize) -> Vec<u64> {
        self.pop(n).unwrap_or_else(|| vec![0u64; n])
    }

    /// Returns a buffer to the pool.
    fn put(&self, v: Vec<u64>) {
        let mut free = self.free.lock();
        if free.len() < Self::MAX_FREE {
            free.push(v);
        }
    }

    /// Returns a batch of buffers to the pool.
    fn put_all(&self, vs: impl IntoIterator<Item = Vec<u64>>) {
        let mut free = self.free.lock();
        for v in vs {
            if free.len() >= Self::MAX_FREE {
                break;
            }
            free.push(v);
        }
    }

    /// Buffers served from the pool instead of the allocator.
    fn reuses(&self) -> u64 {
        self.reused.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// ModUp tables for one `(level, digit)` pair (host copy of the context's).
#[derive(Debug)]
struct HostModUp {
    conv: BaseConverter,
    dst_q_indices: Vec<usize>,
}

/// Host-side precomputed tables: the CPU counterpart of `CkksContext`.
#[derive(Debug)]
struct HostContext {
    raw: RawParams,
    moduli_q: Vec<Modulus>,
    moduli_p: Vec<Modulus>,
    ntt_q: Vec<NttTable>,
    ntt_p: Vec<NttTable>,
    partition: DigitPartition,
    /// `[level][digit]` ModUp conversion tables.
    mod_up: Vec<Vec<HostModUp>>,
    /// `[level]`: conversion `P → q_0..q_level` for ModDown.
    mod_down: Vec<BaseConverter>,
    /// `[i]`: `P^{-1} mod q_i`.
    p_inv_mod_q: Vec<ShoupPrecomp>,
    /// FLEXIBLEAUTO-style standard scale per level.
    standard_scale: Vec<f64>,
    /// `NTT(X^{N/2}) mod q_i` — the imaginary-unit monomial used by
    /// bootstrapping's real/imaginary extraction.
    monomial_half: Vec<Vec<u64>>,
    /// Cached evaluation-domain automorphism permutations.
    perms: Mutex<HashMap<usize, Arc<Vec<u32>>>>,
    /// Recycled limb buffers for the NTT/key-switch scratch churn.
    pool: LimbPool,
}

impl HostContext {
    fn new(raw: RawParams) -> Self {
        let n = raw.n();
        let moduli_q: Vec<Modulus> = raw.moduli_q.iter().map(|&q| Modulus::new(q)).collect();
        let moduli_p: Vec<Modulus> = raw.moduli_p.iter().map(|&p| Modulus::new(p)).collect();
        let ntt_q: Vec<NttTable> = moduli_q.iter().map(|&m| NttTable::new(n, m)).collect();
        let ntt_p: Vec<NttTable> = moduli_p.iter().map(|&m| NttTable::new(n, m)).collect();
        let num_q = moduli_q.len();
        let partition = DigitPartition::new(num_q, raw.dnum);

        let mut mod_up = Vec::with_capacity(num_q);
        for level in 0..num_q {
            let digits = partition.digits_at_level(level);
            let mut per_digit = Vec::with_capacity(digits);
            for j in 0..digits {
                let src_range = partition.digit_range_at_level(j, level);
                let src: Vec<Modulus> = src_range.clone().map(|i| moduli_q[i]).collect();
                let dst_q_indices: Vec<usize> =
                    (0..=level).filter(|i| !src_range.contains(i)).collect();
                let mut dst: Vec<Modulus> = dst_q_indices.iter().map(|&i| moduli_q[i]).collect();
                dst.extend(moduli_p.iter().copied());
                per_digit.push(HostModUp {
                    conv: BaseConverter::new(&src, &dst),
                    dst_q_indices,
                });
            }
            mod_up.push(per_digit);
        }

        let mod_down: Vec<BaseConverter> = (0..num_q)
            .map(|level| BaseConverter::new(&moduli_p, &moduli_q[..=level]))
            .collect();

        let p_values = raw.moduli_p.clone();
        let p_inv_mod_q: Vec<ShoupPrecomp> = moduli_q
            .iter()
            .map(|m| ShoupPrecomp::new(product_inv_mod(&p_values, m), m))
            .collect();

        let mut standard_scale = vec![0.0f64; num_q];
        standard_scale[num_q - 1] = raw.scale();
        for l in (0..num_q - 1).rev() {
            let s_next = standard_scale[l + 1];
            standard_scale[l] = s_next * s_next / moduli_q[l + 1].value() as f64;
        }

        // NTT(X^{N/2}) per q prime.
        let monomial_half: Vec<Vec<u64>> = ntt_q
            .iter()
            .map(|t| {
                let mut v = vec![0u64; n];
                v[n / 2] = 1;
                t.forward_inplace(&mut v);
                v
            })
            .collect();

        Self {
            raw,
            moduli_q,
            moduli_p,
            ntt_q,
            ntt_p,
            partition,
            mod_up,
            mod_down,
            p_inv_mod_q,
            standard_scale,
            monomial_half,
            perms: Mutex::new(HashMap::new()),
            pool: LimbPool::default(),
        }
    }

    fn n(&self) -> usize {
        self.raw.n()
    }

    fn alpha(&self) -> usize {
        self.moduli_p.len()
    }

    fn max_level(&self) -> usize {
        self.raw.max_level()
    }

    fn perm(&self, g: usize) -> Arc<Vec<u32>> {
        let mut cache = self.perms.lock();
        if let Some(p) = cache.get(&g) {
            return Arc::clone(p);
        }
        let entry = Arc::new(build_eval_permutation(self.n(), g));
        cache.insert(g, Arc::clone(&entry));
        entry
    }

    /// Lifts digit `j` of `d2` (eval domain, `level+1` limbs) to
    /// `Q_ℓ ∪ P` — the host mirror of the GPU ModUp pipeline. Both the
    /// digit scaling and the per-destination conversions run limb-parallel
    /// on the worker pool.
    fn mod_up_digit(&self, d2: &[Vec<u64>], j: usize, level: usize) -> Vec<Vec<u64>> {
        let tables = &self.mod_up[level][j];
        let src_range = self.partition.digit_range_at_level(j, level);
        let n = self.n();
        let alpha = self.alpha();

        // Step 1: coefficient-domain, Eq.1-scaled copies of the digit limbs
        // (pooled scratch, recycled below).
        let scaled: Vec<Vec<u64>> = (0..src_range.len())
            .into_par_iter()
            .map(|di| {
                let i = src_range.start + di;
                let mut x = self.pool.take_copy(&d2[i]);
                self.ntt_q[i].inverse_inplace(&mut x);
                tables.conv.scale_input_inplace(di, &mut x);
                x
            })
            .collect();
        let scaled_refs: Vec<&[u64]> = scaled.iter().map(|v| v.as_slice()).collect();

        // Step 2: own digit limbs pass through in evaluation form; converted
        // limbs are NTT'd back per destination chain, one worker per
        // destination. Pooled dirty buffers: the base conversion overwrites
        // every word before any is read.
        let base = tables.dst_q_indices.len();
        let converted: Vec<Vec<u64>> = (0..base + alpha)
            .into_par_iter()
            .map(|dpos| {
                let mut t = self.pool.take_dirty(n);
                tables.conv.convert_scaled_limb(&scaled_refs, dpos, &mut t);
                if dpos < base {
                    self.ntt_q[tables.dst_q_indices[dpos]].forward_inplace(&mut t);
                } else {
                    self.ntt_p[dpos - base].forward_inplace(&mut t);
                }
                t
            })
            .collect();
        drop(scaled_refs);
        self.pool.put_all(scaled);

        let total = level + 1 + alpha;
        let mut out: Vec<Option<Vec<u64>>> = (0..total).map(|_| None).collect();
        for i in src_range.clone() {
            out[i] = Some(self.pool.take_copy(&d2[i]));
        }
        let mut converted = converted.into_iter();
        for &qi in &tables.dst_q_indices {
            out[qi] = Some(converted.next().expect("converted q limb"));
        }
        for k in 0..alpha {
            out[level + 1 + k] = Some(converted.next().expect("converted p limb"));
        }
        out.into_iter()
            .map(|o| o.expect("all limbs assigned"))
            .collect()
    }

    /// ModDown by `P`: `x ← P^{-1}·(x − Conv_{P→Q_ℓ}([x]_P))`, truncating
    /// the extension limbs.
    fn mod_down(&self, poly: &mut Vec<Vec<u64>>, level: usize) {
        let n = self.n();
        let conv = &self.mod_down[level];
        let mut p_limbs: Vec<Vec<u64>> = poly.drain(level + 1..).collect();
        p_limbs.par_iter_mut().enumerate().for_each(|(k, pl)| {
            self.ntt_p[k].inverse_inplace(pl);
            conv.scale_input_inplace(k, pl);
        });
        let p_refs: Vec<&[u64]> = p_limbs.iter().map(|v| v.as_slice()).collect();
        poly.par_iter_mut().enumerate().for_each(|(i, limb)| {
            let mut t = self.pool.take_dirty(n);
            conv.convert_scaled_limb(&p_refs, i, &mut t);
            self.ntt_q[i].forward_inplace(&mut t);
            let m = &self.moduli_q[i];
            let inv = &self.p_inv_mod_q[i];
            fides_math::simd::sub_shoup_mul_assign(m, inv, limb, &t);
            self.pool.put(t);
        });
        drop(p_refs);
        self.pool.put_all(p_limbs);
    }

    /// Full key switch of eval-domain `d2`; returns the `(c_0, c_1)` delta.
    fn key_switch(
        &self,
        d2: &[Vec<u64>],
        level: usize,
        key: &RawSwitchingKey,
    ) -> Result<HostPolyPair> {
        let digits = self.partition.digits_at_level(level);
        if key.digits.len() < digits {
            return Err(FidesError::KeyShape {
                expected: digits,
                found: key.digits.len(),
            });
        }
        let chain = self.max_level() + 1 + self.alpha();
        for d in &key.digits[..digits] {
            for limbs in [&d.b.limbs, &d.a.limbs] {
                if limbs.len() != chain {
                    return Err(FidesError::KeyShape {
                        expected: chain,
                        found: limbs.len(),
                    });
                }
            }
        }
        let n = self.n();
        let alpha = self.alpha();
        let num_q_full = self.max_level() + 1;
        let total = level + 1 + alpha;
        let mut acc0: Vec<Vec<u64>> = (0..total).map(|_| self.pool.take_zeroed(n)).collect();
        let mut acc1: Vec<Vec<u64>> = (0..total).map(|_| self.pool.take_zeroed(n)).collect();
        for j in 0..digits {
            let lifted = self.mod_up_digit(d2, j, level);
            // Inner products accumulate limb-parallel: each worker owns a
            // disjoint (acc0[idx], acc1[idx]) pair.
            let chain_of = |idx: usize| {
                if idx <= level {
                    (&self.moduli_q[idx], idx)
                } else {
                    (
                        &self.moduli_p[idx - (level + 1)],
                        num_q_full + (idx - (level + 1)),
                    )
                }
            };
            acc0.par_iter_mut().enumerate().for_each(|(idx, acc)| {
                let (m, key_idx) = chain_of(idx);
                m.mul_add_assign_slices(acc, &lifted[idx], &key.digits[j].b.limbs[key_idx]);
            });
            acc1.par_iter_mut().enumerate().for_each(|(idx, acc)| {
                let (m, key_idx) = chain_of(idx);
                m.mul_add_assign_slices(acc, &lifted[idx], &key.digits[j].a.limbs[key_idx]);
            });
            self.pool.put_all(lifted);
        }
        self.mod_down(&mut acc0, level);
        self.mod_down(&mut acc1, level);
        Ok((acc0, acc1))
    }

    /// Rescale: drop the top prime of each component, dividing the scale.
    fn rescale_limbs(&self, limbs: &mut Vec<Vec<u64>>) {
        let l = limbs.len() - 1;
        let q_last = self.moduli_q[l];
        let mut last = limbs.pop().expect("at least two limbs");
        self.ntt_q[l].inverse_inplace(&mut last);
        limbs.par_iter_mut().enumerate().for_each(|(i, limb)| {
            let m = &self.moduli_q[i];
            let mut t = self.pool.take_dirty(last.len());
            for (dst, &v) in t.iter_mut().zip(&last) {
                *dst = switch_modulus_centered(v, &q_last, m);
            }
            self.ntt_q[i].forward_inplace(&mut t);
            let inv = ShoupPrecomp::new(m.inv_mod(m.reduce_u64(q_last.value())), m);
            fides_math::simd::sub_shoup_mul_assign(m, &inv, limb, &t);
            self.pool.put(t);
        });
        self.pool.put(last);
    }
}

/// The plain-CPU reference backend, executing limb batches on a worker
/// pool.
#[derive(Debug)]
pub struct CpuBackend {
    hctx: HostContext,
    relin: Option<RawSwitchingKey>,
    /// Rotation keys by Galois element.
    rotations: HashMap<usize, RawSwitchingKey>,
    conj: Option<RawSwitchingKey>,
    /// Precomputed bootstrapping material, when configured.
    boot: Option<Bootstrapper>,
    /// Worker pool per-limb loops run on.
    pool: ThreadPool,
}

impl CpuBackend {
    /// Creates a backend over the shared parameter description. The worker
    /// count defaults to `FIDES_WORKERS` (when set) or the machine's
    /// available parallelism.
    pub fn new(raw: RawParams) -> Self {
        Self {
            hctx: HostContext::new(raw),
            relin: None,
            rotations: HashMap::new(),
            conj: None,
            boot: None,
            pool: ThreadPoolBuilder::new()
                .build()
                .expect("thread pool construction is infallible"),
        }
    }

    /// Pins the worker count (`0` restores the default resolution). Results
    /// are bit-identical at every worker count; only wall-clock changes.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.pool = ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("thread pool construction is infallible");
        self
    }

    /// The worker count per-limb loops use.
    pub fn workers(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Limb buffers the NTT/key-switch hot path served from the recycle
    /// pool instead of the allocator (diagnostic counter; monotone over
    /// the backend's lifetime).
    pub fn limb_pool_reuses(&self) -> u64 {
        self.hctx.pool.reuses()
    }

    /// Installs the relinearization key.
    pub fn set_relin_key(&mut self, key: RawSwitchingKey) {
        self.relin = Some(key);
    }

    /// Installs a rotation key for slot shift `k`.
    pub fn insert_rotation_key(&mut self, k: i32, key: RawSwitchingKey) {
        let g = galois_for_rotation(k, self.hctx.n());
        self.rotations.insert(g, key);
    }

    /// Installs the conjugation key.
    pub fn set_conj_key(&mut self, key: RawSwitchingKey) {
        self.conj = Some(key);
    }

    /// Attaches precomputed bootstrapping material (built against this
    /// backend with [`Bootstrapper::new`]).
    pub fn set_bootstrapper(&mut self, boot: Bootstrapper) {
        self.boot = Some(boot);
    }

    fn host<'a>(&self, ct: &'a BackendCt) -> Result<&'a HostCiphertext> {
        match ct {
            BackendCt::Host(c) => Ok(c),
            BackendCt::Device(_) => Err(FidesError::Unsupported(
                "device ciphertext handed to the cpu-reference backend".into(),
            )),
        }
    }

    fn host_mut<'a>(&self, ct: &'a mut BackendCt) -> Result<&'a mut HostCiphertext> {
        match ct {
            BackendCt::Host(c) => Ok(c),
            BackendCt::Device(_) => Err(FidesError::Unsupported(
                "device ciphertext handed to the cpu-reference backend".into(),
            )),
        }
    }

    fn check_compatible(a: &HostCiphertext, b: &HostCiphertext) -> Result<()> {
        if a.level != b.level {
            return Err(FidesError::LevelMismatch {
                left: a.level,
                right: b.level,
            });
        }
        if a.slots != b.slots {
            return Err(FidesError::SlotMismatch {
                left: a.slots,
                right: b.slots,
            });
        }
        let drift = (a.scale / b.scale - 1.0).abs();
        if drift > SCALE_TOLERANCE {
            return Err(FidesError::ScaleMismatch {
                left: a.scale,
                right: b.scale,
            });
        }
        Ok(())
    }

    /// Per-limb residues of `round(c · const_scale)`.
    fn scalar_residues(&self, c: f64, const_scale: f64, level: usize) -> Vec<u64> {
        let v = (c * const_scale).round() as i128;
        (0..=level)
            .map(|i| {
                let p = self.hctx.moduli_q[i].value() as i128;
                let mut r = v % p;
                if r < 0 {
                    r += p;
                }
                r as u64
            })
            .collect()
    }

    fn apply_galois(
        &self,
        ct: &HostCiphertext,
        g: usize,
        key: &RawSwitchingKey,
    ) -> Result<HostCiphertext> {
        let perm = self.hctx.perm(g);
        let n = self.hctx.n();
        let permute = |limbs: &[Vec<u64>]| -> Vec<Vec<u64>> {
            (0..limbs.len())
                .into_par_iter()
                .map(|i| {
                    let mut out = vec![0u64; n];
                    fides_math::automorphism_eval(&limbs[i], &perm, &mut out);
                    out
                })
                .collect()
        };
        let a0 = permute(&ct.c0);
        let a1 = permute(&ct.c1);
        let (ks0, ks1) = self.hctx.key_switch(&a1, ct.level, key)?;
        self.hctx.pool.put_all(a1);
        let mut c0 = a0;
        c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
            self.hctx.moduli_q[i].add_assign_slices(limb, &ks0[i]);
        });
        self.hctx.pool.put_all(ks0);
        Ok(HostCiphertext {
            c0,
            c1: ks1,
            level: ct.level,
            scale: ct.scale,
            slots: ct.slots,
            noise_log2: ct.noise_log2 + 1.0,
        })
    }

    /// NTTs an encoded (coefficient-domain) plaintext's limbs.
    fn plain_to_eval(&self, pt: &RawPlaintext) -> Result<Vec<Vec<u64>>> {
        if pt.poly.domain != Domain::Coeff {
            return Err(FidesError::DomainMismatch {
                expected: "coefficient",
                found: "evaluation",
            });
        }
        Ok((0..pt.poly.limbs.len())
            .into_par_iter()
            .map(|i| {
                let mut x = pt.poly.limbs[i].clone();
                self.hctx.ntt_q[i].forward_inplace(&mut x);
                x
            })
            .collect())
    }

    /// Runs `f` with this backend's worker count installed (every
    /// `par_iter` inside resolves to [`Self::workers`] threads).
    fn on_pool<R>(&self, f: impl FnOnce() -> R) -> R {
        self.pool.install(f)
    }

    /// ModRaise of one component: the coefficient form of limb 0 is switched
    /// (centered) onto every upper prime — the host mirror of the device
    /// `raise_to_top` kernel sequence, limb-parallel over destinations.
    fn raise_limbs(&self, limbs: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let target = self.hctx.max_level();
        let q0 = self.hctx.moduli_q[0];
        let mut coeff0 = limbs[0].clone();
        self.hctx.ntt_q[0].inverse_inplace(&mut coeff0);
        let mut out = Vec::with_capacity(target + 1);
        // Limb 0: the original evaluation-form data.
        out.push(limbs[0].clone());
        // Remaining limbs: centered switch + NTT, one worker per limb.
        let upper: Vec<Vec<u64>> = (1..target + 1)
            .into_par_iter()
            .map(|i| {
                let m = &self.hctx.moduli_q[i];
                let mut t: Vec<u64> = coeff0
                    .iter()
                    .map(|&v| switch_modulus_centered(v, &q0, m))
                    .collect();
                self.hctx.ntt_q[i].forward_inplace(&mut t);
                t
            })
            .collect();
        out.extend(upper);
        out
    }
}

impl EvalBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu-reference"
    }

    fn max_level(&self) -> usize {
        self.hctx.max_level()
    }

    fn fresh_scale(&self) -> f64 {
        self.hctx.raw.scale()
    }

    fn standard_scale(&self, level: usize) -> f64 {
        self.hctx.standard_scale[level]
    }

    fn modulus_value(&self, level: usize) -> u64 {
        self.hctx.moduli_q[level].value()
    }

    fn load(&self, raw: &RawCiphertext) -> Result<BackendCt> {
        if raw.c0.domain != Domain::Eval {
            return Err(FidesError::DomainMismatch {
                expected: "evaluation",
                found: "coefficient",
            });
        }
        if raw.level > self.hctx.max_level() {
            return Err(FidesError::LevelOutOfRange {
                level: raw.level,
                max: self.hctx.max_level(),
            });
        }
        crate::adapter::check_ct_shape(raw, self.hctx.n())?;
        Ok(BackendCt::Host(HostCiphertext {
            c0: raw.c0.limbs.clone(),
            c1: raw.c1.limbs.clone(),
            level: raw.level,
            scale: raw.scale,
            slots: raw.slots,
            noise_log2: raw.noise_log2,
        }))
    }

    fn store(&self, ct: &BackendCt) -> Result<RawCiphertext> {
        let ct = self.host(ct)?;
        Ok(RawCiphertext {
            c0: RawPoly {
                limbs: ct.c0.clone(),
                domain: Domain::Eval,
            },
            c1: RawPoly {
                limbs: ct.c1.clone(),
                domain: Domain::Eval,
            },
            level: ct.level,
            scale: ct.scale,
            slots: ct.slots,
            noise_log2: ct.noise_log2,
        })
    }

    fn add(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt> {
        let (a, b) = (self.host(a)?, self.host(b)?);
        Self::check_compatible(a, b)?;
        let mut out = a.clone();
        self.on_pool(|| {
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].add_assign_slices(limb, &b.c0[i]);
            });
            out.c1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].add_assign_slices(limb, &b.c1[i]);
            });
        });
        out.noise_log2 = a.noise_log2.max(b.noise_log2) + 0.5;
        Ok(BackendCt::Host(out))
    }

    fn sub(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt> {
        let (a, b) = (self.host(a)?, self.host(b)?);
        Self::check_compatible(a, b)?;
        let mut out = a.clone();
        self.on_pool(|| {
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].sub_assign_slices(limb, &b.c0[i]);
            });
            out.c1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].sub_assign_slices(limb, &b.c1[i]);
            });
        });
        out.noise_log2 = a.noise_log2.max(b.noise_log2) + 0.5;
        Ok(BackendCt::Host(out))
    }

    fn negate(&self, a: &BackendCt) -> Result<BackendCt> {
        let a = self.host(a)?;
        let mut out = a.clone();
        self.on_pool(|| {
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].neg_assign(limb);
            });
            out.c1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].neg_assign(limb);
            });
        });
        Ok(BackendCt::Host(out))
    }

    fn add_scalar(&self, a: &BackendCt, c: f64) -> Result<BackendCt> {
        let a = self.host(a)?;
        let scalars = self.scalar_residues(c, a.scale, a.level);
        let mut out = a.clone();
        self.on_pool(|| {
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].scalar_add_assign(limb, scalars[i]);
            });
        });
        out.noise_log2 += 0.1;
        Ok(BackendCt::Host(out))
    }

    fn add_plain(&self, a: &BackendCt, pt: &RawPlaintext) -> Result<BackendCt> {
        let a = self.host(a)?;
        if pt.level != a.level {
            return Err(FidesError::LevelMismatch {
                left: a.level,
                right: pt.level,
            });
        }
        let drift = (a.scale / pt.scale - 1.0).abs();
        if drift > SCALE_TOLERANCE {
            return Err(FidesError::ScaleMismatch {
                left: a.scale,
                right: pt.scale,
            });
        }
        let mut out = a.clone();
        self.on_pool(|| -> Result<()> {
            let eval = self.plain_to_eval(pt)?;
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].add_assign_slices(limb, &eval[i]);
            });
            Ok(())
        })?;
        out.noise_log2 += 0.25;
        Ok(BackendCt::Host(out))
    }

    fn mul_plain(&self, a: &BackendCt, pt: &RawPlaintext) -> Result<BackendCt> {
        let a = self.host(a)?;
        if pt.level != a.level {
            return Err(FidesError::LevelMismatch {
                left: a.level,
                right: pt.level,
            });
        }
        let mut out = a.clone();
        self.on_pool(|| -> Result<()> {
            let eval = self.plain_to_eval(pt)?;
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].mul_assign_slices(limb, &eval[i]);
            });
            out.c1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].mul_assign_slices(limb, &eval[i]);
            });
            Ok(())
        })?;
        out.scale = a.scale * pt.scale;
        out.noise_log2 = a.noise_log2 + 1.0;
        Ok(BackendCt::Host(out))
    }

    fn mul(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt> {
        let (a, b) = (self.host(a)?, self.host(b)?);
        if a.level != b.level {
            return Err(FidesError::LevelMismatch {
                left: a.level,
                right: b.level,
            });
        }
        if a.slots != b.slots {
            return Err(FidesError::SlotMismatch {
                left: a.slots,
                right: b.slots,
            });
        }
        let key = self
            .relin
            .as_ref()
            .ok_or_else(|| FidesError::MissingKey("relinearization".into()))?;
        let n = self.hctx.n();
        let (d0, d1) = self.on_pool(|| -> Result<HostPolyPair> {
            // Tensor product, one worker per limb.
            let tensored: Vec<(Vec<u64>, Vec<u64>, Vec<u64>)> = (0..a.level + 1)
                .into_par_iter()
                .map(|i| {
                    let m = &self.hctx.moduli_q[i];
                    let mut x0 = vec![0u64; n];
                    m.mul_slices(&a.c0[i], &b.c0[i], &mut x0);
                    let mut x1 = vec![0u64; n];
                    m.mul_slices(&a.c0[i], &b.c1[i], &mut x1);
                    m.mul_add_assign_slices(&mut x1, &a.c1[i], &b.c0[i]);
                    let mut x2 = vec![0u64; n];
                    m.mul_slices(&a.c1[i], &b.c1[i], &mut x2);
                    (x0, x1, x2)
                })
                .collect();
            let mut d0 = Vec::with_capacity(a.level + 1);
            let mut d1 = Vec::with_capacity(a.level + 1);
            let mut d2 = Vec::with_capacity(a.level + 1);
            for (x0, x1, x2) in tensored {
                d0.push(x0);
                d1.push(x1);
                d2.push(x2);
            }
            let (ks0, ks1) = self.hctx.key_switch(&d2, a.level, key)?;
            self.hctx.pool.put_all(d2);
            d0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].add_assign_slices(limb, &ks0[i]);
            });
            d1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].add_assign_slices(limb, &ks1[i]);
            });
            self.hctx.pool.put_all(ks0);
            self.hctx.pool.put_all(ks1);
            Ok((d0, d1))
        })?;
        Ok(BackendCt::Host(HostCiphertext {
            c0: d0,
            c1: d1,
            level: a.level,
            scale: a.scale * b.scale,
            slots: a.slots,
            noise_log2: a.noise_log2 + b.noise_log2 + (n as f64).log2() / 2.0,
        }))
    }

    fn square(&self, a: &BackendCt) -> Result<BackendCt> {
        self.mul(a, a)
    }

    fn mul_scalar_at(&self, a: &BackendCt, c: f64, const_scale: f64) -> Result<BackendCt> {
        let a = self.host(a)?;
        let scalars = self.scalar_residues(c, const_scale, a.level);
        let mut out = a.clone();
        self.on_pool(|| {
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].scalar_mul_assign(limb, scalars[i]);
            });
            out.c1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].scalar_mul_assign(limb, scalars[i]);
            });
        });
        out.scale = a.scale * const_scale;
        out.noise_log2 = a.noise_log2 + 1.0;
        Ok(BackendCt::Host(out))
    }

    fn mul_int(&self, a: &BackendCt, k: i64) -> Result<BackendCt> {
        let a = self.host(a)?;
        let mut out = a.clone();
        self.on_pool(|| {
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                let m = &self.hctx.moduli_q[i];
                m.scalar_mul_assign(limb, m.from_i64(k));
            });
            out.c1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                let m = &self.hctx.moduli_q[i];
                m.scalar_mul_assign(limb, m.from_i64(k));
            });
        });
        out.noise_log2 = a.noise_log2 + (k.unsigned_abs() as f64).log2().max(0.0);
        Ok(BackendCt::Host(out))
    }

    fn rescale(&self, a: &mut BackendCt) -> Result<()> {
        let ct = self.host_mut(a)?;
        if ct.level == 0 {
            return Err(FidesError::NotEnoughLevels {
                needed: 1,
                available: 0,
            });
        }
        let q_l = self.hctx.moduli_q[ct.level].value() as f64;
        self.pool.install(|| {
            self.hctx.rescale_limbs(&mut ct.c0);
            self.hctx.rescale_limbs(&mut ct.c1);
        });
        ct.level -= 1;
        ct.scale /= q_l;
        ct.noise_log2 = (ct.noise_log2 - q_l.log2()).max(4.0);
        Ok(())
    }

    fn drop_to_level(&self, a: &mut BackendCt, level: usize) -> Result<()> {
        let ct = self.host_mut(a)?;
        if level > ct.level {
            return Err(FidesError::NotEnoughLevels {
                needed: level,
                available: ct.level,
            });
        }
        ct.c0.truncate(level + 1);
        ct.c1.truncate(level + 1);
        ct.level = level;
        Ok(())
    }

    fn rotate(&self, a: &BackendCt, k: i32) -> Result<BackendCt> {
        let ct = self.host(a)?;
        if k == 0 {
            return Ok(BackendCt::Host(ct.clone()));
        }
        let g = galois_for_rotation(k, self.hctx.n());
        let key = self
            .rotations
            .get(&g)
            .ok_or_else(|| FidesError::MissingKey(format!("rotation(g={g})")))?;
        Ok(BackendCt::Host(
            self.on_pool(|| self.apply_galois(ct, g, key))?,
        ))
    }

    fn conjugate(&self, a: &BackendCt) -> Result<BackendCt> {
        let ct = self.host(a)?;
        let g = galois_for_conjugation(self.hctx.n());
        let key = self
            .conj
            .as_ref()
            .ok_or_else(|| FidesError::MissingKey("conjugation".into()))?;
        Ok(BackendCt::Host(
            self.on_pool(|| self.apply_galois(ct, g, key))?,
        ))
    }

    fn hoisted_rotations(&self, a: &BackendCt, shifts: &[i32]) -> Result<Vec<BackendCt>> {
        let ct = self.host(a)?;
        let n = self.hctx.n();
        // Check all keys up front.
        for &k in shifts {
            if k != 0 {
                let g = galois_for_rotation(k, n);
                if !self.rotations.contains_key(&g) {
                    return Err(FidesError::MissingKey(format!("rotation(g={g})")));
                }
            }
        }
        let level = ct.level;
        let num_q_full = self.hctx.max_level() + 1;
        let alpha = self.hctx.alpha();
        let digits = self.hctx.partition.digits_at_level(level);
        self.on_pool(|| {
            // Hoisted: decompose + ModUp of c1 once, shared across shifts
            // (Halevi–Shoup, §III-F.6); the automorphism commutes with the
            // digit decomposition, so permuting the lifted limbs afterwards
            // is bit-identical to rotate-then-keyswitch.
            let lifted: Vec<Vec<Vec<u64>>> = (0..digits)
                .map(|j| self.hctx.mod_up_digit(&ct.c1, j, level))
                .collect();
            let mut out = Vec::with_capacity(shifts.len());
            for &k in shifts {
                if k == 0 {
                    out.push(BackendCt::Host(ct.clone()));
                    continue;
                }
                let g = galois_for_rotation(k, n);
                let key = &self.rotations[&g];
                let perm = self.hctx.perm(g);
                let total = level + 1 + alpha;
                let mut acc0: Vec<Vec<u64>> =
                    (0..total).map(|_| self.hctx.pool.take_zeroed(n)).collect();
                let mut acc1: Vec<Vec<u64>> =
                    (0..total).map(|_| self.hctx.pool.take_zeroed(n)).collect();
                let chain_of = |idx: usize| {
                    if idx <= level {
                        (&self.hctx.moduli_q[idx], idx)
                    } else {
                        (
                            &self.hctx.moduli_p[idx - (level + 1)],
                            num_q_full + (idx - (level + 1)),
                        )
                    }
                };
                for (j, lift) in lifted.iter().enumerate() {
                    // Permute the lifted digit, then accumulate the key inner
                    // products limb-parallel (disjoint output slots).
                    let permuted: Vec<Vec<u64>> = (0..lift.len())
                        .into_par_iter()
                        .map(|idx| {
                            let mut p = self.hctx.pool.take_dirty(n);
                            fides_math::automorphism_eval(&lift[idx], &perm, &mut p);
                            p
                        })
                        .collect();
                    acc0.par_iter_mut().enumerate().for_each(|(idx, acc)| {
                        let (m, key_idx) = chain_of(idx);
                        m.mul_add_assign_slices(
                            acc,
                            &permuted[idx],
                            &key.digits[j].b.limbs[key_idx],
                        );
                    });
                    acc1.par_iter_mut().enumerate().for_each(|(idx, acc)| {
                        let (m, key_idx) = chain_of(idx);
                        m.mul_add_assign_slices(
                            acc,
                            &permuted[idx],
                            &key.digits[j].a.limbs[key_idx],
                        );
                    });
                    self.hctx.pool.put_all(permuted);
                }
                self.hctx.mod_down(&mut acc0, level);
                self.hctx.mod_down(&mut acc1, level);
                let mut c0: Vec<Vec<u64>> = (0..ct.c0.len())
                    .into_par_iter()
                    .map(|i| {
                        let mut p = vec![0u64; n];
                        fides_math::automorphism_eval(&ct.c0[i], &perm, &mut p);
                        p
                    })
                    .collect();
                c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                    self.hctx.moduli_q[i].add_assign_slices(limb, &acc0[i]);
                });
                self.hctx.pool.put_all(acc0);
                out.push(BackendCt::Host(HostCiphertext {
                    c0,
                    c1: acc1,
                    level,
                    scale: ct.scale,
                    slots: ct.slots,
                    noise_log2: ct.noise_log2 + 1.0,
                }));
            }
            for lift in lifted {
                self.hctx.pool.put_all(lift);
            }
            Ok(out)
        })
    }

    fn load_plain(&self, raw: &RawPlaintext) -> Result<BackendPt> {
        if raw.level > self.hctx.max_level() {
            return Err(FidesError::LevelOutOfRange {
                level: raw.level,
                max: self.hctx.max_level(),
            });
        }
        let limbs = self.on_pool(|| self.plain_to_eval(raw))?;
        Ok(BackendPt::Host(HostPlaintext {
            limbs,
            level: raw.level,
            scale: raw.scale,
            slots: raw.slots,
        }))
    }

    fn mul_plain_pre(&self, a: &BackendCt, pt: &BackendPt) -> Result<BackendCt> {
        let a = self.host(a)?;
        let pt = match pt {
            BackendPt::Host(p) => p,
            BackendPt::Device(_) => {
                return Err(FidesError::Unsupported(
                    "device plaintext handed to the cpu-reference backend".into(),
                ))
            }
        };
        if pt.level != a.level {
            return Err(FidesError::LevelMismatch {
                left: a.level,
                right: pt.level,
            });
        }
        let mut out = a.clone();
        self.on_pool(|| {
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].mul_assign_slices(limb, &pt.limbs[i]);
            });
            out.c1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].mul_assign_slices(limb, &pt.limbs[i]);
            });
        });
        out.scale = a.scale * pt.scale;
        out.noise_log2 = a.noise_log2 + 1.0;
        Ok(BackendCt::Host(out))
    }

    fn mod_raise(&self, a: &BackendCt) -> Result<BackendCt> {
        let ct = self.host(a)?;
        if ct.level != 0 {
            return Err(FidesError::LevelMismatch {
                left: ct.level,
                right: 0,
            });
        }
        let (c0, c1) = self.on_pool(|| (self.raise_limbs(&ct.c0), self.raise_limbs(&ct.c1)));
        Ok(BackendCt::Host(HostCiphertext {
            c0,
            c1,
            level: self.hctx.max_level(),
            scale: ct.scale,
            slots: ct.slots,
            noise_log2: ct.noise_log2,
        }))
    }

    fn mul_by_i(&self, a: &BackendCt) -> Result<BackendCt> {
        let a = self.host(a)?;
        let mut out = a.clone();
        self.on_pool(|| {
            out.c0.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].mul_assign_slices(limb, &self.hctx.monomial_half[i]);
            });
            out.c1.par_iter_mut().enumerate().for_each(|(i, limb)| {
                self.hctx.moduli_q[i].mul_assign_slices(limb, &self.hctx.monomial_half[i]);
            });
        });
        Ok(BackendCt::Host(out))
    }

    fn bootstrap(&self, a: &BackendCt) -> Result<BackendCt> {
        let boot = self.boot.as_ref().ok_or_else(|| {
            FidesError::Unsupported(
                "bootstrapping: engine was built without .bootstrap_slots(..)".into(),
            )
        })?;
        boot.bootstrap(self, a)
    }

    fn min_bootstrap_level(&self) -> Option<usize> {
        self.boot.as_ref().map(|b| b.min_output_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_client::{ClientContext, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        ClientContext,
        CpuBackend,
        fides_client::RawPublicKey,
        fides_client::SecretKey,
    ) {
        let raw = RawParams::generate(10, 4, 40, 60, 2);
        let client = ClientContext::new(raw.clone());
        let mut kg = KeyGenerator::new(&client, 21);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let mut backend = CpuBackend::new(raw);
        backend.set_relin_key(kg.relinearization_key(&sk));
        backend.insert_rotation_key(1, kg.rotation_key(&sk, 1));
        (client, backend, pk, sk)
    }

    fn enc(
        client: &ClientContext,
        backend: &CpuBackend,
        pk: &fides_client::RawPublicKey,
        values: &[f64],
        seed: u64,
    ) -> BackendCt {
        let mut rng = StdRng::seed_from_u64(seed);
        let level = backend.max_level();
        let pt = client
            .encode_real(values, backend.standard_scale(level), level)
            .unwrap();
        backend
            .load(&client.encrypt(&pt, pk, &mut rng).unwrap())
            .unwrap()
    }

    fn dec(
        client: &ClientContext,
        backend: &CpuBackend,
        sk: &fides_client::SecretKey,
        ct: &BackendCt,
    ) -> Vec<f64> {
        client
            .decode_real(&client.decrypt(&backend.store(ct).unwrap(), sk).unwrap())
            .unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let (client, backend, pk, sk) = setup();
        let xs = [0.5, -0.25, 0.125, 0.75];
        let ys = [0.1, 0.2, -0.3, 0.4];
        let a = enc(&client, &backend, &pk, &xs, 1);
        let b = enc(&client, &backend, &pk, &ys, 2);
        let sum = dec(&client, &backend, &sk, &backend.add(&a, &b).unwrap());
        let diff = dec(&client, &backend, &sk, &backend.sub(&a, &b).unwrap());
        for i in 0..4 {
            assert!(
                (sum[i] - (xs[i] + ys[i])).abs() < 1e-5,
                "slot {i}: {}",
                sum[i]
            );
            assert!((diff[i] - (xs[i] - ys[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn mul_with_relinearization_and_rescale() {
        let (client, backend, pk, sk) = setup();
        let xs = [0.5, -0.25, 0.125, 0.75];
        let ys = [0.4, 0.8, -0.5, -0.2];
        let a = enc(&client, &backend, &pk, &xs, 3);
        let b = enc(&client, &backend, &pk, &ys, 4);
        let mut prod = backend.mul(&a, &b).unwrap();
        backend.rescale(&mut prod).unwrap();
        assert_eq!(prod.level(), backend.max_level() - 1);
        let got = dec(&client, &backend, &sk, &prod);
        for i in 0..4 {
            assert!(
                (got[i] - xs[i] * ys[i]).abs() < 1e-4,
                "slot {i}: {} vs {}",
                got[i],
                xs[i] * ys[i]
            );
        }
    }

    #[test]
    fn rotation_matches_plain_shift() {
        let (client, backend, pk, sk) = setup();
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.1).collect();
        let a = enc(&client, &backend, &pk, &xs, 5);
        let rot = backend.rotate(&a, 1).unwrap();
        let got = dec(&client, &backend, &sk, &rot);
        for i in 0..8 {
            let expect = xs[(i + 1) % 8];
            assert!(
                (got[i] - expect).abs() < 1e-4,
                "slot {i}: {} vs {expect}",
                got[i]
            );
        }
    }

    #[test]
    fn scalar_paths() {
        let (client, backend, pk, sk) = setup();
        let xs = [0.5, -0.25, 0.125, 0.75];
        let a = enc(&client, &backend, &pk, &xs, 6);
        let plus = dec(
            &client,
            &backend,
            &sk,
            &backend.add_scalar(&a, 0.25).unwrap(),
        );
        let twice = dec(&client, &backend, &sk, &backend.mul_int(&a, 2).unwrap());
        for i in 0..4 {
            assert!((plus[i] - (xs[i] + 0.25)).abs() < 1e-5);
            assert!((twice[i] - 2.0 * xs[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn malformed_frames_and_keys_are_typed_errors() {
        let raw = RawParams::generate(10, 2, 40, 60, 2);
        let client = ClientContext::new(raw.clone());
        let mut kg = KeyGenerator::new(&client, 31);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let mut backend = CpuBackend::new(raw);
        let a = enc(&client, &backend, &pk, &[0.1], 8);

        // Frame whose header level contradicts its limb count.
        let mut frame = backend.store(&a).unwrap();
        frame.c1.limbs.pop();
        assert!(matches!(
            backend.load(&frame),
            Err(FidesError::Malformed(_))
        ));

        // Relin key generated for a shallower chain: typed KeyShape, not a
        // panic, exactly like the GPU adapter path.
        let short_raw = RawParams::generate(10, 1, 40, 60, 2);
        let short_client = ClientContext::new(short_raw);
        let mut short_kg = KeyGenerator::new(&short_client, 32);
        let short_sk = short_kg.secret_key();
        backend.set_relin_key(short_kg.relinearization_key(&short_sk));
        assert!(matches!(
            backend.mul(&a, &a),
            Err(FidesError::KeyShape { .. })
        ));
    }

    #[test]
    fn worker_count_does_not_change_bits() {
        // The same circuit on 1 and 8 workers must produce identical limb
        // data: per-limb work is assigned to disjoint output slots, so the
        // split is invisible to the math.
        let raw = RawParams::generate(10, 4, 40, 60, 2);
        let client = ClientContext::new(raw.clone());
        let mut kg = KeyGenerator::new(&client, 77);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let relin = kg.relinearization_key(&sk);
        let rot = kg.rotation_key(&sk, 1);
        let mut frames = Vec::new();
        for workers in [1usize, 8] {
            let mut backend = CpuBackend::new(raw.clone()).with_workers(workers);
            assert_eq!(backend.workers(), workers);
            backend.set_relin_key(relin.clone());
            backend.insert_rotation_key(1, rot.clone());
            let a = enc(&client, &backend, &pk, &[0.5, -0.25, 0.125, 0.75], 42);
            let b = enc(&client, &backend, &pk, &[0.1, 0.2, -0.3, 0.4], 43);
            let mut prod = backend.mul(&a, &b).unwrap();
            backend.rescale(&mut prod).unwrap();
            let rot = backend.rotate(&prod, 1).unwrap();
            let sum = backend.add(&rot, &rot).unwrap();
            frames.push(backend.store(&sum).unwrap());
        }
        assert_eq!(frames[0].c0.limbs, frames[1].c0.limbs);
        assert_eq!(frames[0].c1.limbs, frames[1].c1.limbs);
    }

    #[test]
    fn limb_pool_recycles_key_switch_scratch() {
        let (client, backend, pk, sk) = setup();
        let a = enc(&client, &backend, &pk, &[0.5, -0.25, 0.125, 0.75], 91);
        let before = backend.limb_pool_reuses();
        let mut prod = backend.mul(&a, &a).unwrap();
        backend.rescale(&mut prod).unwrap();
        let rot = backend.rotate(&prod, 1).unwrap();
        assert!(
            backend.limb_pool_reuses() > before,
            "the NTT/key-switch hot path must recycle limb buffers"
        );
        // Pooling is invisible to the math: the result still decrypts.
        let got = dec(&client, &backend, &sk, &rot);
        assert!(got[0].is_finite());
    }

    #[test]
    fn missing_keys_are_typed_errors() {
        let raw = RawParams::generate(10, 2, 40, 60, 2);
        let client = ClientContext::new(raw.clone());
        let mut kg = KeyGenerator::new(&client, 9);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let backend = CpuBackend::new(raw);
        let a = enc(&client, &backend, &pk, &[0.1], 7);
        assert!(matches!(
            backend.mul(&a, &a),
            Err(FidesError::MissingKey(_))
        ));
        assert!(matches!(
            backend.rotate(&a, 1),
            Err(FidesError::MissingKey(_))
        ));
        assert!(matches!(
            backend.conjugate(&a),
            Err(FidesError::MissingKey(_))
        ));
        assert!(matches!(
            backend.bootstrap(&a),
            Err(FidesError::Unsupported(_))
        ));
        let _ = sk;
    }
}
