//! Device-resident ciphertexts and plaintexts (`CKKS::Ciphertext`,
//! `CKKS::Plaintext`).

use std::sync::Arc;

use fides_client::Domain;

use crate::context::CkksContext;
use crate::error::{FidesError, Result};
use crate::poly::RNSPoly;

/// Relative scale drift tolerated when combining operands.
///
/// The FLEXIBLEAUTO-style standard-scale ladder `σ_{ℓ-1} = σ_ℓ²/q_ℓ`
/// *doubles* relative prime drift per level, so the bottom of a deep chain
/// deviates from `2^Δ` by up to ~`2^-7` even with alternating prime
/// selection. Mixing ladder points (e.g. bootstrap's scale
/// reinterpretation) therefore produces relative scale differences up to
/// ~1e-3. Adding operands whose scales differ by `ε` perturbs the message
/// by only `ε` relative, which stays below this library's approximate-
/// computing precision targets; OpenFHE cancels the drift with explicit
/// adjustment multiplications, a refinement noted as future work in
/// DESIGN.md. Gross scale errors (forgotten rescales, factor-of-2 bugs)
/// remain far outside this bound and are still rejected.
pub const SCALE_TOLERANCE: f64 = 2e-2;

/// A CKKS ciphertext `(c_0, c_1)` on the device, in evaluation domain.
#[derive(Debug)]
pub struct Ciphertext {
    pub(crate) c0: RNSPoly,
    pub(crate) c1: RNSPoly,
    pub(crate) scale: f64,
    pub(crate) slots: usize,
    pub(crate) noise_log2: f64,
}

impl Ciphertext {
    /// Wraps two polynomials into a ciphertext.
    pub fn from_parts(c0: RNSPoly, c1: RNSPoly, scale: f64, slots: usize, noise_log2: f64) -> Self {
        assert_eq!(c0.num_q(), c1.num_q(), "component level mismatch");
        Self {
            c0,
            c1,
            scale,
            slots,
            noise_log2,
        }
    }

    /// An all-zero ciphertext at `level` (useful as an accumulator).
    pub fn zero(ctx: &Arc<CkksContext>, level: usize, scale: f64, slots: usize) -> Self {
        Self {
            c0: RNSPoly::zero(ctx, level, false, Domain::Eval),
            c1: RNSPoly::zero(ctx, level, false, Domain::Eval),
            scale,
            slots,
            noise_log2: 0.0,
        }
    }

    /// Current level.
    pub fn level(&self) -> usize {
        self.c0.level()
    }

    /// Exact message scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Overrides the scale metadata (scale reinterpretation — used by
    /// bootstrapping; changes the *logical* value, not the data).
    pub fn set_scale(&mut self, scale: f64) {
        assert!(scale > 0.0);
        self.scale = scale;
    }

    /// Number of packed slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Static noise estimate (log2 magnitude).
    pub fn noise_log2(&self) -> f64 {
        self.noise_log2
    }

    /// The owning context.
    pub fn context(&self) -> &Arc<CkksContext> {
        self.c0.context()
    }

    /// The `c_0` component.
    pub fn c0(&self) -> &RNSPoly {
        &self.c0
    }

    /// The `c_1` component.
    pub fn c1(&self) -> &RNSPoly {
        &self.c1
    }

    /// Deep copy (device-side copy kernels).
    pub fn duplicate(&self) -> Self {
        Self {
            c0: self.c0.duplicate(),
            c1: self.c1.duplicate(),
            scale: self.scale,
            slots: self.slots,
            noise_log2: self.noise_log2,
        }
    }

    /// Drops limbs down to `level` without rescaling (LevelReduce).
    pub fn drop_to_level(&mut self, level: usize) -> Result<()> {
        if level > self.level() {
            return Err(FidesError::NotEnoughLevels {
                needed: level,
                available: self.level(),
            });
        }
        self.c0.drop_to_level(level);
        self.c1.drop_to_level(level);
        Ok(())
    }

    pub(crate) fn check_compatible(&self, other: &Ciphertext) -> Result<()> {
        if self.level() != other.level() {
            return Err(FidesError::LevelMismatch {
                left: self.level(),
                right: other.level(),
            });
        }
        if self.slots != other.slots {
            return Err(FidesError::SlotMismatch {
                left: self.slots,
                right: other.slots,
            });
        }
        let drift = (self.scale / other.scale - 1.0).abs();
        if drift > SCALE_TOLERANCE {
            return Err(FidesError::ScaleMismatch {
                left: self.scale,
                right: other.scale,
            });
        }
        Ok(())
    }
}

/// A device-resident plaintext in evaluation domain (ready for PtAdd/PtMult).
#[derive(Debug)]
pub struct Plaintext {
    pub(crate) poly: RNSPoly,
    pub(crate) scale: f64,
    pub(crate) slots: usize,
}

impl Plaintext {
    /// Wraps an evaluation-domain polynomial.
    pub fn from_poly(poly: RNSPoly, scale: f64, slots: usize) -> Self {
        Self { poly, scale, slots }
    }

    /// Level of the plaintext.
    pub fn level(&self) -> usize {
        self.poly.level()
    }

    /// Encoding scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Packed slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The underlying polynomial.
    pub fn poly(&self) -> &RNSPoly {
        &self.poly
    }

    /// Drops limbs down to `level` (plaintexts can always be truncated).
    pub fn drop_to_level(&mut self, level: usize) -> Result<()> {
        if level > self.level() {
            return Err(FidesError::NotEnoughLevels {
                needed: level,
                available: self.level(),
            });
        }
        self.poly.drop_to_level(level);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParameters;
    use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

    fn ctx() -> Arc<CkksContext> {
        CkksContext::new(
            CkksParameters::toy(),
            GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional),
        )
    }

    #[test]
    fn compatibility_checks() {
        let c = ctx();
        let a = Ciphertext::zero(&c, 2, 2f64.powi(40), 8);
        let b = Ciphertext::zero(&c, 1, 2f64.powi(40), 8);
        assert!(matches!(
            a.check_compatible(&b),
            Err(FidesError::LevelMismatch { .. })
        ));
        let b = Ciphertext::zero(&c, 2, 2f64.powi(41), 8);
        assert!(matches!(
            a.check_compatible(&b),
            Err(FidesError::ScaleMismatch { .. })
        ));
        let b = Ciphertext::zero(&c, 2, 2f64.powi(40), 4);
        assert!(matches!(
            a.check_compatible(&b),
            Err(FidesError::SlotMismatch { .. })
        ));
        let b = Ciphertext::zero(&c, 2, 2f64.powi(40) * (1.0 + 1e-9), 8);
        assert!(a.check_compatible(&b).is_ok(), "tiny drift tolerated");
    }

    #[test]
    fn level_drop() {
        let c = ctx();
        let mut a = Ciphertext::zero(&c, 3, 1.0, 8);
        a.drop_to_level(1).unwrap();
        assert_eq!(a.level(), 1);
        assert!(a.drop_to_level(3).is_err());
    }
}
