//! Error types for server-side CKKS operations.

use std::fmt;

/// Errors produced by `fides-core` operations.
#[derive(Clone, Debug, PartialEq)]
pub enum FidesError {
    /// Operand levels differ where they must match.
    LevelMismatch {
        /// Left operand level.
        left: usize,
        /// Right operand level.
        right: usize,
    },
    /// Operand scales differ beyond the drift tolerance.
    ScaleMismatch {
        /// Left operand scale.
        left: f64,
        /// Right operand scale.
        right: f64,
    },
    /// Slot counts differ.
    SlotMismatch {
        /// Left operand slots.
        left: usize,
        /// Right operand slots.
        right: usize,
    },
    /// The operation needs more multiplicative levels than remain.
    NotEnoughLevels {
        /// Levels required.
        needed: usize,
        /// Levels available.
        available: usize,
    },
    /// A required evaluation key (relinearization / rotation / conjugation)
    /// was not loaded.
    MissingKey(String),
    /// Invalid parameter combination.
    InvalidParams(String),
    /// Data crossed the adapter in the wrong representation domain.
    DomainMismatch {
        /// Domain the operation requires.
        expected: &'static str,
        /// Domain the data arrived in.
        found: &'static str,
    },
    /// A ciphertext or plaintext level exceeds the context chain.
    LevelOutOfRange {
        /// Offending level.
        level: usize,
        /// Maximum level the chain supports.
        max: usize,
    },
    /// A switching key's limb count does not match the context chain.
    KeyShape {
        /// Limbs the chain requires per digit component.
        expected: usize,
        /// Limbs the key carries.
        found: usize,
    },
    /// A client-side operation failed (encode / encrypt / serialization).
    Client(String),
    /// An adapter frame (ciphertext / plaintext / key) is structurally
    /// inconsistent — e.g. limb counts that contradict its declared level.
    Malformed(String),
    /// The active evaluation backend does not support the operation.
    Unsupported(String),
}

impl fmt::Display for FidesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FidesError::LevelMismatch { left, right } => {
                write!(f, "ciphertext level mismatch: {left} vs {right}")
            }
            FidesError::ScaleMismatch { left, right } => {
                write!(
                    f,
                    "scale mismatch beyond drift tolerance: {left:e} vs {right:e}"
                )
            }
            FidesError::SlotMismatch { left, right } => {
                write!(f, "slot count mismatch: {left} vs {right}")
            }
            FidesError::NotEnoughLevels { needed, available } => {
                write!(f, "not enough levels: need {needed}, have {available}")
            }
            FidesError::MissingKey(which) => write!(f, "missing evaluation key: {which}"),
            FidesError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            FidesError::DomainMismatch { expected, found } => {
                write!(
                    f,
                    "domain mismatch: expected {expected} representation, found {found}"
                )
            }
            FidesError::LevelOutOfRange { level, max } => {
                write!(f, "level {level} out of range (chain supports 0..={max})")
            }
            FidesError::KeyShape { expected, found } => {
                write!(
                    f,
                    "switching key shape mismatch: expected {expected} limbs, found {found}"
                )
            }
            FidesError::Client(msg) => write!(f, "client operation failed: {msg}"),
            FidesError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FidesError::Unsupported(what) => write!(f, "unsupported by this backend: {what}"),
        }
    }
}

impl std::error::Error for FidesError {}

impl From<fides_client::ClientError> for FidesError {
    fn from(e: fides_client::ClientError) -> Self {
        FidesError::Client(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FidesError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FidesError::LevelMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        let e = FidesError::MissingKey("rotation(4)".into());
        assert!(e.to_string().contains("rotation(4)"));
        let e = FidesError::NotEnoughLevels {
            needed: 2,
            available: 1,
        };
        assert!(e.to_string().contains("need 2"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn std::error::Error + Send + Sync)) {}
        takes_err(&FidesError::InvalidParams("x".into()));
    }
}
