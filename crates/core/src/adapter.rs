//! The thin adapter layer between the client's `Raw*` objects and the
//! server's device-resident structures (paper §III-B).
//!
//! Uploads charge PCIe transfers; plaintexts arrive in coefficient domain and
//! are NTT'd on the device; downloads carry the static noise estimate back to
//! the client for decryption bookkeeping.

use std::sync::Arc;

use fides_client::{
    Domain, RawCiphertext, RawPlaintext, RawPoly, RawSwitchingKey,
};

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::keys::{EvalKeySet, KeySwitchingKey};
use crate::poly::RNSPoly;

/// Uploads a client ciphertext onto the device.
///
/// # Panics
///
/// Panics if the ciphertext is not in evaluation domain or its level exceeds
/// the context chain.
pub fn load_ciphertext(ctx: &Arc<CkksContext>, raw: &RawCiphertext) -> Ciphertext {
    assert_eq!(raw.c0.domain, Domain::Eval, "client ciphertexts arrive in evaluation domain");
    assert!(raw.level <= ctx.max_level());
    let bytes = (raw.c0.limbs.len() * ctx.n() * 8 * 2) as u64;
    ctx.gpu().transfer_to_device(bytes);
    let c0 = RNSPoly::from_host_q_limbs(ctx, raw.c0.limbs.clone(), Domain::Eval);
    let c1 = RNSPoly::from_host_q_limbs(ctx, raw.c1.limbs.clone(), Domain::Eval);
    Ciphertext::from_parts(c0, c1, raw.scale, raw.slots, raw.noise_log2)
}

/// Downloads a ciphertext back into the adapter format (for client
/// decryption), including the noise estimate (§III-B).
pub fn store_ciphertext(ct: &Ciphertext) -> RawCiphertext {
    let ctx = ct.context();
    let bytes = ((ct.level() + 1) * ctx.n() * 8 * 2) as u64;
    ctx.gpu().transfer_to_host(bytes);
    RawCiphertext {
        c0: RawPoly { limbs: ct.c0().to_host_q_limbs(), domain: Domain::Eval },
        c1: RawPoly { limbs: ct.c1().to_host_q_limbs(), domain: Domain::Eval },
        level: ct.level(),
        scale: ct.scale(),
        slots: ct.slots(),
        noise_log2: ct.noise_log2(),
    }
}

/// Uploads an encoded plaintext and converts it to evaluation domain on the
/// device.
///
/// # Panics
///
/// Panics if the plaintext is not in coefficient domain.
pub fn load_plaintext(ctx: &Arc<CkksContext>, raw: &RawPlaintext) -> Plaintext {
    assert_eq!(raw.poly.domain, Domain::Coeff, "plaintexts arrive in coefficient domain");
    let bytes = (raw.poly.limbs.len() * ctx.n() * 8) as u64;
    ctx.gpu().transfer_to_device(bytes);
    let mut poly = RNSPoly::from_host_q_limbs(ctx, raw.poly.limbs.clone(), Domain::Coeff);
    poly.ntt_inplace();
    Plaintext::from_poly(poly, raw.scale, raw.slots)
}

/// Creates a placeholder plaintext with the right shape but no data — used
/// by cost-only benchmark runs, where values are irrelevant (all kernels are
/// data-oblivious).
pub fn placeholder_plaintext(
    ctx: &Arc<CkksContext>,
    level: usize,
    scale: f64,
    slots: usize,
) -> Plaintext {
    let poly = RNSPoly::zero(ctx, level, false, Domain::Eval);
    Plaintext::from_poly(poly, scale, slots)
}

/// Creates a placeholder ciphertext for cost-only runs.
pub fn placeholder_ciphertext(
    ctx: &Arc<CkksContext>,
    level: usize,
    scale: f64,
    slots: usize,
) -> Ciphertext {
    Ciphertext::zero(ctx, level, scale, slots)
}

/// Uploads a switching key (relinearization / rotation / conjugation).
///
/// # Panics
///
/// Panics if digit limb counts do not match the context chain.
pub fn load_switching_key(ctx: &Arc<CkksContext>, raw: &RawSwitchingKey) -> KeySwitchingKey {
    let expected = ctx.max_level() + 1 + ctx.alpha();
    let mut digits = Vec::with_capacity(raw.digits.len());
    let mut bytes = 0u64;
    for d in &raw.digits {
        assert_eq!(d.b.limbs.len(), expected, "switching key limb count mismatch");
        assert_eq!(d.a.limbs.len(), expected);
        bytes += (2 * expected * ctx.n() * 8) as u64;
        let b = extended_poly_from_host(ctx, &d.b);
        let a = extended_poly_from_host(ctx, &d.a);
        digits.push((b, a));
    }
    ctx.gpu().transfer_to_device(bytes);
    KeySwitchingKey { digits }
}

fn extended_poly_from_host(ctx: &Arc<CkksContext>, raw: &RawPoly) -> RNSPoly {
    use crate::context::ChainIdx;
    use crate::poly::{Limb, LimbPartition};
    use fides_gpu_sim::VectorGpu;
    assert_eq!(raw.domain, Domain::Eval);
    let num_q = ctx.max_level() + 1;
    let limbs: Vec<Limb> = raw
        .limbs
        .iter()
        .enumerate()
        .map(|(i, host)| {
            let chain =
                if i < num_q { ChainIdx::Q(i) } else { ChainIdx::P(i - num_q) };
            Limb { data: VectorGpu::from_vec(ctx.gpu(), host.clone()), chain }
        })
        .collect();
    RNSPoly {
        ctx: Arc::clone(ctx),
        part: LimbPartition { limbs },
        num_q,
        num_p: ctx.alpha(),
        format: Domain::Eval,
    }
}

impl EvalKeySet {
    /// Installs the relinearization key.
    pub fn set_mult(&mut self, key: KeySwitchingKey) {
        self.mult = Some(key);
    }

    /// Installs a rotation key under its Galois element.
    pub fn insert_rotation(&mut self, galois: usize, key: KeySwitchingKey) {
        self.rotations.insert(galois, key);
    }

    /// Installs the conjugation key.
    pub fn set_conj(&mut self, key: KeySwitchingKey) {
        self.conj = Some(key);
    }
}

/// Convenience: uploads a full key set from client material. `rotations`
/// pairs each slot shift with its key.
pub fn load_eval_keys(
    ctx: &Arc<CkksContext>,
    mult: Option<&RawSwitchingKey>,
    rotations: &[(i32, RawSwitchingKey)],
    conj: Option<&RawSwitchingKey>,
) -> EvalKeySet {
    let mut keys = EvalKeySet::new();
    if let Some(m) = mult {
        keys.set_mult(load_switching_key(ctx, m));
    }
    for (shift, raw) in rotations {
        let g = fides_client::galois_for_rotation(*shift, ctx.n());
        keys.insert_rotation(g, load_switching_key(ctx, raw));
    }
    if let Some(c) = conj {
        keys.set_conj(load_switching_key(ctx, c));
    }
    keys
}
