//! The thin adapter layer between the client's `Raw*` objects and the
//! server's device-resident structures (paper §III-B).
//!
//! Uploads charge PCIe transfers; plaintexts arrive in coefficient domain and
//! are NTT'd on the device; downloads carry the static noise estimate back to
//! the client for decryption bookkeeping.
//!
//! All uploads validate their inputs and report malformed data as typed
//! [`FidesError`] values — the adapter is the service boundary, so a bad
//! frame must never abort the server.

use std::sync::Arc;

use fides_client::{Domain, RawCiphertext, RawPlaintext, RawPoly, RawSwitchingKey};

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::error::{FidesError, Result};
use crate::keys::{EvalKeySet, KeySwitchingKey};
use crate::poly::RNSPoly;

/// Checks that a ciphertext frame's limb structure matches its header.
pub(crate) fn check_ct_shape(raw: &RawCiphertext, n: usize) -> Result<()> {
    for (name, poly) in [("c0", &raw.c0), ("c1", &raw.c1)] {
        if poly.limbs.len() != raw.level + 1 {
            return Err(FidesError::Malformed(format!(
                "{name} carries {} limbs but the header declares level {}",
                poly.limbs.len(),
                raw.level
            )));
        }
        if let Some(bad) = poly.limbs.iter().position(|l| l.len() != n) {
            return Err(FidesError::Malformed(format!(
                "{name} limb {bad} has {} coefficients, ring degree is {n}",
                poly.limbs[bad].len()
            )));
        }
    }
    Ok(())
}

/// Uploads a client ciphertext onto the device.
///
/// # Errors
///
/// [`FidesError::DomainMismatch`] if the ciphertext is not in evaluation
/// domain, [`FidesError::LevelOutOfRange`] if its level exceeds the context
/// chain, [`FidesError::Malformed`] if the limb structure contradicts the
/// header.
pub fn load_ciphertext(ctx: &Arc<CkksContext>, raw: &RawCiphertext) -> Result<Ciphertext> {
    if raw.c0.domain != Domain::Eval {
        return Err(FidesError::DomainMismatch {
            expected: "evaluation",
            found: "coefficient",
        });
    }
    if raw.level > ctx.max_level() {
        return Err(FidesError::LevelOutOfRange {
            level: raw.level,
            max: ctx.max_level(),
        });
    }
    check_ct_shape(raw, ctx.n())?;
    let bytes = (raw.c0.limbs.len() * ctx.n() * 8 * 2) as u64;
    ctx.gpu().transfer_to_device(bytes);
    let c0 = RNSPoly::from_host_q_limbs(ctx, raw.c0.limbs.clone(), Domain::Eval);
    let c1 = RNSPoly::from_host_q_limbs(ctx, raw.c1.limbs.clone(), Domain::Eval);
    Ok(Ciphertext::from_parts(
        c0,
        c1,
        raw.scale,
        raw.slots,
        raw.noise_log2,
    ))
}

/// Downloads a ciphertext back into the adapter format (for client
/// decryption), including the noise estimate (§III-B).
pub fn store_ciphertext(ct: &Ciphertext) -> RawCiphertext {
    let ctx = ct.context();
    let bytes = ((ct.level() + 1) * ctx.n() * 8 * 2) as u64;
    ctx.gpu().transfer_to_host(bytes);
    RawCiphertext {
        c0: RawPoly {
            limbs: ct.c0().to_host_q_limbs(),
            domain: Domain::Eval,
        },
        c1: RawPoly {
            limbs: ct.c1().to_host_q_limbs(),
            domain: Domain::Eval,
        },
        level: ct.level(),
        scale: ct.scale(),
        slots: ct.slots(),
        noise_log2: ct.noise_log2(),
    }
}

/// Uploads an encoded plaintext and converts it to evaluation domain on the
/// device.
///
/// # Errors
///
/// [`FidesError::DomainMismatch`] if the plaintext is not in coefficient
/// domain, [`FidesError::LevelOutOfRange`] if its level exceeds the chain.
pub fn load_plaintext(ctx: &Arc<CkksContext>, raw: &RawPlaintext) -> Result<Plaintext> {
    if raw.poly.domain != Domain::Coeff {
        return Err(FidesError::DomainMismatch {
            expected: "coefficient",
            found: "evaluation",
        });
    }
    if raw.level > ctx.max_level() {
        return Err(FidesError::LevelOutOfRange {
            level: raw.level,
            max: ctx.max_level(),
        });
    }
    let bytes = (raw.poly.limbs.len() * ctx.n() * 8) as u64;
    ctx.gpu().transfer_to_device(bytes);
    let mut poly = RNSPoly::from_host_q_limbs(ctx, raw.poly.limbs.clone(), Domain::Coeff);
    poly.ntt_inplace();
    Ok(Plaintext::from_poly(poly, raw.scale, raw.slots))
}

/// Creates a placeholder plaintext with the right shape but no data — used
/// by cost-only benchmark runs, where values are irrelevant (all kernels are
/// data-oblivious).
pub fn placeholder_plaintext(
    ctx: &Arc<CkksContext>,
    level: usize,
    scale: f64,
    slots: usize,
) -> Plaintext {
    let poly = RNSPoly::zero(ctx, level, false, Domain::Eval);
    Plaintext::from_poly(poly, scale, slots)
}

/// Creates a placeholder ciphertext for cost-only runs.
pub fn placeholder_ciphertext(
    ctx: &Arc<CkksContext>,
    level: usize,
    scale: f64,
    slots: usize,
) -> Ciphertext {
    Ciphertext::zero(ctx, level, scale, slots)
}

/// Uploads a switching key (relinearization / rotation / conjugation).
///
/// # Errors
///
/// [`FidesError::KeyShape`] if any digit's limb count does not match the
/// context chain, [`FidesError::DomainMismatch`] if a digit is not in
/// evaluation domain.
pub fn load_switching_key(
    ctx: &Arc<CkksContext>,
    raw: &RawSwitchingKey,
) -> Result<KeySwitchingKey> {
    let expected = ctx.max_level() + 1 + ctx.alpha();
    let mut digits = Vec::with_capacity(raw.digits.len());
    let mut bytes = 0u64;
    for d in &raw.digits {
        if d.b.limbs.len() != expected {
            return Err(FidesError::KeyShape {
                expected,
                found: d.b.limbs.len(),
            });
        }
        if d.a.limbs.len() != expected {
            return Err(FidesError::KeyShape {
                expected,
                found: d.a.limbs.len(),
            });
        }
        bytes += (2 * expected * ctx.n() * 8) as u64;
        let b = extended_poly_from_host(ctx, &d.b)?;
        let a = extended_poly_from_host(ctx, &d.a)?;
        digits.push((b, a));
    }
    ctx.gpu().transfer_to_device(bytes);
    Ok(KeySwitchingKey { digits })
}

fn extended_poly_from_host(ctx: &Arc<CkksContext>, raw: &RawPoly) -> Result<RNSPoly> {
    use crate::context::ChainIdx;
    use crate::poly::{Limb, LimbPartition};
    use fides_gpu_sim::VectorGpu;
    if raw.domain != Domain::Eval {
        return Err(FidesError::DomainMismatch {
            expected: "evaluation",
            found: "coefficient",
        });
    }
    let num_q = ctx.max_level() + 1;
    let limbs: Vec<Limb> = raw
        .limbs
        .iter()
        .enumerate()
        .map(|(i, host)| {
            let chain = if i < num_q {
                ChainIdx::Q(i)
            } else {
                ChainIdx::P(i - num_q)
            };
            Limb {
                data: VectorGpu::from_vec(ctx.gpu(), host.clone()),
                chain,
            }
        })
        .collect();
    Ok(RNSPoly {
        ctx: Arc::clone(ctx),
        part: LimbPartition { limbs },
        num_q,
        num_p: ctx.alpha(),
        format: Domain::Eval,
    })
}

impl EvalKeySet {
    /// Installs the relinearization key.
    pub fn set_mult(&mut self, key: KeySwitchingKey) {
        self.mult = Some(key);
    }

    /// Installs a rotation key under its Galois element.
    pub fn insert_rotation(&mut self, galois: usize, key: KeySwitchingKey) {
        self.rotations.insert(galois, key);
    }

    /// Installs the conjugation key.
    pub fn set_conj(&mut self, key: KeySwitchingKey) {
        self.conj = Some(key);
    }
}

/// Convenience: uploads a full key set from client material. `rotations`
/// pairs each slot shift with its key.
///
/// # Errors
///
/// Propagates [`load_switching_key`] failures for any malformed key.
pub fn load_eval_keys(
    ctx: &Arc<CkksContext>,
    mult: Option<&RawSwitchingKey>,
    rotations: &[(i32, RawSwitchingKey)],
    conj: Option<&RawSwitchingKey>,
) -> Result<EvalKeySet> {
    let mut keys = EvalKeySet::new();
    if let Some(m) = mult {
        keys.set_mult(load_switching_key(ctx, m)?);
    }
    for (shift, raw) in rotations {
        let g = fides_client::galois_for_rotation(*shift, ctx.n());
        keys.insert_rotation(g, load_switching_key(ctx, raw)?);
    }
    if let Some(c) = conj {
        keys.set_conj(load_switching_key(ctx, c)?);
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParameters;
    use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

    fn ctx() -> Arc<CkksContext> {
        CkksContext::new(
            CkksParameters::toy(),
            GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional),
        )
    }

    #[test]
    fn wrong_domain_rejected_typed() {
        let c = ctx();
        let n = c.n();
        let bad_ct = RawCiphertext {
            c0: RawPoly::zero(n, 2, Domain::Coeff),
            c1: RawPoly::zero(n, 2, Domain::Coeff),
            level: 1,
            scale: 2f64.powi(40),
            slots: 8,
            noise_log2: 1.0,
        };
        assert!(matches!(
            load_ciphertext(&c, &bad_ct),
            Err(FidesError::DomainMismatch {
                expected: "evaluation",
                ..
            })
        ));
        let bad_pt = RawPlaintext {
            poly: RawPoly::zero(n, 2, Domain::Eval),
            level: 1,
            scale: 2f64.powi(40),
            slots: 8,
        };
        assert!(matches!(
            load_plaintext(&c, &bad_pt),
            Err(FidesError::DomainMismatch {
                expected: "coefficient",
                ..
            })
        ));
    }

    #[test]
    fn out_of_range_level_rejected_typed() {
        let c = ctx();
        let n = c.n();
        let bad = RawCiphertext {
            c0: RawPoly::zero(n, c.max_level() + 2, Domain::Eval),
            c1: RawPoly::zero(n, c.max_level() + 2, Domain::Eval),
            level: c.max_level() + 1,
            scale: 2f64.powi(40),
            slots: 8,
            noise_log2: 1.0,
        };
        assert!(matches!(
            load_ciphertext(&c, &bad),
            Err(FidesError::LevelOutOfRange { level, .. }) if level == c.max_level() + 1
        ));
    }

    #[test]
    fn inconsistent_limb_structure_rejected_typed() {
        let c = ctx();
        let n = c.n();
        // Header says level 1 (2 limbs) but c1 carries 3 limbs.
        let bad = RawCiphertext {
            c0: RawPoly::zero(n, 2, Domain::Eval),
            c1: RawPoly::zero(n, 3, Domain::Eval),
            level: 1,
            scale: 2f64.powi(40),
            slots: 8,
            noise_log2: 1.0,
        };
        assert!(matches!(
            load_ciphertext(&c, &bad),
            Err(FidesError::Malformed(_))
        ));
        // Limb of the wrong ring degree.
        let bad = RawCiphertext {
            c0: RawPoly::zero(n / 2, 2, Domain::Eval),
            c1: RawPoly::zero(n / 2, 2, Domain::Eval),
            level: 1,
            scale: 2f64.powi(40),
            slots: 8,
            noise_log2: 1.0,
        };
        assert!(matches!(
            load_ciphertext(&c, &bad),
            Err(FidesError::Malformed(_))
        ));
    }

    #[test]
    fn short_switching_key_rejected_typed() {
        let c = ctx();
        let n = c.n();
        let bad = RawSwitchingKey {
            digits: vec![fides_client::RawKeyDigit {
                b: RawPoly::zero(n, 2, Domain::Eval),
                a: RawPoly::zero(n, 2, Domain::Eval),
            }],
        };
        let expected = c.max_level() + 1 + c.alpha();
        assert!(matches!(
            load_switching_key(&c, &bad),
            Err(FidesError::KeyShape { expected: e, found: 2 }) if e == expected
        ));
    }
}
