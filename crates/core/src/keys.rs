//! Device-resident evaluation keys (`CKKS::KeySwitchingKey`, `EvalKey`).

use std::collections::HashMap;

use crate::context::ChainIdx;
use crate::error::{FidesError, Result};
use crate::poly::{Limb, RNSPoly};

/// A hybrid key-switching key: per digit, the pair `(b_j, a_j)` over the full
/// chain `Q ∪ P` in evaluation domain.
#[derive(Debug)]
pub struct KeySwitchingKey {
    pub(crate) digits: Vec<(RNSPoly, RNSPoly)>,
}

impl KeySwitchingKey {
    /// Number of digits.
    pub fn dnum(&self) -> usize {
        self.digits.len()
    }

    /// Device-memory footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.digits
            .iter()
            .map(|(b, a)| (b.num_limbs() + a.num_limbs()) as u64 * 8 * b.context().n() as u64)
            .sum()
    }

    /// The `(b, a)` limbs of digit `j` for a chain index.
    pub(crate) fn limbs_for(&self, j: usize, chain: ChainIdx, num_q_full: usize) -> (&Limb, &Limb) {
        let idx = match chain {
            ChainIdx::Q(i) => i,
            ChainIdx::P(k) => num_q_full + k,
        };
        (self.digits[j].0.limb(idx), self.digits[j].1.limb(idx))
    }
}

/// The complete set of server-side evaluation keys.
#[derive(Debug, Default)]
pub struct EvalKeySet {
    pub(crate) mult: Option<KeySwitchingKey>,
    /// Rotation keys indexed by Galois element.
    pub(crate) rotations: HashMap<usize, KeySwitchingKey>,
    pub(crate) conj: Option<KeySwitchingKey>,
}

impl EvalKeySet {
    /// Empty key set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The relinearization key.
    ///
    /// # Errors
    ///
    /// [`FidesError::MissingKey`] if not loaded.
    pub fn mult_key(&self) -> Result<&KeySwitchingKey> {
        self.mult
            .as_ref()
            .ok_or_else(|| FidesError::MissingKey("relinearization".into()))
    }

    /// The rotation key for Galois element `g`.
    ///
    /// # Errors
    ///
    /// [`FidesError::MissingKey`] if not loaded.
    pub fn rotation_key(&self, g: usize) -> Result<&KeySwitchingKey> {
        self.rotations
            .get(&g)
            .ok_or_else(|| FidesError::MissingKey(format!("rotation(g={g})")))
    }

    /// The conjugation key.
    ///
    /// # Errors
    ///
    /// [`FidesError::MissingKey`] if not loaded.
    pub fn conj_key(&self) -> Result<&KeySwitchingKey> {
        self.conj
            .as_ref()
            .ok_or_else(|| FidesError::MissingKey("conjugation".into()))
    }

    /// Galois elements with loaded rotation keys.
    pub fn loaded_rotations(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.rotations.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Total device bytes held by all keys (the KSK sizes discussed with
    /// Fig. 8).
    pub fn bytes(&self) -> u64 {
        self.mult.iter().map(|k| k.bytes()).sum::<u64>()
            + self.conj.iter().map(|k| k.bytes()).sum::<u64>()
            + self.rotations.values().map(|k| k.bytes()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_keys_error() {
        let ks = EvalKeySet::new();
        assert!(matches!(ks.mult_key(), Err(FidesError::MissingKey(_))));
        assert!(matches!(ks.rotation_key(5), Err(FidesError::MissingKey(_))));
        assert!(matches!(ks.conj_key(), Err(FidesError::MissingKey(_))));
        assert!(ks.loaded_rotations().is_empty());
        assert_eq!(ks.bytes(), 0);
    }
}
