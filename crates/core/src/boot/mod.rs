//! CKKS bootstrapping (§III-F.7): ModRaise → (sparse fold) → CoeffToSlot →
//! conjugate extraction → ApproxModEval (Chebyshev cosine + BSGS/PS +
//! double-angle) → SlotToCoeff.
//!
//! The flow follows OpenFHE's EvalBootstrap as adapted by FIDESlib:
//! CoeffToSlot/SlotToCoeff are generalized into one routine over decomposed
//! DFT stage matrices applied through BSGS ciphertext×plaintext-matrix
//! products with hoisted rotations; ApproxModEval approximates
//! `(q_0/2π)·sin(2π t/q_0)` to recover `m ≪ q_0` from `t = m + q_0·I`.

pub(crate) mod chebyshev;
pub(crate) mod cts;
pub(crate) mod poly_eval;

use std::sync::Arc;

use fides_client::{ClientContext, Domain};
use fides_gpu_sim::{KernelDesc, KernelKind, VectorGpu};
use fides_math::switch_modulus_centered;

pub use chebyshev::{chebyshev_coefficients, eval_chebyshev_plain};
pub use poly_eval::ChebyshevEvaluator;

use crate::ciphertext::Ciphertext;
use crate::context::{ChainIdx, CkksContext};
use crate::error::{FidesError, Result};
use crate::kernels;
use crate::keys::EvalKeySet;
use crate::ops::linear::{fold_rotations, BsgsPlan};
use crate::poly::{Limb, LimbPartition, RNSPoly};

/// Bootstrapping configuration.
#[derive(Clone, Debug)]
pub struct BootstrapConfig {
    /// Packed slot count of the ciphertexts to refresh.
    pub slots: usize,
    /// `(CoeffToSlot, SlotToCoeff)` level budgets: stages per transform.
    pub level_budget: (usize, usize),
    /// Range bound `K`: correct as long as `|m + q_0·I| ≤ K·q_0/2`.
    pub k_range: f64,
    /// Double-angle iterations `r`.
    pub double_angles: u32,
    /// Chebyshev approximation degree.
    pub degree: usize,
}

impl BootstrapConfig {
    /// Reasonable defaults for a given slot count: uniform-ternary-safe
    /// range bound, more transform stages for larger slot counts.
    pub fn for_slots(slots: usize) -> Self {
        let budget = if slots >= 1 << 10 {
            3
        } else if slots >= 16 {
            2
        } else {
            1
        };
        Self {
            slots,
            level_budget: (budget, budget),
            k_range: 128.0,
            double_angles: 6,
            degree: 40,
        }
    }
}

/// Precomputed bootstrapping state for one `(context, config)` pair.
///
/// Construction performs all §III-E-style precomputation: stage matrices,
/// their encoded plaintext diagonals, and the Chebyshev coefficients.
#[derive(Debug)]
pub struct Bootstrapper {
    config: BootstrapConfig,
    cts_plans: Vec<BsgsPlan>,
    stc_plans: Vec<BsgsPlan>,
    cheby_coeffs: Vec<f64>,
    fold_iters: u32,
    min_output_level: usize,
    /// Ladder-consistent scale the raised ciphertext is reinterpreted to.
    sigma_ref: f64,
}

impl Bootstrapper {
    /// Builds all precomputed material. The client context performs the
    /// plaintext encoding of the DFT diagonals (encoding is a client-side
    /// operation in the FIDESlib architecture).
    ///
    /// # Errors
    ///
    /// [`FidesError::InvalidParams`] if the parameter chain is too shallow
    /// for the configured transform budgets and approximation depth.
    pub fn new(
        ctx: &Arc<CkksContext>,
        client: &ClientContext,
        config: BootstrapConfig,
    ) -> Result<Self> {
        let n = ctx.n();
        let n_s = config.slots;
        if !n_s.is_power_of_two() || n_s > n / 2 {
            return Err(FidesError::InvalidParams(format!(
                "invalid slot count {n_s}"
            )));
        }
        let levels_max = ctx.max_level();
        let n_cts = config
            .level_budget
            .0
            .min(n_s.trailing_zeros().max(1) as usize);
        let n_stc = config
            .level_budget
            .1
            .min(n_s.trailing_zeros().max(1) as usize);
        let cheby_depth = ChebyshevEvaluator::depth_estimate(config.degree);
        let needed = n_cts + cheby_depth + config.double_angles as usize + n_stc;
        if needed >= levels_max {
            return Err(FidesError::InvalidParams(format!(
                "bootstrapping needs {needed} levels, chain has {levels_max}"
            )));
        }
        let min_output_level = levels_max - needed;

        let g_fold = (n / 2) / n_s;
        let fold_iters = g_fold.trailing_zeros();
        let q0 = ctx.moduli_q()[0].value() as f64;
        // The raised ciphertext lives at the top of the chain; reinterpret
        // its scale to the ladder value THERE so every downstream operation
        // stays scale-consistent (the ladder drifts away from Δ at low
        // levels, so anchoring at level 0 would inject an off-ladder scale).
        let sigma_ref = ctx.standard_scale(levels_max);
        let numeric = ctx.gpu().is_functional();

        // CtS: α = σ_ref / (g·K·q_0) — yields slots u with t/q_0 = K·u/2
        // after the ×2 of conjugate extraction.
        let alpha = sigma_ref / (g_fold as f64 * config.k_range * q0);
        let cts_mats = cts::build_cts_stages(n_s, n_cts, alpha, numeric);
        // StC: β = q_0 / (2π·σ_ref) — converts sin(2πt/q_0) back to m/σ_ref.
        let beta = q0 / (2.0 * std::f64::consts::PI * sigma_ref);
        let stc_mats = cts::build_stc_stages(n_s, n_stc, beta, numeric);

        // Level schedule (worst case; apply() drops to the encoded level).
        let mut lvl = levels_max;
        let mut cts_plans = Vec::with_capacity(cts_mats.len());
        for m in &cts_mats {
            cts_plans.push(cts::encode_stage(ctx, client, m, lvl, n_s));
            lvl -= 1;
        }
        lvl -= cheby_depth + config.double_angles as usize;
        let mut stc_plans = Vec::with_capacity(stc_mats.len());
        for m in &stc_mats {
            stc_plans.push(cts::encode_stage(ctx, client, m, lvl, n_s));
            lvl -= 1;
        }

        // cos((π·K·w − π/2) / 2^r) on w ∈ [−1, 1]: after r double angles this
        // becomes cos(π·K·w − π/2) = sin(2π·t/q_0) with t/q_0 = K·w/2.
        let k = config.k_range;
        let r = config.double_angles;
        let cheby_coeffs = chebyshev_coefficients(
            move |w| {
                ((std::f64::consts::PI * k * w - std::f64::consts::FRAC_PI_2) / 2f64.powi(r as i32))
                    .cos()
            },
            -1.0,
            1.0,
            config.degree,
        );

        Ok(Self {
            config,
            cts_plans,
            stc_plans,
            cheby_coeffs,
            fold_iters,
            min_output_level,
            sigma_ref,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &BootstrapConfig {
        &self.config
    }

    /// Minimum level of refreshed ciphertexts (the "levels remaining after
    /// bootstrapping" of Table VI).
    pub fn min_output_level(&self) -> usize {
        self.min_output_level
    }

    /// Every rotation shift the bootstrap circuit needs keys for (the client
    /// generates exactly these).
    pub fn required_rotations(&self) -> Vec<i32> {
        let mut shifts: Vec<i32> = Vec::new();
        for i in 0..self.fold_iters {
            shifts.push((self.config.slots << i) as i32);
        }
        for plan in self.cts_plans.iter().chain(&self.stc_plans) {
            shifts.extend(plan.required_shifts());
        }
        shifts.sort_unstable();
        shifts.dedup();
        shifts.retain(|&s| s != 0);
        shifts
    }

    /// Refreshes a ciphertext: returns an encryption of (approximately) the
    /// same message at a high level (Bootstrap in Fig. 1).
    ///
    /// # Errors
    ///
    /// Missing keys, slot mismatch, or insufficient levels.
    pub fn bootstrap(&self, ct: &Ciphertext, keys: &EvalKeySet) -> Result<Ciphertext> {
        if ct.slots() != self.config.slots {
            return Err(FidesError::SlotMismatch {
                left: ct.slots(),
                right: self.config.slots,
            });
        }
        let sigma_ref = self.sigma_ref;
        let rho = ct.scale() / sigma_ref;

        // 1. ModRaise from the lowest level to the top of the chain.
        let mut low = ct.duplicate();
        low.drop_to_level(0)?;
        let raised_c0 = raise_to_top(low.c0());
        let raised_c1 = raise_to_top(low.c1());
        let mut work = Ciphertext::from_parts(
            raised_c0,
            raised_c1,
            sigma_ref, // scale reinterpretation; ρ restored at the end
            self.config.slots,
            ct.noise_log2(),
        );

        // 2. Sparse packing: trace-fold onto the subring.
        if self.fold_iters > 0 {
            work = fold_rotations(&work, self.config.slots as i32, self.fold_iters, keys)?;
        }

        // 3. CoeffToSlot.
        for plan in &self.cts_plans {
            work = plan.apply(&work, keys)?;
        }

        // 4. Conjugate extraction: re = c + conj(c) = 2a·γ,
        //    im = i·(conj(c) − c) = 2b·γ.
        let conj = work.conjugate(keys)?;
        let re = work.add(&conj)?;
        let im = conj.sub(&work)?.mul_by_i();

        // 5. ApproxModEval on both halves.
        let re_sin = self.approx_mod(&re, keys)?;
        let im_sin = self.approx_mod(&im, keys)?;

        // 6. Recombine a + i·b.
        let lvl = re_sin.level().min(im_sin.level());
        let mut comb = re_sin;
        comb.drop_to_level(lvl)?;
        let mut im_part = im_sin.mul_by_i();
        im_part.drop_to_level(lvl)?;
        comb.add_assign_ct(&im_part)?;

        // 7. SlotToCoeff.
        for plan in &self.stc_plans {
            comb = plan.apply(&comb, keys)?;
        }

        // 8. Restore the caller's scale interpretation.
        let s = comb.scale();
        comb.set_scale(s * rho);
        Ok(comb)
    }

    /// Chebyshev series + double-angle iterations.
    fn approx_mod(&self, ct: &Ciphertext, keys: &EvalKeySet) -> Result<Ciphertext> {
        let ev = ChebyshevEvaluator::new(ct, self.config.degree, keys)?;
        let mut c = ev.evaluate(&self.cheby_coeffs)?;
        for _ in 0..self.config.double_angles {
            c = poly_eval::double_angle_step(&c, keys)?;
        }
        Ok(c)
    }
}

/// ModRaise: extends a level-0 polynomial to the full chain by centered
/// modulus switching of its coefficients (the raised plaintext becomes
/// `t = m + q_0·I`).
fn raise_to_top(poly: &RNSPoly) -> RNSPoly {
    assert_eq!(poly.format(), Domain::Eval);
    assert_eq!(poly.num_q(), 1, "ModRaise expects a level-0 polynomial");
    let ctx = Arc::clone(poly.context());
    let gpu = Arc::clone(ctx.gpu());
    let n = ctx.n();
    let lb = kernels::limb_bytes(n);
    let target = ctx.max_level();
    let q0 = ctx.moduli_q()[0];

    // Coefficient form of limb 0.
    let mut coeff0 = VectorGpu::<u64>::new(ctx.gpu(), n);
    {
        let stream = ctx.stream_for_batch(0);
        let copy = KernelDesc::new(KernelKind::Fill)
            .read(poly.limb(0).data.buffer(), lb)
            .write(coeff0.buffer(), lb);
        gpu.launch(stream, copy, || {
            coeff0.copy_from_slice(poly.limb(0).data.as_slice());
        });
        for pass in 0..2u8 {
            let kind = if pass == 0 {
                KernelKind::InttPhase1
            } else {
                KernelKind::InttPhase2
            };
            let desc = KernelDesc::new(kind)
                .ops(ctx.ntt_phase_ops_scaled())
                .read(coeff0.buffer(), lb)
                .write(coeff0.buffer(), lb);
            gpu.launch(stream, desc, || {
                let t = ctx.ntt(ChainIdx::Q(0));
                if pass == 0 {
                    t.inverse_pass1(coeff0.as_mut_slice());
                } else {
                    t.inverse_pass2(coeff0.as_mut_slice());
                }
            });
        }
    }
    ctx.sync_batch_streams();

    let mut slots: Vec<Option<Limb>> = (0..=target).map(|_| None).collect();
    // Limb 0: the original evaluation-form data.
    {
        let stream = ctx.stream_for_batch(0);
        let mut dst = VectorGpu::new(ctx.gpu(), n);
        let copy = KernelDesc::new(KernelKind::Fill)
            .read(poly.limb(0).data.buffer(), lb)
            .write(dst.buffer(), lb);
        gpu.launch(stream, copy, || {
            dst.copy_from_slice(poly.limb(0).data.as_slice());
        });
        slots[0] = Some(Limb {
            data: dst,
            chain: ChainIdx::Q(0),
        });
    }
    // Remaining limbs: centered switch + NTT.
    let upper: Vec<usize> = (1..=target).collect();
    for (k, range) in ctx.batch_ranges(upper.len()).into_iter().enumerate() {
        let stream = ctx.stream_for_batch(k);
        let mut fresh: Vec<(usize, VectorGpu<u64>)> = Vec::with_capacity(range.len());
        let mut sw = KernelDesc::new(KernelKind::SwitchModulus)
            .ops(kernels::switch_modulus_ops(n) * range.len() as u64)
            .read(coeff0.buffer(), lb);
        for off in range.clone() {
            let i = upper[off];
            let dst = VectorGpu::new(ctx.gpu(), n);
            sw = sw.write(dst.buffer(), lb);
            fresh.push((i, dst));
        }
        gpu.launch(stream, sw, || {
            for (i, dst) in fresh.iter_mut() {
                let m = &ctx.moduli_q()[*i];
                for (o, &v) in dst.as_mut_slice().iter_mut().zip(coeff0.as_slice()) {
                    *o = switch_modulus_centered(v, &q0, m);
                }
            }
        });
        let phase_ops = ctx.ntt_phase_ops_scaled() * range.len() as u64;
        for pass in 0..2u8 {
            let kind = if pass == 0 {
                KernelKind::NttPhase1
            } else {
                KernelKind::NttPhase2
            };
            let mut desc = KernelDesc::new(kind).ops(phase_ops);
            for (_, dst) in &fresh {
                desc = desc.read(dst.buffer(), lb).write(dst.buffer(), lb);
            }
            gpu.launch(stream, desc, || {
                for (i, dst) in fresh.iter_mut() {
                    let t = ctx.ntt(ChainIdx::Q(*i));
                    if pass == 0 {
                        t.forward_pass1(dst.as_mut_slice());
                    } else {
                        t.forward_pass2(dst.as_mut_slice());
                    }
                }
            });
        }
        for (i, dst) in fresh {
            slots[i] = Some(Limb {
                data: dst,
                chain: ChainIdx::Q(i),
            });
        }
    }
    ctx.sync_batch_streams();
    let limbs: Vec<Limb> = slots.into_iter().map(|s| s.expect("limb filled")).collect();
    RNSPoly {
        ctx: Arc::clone(&ctx),
        part: LimbPartition { limbs },
        num_q: target + 1,
        num_p: 0,
        format: Domain::Eval,
    }
}
