//! CKKS bootstrapping (§III-F.7): ModRaise → (sparse fold) → CoeffToSlot →
//! conjugate extraction → ApproxModEval (Chebyshev cosine + BSGS/PS +
//! double-angle) → SlotToCoeff.
//!
//! The flow follows OpenFHE's EvalBootstrap as adapted by FIDESlib:
//! CoeffToSlot/SlotToCoeff are generalized into one routine over decomposed
//! DFT stage matrices applied through BSGS ciphertext×plaintext-matrix
//! products with hoisted rotations; ApproxModEval approximates
//! `(q_0/2π)·sin(2π t/q_0)` to recover `m ≪ q_0` from `t = m + q_0·I`.
//!
//! The pipeline is **backend-generic**: every step is expressed through the
//! [`EvalBackend`] trait, so the same [`Bootstrapper`] drives both the
//! simulated-GPU pipeline and the CPU reference backend and produces
//! bit-identical ciphertexts on each (the cross-backend bootstrap tests
//! assert frame equality). On backends with graph execution each phase
//! records into one `ExecGraph`, so the scheduling pass fuses and
//! stream-remaps across the whole transform rather than op by op.

pub(crate) mod chebyshev;
pub(crate) mod cts;
pub(crate) mod poly_eval;

use std::sync::Arc;

use fides_client::{ClientContext, Domain};
use fides_gpu_sim::{KernelDesc, KernelKind, VectorGpu};
use fides_math::switch_modulus_centered;

pub use chebyshev::{chebyshev_coefficients, eval_chebyshev_plain, trim_degree};
pub use poly_eval::ChebyshevEvaluator;

use crate::backend::{BackendCt, EvalBackend};
use crate::ciphertext::Ciphertext;
use crate::context::ChainIdx;
use crate::error::{FidesError, Result};
use crate::kernels;
use crate::ops::linear::{fold_rotations, BsgsPlan};
use crate::poly::{Limb, LimbPartition, RNSPoly};

/// Bootstrapping configuration.
#[derive(Clone, Debug)]
pub struct BootstrapConfig {
    /// Packed slot count of the ciphertexts to refresh.
    pub slots: usize,
    /// `(CoeffToSlot, SlotToCoeff)` level budgets: stages per transform.
    pub level_budget: (usize, usize),
    /// Range bound `K`: correct as long as `|m + q_0·I| ≤ K·q_0/2`.
    pub k_range: f64,
    /// Double-angle iterations `r`.
    pub double_angles: u32,
    /// Chebyshev approximation degree.
    pub degree: usize,
}

impl BootstrapConfig {
    /// Reasonable defaults for a given slot count: uniform-ternary-safe
    /// range bound, more transform stages for larger slot counts.
    pub fn for_slots(slots: usize) -> Self {
        let budget = if slots >= 1 << 10 {
            3
        } else if slots >= 16 {
            2
        } else {
            1
        };
        Self {
            slots,
            level_budget: (budget, budget),
            k_range: 128.0,
            double_angles: 6,
            degree: 40,
        }
    }

    fn stage_counts(&self) -> (usize, usize) {
        let log_slots = self.slots.trailing_zeros().max(1) as usize;
        (
            self.level_budget.0.min(log_slots),
            self.level_budget.1.min(log_slots),
        )
    }
}

/// Every rotation shift the bootstrap circuit for `config` needs keys for,
/// computed from the transform *structure* alone (no key material, no
/// backend) — the engine builder calls this before key generation.
pub fn required_rotations(n: usize, config: &BootstrapConfig) -> Vec<i32> {
    let n_s = config.slots;
    if !n_s.is_power_of_two() || n_s > n / 2 {
        return Vec::new(); // invalid configs are rejected by `Bootstrapper::new`
    }
    let (n_cts, n_stc) = config.stage_counts();
    let g_fold = (n / 2) / n_s;
    let mut shifts: Vec<i32> = Vec::new();
    for i in 0..g_fold.trailing_zeros() {
        shifts.push((n_s << i) as i32);
    }
    let cts = cts::build_cts_stages(n_s, n_cts, 1.0, false);
    let stc = cts::build_stc_stages(n_s, n_stc, 1.0, false);
    for stage in cts.iter().chain(&stc) {
        shifts.extend(cts::stage_shifts(stage));
    }
    shifts.sort_unstable();
    shifts.dedup();
    shifts.retain(|&s| s != 0);
    shifts
}

/// Per-phase timings of one bootstrap invocation (µs). On the simulated-GPU
/// backend these are simulated device times (device-wide sync between
/// phases); on the CPU backend, wall-clock times.
#[derive(Clone, Copy, Debug, Default)]
pub struct BootPhases {
    /// ModRaise: centered modulus switching up the whole chain.
    pub mod_raise_us: f64,
    /// Sparse-packing trace fold (0 for fully packed ciphertexts).
    pub fold_us: f64,
    /// CoeffToSlot: BSGS stage-matrix products with hoisted rotations.
    pub coeff_to_slot_us: f64,
    /// Conjugate extraction + ApproxModEval on both halves + recombination.
    pub eval_mod_us: f64,
    /// SlotToCoeff: the inverse transform.
    pub slot_to_coeff_us: f64,
    /// Whole-pipeline time.
    pub total_us: f64,
}

/// Precomputed bootstrapping state for one `(backend, config)` pair.
///
/// Construction performs all §III-E-style precomputation: stage matrices,
/// their encoded plaintext diagonals (preloaded into the backend's native
/// plaintext form), and the Chebyshev coefficients.
#[derive(Debug)]
pub struct Bootstrapper {
    config: BootstrapConfig,
    /// Ring degree of the session this bootstrapper was built for.
    n: usize,
    cts_plans: Vec<BsgsPlan>,
    stc_plans: Vec<BsgsPlan>,
    cheby_coeffs: Vec<f64>,
    fold_iters: u32,
    min_output_level: usize,
    /// Ladder-consistent scale the raised ciphertext is reinterpreted to.
    sigma_ref: f64,
}

impl Bootstrapper {
    /// Builds all precomputed material against `backend`. The client context
    /// performs the plaintext encoding of the DFT diagonals (encoding is a
    /// client-side operation in the FIDESlib architecture); the backend
    /// preloads them into its native form.
    ///
    /// # Errors
    ///
    /// [`FidesError::InvalidParams`] if the parameter chain is too shallow
    /// for the configured transform budgets and approximation depth.
    pub fn new(
        backend: &dyn EvalBackend,
        client: &ClientContext,
        config: BootstrapConfig,
    ) -> Result<Self> {
        let n = client.n();
        let n_s = config.slots;
        if !n_s.is_power_of_two() || n_s > n / 2 {
            return Err(FidesError::InvalidParams(format!(
                "invalid slot count {n_s}"
            )));
        }
        let levels_max = backend.max_level();
        let (n_cts, n_stc) = config.stage_counts();
        let cheby_depth = ChebyshevEvaluator::depth_estimate(config.degree);
        let needed = n_cts + cheby_depth + config.double_angles as usize + n_stc;
        if needed >= levels_max {
            return Err(FidesError::InvalidParams(format!(
                "bootstrapping needs {needed} levels, chain has {levels_max}"
            )));
        }
        let min_output_level = levels_max - needed;

        let g_fold = (n / 2) / n_s;
        let fold_iters = g_fold.trailing_zeros();
        let q0 = backend.modulus_value(0) as f64;
        // The raised ciphertext lives at the top of the chain; reinterpret
        // its scale to the ladder value THERE so every downstream operation
        // stays scale-consistent (the ladder drifts away from Δ at low
        // levels, so anchoring at level 0 would inject an off-ladder scale).
        let sigma_ref = backend.standard_scale(levels_max);
        let numeric = backend.is_functional();

        // CtS: α = σ_ref / (g·K·q_0) — yields slots u with t/q_0 = K·u/2
        // after the ×2 of conjugate extraction.
        let alpha = sigma_ref / (g_fold as f64 * config.k_range * q0);
        let cts_mats = cts::build_cts_stages(n_s, n_cts, alpha, numeric);
        // StC: β = q_0 / (2π·σ_ref) — converts sin(2πt/q_0) back to m/σ_ref.
        let beta = q0 / (2.0 * std::f64::consts::PI * sigma_ref);
        let stc_mats = cts::build_stc_stages(n_s, n_stc, beta, numeric);

        // Level schedule (worst case; apply() drops to the encoded level).
        let mut lvl = levels_max;
        let mut cts_plans = Vec::with_capacity(cts_mats.len());
        for m in &cts_mats {
            cts_plans.push(cts::encode_stage(backend, client, m, lvl, n_s)?);
            lvl -= 1;
        }
        lvl -= cheby_depth + config.double_angles as usize;
        let mut stc_plans = Vec::with_capacity(stc_mats.len());
        for m in &stc_mats {
            stc_plans.push(cts::encode_stage(backend, client, m, lvl, n_s)?);
            lvl -= 1;
        }

        // cos((π·K·w − π/2) / 2^r) on w ∈ [−1, 1]: after r double angles this
        // becomes cos(π·K·w − π/2) = sin(2π·t/q_0) with t/q_0 = K·w/2.
        let k = config.k_range;
        let r = config.double_angles;
        let cheby_coeffs = chebyshev_coefficients(
            move |w| {
                ((std::f64::consts::PI * k * w - std::f64::consts::FRAC_PI_2) / 2f64.powi(r as i32))
                    .cos()
            },
            -1.0,
            1.0,
            config.degree,
        );

        Ok(Self {
            config,
            n,
            cts_plans,
            stc_plans,
            cheby_coeffs,
            fold_iters,
            min_output_level,
            sigma_ref,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &BootstrapConfig {
        &self.config
    }

    /// Minimum level of refreshed ciphertexts (the "levels remaining after
    /// bootstrapping" of Table VI).
    pub fn min_output_level(&self) -> usize {
        self.min_output_level
    }

    /// Every rotation shift the bootstrap circuit needs keys for (the client
    /// generates exactly these) — identical to
    /// [`required_rotations`]`(n, config)`, the structure-only form the
    /// engine builder uses before the backend exists.
    pub fn required_rotations(&self) -> Vec<i32> {
        required_rotations(self.n, &self.config)
    }

    /// Refreshes a ciphertext: returns an encryption of (approximately) the
    /// same message at a high level (Bootstrap in Fig. 1). `backend` must be
    /// the backend this bootstrapper was precomputed against.
    ///
    /// # Errors
    ///
    /// Missing keys, slot mismatch, or insufficient levels.
    pub fn bootstrap(&self, backend: &dyn EvalBackend, ct: &BackendCt) -> Result<BackendCt> {
        Ok(self.run(backend, ct, false)?.0)
    }

    /// As [`Bootstrapper::bootstrap`], additionally reporting per-phase
    /// times. Phase boundaries force a device-wide sync on simulated
    /// backends, so the total can exceed an untimed run where phases would
    /// overlap across streams.
    ///
    /// # Errors
    ///
    /// As [`Bootstrapper::bootstrap`].
    pub fn bootstrap_phased(
        &self,
        backend: &dyn EvalBackend,
        ct: &BackendCt,
    ) -> Result<(BackendCt, BootPhases)> {
        let (out, phases) = self.run(backend, ct, true)?;
        Ok((out, phases.expect("timed run reports phases")))
    }

    fn run(
        &self,
        backend: &dyn EvalBackend,
        ct: &BackendCt,
        timed: bool,
    ) -> Result<(BackendCt, Option<BootPhases>)> {
        if ct.slots() != self.config.slots {
            return Err(FidesError::SlotMismatch {
                left: ct.slots(),
                right: self.config.slots,
            });
        }
        let sigma_ref = self.sigma_ref;
        let rho = ct.scale() / sigma_ref;
        let wall = std::time::Instant::now();
        let now = |on: bool| -> f64 {
            if !on {
                return 0.0;
            }
            backend
                .sync_time_us()
                .unwrap_or_else(|| wall.elapsed().as_secs_f64() * 1e6)
        };
        let mut phases = BootPhases::default();
        let t0 = now(timed);

        // 1. ModRaise from the lowest level to the top of the chain.
        let mut work = in_graph(backend, || {
            let mut low = ct.duplicate();
            backend.drop_to_level(&mut low, 0)?;
            let mut raised = backend.mod_raise(&low)?;
            // Scale reinterpretation; ρ restored at the end.
            raised.set_scale(sigma_ref);
            Ok(raised)
        })?;
        let t1 = now(timed);
        phases.mod_raise_us = t1 - t0;

        // 2. Sparse packing: trace-fold onto the subring.
        if self.fold_iters > 0 {
            work = in_graph(backend, || {
                fold_rotations(backend, &work, self.config.slots as i32, self.fold_iters)
            })?;
        }
        let t2 = now(timed);
        phases.fold_us = t2 - t1;

        // 3. CoeffToSlot: one recorded graph across all stages.
        work = in_graph(backend, || {
            let mut w = work;
            for plan in &self.cts_plans {
                w = plan.apply(backend, &w)?;
            }
            Ok(w)
        })?;
        let t3 = now(timed);
        phases.coeff_to_slot_us = t3 - t2;

        // 4–6. Conjugate extraction, ApproxModEval on both halves,
        // recombination a + i·b.
        let comb = in_graph(backend, || {
            // re = c + conj(c) = 2a·γ, im = i·(conj(c) − c) = 2b·γ.
            let conj = backend.conjugate(&work)?;
            let re = backend.add(&work, &conj)?;
            let im = backend.mul_by_i(&backend.sub(&conj, &work)?)?;

            let re_sin = self.approx_mod(backend, &re)?;
            let im_sin = self.approx_mod(backend, &im)?;

            let lvl = re_sin.level().min(im_sin.level());
            let mut comb = re_sin;
            backend.drop_to_level(&mut comb, lvl)?;
            let mut im_part = backend.mul_by_i(&im_sin)?;
            backend.drop_to_level(&mut im_part, lvl)?;
            backend.add(&comb, &im_part)
        })?;
        let t4 = now(timed);
        phases.eval_mod_us = t4 - t3;

        // 7. SlotToCoeff: again one graph across all stages.
        let mut comb = in_graph(backend, || {
            let mut c = comb;
            for plan in &self.stc_plans {
                c = plan.apply(backend, &c)?;
            }
            Ok(c)
        })?;
        let t5 = now(timed);
        phases.slot_to_coeff_us = t5 - t4;
        phases.total_us = t5 - t0;

        // 8. Restore the caller's scale interpretation.
        let s = comb.scale();
        comb.set_scale(s * rho);
        Ok((comb, timed.then_some(phases)))
    }

    /// Chebyshev series + double-angle iterations.
    fn approx_mod(&self, backend: &dyn EvalBackend, ct: &BackendCt) -> Result<BackendCt> {
        let ev = ChebyshevEvaluator::new(backend, ct, self.config.degree)?;
        let mut c = ev.evaluate(&self.cheby_coeffs)?;
        for _ in 0..self.config.double_angles {
            c = poly_eval::double_angle_step(backend, &c)?;
        }
        Ok(c)
    }
}

/// Runs `f` inside one deferred-execution graph region of `backend` (no-op
/// on backends without graph execution). Mirrors the engine's `eval_scope`:
/// errors still close (and execute) the region; panics discard it.
fn in_graph<R>(backend: &dyn EvalBackend, f: impl FnOnce() -> Result<R>) -> Result<R> {
    let began = backend.graph_begin();
    struct AbortGuard<'a> {
        backend: &'a dyn EvalBackend,
        armed: bool,
    }
    impl Drop for AbortGuard<'_> {
        fn drop(&mut self) {
            if self.armed {
                self.backend.graph_abort();
            }
        }
    }
    let mut guard = AbortGuard {
        backend,
        armed: began,
    };
    let r = f();
    if began {
        guard.armed = false;
        backend.graph_end();
    }
    r
}

/// Device-side ModRaise (the gpu-sim backend's
/// [`mod_raise`](EvalBackend::mod_raise)): both components raised by
/// [`raise_to_top`].
pub(crate) fn raise_device(ct: &Ciphertext) -> Ciphertext {
    let c0 = raise_to_top(ct.c0());
    let c1 = raise_to_top(ct.c1());
    Ciphertext::from_parts(c0, c1, ct.scale(), ct.slots(), ct.noise_log2())
}

/// ModRaise: extends a level-0 polynomial to the full chain by centered
/// modulus switching of its coefficients (the raised plaintext becomes
/// `t = m + q_0·I`).
fn raise_to_top(poly: &RNSPoly) -> RNSPoly {
    assert_eq!(poly.format(), Domain::Eval);
    assert_eq!(poly.num_q(), 1, "ModRaise expects a level-0 polynomial");
    let ctx = Arc::clone(poly.context());
    let gpu = Arc::clone(ctx.gpu());
    let n = ctx.n();
    let lb = kernels::limb_bytes(n);
    let target = ctx.max_level();
    let q0 = ctx.moduli_q()[0];

    // Coefficient form of limb 0.
    let mut coeff0 = VectorGpu::<u64>::new(ctx.gpu(), n);
    {
        let stream = ctx.stream_for_batch(0);
        let copy = KernelDesc::new(KernelKind::Fill)
            .read(poly.limb(0).data.buffer(), lb)
            .write(coeff0.buffer(), lb);
        gpu.launch(stream, copy, || {
            coeff0.copy_from_slice(poly.limb(0).data.as_slice());
        });
        for pass in 0..2u8 {
            let kind = if pass == 0 {
                KernelKind::InttPhase1
            } else {
                KernelKind::InttPhase2
            };
            let desc = KernelDesc::new(kind)
                .ops(ctx.ntt_phase_ops_scaled())
                .read(coeff0.buffer(), lb)
                .write(coeff0.buffer(), lb);
            gpu.launch(stream, desc, || {
                let t = ctx.ntt(ChainIdx::Q(0));
                if pass == 0 {
                    t.inverse_pass1(coeff0.as_mut_slice());
                } else {
                    t.inverse_pass2(coeff0.as_mut_slice());
                }
            });
        }
    }
    ctx.sync_batch_streams();

    let mut slots: Vec<Option<Limb>> = (0..=target).map(|_| None).collect();
    // Limb 0: the original evaluation-form data.
    {
        let stream = ctx.stream_for_batch(0);
        let mut dst = VectorGpu::new(ctx.gpu(), n);
        let copy = KernelDesc::new(KernelKind::Fill)
            .read(poly.limb(0).data.buffer(), lb)
            .write(dst.buffer(), lb);
        gpu.launch(stream, copy, || {
            dst.copy_from_slice(poly.limb(0).data.as_slice());
        });
        slots[0] = Some(Limb {
            data: dst,
            chain: ChainIdx::Q(0),
        });
    }
    // Remaining limbs: centered switch + NTT.
    let upper: Vec<usize> = (1..=target).collect();
    for (k, range) in ctx.batch_ranges(upper.len()).into_iter().enumerate() {
        let stream = ctx.stream_for_batch(k);
        let mut fresh: Vec<(usize, VectorGpu<u64>)> = Vec::with_capacity(range.len());
        let mut sw = KernelDesc::new(KernelKind::SwitchModulus)
            .ops(kernels::switch_modulus_ops(n) * range.len() as u64)
            .read(coeff0.buffer(), lb);
        for off in range.clone() {
            let i = upper[off];
            let dst = VectorGpu::new(ctx.gpu(), n);
            sw = sw.write(dst.buffer(), lb);
            fresh.push((i, dst));
        }
        gpu.launch(stream, sw, || {
            for (i, dst) in fresh.iter_mut() {
                let m = &ctx.moduli_q()[*i];
                for (o, &v) in dst.as_mut_slice().iter_mut().zip(coeff0.as_slice()) {
                    *o = switch_modulus_centered(v, &q0, m);
                }
            }
        });
        let phase_ops = ctx.ntt_phase_ops_scaled() * range.len() as u64;
        for pass in 0..2u8 {
            let kind = if pass == 0 {
                KernelKind::NttPhase1
            } else {
                KernelKind::NttPhase2
            };
            let mut desc = KernelDesc::new(kind).ops(phase_ops);
            for (_, dst) in &fresh {
                desc = desc.read(dst.buffer(), lb).write(dst.buffer(), lb);
            }
            gpu.launch(stream, desc, || {
                for (i, dst) in fresh.iter_mut() {
                    let t = ctx.ntt(ChainIdx::Q(*i));
                    if pass == 0 {
                        t.forward_pass1(dst.as_mut_slice());
                    } else {
                        t.forward_pass2(dst.as_mut_slice());
                    }
                }
            });
        }
        for (i, dst) in fresh {
            slots[i] = Some(Limb {
                data: dst,
                chain: ChainIdx::Q(i),
            });
        }
    }
    ctx.sync_batch_streams();
    let limbs: Vec<Limb> = slots.into_iter().map(|s| s.expect("limb filled")).collect();
    RNSPoly {
        ctx: Arc::clone(&ctx),
        part: LimbPartition { limbs },
        num_q: target + 1,
        num_p: 0,
        format: Domain::Eval,
    }
}
