//! CoeffToSlot / SlotToCoeff matrix construction (§III-F.7).
//!
//! The homomorphic encoding/decoding transforms are the special-FFT stage
//! matrices with the bit-reversal permutations *omitted*: because every step
//! between CoeffToSlot and SlotToCoeff (conjugate extraction, ApproxModEval)
//! is slot-wise, the two bit reversals cancel. Each FFT level is a
//! 3-diagonal matrix (shifts `{0, ±len/2}` in rotation space); consecutive
//! levels are composed into `level budget` stages of higher diagonal count —
//! the sparsity/level trade-off of \[44\] the paper adopts.

use std::collections::BTreeMap;

use fides_client::ClientContext;
use fides_math::Complex64;

use crate::backend::EvalBackend;
use crate::error::Result;
use crate::ops::linear::{BsgsEntry, BsgsPlan};

/// A cyclic diagonal-sparse complex matrix of dimension `n`:
/// `out[k] = Σ_s diag[s][k] · in[(k+s) mod n]`.
///
/// In cost-only execution the value vectors stay empty and only the shift
/// structure is tracked (values never reach a kernel).
#[derive(Clone, Debug)]
pub(crate) struct DiagMatrix {
    pub(crate) n: usize,
    pub(crate) diags: BTreeMap<usize, Vec<Complex64>>,
    /// Whether diagonal values are materialized.
    pub(crate) numeric: bool,
}

impl DiagMatrix {
    fn empty(n: usize, numeric: bool) -> Self {
        Self {
            n,
            diags: BTreeMap::new(),
            numeric,
        }
    }

    fn insert_entry(&mut self, shift: usize, row: usize, v: Complex64) {
        let n = self.n;
        let d = self.diags.entry(shift).or_insert_with(|| {
            if self.numeric {
                vec![Complex64::ZERO; n]
            } else {
                Vec::new()
            }
        });
        if self.numeric {
            d[row] = v;
        }
    }

    /// Applies the matrix to a plain vector (test oracle).
    #[cfg(test)]
    pub(crate) fn apply_plain(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert!(self.numeric);
        assert_eq!(v.len(), self.n);
        let mut out = vec![Complex64::ZERO; self.n];
        for (&s, d) in &self.diags {
            for k in 0..self.n {
                out[k] += d[k] * v[(k + s) % self.n];
            }
        }
        out
    }

    /// Composition `self ∘ rhs` (apply `rhs` first).
    pub(crate) fn compose(&self, rhs: &DiagMatrix) -> DiagMatrix {
        assert_eq!(self.n, rhs.n);
        let numeric = self.numeric && rhs.numeric;
        let mut out = DiagMatrix::empty(self.n, numeric);
        for (&sa, da) in &self.diags {
            for (&sb, db) in &rhs.diags {
                let shift = (sa + sb) % self.n;
                let entry = out.diags.entry(shift).or_insert_with(|| {
                    if numeric {
                        vec![Complex64::ZERO; self.n]
                    } else {
                        Vec::new()
                    }
                });
                if numeric {
                    for k in 0..self.n {
                        entry[k] += da[k] * db[(k + sa) % self.n];
                    }
                }
            }
        }
        out
    }

    /// Multiplies every entry by a real scalar.
    pub(crate) fn scale(&mut self, s: f64) {
        if self.numeric {
            for d in self.diags.values_mut() {
                for v in d.iter_mut() {
                    *v = v.scale(s);
                }
            }
        }
    }

    /// Diagonal count.
    pub(crate) fn num_diags(&self) -> usize {
        self.diags.len()
    }
}

fn rot_group(size: usize, m: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(size);
    let mut five = 1usize;
    for _ in 0..size {
        out.push(five);
        five = five * 5 % m;
    }
    out
}

/// One forward special-FFT level (`len`) as a diagonal matrix (no bit
/// reversal).
#[allow(clippy::needless_range_loop)] // rot[j] indexing mirrors the published recurrence
fn fft_level_matrix(n: usize, len: usize, m: usize, numeric: bool) -> DiagMatrix {
    let lenh = len / 2;
    let lenq = len * 4;
    let rot = rot_group(lenh, m);
    let mut out = DiagMatrix::empty(n, numeric);
    let mut i = 0;
    while i < n {
        for j in 0..lenh {
            let idx = (rot[j] % lenq) * (m / lenq);
            let w = Complex64::exp_2pi_i(idx as f64 / m as f64);
            // out[i+j] = in[i+j] + w·in[i+j+lenh]
            out.insert_entry(0, i + j, Complex64::ONE);
            out.insert_entry(lenh, i + j, w);
            // out[i+j+lenh] = in[i+j] − w·in[i+j+lenh]
            out.insert_entry(n - lenh, i + j + lenh, Complex64::ONE);
            out.insert_entry(0, i + j + lenh, -w);
        }
        i += len;
    }
    out
}

/// One inverse special-FFT level (`len`) as a diagonal matrix, pre-scaled by
/// `1/2` so the product over all levels carries the `1/n` normalization.
#[allow(clippy::needless_range_loop)] // rot[j] indexing mirrors the published recurrence
fn ifft_level_matrix(n: usize, len: usize, m: usize, numeric: bool) -> DiagMatrix {
    let lenh = len / 2;
    let lenq = len * 4;
    let rot = rot_group(lenh, m);
    let mut out = DiagMatrix::empty(n, numeric);
    let half = 0.5;
    let mut i = 0;
    while i < n {
        for j in 0..lenh {
            let idx = (lenq - (rot[j] % lenq)) * (m / lenq);
            let w = Complex64::exp_2pi_i(idx as f64 / m as f64).scale(half);
            // out[i+j] = (in[i+j] + in[i+j+lenh]) / 2
            out.insert_entry(0, i + j, Complex64::from_real(half));
            out.insert_entry(lenh, i + j, Complex64::from_real(half));
            // out[i+j+lenh] = w·(in[i+j] − in[i+j+lenh])
            out.insert_entry(n - lenh, i + j + lenh, w);
            out.insert_entry(0, i + j + lenh, -w);
        }
        i += len;
    }
    out
}

/// Groups a list of level matrices (in application order) into `budget`
/// composed stages, returned in application order.
fn group_stages(levels: Vec<DiagMatrix>, budget: usize) -> Vec<DiagMatrix> {
    assert!(budget >= 1 && budget <= levels.len());
    let per = levels.len().div_ceil(budget);
    let mut stages = Vec::with_capacity(budget);
    let mut iter = levels.into_iter().peekable();
    while iter.peek().is_some() {
        let group: Vec<DiagMatrix> = iter.by_ref().take(per).collect();
        // Apply order within group: first element first ⇒ stage = last ∘ … ∘ first.
        let mut stage = group[0].clone();
        for m in &group[1..] {
            stage = m.compose(&stage);
        }
        stages.push(stage);
    }
    stages
}

/// CoeffToSlot stages: the inverse-FFT levels (len = n_s down to 2) with the
/// overall correction `scale_factor` folded into the first applied stage.
pub(crate) fn build_cts_stages(
    n_s: usize,
    budget: usize,
    scale_factor: f64,
    numeric: bool,
) -> Vec<DiagMatrix> {
    let m_sub = 4 * n_s;
    let mut levels = Vec::new();
    let mut len = n_s;
    while len >= 2 {
        levels.push(ifft_level_matrix(n_s, len, m_sub, numeric));
        len /= 2;
    }
    let mut stages = group_stages(levels, budget.min(n_s.trailing_zeros() as usize));
    stages[0].scale(scale_factor);
    stages
}

/// SlotToCoeff stages: the forward-FFT levels (len = 2 up to n_s) with
/// `scale_factor` distributed evenly across stages.
pub(crate) fn build_stc_stages(
    n_s: usize,
    budget: usize,
    scale_factor: f64,
    numeric: bool,
) -> Vec<DiagMatrix> {
    let m_sub = 4 * n_s;
    let mut levels = Vec::new();
    let mut len = 2;
    while len <= n_s {
        levels.push(fft_level_matrix(n_s, len, m_sub, numeric));
        len *= 2;
    }
    let mut stages = group_stages(levels, budget.min(n_s.trailing_zeros() as usize));
    let per_stage = scale_factor.powf(1.0 / stages.len() as f64);
    for s in stages.iter_mut() {
        s.scale(per_stage);
    }
    stages
}

/// Baby-step count for a stage with `num_diags` diagonals (shared by
/// encoding and the structure-only rotation-shift computation).
fn baby_count_for(num_diags: usize) -> usize {
    (1usize
        << (((num_diags as f64).sqrt().ceil() as usize)
            .next_power_of_two()
            .trailing_zeros()))
    .max(1)
}

/// The rotation shifts a BSGS application of `stage` requires, computed from
/// the diagonal structure alone (no encoding, no backend).
pub(crate) fn stage_shifts(stage: &DiagMatrix) -> Vec<i32> {
    let n1 = baby_count_for(stage.num_diags());
    let mut shifts = Vec::new();
    for &shift in stage.diags.keys() {
        let giant = shift / n1;
        let baby = shift % n1;
        if baby != 0 {
            shifts.push(baby as i32);
        }
        if giant != 0 {
            shifts.push((giant * n1) as i32);
        }
    }
    shifts.sort_unstable();
    shifts.dedup();
    shifts
}

/// Encodes one stage matrix into a [`BsgsPlan`] of backend-preloaded
/// plaintexts at the given application level.
pub(crate) fn encode_stage(
    backend: &dyn EvalBackend,
    client: &ClientContext,
    stage: &DiagMatrix,
    level: usize,
    slots: usize,
) -> Result<BsgsPlan> {
    // FLEXIBLEAUTO-exact plaintext scale: after the post-apply rescale the
    // ciphertext lands back on the standard ladder.
    let q_l = backend.modulus_value(level) as f64;
    let pt_scale = q_l * backend.standard_scale(level - 1) / backend.standard_scale(level);
    let num_diags = stage.num_diags();
    let n1 = baby_count_for(num_diags);
    let mut entries = Vec::with_capacity(num_diags);
    for (&shift, values) in &stage.diags {
        let giant = shift / n1;
        let baby = shift % n1;
        let pt = if stage.numeric && backend.is_functional() {
            // Pre-rotate right by giant·n1.
            let n = stage.n;
            let rotated: Vec<Complex64> = (0..n)
                .map(|k| values[(k + n - (giant * n1) % n) % n])
                .collect();
            let raw = client.encode(&rotated, pt_scale, level)?;
            backend.load_plain(&raw)?
        } else {
            backend.placeholder_plain(level, pt_scale, slots)?
        };
        entries.push(BsgsEntry { giant, baby, pt });
    }
    Ok(BsgsPlan { n1, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    /// The composed CtS∘StC pipeline (without bit reversal) must be the
    /// identity: S^{-1} then S.
    #[test]
    fn cts_then_stc_is_identity() {
        for n_s in [4usize, 16, 64] {
            let cts = build_cts_stages(n_s, 2.min(n_s.trailing_zeros() as usize), 1.0, true);
            let stc = build_stc_stages(n_s, 2.min(n_s.trailing_zeros() as usize), 1.0, true);
            let v: Vec<Complex64> = (0..n_s)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut x = v.clone();
            for s in &cts {
                x = s.apply_plain(&x);
            }
            for s in &stc {
                x = s.apply_plain(&x);
            }
            for (a, b) in x.iter().zip(&v) {
                assert!(close(*a, *b, 1e-9), "n_s={n_s}: {a:?} vs {b:?}");
            }
        }
    }

    /// The StC stages equal the special FFT up to bit reversal of the input.
    #[test]
    fn stc_matches_special_fft_up_to_bitrev() {
        let n_s = 16usize;
        let stc = build_stc_stages(n_s, 1, 1.0, true);
        assert_eq!(stc.len(), 1);
        let v: Vec<Complex64> = (0..n_s)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        // Reference: special_fft includes bitrev first; our matrix omits it.
        let mut reference = v.clone();
        fides_math::bit_reverse(&mut reference); // pre-undo: fft(bitrev(x)) = stages(x)
        fides_math::special_fft(&mut reference, 4 * n_s);
        let got = stc[0].apply_plain(&v);
        for (a, b) in got.iter().zip(&reference) {
            assert!(close(*a, *b, 1e-9), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn stage_diag_counts_grow_with_grouping() {
        let n_s = 64usize;
        let fine = build_cts_stages(n_s, 6, 1.0, true); // one level per stage
        for s in &fine {
            assert!(s.num_diags() <= 3, "single level has ≤ 3 diagonals");
        }
        let coarse = build_cts_stages(n_s, 2, 1.0, true);
        assert_eq!(coarse.len(), 2);
        assert!(coarse[0].num_diags() > 3);
        // Same total transform.
        let v: Vec<Complex64> = (0..n_s).map(|i| Complex64::from_real(i as f64)).collect();
        let mut a = v.clone();
        for s in &fine {
            a = s.apply_plain(&a);
        }
        let mut b = v;
        for s in &coarse {
            b = s.apply_plain(&b);
        }
        for (x, y) in a.iter().zip(&b) {
            assert!(close(*x, *y, 1e-8));
        }
    }

    #[test]
    fn structure_only_matches_numeric_shifts() {
        let n_s = 32usize;
        let numeric = build_cts_stages(n_s, 2, 1.0, true);
        let structural = build_cts_stages(n_s, 2, 1.0, false);
        for (a, b) in numeric.iter().zip(&structural) {
            let sa: Vec<usize> = a.diags.keys().copied().collect();
            let sb: Vec<usize> = b.diags.keys().copied().collect();
            assert_eq!(sa, sb);
            assert!(!b.numeric);
        }
    }

    #[test]
    fn scale_factor_applied() {
        let n_s = 8usize;
        let plain = build_cts_stages(n_s, 1, 1.0, true);
        let scaled = build_cts_stages(n_s, 1, 2.5, true);
        let v: Vec<Complex64> = (0..n_s)
            .map(|i| Complex64::from_real(1.0 + i as f64))
            .collect();
        let a = plain[0].apply_plain(&v);
        let b = scaled[0].apply_plain(&v);
        for (x, y) in a.iter().zip(&b) {
            assert!(close(x.scale(2.5), *y, 1e-9));
        }
    }
}
