//! Encrypted Chebyshev-series evaluation: BSGS baby/giant steps plus the
//! Paterson–Stockmeyer recursion over the Chebyshev basis (§III-F.7,
//! following OpenFHE's EvalChebyshevSeriesPS).

use crate::boot::chebyshev::{long_division_chebyshev, trim_degree};
use crate::ciphertext::Ciphertext;
use crate::error::Result;
use crate::keys::EvalKeySet;

/// Result of a sub-evaluation: either a ciphertext or an exact constant.
enum Val {
    Ct(Ciphertext),
    Const(f64),
}

/// Baby-step/giant-step Chebyshev evaluator.
///
/// Baby steps `T_1 … T_{k−1}` and giant steps `T_k, T_{2k}, …` are built once
/// (at predictable depth) and aligned to a common level; the series is then
/// evaluated by recursive Chebyshev long division.
pub struct ChebyshevEvaluator<'a> {
    keys: &'a EvalKeySet,
    /// `baby[i]` holds `T_i` for `1 ≤ i < k`.
    baby: Vec<Ciphertext>,
    /// `(degree, T_degree)` for `degree = k·2^j`, ascending.
    giants: Vec<(usize, Ciphertext)>,
    k: usize,
}

impl<'a> ChebyshevEvaluator<'a> {
    /// Chooses the baby-step count for a series degree.
    pub fn baby_count(degree: usize) -> usize {
        let k = ((degree + 1) as f64).sqrt();
        (k.log2().ceil().exp2() as usize).clamp(2, 32)
    }

    /// Worst-case multiplicative depth consumed from the input level by
    /// [`Self::new`] + [`Self::evaluate`].
    pub fn depth_estimate(degree: usize) -> usize {
        let k = Self::baby_count(degree);
        let j_max = if degree >= k {
            (degree / k).ilog2() as usize
        } else {
            0
        };
        let log_k = k.ilog2() as usize;
        // baby/giant construction + one mult per recursion layer + base case.
        log_k + j_max + (j_max + 1) + 1
    }

    /// Builds all powers. `ct` must hold values in `[−1, 1]` on the standard
    /// scale ladder.
    ///
    /// # Errors
    ///
    /// Missing relinearization key or insufficient levels.
    pub fn new(ct: &Ciphertext, degree: usize, keys: &'a EvalKeySet) -> Result<Self> {
        let k = Self::baby_count(degree);
        // T_1..T_{k-1}.
        let mut baby: Vec<Ciphertext> = vec![ct.duplicate()];
        for i in 2..k {
            let a = i.div_ceil(2);
            let b = i / 2;
            let t = mul_chebyshev(&baby[a - 1], &baby[b - 1], i % 2 == 0, &baby, keys)?;
            baby.push(t);
        }
        // Giants: T_k, T_2k, ...
        let mut giants: Vec<(usize, Ciphertext)> = Vec::new();
        {
            // T_k = 2·T_{k/2}² − 1.
            let half = &baby[k / 2 - 1];
            let t_k = double_angle_step(half, keys)?;
            giants.push((k, t_k));
        }
        let mut d = 2 * k;
        while d <= degree {
            let prev = &giants.last().unwrap().1;
            let next = double_angle_step(prev, keys)?;
            giants.push((d, next));
            d *= 2;
        }
        // Align everything to the deepest level.
        let base = giants
            .iter()
            .map(|(_, c)| c.level())
            .chain(baby.iter().map(|c| c.level()))
            .min()
            .expect("non-empty");
        for c in baby.iter_mut() {
            c.drop_to_level(base)?;
        }
        for (_, c) in giants.iter_mut() {
            c.drop_to_level(base)?;
        }
        Ok(Self {
            keys,
            baby,
            giants,
            k,
        })
    }

    /// The common level of all precomputed powers.
    pub fn base_level(&self) -> usize {
        self.baby[0].level()
    }

    /// Evaluates `Σ coeffs[j]·T_j(u)` homomorphically.
    ///
    /// # Errors
    ///
    /// Missing keys or insufficient levels.
    pub fn evaluate(&self, coeffs: &[f64]) -> Result<Ciphertext> {
        match self.eval_rec(coeffs)? {
            Val::Ct(c) => Ok(c),
            Val::Const(c) => {
                // Degenerate all-constant series: materialize via 0·T_1 + c.
                let mut out = self.baby[0].mul_scalar_rescale(0.0)?;
                out.add_scalar_assign(c);
                Ok(out)
            }
        }
    }

    fn eval_rec(&self, coeffs: &[f64]) -> Result<Val> {
        let d = trim_degree(coeffs);
        if d == 0 {
            return Ok(Val::Const(coeffs.first().copied().unwrap_or(0.0)));
        }
        if d < self.k {
            // Direct baby-step combination: Σ c_j·T_j + c_0.
            let mut acc: Option<Ciphertext> = None;
            for (j, &c) in coeffs.iter().enumerate().skip(1).take(d) {
                if c == 0.0 {
                    continue;
                }
                let term = self.baby[j - 1].mul_scalar_rescale(c)?;
                match &mut acc {
                    None => acc = Some(term),
                    Some(a) => a.add_assign_ct(&term)?,
                }
            }
            return Ok(match acc {
                None => Val::Const(coeffs[0]),
                Some(mut a) => {
                    a.add_scalar_assign(coeffs[0]);
                    Val::Ct(a)
                }
            });
        }
        // Split at the largest giant ≤ d.
        let (g_deg, g_ct) = self
            .giants
            .iter()
            .rev()
            .find(|(deg, _)| *deg <= d)
            .expect("giant exists");
        let (q, r) = long_division_chebyshev(coeffs, *g_deg);
        let eq = self.eval_rec(&q)?;
        let er = self.eval_rec(&r)?;
        // out = eq·T_g + er.
        let mut out = match eq {
            Val::Const(c) => g_ct.mul_scalar_rescale(c)?,
            Val::Ct(cq) => {
                let lvl = cq.level().min(g_ct.level());
                let mut a = cq;
                a.drop_to_level(lvl)?;
                let mut b = g_ct.duplicate();
                b.drop_to_level(lvl)?;
                let mut prod = a.mul(&b, self.keys)?;
                prod.rescale_in_place()?;
                prod
            }
        };
        match er {
            Val::Const(c) => {
                out.add_scalar_assign(c);
            }
            Val::Ct(mut cr) => {
                let lvl = out.level().min(cr.level());
                out.drop_to_level(lvl)?;
                cr.drop_to_level(lvl)?;
                out.add_assign_ct(&cr)?;
            }
        }
        Ok(Val::Ct(out))
    }
}

/// `T_{a+b} = 2·T_a·T_b − T_{a−b}` where `a = ⌈i/2⌉, b = ⌊i/2⌋`; subtracts
/// `T_0 = 1` for even `i` and `T_1` for odd `i`.
fn mul_chebyshev(
    ta: &Ciphertext,
    tb: &Ciphertext,
    even: bool,
    baby: &[Ciphertext],
    keys: &EvalKeySet,
) -> Result<Ciphertext> {
    let lvl = ta.level().min(tb.level());
    let mut a = ta.duplicate();
    a.drop_to_level(lvl)?;
    let mut b = tb.duplicate();
    b.drop_to_level(lvl)?;
    let mut prod = a.mul(&b, keys)?;
    prod.rescale_in_place()?;
    let mut out = prod.mul_int(2);
    if even {
        out.add_scalar_assign(-1.0);
    } else {
        let mut t1 = baby[0].duplicate();
        t1.drop_to_level(out.level())?;
        out.sub_assign_ct(&t1)?;
    }
    Ok(out)
}

/// One double-angle step: `T_{2m} = 2·T_m² − 1` (also `cos 2θ = 2cos²θ − 1`,
/// the ApproxModEval iteration).
pub(crate) fn double_angle_step(ct: &Ciphertext, keys: &EvalKeySet) -> Result<Ciphertext> {
    let mut sq = ct.square(keys)?;
    sq.rescale_in_place()?;
    let mut out = sq.mul_int(2);
    out.add_scalar_assign(-1.0);
    Ok(out)
}
