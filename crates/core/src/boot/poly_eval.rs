//! Encrypted Chebyshev-series evaluation: BSGS baby/giant steps plus the
//! Paterson–Stockmeyer recursion over the Chebyshev basis (§III-F.7,
//! following OpenFHE's EvalChebyshevSeriesPS).
//!
//! The evaluator is backend-generic: it drives any [`EvalBackend`] through
//! trait operations only, so both execution substrates run the identical
//! sequence of ring operations and produce bit-identical ciphertexts.

use crate::backend::{BackendCt, EvalBackend};
use crate::boot::chebyshev::{long_division_chebyshev, trim_degree};
use crate::error::{FidesError, Result};

/// Result of a sub-evaluation: either a ciphertext or an exact constant.
enum Val {
    Ct(BackendCt),
    Const(f64),
}

/// Baby-step/giant-step Chebyshev evaluator.
///
/// Baby steps `T_1 … T_{k−1}` and giant steps `T_k, T_{2k}, …` are built once
/// (at predictable depth) and aligned to a common level; the series is then
/// evaluated by recursive Chebyshev long division.
pub struct ChebyshevEvaluator<'a> {
    backend: &'a dyn EvalBackend,
    /// `baby[i]` holds `T_i` for `1 ≤ i < k`.
    baby: Vec<BackendCt>,
    /// `(degree, T_degree)` for `degree = k·2^j`, ascending.
    giants: Vec<(usize, BackendCt)>,
    k: usize,
}

impl<'a> ChebyshevEvaluator<'a> {
    /// Chooses the baby-step count for a series degree.
    pub fn baby_count(degree: usize) -> usize {
        let k = ((degree + 1) as f64).sqrt();
        (k.log2().ceil().exp2() as usize).clamp(2, 32)
    }

    /// Worst-case multiplicative depth consumed from the input level by
    /// [`Self::new`] + [`Self::evaluate`].
    pub fn depth_estimate(degree: usize) -> usize {
        let k = Self::baby_count(degree);
        let j_max = if degree >= k {
            (degree / k).ilog2() as usize
        } else {
            0
        };
        let log_k = k.ilog2() as usize;
        // baby/giant construction + one mult per recursion layer + base case.
        log_k + j_max + (j_max + 1) + 1
    }

    /// Builds all powers. `ct` must hold values in `[−1, 1]` on the standard
    /// scale ladder.
    ///
    /// # Errors
    ///
    /// Missing relinearization key or insufficient levels.
    pub fn new(backend: &'a dyn EvalBackend, ct: &BackendCt, degree: usize) -> Result<Self> {
        let k = Self::baby_count(degree);
        // T_1..T_{k-1}.
        let mut baby: Vec<BackendCt> = vec![ct.duplicate()];
        for i in 2..k {
            let a = i.div_ceil(2);
            let b = i / 2;
            let t = mul_chebyshev(backend, &baby[a - 1], &baby[b - 1], i % 2 == 0, &baby)?;
            baby.push(t);
        }
        // Giants: T_k, T_2k, ...
        let mut giants: Vec<(usize, BackendCt)> = Vec::new();
        {
            // T_k = 2·T_{k/2}² − 1.
            let half = &baby[k / 2 - 1];
            let t_k = double_angle_step(backend, half)?;
            giants.push((k, t_k));
        }
        let mut d = 2 * k;
        while d <= degree {
            let prev = &giants.last().expect("giants start non-empty").1;
            let next = double_angle_step(backend, prev)?;
            giants.push((d, next));
            d *= 2;
        }
        // Align everything to the deepest level.
        let base = giants
            .iter()
            .map(|(_, c)| c.level())
            .chain(baby.iter().map(|c| c.level()))
            .min()
            .expect("non-empty");
        for c in baby.iter_mut() {
            backend.drop_to_level(c, base)?;
        }
        for (_, c) in giants.iter_mut() {
            backend.drop_to_level(c, base)?;
        }
        Ok(Self {
            backend,
            baby,
            giants,
            k,
        })
    }

    /// The common level of all precomputed powers.
    pub fn base_level(&self) -> usize {
        self.baby[0].level()
    }

    /// Evaluates `Σ coeffs[j]·T_j(u)` homomorphically.
    ///
    /// # Errors
    ///
    /// Missing keys or insufficient levels.
    pub fn evaluate(&self, coeffs: &[f64]) -> Result<BackendCt> {
        match self.eval_rec(coeffs)? {
            Val::Ct(c) => Ok(c),
            Val::Const(c) => {
                // Degenerate all-constant series: materialize via 0·T_1 + c.
                let out = mul_scalar_rescale(self.backend, &self.baby[0], 0.0)?;
                self.backend.add_scalar(&out, c)
            }
        }
    }

    fn eval_rec(&self, coeffs: &[f64]) -> Result<Val> {
        let backend = self.backend;
        let d = trim_degree(coeffs);
        if d == 0 {
            return Ok(Val::Const(coeffs.first().copied().unwrap_or(0.0)));
        }
        if d < self.k {
            // Direct baby-step combination: Σ c_j·T_j + c_0.
            let mut acc: Option<BackendCt> = None;
            for (j, &c) in coeffs.iter().enumerate().skip(1).take(d) {
                if c == 0.0 {
                    continue;
                }
                let term = mul_scalar_rescale(backend, &self.baby[j - 1], c)?;
                acc = Some(match acc {
                    None => term,
                    Some(a) => backend.add(&a, &term)?,
                });
            }
            return Ok(match acc {
                None => Val::Const(coeffs[0]),
                Some(a) => Val::Ct(backend.add_scalar(&a, coeffs[0])?),
            });
        }
        // Split at the largest giant ≤ d.
        let (g_deg, g_ct) = self
            .giants
            .iter()
            .rev()
            .find(|(deg, _)| *deg <= d)
            .expect("giant exists");
        let (q, r) = long_division_chebyshev(coeffs, *g_deg);
        let eq = self.eval_rec(&q)?;
        let er = self.eval_rec(&r)?;
        // out = eq·T_g + er.
        let mut out = match eq {
            Val::Const(c) => mul_scalar_rescale(backend, g_ct, c)?,
            Val::Ct(cq) => {
                let lvl = cq.level().min(g_ct.level());
                let mut a = cq;
                backend.drop_to_level(&mut a, lvl)?;
                let mut b = g_ct.duplicate();
                backend.drop_to_level(&mut b, lvl)?;
                let mut prod = backend.mul(&a, &b)?;
                backend.rescale(&mut prod)?;
                prod
            }
        };
        match er {
            Val::Const(c) => {
                out = backend.add_scalar(&out, c)?;
            }
            Val::Ct(mut cr) => {
                let lvl = out.level().min(cr.level());
                backend.drop_to_level(&mut out, lvl)?;
                backend.drop_to_level(&mut cr, lvl)?;
                out = backend.add(&out, &cr)?;
            }
        }
        Ok(Val::Ct(out))
    }
}

/// ScalarMult by a constant encoded at exactly `q_ℓ · σ_{ℓ-1} / σ_ℓ`,
/// immediately rescaled — a ciphertext on the standard-scale ladder stays on
/// it (the policy of `Ciphertext::mul_scalar_rescale`, backend-generic).
pub(crate) fn mul_scalar_rescale(
    backend: &dyn EvalBackend,
    ct: &BackendCt,
    c: f64,
) -> Result<BackendCt> {
    let l = ct.level();
    if l == 0 {
        return Err(FidesError::NotEnoughLevels {
            needed: 1,
            available: 0,
        });
    }
    let q_l = backend.modulus_value(l) as f64;
    let const_scale = q_l * backend.standard_scale(l - 1) / backend.standard_scale(l);
    let mut out = backend.mul_scalar_at(ct, c, const_scale)?;
    backend.rescale(&mut out)?;
    Ok(out)
}

/// `T_{a+b} = 2·T_a·T_b − T_{a−b}` where `a = ⌈i/2⌉, b = ⌊i/2⌋`; subtracts
/// `T_0 = 1` for even `i` and `T_1` for odd `i`.
fn mul_chebyshev(
    backend: &dyn EvalBackend,
    ta: &BackendCt,
    tb: &BackendCt,
    even: bool,
    baby: &[BackendCt],
) -> Result<BackendCt> {
    let lvl = ta.level().min(tb.level());
    let mut a = ta.duplicate();
    backend.drop_to_level(&mut a, lvl)?;
    let mut b = tb.duplicate();
    backend.drop_to_level(&mut b, lvl)?;
    let mut prod = backend.mul(&a, &b)?;
    backend.rescale(&mut prod)?;
    let out = backend.mul_int(&prod, 2)?;
    if even {
        backend.add_scalar(&out, -1.0)
    } else {
        let mut t1 = baby[0].duplicate();
        backend.drop_to_level(&mut t1, out.level())?;
        backend.sub(&out, &t1)
    }
}

/// One double-angle step: `T_{2m} = 2·T_m² − 1` (also `cos 2θ = 2cos²θ − 1`,
/// the ApproxModEval iteration).
pub(crate) fn double_angle_step(backend: &dyn EvalBackend, ct: &BackendCt) -> Result<BackendCt> {
    let mut sq = backend.square(ct)?;
    backend.rescale(&mut sq)?;
    let out = backend.mul_int(&sq, 2)?;
    backend.add_scalar(&out, -1.0)
}
