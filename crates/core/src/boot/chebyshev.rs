//! Chebyshev approximation machinery for ApproxModEval (§III-F.7).
//!
//! FIDESlib adapts OpenFHE's approach: a Chebyshev cosine approximation
//! evaluated with BSGS + Paterson–Stockmeyer, followed by double-angle
//! iterations. This module provides the numeric side: coefficient fitting,
//! Clenshaw reference evaluation, and Chebyshev long division (the core of
//! the PS recursion).

/// Fits `degree+1` Chebyshev coefficients of `f` on `[a, b]` by
/// Chebyshev-node interpolation (exact for polynomials, spectrally accurate
/// for smooth `f`).
pub fn chebyshev_coefficients(f: impl Fn(f64) -> f64, a: f64, b: f64, degree: usize) -> Vec<f64> {
    let m = degree + 1;
    let nodes: Vec<f64> = (0..m)
        .map(|k| (std::f64::consts::PI * (k as f64 + 0.5) / m as f64).cos())
        .collect();
    let values: Vec<f64> = nodes
        .iter()
        .map(|&x| f(0.5 * (b - a) * x + 0.5 * (a + b)))
        .collect();
    (0..m)
        .map(|j| {
            let sum: f64 = (0..m)
                .map(|k| {
                    values[k]
                        * (std::f64::consts::PI * j as f64 * (k as f64 + 0.5) / m as f64).cos()
                })
                .sum();
            let norm = if j == 0 { 1.0 } else { 2.0 };
            norm * sum / m as f64
        })
        .collect()
}

/// Clenshaw evaluation of a Chebyshev series on `[a, b]` (plaintext
/// reference).
pub fn eval_chebyshev_plain(coeffs: &[f64], a: f64, b: f64, x: f64) -> f64 {
    let u = (2.0 * x - (a + b)) / (b - a);
    let mut b1 = 0.0f64;
    let mut b2 = 0.0f64;
    for &c in coeffs.iter().skip(1).rev() {
        let t = 2.0 * u * b1 - b2 + c;
        b2 = b1;
        b1 = t;
    }
    coeffs[0] + u * b1 - b2
}

/// Degree of a coefficient vector after trimming trailing ~zeros.
pub fn trim_degree(coeffs: &[f64]) -> usize {
    let mut d = coeffs.len().saturating_sub(1);
    while d > 0 && coeffs[d].abs() < 1e-13 {
        d -= 1;
    }
    d
}

/// Chebyshev long division: `f = q·T_k + r` with `deg r < k`, all in the
/// Chebyshev basis. Uses `T_a·T_b = (T_{a+b} + T_{|a−b|})/2`.
///
/// # Panics
///
/// Panics if `k == 0` or `deg f < k`.
pub fn long_division_chebyshev(f: &[f64], k: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(k >= 1, "divisor degree must be positive");
    let n = trim_degree(f);
    assert!(n >= k, "dividend degree must reach the divisor");
    let mut r = f[..=n].to_vec();
    let mut q = vec![0.0f64; n - k + 1];
    for i in (k..=n).rev() {
        let ri = r[i];
        if ri == 0.0 {
            continue;
        }
        if i == k {
            // T_0 · T_k = T_k.
            q[0] += ri;
            r[i] = 0.0;
        } else {
            // q_{i−k}·T_{i−k}·T_k = q/2·(T_i + T_{|i−2k|}).
            let qc = 2.0 * ri;
            q[i - k] += qc;
            r[i] = 0.0;
            let other = (i as isize - 2 * k as isize).unsigned_abs();
            r[other] -= ri;
        }
    }
    r.truncate(k);
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clenshaw(coeffs: &[f64], u: f64) -> f64 {
        // Proper Clenshaw on [-1, 1].
        let mut b1 = 0.0;
        let mut b2 = 0.0;
        for &c in coeffs.iter().skip(1).rev() {
            let t = 2.0 * u * b1 - b2 + c;
            b2 = b1;
            b1 = t;
        }
        coeffs[0] + u * b1 - b2
    }

    #[test]
    fn fits_cosine_accurately() {
        let coeffs = chebyshev_coefficients(|x| x.cos(), -3.0, 3.0, 24);
        for i in 0..=100 {
            let x = -3.0 + 6.0 * i as f64 / 100.0;
            let u = x / 3.0;
            let got = clenshaw(&coeffs, u);
            assert!((got - x.cos()).abs() < 1e-12, "x={x}: {got} vs {}", x.cos());
        }
    }

    #[test]
    fn fits_polynomials_exactly() {
        // f(x) = T_3(x) on [-1,1] must produce coefficient e_3.
        let coeffs = chebyshev_coefficients(|x| 4.0 * x * x * x - 3.0 * x, -1.0, 1.0, 5);
        assert!((coeffs[3] - 1.0).abs() < 1e-12);
        for (j, &c) in coeffs.iter().enumerate() {
            if j != 3 {
                assert!(c.abs() < 1e-12, "c[{j}] = {c}");
            }
        }
    }

    #[test]
    fn long_division_identity() {
        // Random-ish series; verify f(u) == q(u)·T_k(u) + r(u) numerically.
        let f: Vec<f64> = (0..16)
            .map(|i| ((i * 37 % 11) as f64 - 5.0) * 0.3)
            .collect();
        for k in [1usize, 3, 5, 8] {
            let (q, r) = long_division_chebyshev(&f, k);
            assert!(trim_degree(&r) < k || r.iter().all(|&x| x == 0.0));
            for i in 0..=60 {
                let u = -1.0 + 2.0 * i as f64 / 60.0;
                let tk = (k as f64 * u.acos()).cos();
                let lhs = clenshaw(&f, u);
                let rhs = clenshaw(&q, u) * tk + if r.is_empty() { 0.0 } else { clenshaw(&r, u) };
                assert!((lhs - rhs).abs() < 1e-9, "k={k} u={u}: {lhs} vs {rhs}");
            }
        }
    }

    #[test]
    fn trim_degree_works() {
        assert_eq!(trim_degree(&[1.0, 2.0, 0.0, 0.0]), 1);
        assert_eq!(trim_degree(&[0.0]), 0);
        assert_eq!(trim_degree(&[0.0, 0.0, 3.0]), 2);
    }

    #[test]
    #[should_panic(expected = "dividend degree")]
    fn division_by_larger_degree_panics() {
        long_division_chebyshev(&[1.0, 2.0], 5);
    }
}
